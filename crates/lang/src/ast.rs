//! Abstract syntax of the update languages SL, CSL⁺ and CSL
//! (Definitions 2.3, 2.4, 4.1, 4.2 of the paper).
//!
//! A *transaction* is a sequence of (optionally guarded) atomic updates;
//! a *transaction schema* is a finite set of transactions. Transactions
//! are *parameterized*: conditions may mention variables, which an
//! [`Assignment`] binds to constants before execution. SL transactions
//! are exactly those with no guards; CSL⁺ allows positive guards; CSL
//! allows positive and negative guards — so one AST covers all three
//! languages, with [`Transaction::language`] reporting the fragment.

use migratory_model::{ClassId, Condition, Term, Value, VarId};
use std::collections::BTreeSet;

/// One of the five atomic updates of SL (Definition 2.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AtomicUpdate {
    /// `create(P, Γ)` — create a brand-new object (fresh identifier) in the
    /// isa-root class `P` with attribute values given by Γ's equalities.
    /// Unlike relational insertion, creation is unconditional: a new
    /// object appears even if an identical tuple already exists.
    Create {
        /// The isa-root class.
        class: ClassId,
        /// Value-defining condition with `Att(Γ) = Att_def(Γ) = A(P)`.
        gamma: Condition,
    },
    /// `delete(P, Γ)` — remove every object of the isa-root class `P`
    /// satisfying Γ from the database entirely.
    Delete {
        /// The isa-root class.
        class: ClassId,
        /// Selection condition with `Att(Γ) ⊆ A(P)`.
        gamma: Condition,
    },
    /// `modify(P, Γ, Γ′)` — overwrite, for every object of `P` satisfying
    /// Γ, the attributes defined by Γ′.
    Modify {
        /// Any class.
        class: ClassId,
        /// Selection condition with `Att(Γ) ⊆ A*(P)`.
        select: Condition,
        /// Update condition with `Att_def(Γ′) = Att(Γ′) ⊆ A*(P)`.
        set: Condition,
    },
    /// `generalize(P, Γ)` — cancel membership of `P` *and all its
    /// descendants* for every object of `P` satisfying Γ. Not applicable
    /// to isa-roots; the object survives in the ancestor classes.
    Generalize {
        /// A non-root class.
        class: ClassId,
        /// Selection condition with `Att(Γ) ⊆ A*(P)`.
        gamma: Condition,
    },
    /// `specialize(P, Q, Γ, Γ′)` — add every object of `P` satisfying Γ
    /// (and not already in `Q`) to the direct subclass `Q` (and hence to
    /// all of `Q`'s ancestors), with the newly acquired attributes
    /// `A*(Q) − A*(P)` set from Γ′. Objects already in `Q` are left
    /// untouched.
    Specialize {
        /// The source class `P`.
        from: ClassId,
        /// The target class `Q` with a direct edge `Q isa P`.
        to: ClassId,
        /// Selection condition with `Att(Γ) ⊆ A*(P)`.
        select: Condition,
        /// Value condition with `Att_def(Γ′) = Att(Γ′) = A*(Q) − A*(P)`.
        set: Condition,
    },
}

impl AtomicUpdate {
    /// The conditions of the update, in order.
    #[must_use]
    pub fn conditions(&self) -> Vec<&Condition> {
        match self {
            AtomicUpdate::Create { gamma, .. }
            | AtomicUpdate::Delete { gamma, .. }
            | AtomicUpdate::Generalize { gamma, .. } => vec![gamma],
            AtomicUpdate::Modify { select, set, .. }
            | AtomicUpdate::Specialize { select, set, .. } => vec![select, set],
        }
    }

    /// Whether the update is ground (no variables in any condition).
    #[must_use]
    pub fn is_ground(&self) -> bool {
        self.conditions().iter().all(|c| c.is_ground())
    }

    /// Substitute variables by constants.
    #[must_use]
    pub fn substitute(&self, assign: &dyn Fn(VarId) -> Value) -> AtomicUpdate {
        match self {
            AtomicUpdate::Create { class, gamma } => {
                AtomicUpdate::Create { class: *class, gamma: gamma.substitute(assign) }
            }
            AtomicUpdate::Delete { class, gamma } => {
                AtomicUpdate::Delete { class: *class, gamma: gamma.substitute(assign) }
            }
            AtomicUpdate::Modify { class, select, set } => AtomicUpdate::Modify {
                class: *class,
                select: select.substitute(assign),
                set: set.substitute(assign),
            },
            AtomicUpdate::Generalize { class, gamma } => {
                AtomicUpdate::Generalize { class: *class, gamma: gamma.substitute(assign) }
            }
            AtomicUpdate::Specialize { from, to, select, set } => AtomicUpdate::Specialize {
                from: *from,
                to: *to,
                select: select.substitute(assign),
                set: set.substitute(assign),
            },
        }
    }
}

/// A testing literal `P(Γ)` or `¬P(Γ)` (Section 4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Literal {
    /// `true` for `P(Γ)`, `false` for `¬P(Γ)`.
    pub positive: bool,
    /// The tested class.
    pub class: ClassId,
    /// The tested condition, `Att(Γ) ⊆ A*(P)`.
    pub gamma: Condition,
}

impl Literal {
    /// A positive literal `P(Γ)`.
    #[must_use]
    pub fn pos(class: ClassId, gamma: Condition) -> Self {
        Literal { positive: true, class, gamma }
    }

    /// A negative literal `¬P(Γ)`.
    #[must_use]
    pub fn neg(class: ClassId, gamma: Condition) -> Self {
        Literal { positive: false, class, gamma }
    }

    /// Substitute variables by constants.
    #[must_use]
    pub fn substitute(&self, assign: &dyn Fn(VarId) -> Value) -> Literal {
        Literal { positive: self.positive, class: self.class, gamma: self.gamma.substitute(assign) }
    }
}

/// A conditional atomic update `δ₁, …, δₙ → θ` (Definition 4.1); with no
/// guards this is a plain SL atomic update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GuardedUpdate {
    /// The testing literals; all must hold for the update to fire.
    pub guards: Vec<Literal>,
    /// The guarded atomic update.
    pub update: AtomicUpdate,
}

impl GuardedUpdate {
    /// An unguarded update.
    #[must_use]
    pub fn plain(update: AtomicUpdate) -> Self {
        GuardedUpdate { guards: Vec::new(), update }
    }

    /// A guarded update.
    #[must_use]
    pub fn when(guards: Vec<Literal>, update: AtomicUpdate) -> Self {
        GuardedUpdate { guards, update }
    }

    /// Whether guards and update are all ground.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        self.guards.iter().all(|l| l.gamma.is_ground()) && self.update.is_ground()
    }

    /// Substitute variables by constants.
    #[must_use]
    pub fn substitute(&self, assign: &dyn Fn(VarId) -> Value) -> GuardedUpdate {
        GuardedUpdate {
            guards: self.guards.iter().map(|l| l.substitute(assign)).collect(),
            update: self.update.substitute(assign),
        }
    }
}

/// Which language fragment a transaction belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Language {
    /// No guards — the five-operator base language.
    Sl,
    /// Positive guards only.
    CslPlus,
    /// Positive and negative guards.
    Csl,
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Language::Sl => write!(f, "SL"),
            Language::CslPlus => write!(f, "CSL+"),
            Language::Csl => write!(f, "CSL"),
        }
    }
}

/// A (possibly parameterized, possibly conditional) transaction
/// `T(x₁, …, xₘ) = ξ₁; …; ξₙ` (Definitions 2.4 / 4.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Name (unique within a [`TransactionSchema`]).
    pub name: String,
    /// Parameter names; `VarId(i)` refers to `params[i]`.
    pub params: Vec<String>,
    /// The update sequence.
    pub steps: Vec<GuardedUpdate>,
}

impl Transaction {
    /// A transaction with the given name, parameters and steps.
    #[must_use]
    pub fn new(name: &str, params: &[&str], steps: Vec<GuardedUpdate>) -> Self {
        Transaction {
            name: name.to_owned(),
            params: params.iter().map(|s| (*s).to_owned()).collect(),
            steps,
        }
    }

    /// An SL transaction from plain atomic updates.
    #[must_use]
    pub fn sl(name: &str, params: &[&str], updates: Vec<AtomicUpdate>) -> Self {
        Self::new(name, params, updates.into_iter().map(GuardedUpdate::plain).collect())
    }

    /// The empty transaction (identity mapping).
    #[must_use]
    pub fn empty(name: &str) -> Self {
        Self::new(name, &[], Vec::new())
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether this is the empty transaction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether all steps are ground; per Definition 2.4 a transaction is
    /// *parameterized* iff it is not ground.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        self.steps.iter().all(GuardedUpdate::is_ground)
    }

    /// The first class this transaction's updates name (the source
    /// class for a specialize), or `None` for the empty transaction.
    /// This is the **routing anchor** shared by the enforcement stack:
    /// `enforce::ingress` picks the admission lane with it and the
    /// sharded monitor routes empty-delta letters with it — the two
    /// must agree, so both call this one helper.
    #[must_use]
    pub fn first_named_class(&self) -> Option<ClassId> {
        self.steps
            .iter()
            .map(|g| match g.update {
                AtomicUpdate::Create { class, .. }
                | AtomicUpdate::Delete { class, .. }
                | AtomicUpdate::Modify { class, .. }
                | AtomicUpdate::Generalize { class, .. } => class,
                AtomicUpdate::Specialize { from, .. } => from,
            })
            .next()
    }

    /// The language fragment this transaction lives in.
    #[must_use]
    pub fn language(&self) -> Language {
        let mut lang = Language::Sl;
        for s in &self.steps {
            for g in &s.guards {
                if g.positive {
                    lang = lang.max(Language::CslPlus);
                } else {
                    return Language::Csl;
                }
            }
        }
        lang
    }

    /// All variables used anywhere in the transaction.
    #[must_use]
    pub fn vars_used(&self) -> BTreeSet<VarId> {
        let mut vars = BTreeSet::new();
        for s in &self.steps {
            for g in &s.guards {
                vars.extend(g.gamma.vars());
            }
            for c in s.update.conditions() {
                vars.extend(c.vars());
            }
        }
        vars
    }

    /// All constants appearing in the transaction (the `C_T` of the
    /// separator construction).
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut cs = BTreeSet::new();
        for s in &self.steps {
            for g in &s.guards {
                cs.extend(g.gamma.constants());
            }
            for c in s.update.conditions() {
                cs.extend(c.constants());
            }
        }
        cs
    }

    /// Ground the transaction with an assignment (`T[α]`).
    pub fn ground(&self, args: &Assignment) -> Result<Transaction, crate::error::LangError> {
        if args.len() != self.params.len() {
            return Err(crate::error::LangError::ArityMismatch {
                expected: self.params.len(),
                got: args.len(),
            });
        }
        let assign = |x: VarId| args.get(x).clone();
        Ok(Transaction {
            name: self.name.clone(),
            params: Vec::new(),
            steps: self.steps.iter().map(|s| s.substitute(&assign)).collect(),
        })
    }
}

/// An assignment α binding each parameter of a transaction to a constant
/// (positionally: argument `i` binds `VarId(i)`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Assignment {
    values: Vec<Value>,
}

impl Assignment {
    /// The empty assignment (for parameterless transactions).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from positional values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Self {
        Assignment { values }
    }

    /// Number of bound parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameter is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value bound to a variable.
    ///
    /// # Panics
    /// Panics if the variable index is out of range (arity was checked by
    /// [`Transaction::ground`]).
    #[must_use]
    pub fn get(&self, x: VarId) -> &Value {
        &self.values[x.0 as usize]
    }

    /// Iterate the bound values.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }
}

impl From<Vec<Value>> for Assignment {
    fn from(values: Vec<Value>) -> Self {
        Assignment::new(values)
    }
}

impl FromIterator<Value> for Assignment {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Assignment::new(iter.into_iter().collect())
    }
}

/// A finite set of transactions over one database schema
/// (Definition 2.4's *transaction schema*).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TransactionSchema {
    transactions: Vec<Transaction>,
}

impl TransactionSchema {
    /// An empty schema.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from transactions, requiring unique names.
    pub fn from_transactions(
        ts: impl IntoIterator<Item = Transaction>,
    ) -> Result<Self, crate::error::LangError> {
        let mut s = Self::new();
        for t in ts {
            s.add(t)?;
        }
        Ok(s)
    }

    /// Add a transaction, requiring a fresh name.
    pub fn add(&mut self, t: Transaction) -> Result<(), crate::error::LangError> {
        if self.transactions.iter().any(|u| u.name == t.name) {
            return Err(crate::error::LangError::DuplicateTransaction(t.name));
        }
        self.transactions.push(t);
        Ok(())
    }

    /// The transactions, in declaration order.
    #[must_use]
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the schema is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Look up a transaction by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Transaction> {
        self.transactions.iter().find(|t| t.name == name)
    }

    /// The position of a transaction by name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.transactions.iter().position(|t| t.name == name)
    }

    /// The most expressive language fragment used (`max` over members).
    #[must_use]
    pub fn language(&self) -> Language {
        self.transactions.iter().map(Transaction::language).max().unwrap_or(Language::Sl)
    }

    /// All constants occurring in the schema (the `C_Σ` of Theorem 3.2's
    /// separator construction).
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        self.transactions.iter().flat_map(Transaction::constants).collect()
    }
}

/// Convenience: a `Term` for a constant.
#[must_use]
pub fn con(v: impl Into<Value>) -> Term {
    Term::Const(v.into())
}

/// Convenience: a `Term` for variable `i`.
#[must_use]
pub fn var(i: u32) -> Term {
    Term::Var(VarId(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_model::{schema::university_schema, Atom};

    fn cond(atoms: Vec<Atom>) -> Condition {
        Condition::from_atoms(atoms)
    }

    #[test]
    fn language_classification() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        let create = AtomicUpdate::Create {
            class: p,
            gamma: cond(vec![Atom::eq_var(ssn, VarId(0)), Atom::eq_var(name, VarId(1))]),
        };
        let t_sl = Transaction::sl("t", &["s", "n"], vec![create.clone()]);
        assert_eq!(t_sl.language(), Language::Sl);

        let guard_pos = Literal::pos(p, Condition::empty());
        let t_pos = Transaction::new(
            "t2",
            &["s", "n"],
            vec![GuardedUpdate::when(vec![guard_pos.clone()], create.clone())],
        );
        assert_eq!(t_pos.language(), Language::CslPlus);

        let guard_neg = Literal::neg(p, Condition::empty());
        let t_neg = Transaction::new(
            "t3",
            &["s", "n"],
            vec![GuardedUpdate::when(vec![guard_pos, guard_neg], create)],
        );
        assert_eq!(t_neg.language(), Language::Csl);
        assert!(Language::Sl < Language::CslPlus && Language::CslPlus < Language::Csl);
    }

    #[test]
    fn grounding_substitutes_all_occurrences() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        let t = Transaction::sl(
            "t",
            &["s", "n"],
            vec![AtomicUpdate::Create {
                class: p,
                gamma: cond(vec![Atom::eq_var(ssn, VarId(0)), Atom::eq_var(name, VarId(1))]),
            }],
        );
        assert!(!t.is_ground());
        assert_eq!(t.vars_used().len(), 2);
        let g = t.ground(&Assignment::new(vec![Value::str("123"), Value::str("Ann")])).unwrap();
        assert!(g.is_ground());
        assert!(g.constants().contains(&Value::str("Ann")));
    }

    #[test]
    fn grounding_checks_arity() {
        let t = Transaction::sl("t", &["x"], vec![]);
        let e = t.ground(&Assignment::empty()).unwrap_err();
        assert_eq!(e, crate::error::LangError::ArityMismatch { expected: 1, got: 0 });
    }

    #[test]
    fn schema_name_uniqueness() {
        let mut ts = TransactionSchema::new();
        ts.add(Transaction::empty("a")).unwrap();
        assert!(ts.add(Transaction::empty("a")).is_err());
        ts.add(Transaction::empty("b")).unwrap();
        assert_eq!(ts.len(), 2);
        assert!(ts.get("a").is_some());
        assert_eq!(ts.index_of("b"), Some(1));
        assert_eq!(ts.language(), Language::Sl);
    }

    #[test]
    fn constants_collected_across_guards_and_updates() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let e = s.class_id("EMPLOYEE").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let t = Transaction::new(
            "t",
            &[],
            vec![GuardedUpdate::when(
                vec![Literal::pos(e, cond(vec![Atom::eq_const(ssn, "g")]))],
                AtomicUpdate::Delete { class: p, gamma: cond(vec![Atom::eq_const(ssn, "u")]) },
            )],
        );
        let cs = t.constants();
        assert!(cs.contains(&Value::str("g")) && cs.contains(&Value::str("u")));
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn empty_transaction_is_identity_shaped() {
        let t = Transaction::empty("id");
        assert!(t.is_empty() && t.is_ground());
        assert_eq!(t.len(), 0);
        assert_eq!(t.language(), Language::Sl);
    }
}

//! Well-formedness of atomic updates, guards and transactions against a
//! database schema (the side conditions of Definitions 2.3 and 4.1).

use crate::ast::{AtomicUpdate, GuardedUpdate, Literal, Transaction, TransactionSchema};
use crate::error::LangError;
use migratory_model::ids::DenseId as _;
use migratory_model::{AttrSet, Condition, Schema};

/// Validate one atomic update (Definition 2.3).
pub fn validate_update(schema: &Schema, u: &AtomicUpdate) -> Result<(), LangError> {
    match u {
        AtomicUpdate::Create { class, gamma } => {
            if !schema.is_isa_root(*class) {
                return Err(LangError::NotIsaRoot(*class));
            }
            let a_p: AttrSet = schema.attrs_of(*class).iter().copied().collect();
            // Att(Γ) = Att_def(Γ) = A(P): every attribute referenced is
            // defined, and the referenced set is exactly A(P).
            if gamma.referenced_attrs() != a_p || gamma.defined_attrs() != a_p {
                return Err(LangError::ConditionAttrs { context: "create(P, Γ): Γ" });
            }
            Ok(())
        }
        AtomicUpdate::Delete { class, gamma } => {
            if !schema.is_isa_root(*class) {
                return Err(LangError::NotIsaRoot(*class));
            }
            let a_p: AttrSet = schema.attrs_of(*class).iter().copied().collect();
            if !gamma.referenced_attrs().is_subset(a_p) {
                return Err(LangError::ConditionAttrs { context: "delete(P, Γ): Γ" });
            }
            Ok(())
        }
        AtomicUpdate::Modify { class, select, set } => {
            let a_star = schema.attr_star(*class);
            if !select.referenced_attrs().is_subset(a_star) {
                return Err(LangError::ConditionAttrs { context: "modify(P, Γ, Γ′): Γ" });
            }
            if !set.referenced_attrs().is_subset(a_star)
                || set.defined_attrs() != set.referenced_attrs()
            {
                return Err(LangError::ConditionAttrs { context: "modify(P, Γ, Γ′): Γ′" });
            }
            Ok(())
        }
        AtomicUpdate::Generalize { class, gamma } => {
            if schema.is_isa_root(*class) {
                return Err(LangError::IsIsaRoot(*class));
            }
            if !gamma.referenced_attrs().is_subset(schema.attr_star(*class)) {
                return Err(LangError::ConditionAttrs { context: "generalize(P, Γ): Γ" });
            }
            Ok(())
        }
        AtomicUpdate::Specialize { from, to, select, set } => {
            if !schema.isa_direct(*to, *from) {
                return Err(LangError::NotDirectSubclass { sub: *to, sup: *from });
            }
            if !select.referenced_attrs().is_subset(schema.attr_star(*from)) {
                return Err(LangError::ConditionAttrs {
                    context: "specialize(P, Q, Γ, Γ′): Γ"
                });
            }
            let acquired = schema.attr_star(*to).difference(schema.attr_star(*from));
            if set.referenced_attrs() != acquired || set.defined_attrs() != acquired {
                return Err(LangError::ConditionAttrs {
                    context: "specialize(P, Q, Γ, Γ′): Γ′"
                });
            }
            Ok(())
        }
    }
}

/// Validate a testing literal (Section 4: `Att(Γ) ⊆ A*(P)`).
pub fn validate_literal(schema: &Schema, l: &Literal) -> Result<(), LangError> {
    if !l.gamma.referenced_attrs().is_subset(schema.attr_star(l.class)) {
        return Err(LangError::ConditionAttrs { context: "literal P(Γ): Γ" });
    }
    Ok(())
}

fn check_vars(cond: &Condition, arity: usize) -> Result<(), LangError> {
    for v in cond.vars() {
        if v.index() >= arity {
            return Err(LangError::UnboundVariable { var: v.0 });
        }
    }
    Ok(())
}

/// Validate one (possibly guarded) step.
pub fn validate_step(schema: &Schema, s: &GuardedUpdate, arity: usize) -> Result<(), LangError> {
    for g in &s.guards {
        validate_literal(schema, g)?;
        check_vars(&g.gamma, arity)?;
    }
    validate_update(schema, &s.update)?;
    for c in s.update.conditions() {
        check_vars(c, arity)?;
    }
    Ok(())
}

/// Validate a whole transaction: every step well-formed, every variable
/// bound by the parameter list. (Variables are global to the transaction,
/// per Definition 4.1's restriction — there are no step-local variables.)
pub fn validate_transaction(schema: &Schema, t: &Transaction) -> Result<(), LangError> {
    for s in &t.steps {
        validate_step(schema, s, t.params.len())?;
    }
    Ok(())
}

/// Validate every transaction of a schema.
pub fn validate_schema(schema: &Schema, ts: &TransactionSchema) -> Result<(), LangError> {
    for t in ts.transactions() {
        validate_transaction(schema, t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::GuardedUpdate;
    use migratory_model::schema::university_schema;
    use migratory_model::{Atom, ClassId, Condition};

    fn cond(atoms: Vec<Atom>) -> Condition {
        Condition::from_atoms(atoms)
    }

    #[test]
    fn create_requires_root_and_full_definition() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let st = s.class_id("STUDENT").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();

        let ok = AtomicUpdate::Create {
            class: p,
            gamma: cond(vec![Atom::eq_const(ssn, "1"), Atom::eq_const(name, "n")]),
        };
        validate_update(&s, &ok).unwrap();

        // Non-root class.
        let bad = AtomicUpdate::Create { class: st, gamma: Condition::empty() };
        assert_eq!(validate_update(&s, &bad), Err(LangError::NotIsaRoot(st)));

        // Missing Name definition.
        let bad = AtomicUpdate::Create { class: p, gamma: cond(vec![Atom::eq_const(ssn, "1")]) };
        assert!(matches!(validate_update(&s, &bad), Err(LangError::ConditionAttrs { .. })));

        // Referencing an inherited-only attr is out of A(P)… use Salary.
        let salary = s.attr_id("Salary").unwrap();
        let bad = AtomicUpdate::Create {
            class: p,
            gamma: cond(vec![
                Atom::eq_const(ssn, "1"),
                Atom::eq_const(name, "n"),
                Atom::eq_const(salary, 1),
            ]),
        };
        assert!(validate_update(&s, &bad).is_err());
    }

    #[test]
    fn delete_requires_root_and_local_attrs() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let salary = s.attr_id("Salary").unwrap();
        validate_update(&s, &AtomicUpdate::Delete { class: p, gamma: Condition::empty() }).unwrap();
        let bad = AtomicUpdate::Delete { class: p, gamma: cond(vec![Atom::eq_const(salary, 0)]) };
        assert!(validate_update(&s, &bad).is_err());
    }

    #[test]
    fn modify_set_must_define_everything_referenced() {
        let s = university_schema();
        let e = s.class_id("EMPLOYEE").unwrap();
        let salary = s.attr_id("Salary").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        // Selecting on inherited SSN is fine (Att ⊆ A*(EMPLOYEE)).
        let ok = AtomicUpdate::Modify {
            class: e,
            select: cond(vec![Atom::eq_const(ssn, "1")]),
            set: cond(vec![Atom::eq_const(salary, 100)]),
        };
        validate_update(&s, &ok).unwrap();
        // A ≠ atom in Γ′ does not define its attribute.
        let bad = AtomicUpdate::Modify {
            class: e,
            select: Condition::empty(),
            set: cond(vec![Atom::ne_const(salary, 100)]),
        };
        assert!(validate_update(&s, &bad).is_err());
    }

    #[test]
    fn generalize_rejects_root() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let e = s.class_id("EMPLOYEE").unwrap();
        validate_update(&s, &AtomicUpdate::Generalize { class: e, gamma: Condition::empty() })
            .unwrap();
        assert_eq!(
            validate_update(&s, &AtomicUpdate::Generalize { class: p, gamma: Condition::empty() }),
            Err(LangError::IsIsaRoot(p))
        );
    }

    #[test]
    fn specialize_requires_direct_edge_and_exact_acquired_set() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let st = s.class_id("STUDENT").unwrap();
        let g = s.class_id("GRAD_ASSIST").unwrap();
        let major = s.attr_id("Major").unwrap();
        let fe = s.attr_id("FirstEnroll").unwrap();

        let ok = AtomicUpdate::Specialize {
            from: p,
            to: st,
            select: Condition::empty(),
            set: cond(vec![Atom::eq_const(major, "CS"), Atom::eq_const(fe, 1990)]),
        };
        validate_update(&s, &ok).unwrap();

        // GRAD_ASSIST is not a *direct* subclass of PERSON.
        let bad = AtomicUpdate::Specialize {
            from: p,
            to: g,
            select: Condition::empty(),
            set: Condition::empty(),
        };
        assert_eq!(validate_update(&s, &bad), Err(LangError::NotDirectSubclass { sub: g, sup: p }));

        // Γ′ must define exactly A*(Q) − A*(P); missing FirstEnroll.
        let bad = AtomicUpdate::Specialize {
            from: p,
            to: st,
            select: Condition::empty(),
            set: cond(vec![Atom::eq_const(major, "CS")]),
        };
        assert!(validate_update(&s, &bad).is_err());
    }

    #[test]
    fn unbound_variables_detected() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let t = Transaction::sl(
            "t",
            &[], // no params but uses x0
            vec![AtomicUpdate::Delete {
                class: p,
                gamma: cond(vec![Atom::eq_var(ssn, migratory_model::VarId(0))]),
            }],
        );
        assert_eq!(validate_transaction(&s, &t), Err(LangError::UnboundVariable { var: 0 }));
    }

    #[test]
    fn literal_attrs_checked() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let salary = s.attr_id("Salary").unwrap();
        // Salary is not defined on PERSON.
        let l = Literal::pos(p, cond(vec![Atom::eq_const(salary, 1)]));
        assert!(validate_literal(&s, &l).is_err());
        let step = GuardedUpdate::when(
            vec![l],
            AtomicUpdate::Delete { class: p, gamma: Condition::empty() },
        );
        assert!(validate_step(&s, &step, 0).is_err());
    }

    #[test]
    fn unknown_class_ids_panic_contract() {
        // ClassIds come from the same schema by construction; validation
        // assumes in-range ids (checked by indexing). Out-of-range would
        // panic — ensure in-range negative case behaves.
        let s = university_schema();
        assert!(s.class_id("NOPE").is_none());
        assert_eq!(ClassId(0).0, 0);
    }
}

//! Canonical serialization of transaction [`Delta`]s.
//!
//! A [`Delta`] is the exact, invertible change-set of one transaction
//! application (before- and after-images of precisely the touched
//! objects), which makes it the natural unit of durability: the
//! enforcement write-ahead log in `migratory-core` persists committed
//! deltas and replays them with [`Delta::redo`] — no transaction
//! re-execution, no history replay.
//!
//! Two interchange formats are provided, both round-tripping exactly:
//!
//! * a **compact binary** form ([`encode_delta`] / [`decode_delta`]) on
//!   top of the primitives of [`migratory_model::codec`] — canonical
//!   (objects in ascending oid order, tuples in attribute order), so
//!   equal deltas have identical bytes; this is the WAL record payload;
//! * a **text** form ([`delta_to_text`] / [`delta_from_text`]) — one
//!   line per touched object, `*` for "does not occur" — for durable
//!   logs meant to be read (or written) by people and external tools.
//!
//! Decoding either form is total: malformed input yields a
//! [`LangError`], never a panic. Structural well-formedness (ascending
//! oids, non-empty class sets on occurring sides) is validated on
//! decode, so a decoded delta upholds the same invariants a recorded
//! one does.

use crate::error::LangError;
use crate::interp::{Delta, ObjectDelta};
use migratory_model::codec::{
    encode_idset, encode_str, encode_tuple, encode_u64, encode_value, Reader as ByteReader,
};
use migratory_model::{ClassSet, ModelError, Oid, Tuple, Value};
use std::fmt::Write as _;

fn corrupt(msg: impl Into<String>) -> LangError {
    LangError::Model(ModelError::Corrupt(msg.into()))
}

// ---------------------------------------------------------------------
// Binary form
// ---------------------------------------------------------------------

/// Per-object flag bits of the binary form.
const HAS_BEFORE: u8 = 1;
const HAS_AFTER: u8 = 2;
const TUPLE_CHANGED: u8 = 4;

/// Append the canonical binary encoding of `d` to `out`.
pub fn encode_delta(out: &mut Vec<u8>, d: &Delta) {
    encode_u64(out, d.old_next);
    encode_u64(out, d.new_next);
    encode_u64(out, d.objects.len() as u64);
    for od in &d.objects {
        encode_u64(out, od.oid.0);
        let mut flags = 0u8;
        if od.before.is_some() {
            flags |= HAS_BEFORE;
        }
        if od.after.is_some() {
            flags |= HAS_AFTER;
        }
        if od.tuple_changed {
            flags |= TUPLE_CHANGED;
        }
        out.push(flags);
        if let Some((cs, t)) = &od.before {
            encode_idset(out, *cs);
            encode_tuple(out, t);
        }
        if let Some((cs, t)) = &od.after {
            encode_idset(out, *cs);
            encode_tuple(out, t);
        }
    }
}

/// Decode one delta from the reader (the inverse of [`encode_delta`]),
/// validating structural well-formedness.
pub fn decode_delta(r: &mut ByteReader<'_>) -> Result<Delta, LangError> {
    let old_next = r.u64()?;
    let new_next = r.u64()?;
    if new_next < old_next {
        return Err(corrupt("delta rewinds the object counter"));
    }
    let n = r.count()?;
    let mut objects: Vec<ObjectDelta> = Vec::with_capacity(n);
    for _ in 0..n {
        let oid = Oid(r.u64()?);
        if let Some(last) = objects.last() {
            if oid <= last.oid {
                return Err(corrupt("delta objects out of oid order"));
            }
        }
        let flags = r.byte()?;
        if flags & !(HAS_BEFORE | HAS_AFTER | TUPLE_CHANGED) != 0 {
            return Err(corrupt(format!("unknown delta flags {flags:#x}")));
        }
        let mut side = |present: bool| -> Result<Option<(ClassSet, Tuple)>, LangError> {
            if !present {
                return Ok(None);
            }
            let cs: ClassSet = r.idset()?;
            if cs.is_empty() {
                return Err(corrupt("occurring delta side has no classes"));
            }
            Ok(Some((cs, r.tuple()?)))
        };
        let before = side(flags & HAS_BEFORE != 0)?;
        let after = side(flags & HAS_AFTER != 0)?;
        objects.push(ObjectDelta { oid, before, after, tuple_changed: flags & TUPLE_CHANGED != 0 });
    }
    Ok(Delta { old_next, new_next, objects })
}

// ---------------------------------------------------------------------
// Invocation payloads (binary wire dialect)
// ---------------------------------------------------------------------

/// Append the binary encoding of one transaction invocation — the
/// payload of an `invoke` frame on the binary wire dialect: the
/// transaction name ([`encode_str`]), the argument count
/// ([`encode_u64`]), then each argument ([`encode_value`]).
pub fn encode_invoke(out: &mut Vec<u8>, name: &str, args: &[Value]) {
    encode_str(out, name);
    encode_u64(out, args.len() as u64);
    for v in args {
        encode_value(out, v);
    }
}

/// Decode one invocation payload (the inverse of [`encode_invoke`]).
///
/// Total over arbitrary bytes: truncation, a length-inflated argument
/// count, or a malformed value yields a [`LangError`], never a panic —
/// the [`ByteReader`] count primitive is bounds-checked against the
/// remaining input.
pub fn decode_invoke(r: &mut ByteReader<'_>) -> Result<(String, Vec<Value>), LangError> {
    let name = r.str()?.to_owned();
    if name.is_empty() {
        return Err(corrupt("empty transaction name"));
    }
    let n = r.count()?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(r.value()?);
    }
    Ok((name, args))
}

// ---------------------------------------------------------------------
// Text form
// ---------------------------------------------------------------------

/// Render `d` in the line-oriented text form. Schema-independent (dense
/// class/attribute indices, typed constants), so it parses back without
/// any context:
///
/// ```text
/// delta 3 -> 4
/// o1 [0 1]{0=s"1234" 1=s"Ann"} => [0 1 2]{0=s"1234" 1=s"Ann" 4=i1990} changed
/// o3 [0]{0=s"9"} => * changed
/// o4 * => [0]{0=s"x"} changed
/// ```
#[must_use]
pub fn delta_to_text(d: &Delta) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "delta {} -> {}", d.old_next, d.new_next);
    for od in &d.objects {
        let _ = write!(out, "o{} ", od.oid.0);
        write_side(&mut out, od.before.as_ref());
        out.push_str(" => ");
        write_side(&mut out, od.after.as_ref());
        out.push_str(if od.tuple_changed { " changed\n" } else { " unchanged\n" });
    }
    out
}

fn write_side(out: &mut String, side: Option<&(ClassSet, Tuple)>) {
    let Some((cs, t)) = side else {
        out.push('*');
        return;
    };
    out.push('[');
    for (i, c) in cs.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{}", c.0);
    }
    out.push_str("]{");
    for (i, (a, v)) in t.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{}=", a.0);
        match v {
            Value::Int(x) => {
                let _ = write!(out, "i{x}");
            }
            Value::Str(s) => {
                out.push_str("s\"");
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Fresh(tag) => {
                let _ = write!(out, "f{tag}");
            }
        }
    }
    out.push('}');
}

/// Parse the text form produced by [`delta_to_text`].
pub fn delta_from_text(src: &str) -> Result<Delta, LangError> {
    let mut lines = src.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| corrupt("empty delta text"))?;
    let rest = header.strip_prefix("delta ").ok_or_else(|| corrupt("missing `delta` header"))?;
    let (old, new) = rest.split_once(" -> ").ok_or_else(|| corrupt("malformed header"))?;
    let old_next = old.trim().parse::<u64>().map_err(|_| corrupt("bad old counter"))?;
    let new_next = new.trim().parse::<u64>().map_err(|_| corrupt("bad new counter"))?;
    if new_next < old_next {
        return Err(corrupt("delta rewinds the object counter"));
    }
    let mut objects: Vec<ObjectDelta> = Vec::new();
    for line in lines {
        let mut p = TextCursor::new(line.trim());
        p.expect('o')?;
        let oid = Oid(p.number()?);
        if objects.last().is_some_and(|last| oid <= last.oid) {
            return Err(corrupt("delta objects out of oid order"));
        }
        p.expect(' ')?;
        let before = p.side()?;
        p.expect_str(" => ")?;
        let after = p.side()?;
        p.expect(' ')?;
        let tuple_changed = match p.rest() {
            "changed" => true,
            "unchanged" => false,
            other => return Err(corrupt(format!("expected change marker, got `{other}`"))),
        };
        objects.push(ObjectDelta { oid, before, after, tuple_changed });
    }
    Ok(Delta { old_next, new_next, objects })
}

/// Character cursor for the text form's object lines.
struct TextCursor<'a> {
    s: &'a str,
}

impl<'a> TextCursor<'a> {
    fn new(s: &'a str) -> TextCursor<'a> {
        TextCursor { s }
    }

    fn rest(&self) -> &'a str {
        self.s
    }

    fn peek(&self) -> Option<char> {
        self.s.chars().next()
    }

    fn bump(&mut self) -> Result<char, LangError> {
        let c = self.peek().ok_or_else(|| corrupt("unexpected end of line"))?;
        self.s = &self.s[c.len_utf8()..];
        Ok(c)
    }

    fn expect(&mut self, want: char) -> Result<(), LangError> {
        let got = self.bump()?;
        if got != want {
            return Err(corrupt(format!("expected `{want}`, got `{got}`")));
        }
        Ok(())
    }

    fn expect_str(&mut self, want: &str) -> Result<(), LangError> {
        match self.s.strip_prefix(want) {
            Some(rest) => {
                self.s = rest;
                Ok(())
            }
            None => Err(corrupt(format!("expected `{want}`"))),
        }
    }

    fn number(&mut self) -> Result<u64, LangError> {
        let end = self.s.find(|c: char| !c.is_ascii_digit()).unwrap_or(self.s.len());
        if end == 0 {
            return Err(corrupt("expected a number"));
        }
        let (digits, rest) = self.s.split_at(end);
        self.s = rest;
        digits.parse().map_err(|_| corrupt("number out of range"))
    }

    fn signed(&mut self) -> Result<i64, LangError> {
        let negative = self.peek() == Some('-');
        if negative {
            self.bump()?;
        }
        let n = self.number()?;
        if negative {
            // `-n` for 0 ≤ n ≤ 2⁶³ — covers i64::MIN exactly.
            i64::try_from(n)
                .map(|v| -v)
                .or(if n == 1 << 63 { Ok(i64::MIN) } else { Err(()) })
                .map_err(|()| corrupt("integer out of range"))
        } else {
            i64::try_from(n).map_err(|_| corrupt("integer out of range"))
        }
    }

    fn side(&mut self) -> Result<Option<(ClassSet, Tuple)>, LangError> {
        if self.peek() == Some('*') {
            self.bump()?;
            return Ok(None);
        }
        self.expect('[')?;
        let mut cs = ClassSet::empty();
        while self.peek() != Some(']') {
            if !cs.is_empty() {
                self.expect(' ')?;
            }
            let c = self.number()?;
            let c = usize::try_from(c)
                .ok()
                .filter(|&i| i < migratory_model::bitset::MAX_DENSE)
                .ok_or_else(|| corrupt("class index out of range"))?;
            cs = cs.union(ClassSet::singleton(migratory_model::ClassId(c as u32)));
        }
        self.expect(']')?;
        if cs.is_empty() {
            return Err(corrupt("occurring delta side has no classes"));
        }
        self.expect('{')?;
        let mut pairs: Vec<(migratory_model::AttrId, Value)> = Vec::new();
        while self.peek() != Some('}') {
            if !pairs.is_empty() {
                self.expect(' ')?;
            }
            let a = self.number()?;
            let a = u32::try_from(a).map_err(|_| corrupt("attribute index out of range"))?;
            self.expect('=')?;
            let v = match self.bump()? {
                'i' => Value::Int(self.signed()?),
                'f' => {
                    let t = self.number()?;
                    Value::Fresh(u32::try_from(t).map_err(|_| corrupt("fresh tag out of range"))?)
                }
                's' => {
                    self.expect('"')?;
                    let mut buf = String::new();
                    loop {
                        match self.bump()? {
                            '"' => break,
                            '\\' => match self.bump()? {
                                '"' => buf.push('"'),
                                '\\' => buf.push('\\'),
                                'n' => buf.push('\n'),
                                c => return Err(corrupt(format!("unknown escape `\\{c}`"))),
                            },
                            c => buf.push(c),
                        }
                    }
                    Value::Str(buf.as_str().into())
                }
                t => return Err(corrupt(format!("unknown value tag `{t}`"))),
            };
            if pairs.last().is_some_and(|(prev, _)| a <= prev.0) {
                return Err(corrupt("tuple attributes out of order"));
            }
            pairs.push((migratory_model::AttrId(a), v));
        }
        self.expect('}')?;
        Ok(Some((cs, Tuple::from_pairs(pairs))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Assignment, AtomicUpdate, Transaction};
    use crate::interp::apply_transaction_delta;
    use migratory_model::schema::university_schema;
    use migratory_model::{Atom, Condition, Instance};

    /// A delta with creation, migration, rename, deletion and an
    /// interesting value mix.
    fn sample_delta() -> Delta {
        let s = university_schema();
        let person = s.class_id("PERSON").unwrap();
        let student = s.class_id("STUDENT").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        let major = s.attr_id("Major").unwrap();
        let fe = s.attr_id("FirstEnroll").unwrap();
        let mut db = Instance::empty();
        for (k, n) in [("1", "Ann \"A\"\n"), ("2", "Bob\\"), ("3", "Caz")] {
            db.create(
                migratory_model::ClassSet::singleton(person),
                std::collections::BTreeMap::from([
                    (ssn, Value::str(k)),
                    (name, Value::str(n)),
                    // Overwritten below to a legal tuple via modify… the
                    // point is only to exercise value variants.
                ]),
            );
        }
        let t = Transaction::sl(
            "mixed",
            &[],
            vec![
                AtomicUpdate::Specialize {
                    from: person,
                    to: student,
                    select: Condition::from_atoms([Atom::eq_const(ssn, "1")]),
                    set: Condition::from_atoms([
                        Atom::eq_const(major, "CS"),
                        Atom::eq_const(fe, 1990),
                    ]),
                },
                AtomicUpdate::Delete {
                    class: person,
                    gamma: Condition::from_atoms([Atom::eq_const(ssn, "2")]),
                },
                AtomicUpdate::Create {
                    class: person,
                    gamma: Condition::from_atoms([
                        Atom::eq_const(ssn, "4"),
                        Atom::eq_const(name, "Dee"),
                    ]),
                },
                AtomicUpdate::Modify {
                    class: person,
                    select: Condition::from_atoms([Atom::eq_const(ssn, "3")]),
                    set: Condition::from_atoms([Atom::eq_const(name, "Caz")]),
                },
            ],
        );
        apply_transaction_delta(&s, &mut db, &t, &Assignment::empty()).unwrap()
    }

    #[test]
    fn binary_round_trip_is_canonical() {
        let d = sample_delta();
        let mut bytes = Vec::new();
        encode_delta(&mut bytes, &d);
        let mut r = ByteReader::new(&bytes);
        let back = decode_delta(&mut r).unwrap();
        assert!(r.is_exhausted(), "self-delimiting");
        assert_eq!(back, d);
        let mut again = Vec::new();
        encode_delta(&mut again, &back);
        assert_eq!(again, bytes, "canonical bytes");
    }

    #[test]
    fn text_round_trip_with_escapes() {
        let d = sample_delta();
        let text = delta_to_text(&d);
        assert!(text.starts_with("delta "));
        assert!(text.contains("=> *"), "deletion renders as *");
        assert!(text.contains("\\\""), "quotes escaped");
        let back = delta_from_text(&text).unwrap();
        assert_eq!(back, d);
        assert_eq!(delta_to_text(&back), text);
    }

    #[test]
    fn binary_decode_rejects_corruption() {
        let d = sample_delta();
        let mut bytes = Vec::new();
        encode_delta(&mut bytes, &d);
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(decode_delta(&mut r).is_err(), "prefix of {cut} bytes decoded");
        }
        // Unknown flag bits are rejected.
        let mut bad = Vec::new();
        encode_u64(&mut bad, 1);
        encode_u64(&mut bad, 1);
        encode_u64(&mut bad, 1);
        encode_u64(&mut bad, 1); // oid
        bad.push(0x40); // bogus flags
        assert!(decode_delta(&mut ByteReader::new(&bad)).is_err());
    }

    #[test]
    fn text_decode_rejects_malformed_lines() {
        for bad in [
            "",
            "delta 1 -> 0",
            "delta x -> 1",
            "delta 1 -> 2\no1 * => * maybe",
            "delta 1 -> 2\no1 [0]{0=z3} => * changed",
            "delta 1 -> 2\no2 * => [0]{} changed\no1 * => [0]{} changed",
            "delta 1 -> 2\no1 []{} => * changed",
            "delta 1 -> 2\no1 [0]{0=s\"oops} => * changed",
        ] {
            assert!(delta_from_text(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn invoke_payload_round_trips() {
        let args = vec![
            Value::Int(-17),
            Value::str("a \"quoted\" name\nwith newline"),
            Value::Fresh(9),
            Value::Int(i64::MIN),
        ];
        let mut bytes = Vec::new();
        encode_invoke(&mut bytes, "Promote", &args);
        let mut r = ByteReader::new(&bytes);
        let (name, back) = decode_invoke(&mut r).unwrap();
        assert!(r.is_exhausted(), "self-delimiting");
        assert_eq!(name, "Promote");
        assert_eq!(back, args);
    }

    #[test]
    fn invoke_payload_rejects_corruption() {
        let mut bytes = Vec::new();
        encode_invoke(&mut bytes, "Mk", &[Value::Int(1), Value::str("x")]);
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(decode_invoke(&mut r).is_err(), "prefix of {cut} bytes decoded");
        }
        // An empty transaction name is structurally invalid.
        let mut empty = Vec::new();
        encode_invoke(&mut empty, "", &[]);
        assert!(decode_invoke(&mut ByteReader::new(&empty)).is_err());
        // A count far beyond the remaining input is refused, not allocated.
        let mut inflated = Vec::new();
        encode_str(&mut inflated, "Mk");
        encode_u64(&mut inflated, u64::MAX);
        assert!(decode_invoke(&mut ByteReader::new(&inflated)).is_err());
    }

    #[test]
    fn identity_delta_encodes_small() {
        let s = university_schema();
        let mut db = Instance::empty();
        let person = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let t = Transaction::sl(
            "miss",
            &[],
            vec![AtomicUpdate::Delete {
                class: person,
                gamma: Condition::from_atoms([Atom::eq_const(ssn, "nope")]),
            }],
        );
        let d = apply_transaction_delta(&s, &mut db, &t, &Assignment::empty()).unwrap();
        assert!(d.is_identity());
        let mut bytes = Vec::new();
        encode_delta(&mut bytes, &d);
        assert!(bytes.len() <= 4, "identity deltas are a few header bytes");
        assert_eq!(decode_delta(&mut ByteReader::new(&bytes)).unwrap(), d);
    }
}

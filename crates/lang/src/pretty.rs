//! Pretty-printing of transactions back to the surface syntax of
//! [`crate::parser`] (round-trips).

use crate::ast::{AtomicUpdate, GuardedUpdate, Literal, Transaction, TransactionSchema};
use migratory_model::{CmpOp, Condition, Schema, Term, Value};
use std::fmt::Write as _;

fn term_to_text(t: &Term, params: &[String]) -> String {
    match t {
        Term::Const(Value::Int(i)) => i.to_string(),
        Term::Const(Value::Str(s)) => {
            format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
        }
        Term::Const(Value::Fresh(k)) => format!("\"⊥{k}\""),
        Term::Var(x) => params.get(x.0 as usize).cloned().unwrap_or_else(|| format!("x{}", x.0)),
    }
}

/// Render a condition as `{ A = t, B != u }`.
#[must_use]
pub fn condition_to_text(schema: &Schema, c: &Condition, params: &[String]) -> String {
    if c.is_empty() {
        return "{}".to_owned();
    }
    let parts: Vec<String> = c
        .atoms()
        .map(|a| {
            format!(
                "{} {} {}",
                schema.attr_name(a.attr),
                match a.op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                },
                term_to_text(&a.term, params)
            )
        })
        .collect();
    format!("{{ {} }}", parts.join(", "))
}

/// Render an atomic update.
#[must_use]
pub fn update_to_text(schema: &Schema, u: &AtomicUpdate, params: &[String]) -> String {
    match u {
        AtomicUpdate::Create { class, gamma } => format!(
            "create({}, {})",
            schema.class_name(*class),
            condition_to_text(schema, gamma, params)
        ),
        AtomicUpdate::Delete { class, gamma } => format!(
            "delete({}, {})",
            schema.class_name(*class),
            condition_to_text(schema, gamma, params)
        ),
        AtomicUpdate::Modify { class, select, set } => format!(
            "modify({}, {}, {})",
            schema.class_name(*class),
            condition_to_text(schema, select, params),
            condition_to_text(schema, set, params)
        ),
        AtomicUpdate::Generalize { class, gamma } => format!(
            "generalize({}, {})",
            schema.class_name(*class),
            condition_to_text(schema, gamma, params)
        ),
        AtomicUpdate::Specialize { from, to, select, set } => format!(
            "specialize({}, {}, {}, {})",
            schema.class_name(*from),
            schema.class_name(*to),
            condition_to_text(schema, select, params),
            condition_to_text(schema, set, params)
        ),
    }
}

fn literal_to_text(schema: &Schema, l: &Literal, params: &[String]) -> String {
    let inner = if l.gamma.is_empty() {
        "()".to_owned()
    } else {
        let body = condition_to_text(schema, &l.gamma, params);
        // Strip the braces for literal syntax `P(A = x)`.
        format!("({})", body.trim_start_matches("{ ").trim_end_matches(" }"))
    };
    format!("{}{}{}", if l.positive { "" } else { "!" }, schema.class_name(l.class), inner)
}

/// Render a step, guards included.
#[must_use]
pub fn step_to_text(schema: &Schema, s: &GuardedUpdate, params: &[String]) -> String {
    let mut out = String::new();
    if !s.guards.is_empty() {
        let gs: Vec<String> = s.guards.iter().map(|g| literal_to_text(schema, g, params)).collect();
        let _ = write!(out, "when {} -> ", gs.join(", "));
    }
    out.push_str(&update_to_text(schema, &s.update, params));
    out.push(';');
    out
}

/// Render a full transaction declaration.
#[must_use]
pub fn transaction_to_text(schema: &Schema, t: &Transaction) -> String {
    let mut out = format!("transaction {}({}) {{\n", t.name, t.params.join(", "));
    for s in &t.steps {
        let _ = writeln!(out, "  {}", step_to_text(schema, s, &t.params));
    }
    out.push('}');
    out
}

/// Render a whole transaction schema.
#[must_use]
pub fn schema_to_text(schema: &Schema, ts: &TransactionSchema) -> String {
    ts.transactions()
        .iter()
        .map(|t| transaction_to_text(schema, t))
        .collect::<Vec<_>>()
        .join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_transactions;
    use migratory_model::schema::university_schema;

    #[test]
    fn round_trip_example_3_4() {
        let s = university_schema();
        let src = r#"
            transaction T1(n, s, t, m) {
              create(PERSON, { SSN = s, Name = n });
              specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
            }
            transaction T3(s) {
              generalize(EMPLOYEE, { SSN = s });
            }
        "#;
        let ts = parse_transactions(&s, src).unwrap();
        let text = schema_to_text(&s, &ts);
        let ts2 = parse_transactions(&s, &text).unwrap();
        assert_eq!(ts, ts2, "pretty → parse is the identity");
    }

    #[test]
    fn round_trip_guards_and_literals() {
        let s = university_schema();
        let src = r#"
            transaction G(x) {
              when PERSON(SSN = x, Name != "bob"), !EMPLOYEE() ->
                modify(PERSON, { SSN = x }, { Name = "seen" });
              delete(PERSON, {});
            }
        "#;
        let ts = parse_transactions(&s, src).unwrap();
        let text = schema_to_text(&s, &ts);
        let ts2 = parse_transactions(&s, &text).unwrap();
        assert_eq!(ts, ts2);
        assert!(text.contains("!EMPLOYEE()"));
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = university_schema();
        let src = r#"
            transaction T() {
              modify(PERSON, {}, { Name = "a\"b\\c" });
            }
        "#;
        let ts = parse_transactions(&s, src).unwrap();
        let text = schema_to_text(&s, &ts);
        let ts2 = parse_transactions(&s, &text).unwrap();
        assert_eq!(ts, ts2);
    }
}

//! Text syntax for transactions, mirroring the paper's notation.
//!
//! ```text
//! // Example 3.4 of the paper
//! transaction T1(n, s, t, m) {
//!   create(PERSON, { SSN = s, Name = n });
//!   specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
//! }
//!
//! transaction T2(s, p, x, d) {
//!   when STUDENT(SSN = s), !GRAD_ASSIST(SSN = s) ->
//!     specialize(STUDENT, GRAD_ASSIST, { SSN = s },
//!                { PcAppoint = p, Salary = x, WorksIn = d });
//! }
//! ```
//!
//! Bare identifiers in term position are transaction parameters; string
//! constants must be quoted and integers are written literally — this
//! makes accidental free variables a parse error rather than a silent
//! constant.

use crate::ast::{AtomicUpdate, GuardedUpdate, Literal, Transaction, TransactionSchema};
use crate::error::LangError;
use crate::validate::validate_transaction;
use migratory_model::text::{lex, Cursor, TokenKind};
use migratory_model::{Atom, CmpOp, Condition, Schema, Term, Value, VarId};

/// Parse a sequence of `transaction` declarations and validate each
/// against `schema`.
pub fn parse_transactions(schema: &Schema, src: &str) -> Result<TransactionSchema, LangError> {
    let mut cur = Cursor::new(lex(src)?);
    let mut out = TransactionSchema::new();
    while !cur.at_eof() {
        let t = parse_transaction(schema, &mut cur)?;
        validate_transaction(schema, &t)?;
        out.add(t)?;
    }
    Ok(out)
}

/// Parse a single transaction declaration.
pub fn parse_transaction(schema: &Schema, cur: &mut Cursor) -> Result<Transaction, LangError> {
    if !cur.eat_kw("transaction") {
        return Err(cur.error_here("expected `transaction`").into());
    }
    let name = cur.expect_ident()?;
    cur.expect(&TokenKind::LParen)?;
    let mut params: Vec<String> = Vec::new();
    if !cur.eat(&TokenKind::RParen) {
        params.push(cur.expect_ident()?);
        while cur.eat(&TokenKind::Comma) {
            params.push(cur.expect_ident()?);
        }
        cur.expect(&TokenKind::RParen)?;
    }
    cur.expect(&TokenKind::LBrace)?;
    let mut steps = Vec::new();
    while !cur.eat(&TokenKind::RBrace) {
        if cur.at_eof() {
            return Err(cur.error_here("expected `}` to close transaction").into());
        }
        steps.push(parse_step(schema, cur, &params)?);
    }
    Ok(Transaction { name, params, steps })
}

fn parse_step(
    schema: &Schema,
    cur: &mut Cursor,
    params: &[String],
) -> Result<GuardedUpdate, LangError> {
    let mut guards = Vec::new();
    if cur.eat_kw("when") {
        guards.push(parse_literal(schema, cur, params)?);
        while cur.eat(&TokenKind::Comma) {
            guards.push(parse_literal(schema, cur, params)?);
        }
        cur.expect(&TokenKind::Arrow)?;
    }
    let update = parse_update(schema, cur, params)?;
    cur.expect(&TokenKind::Semi)?;
    Ok(GuardedUpdate { guards, update })
}

fn parse_literal(
    schema: &Schema,
    cur: &mut Cursor,
    params: &[String],
) -> Result<Literal, LangError> {
    let positive = !cur.eat(&TokenKind::Bang);
    let class_name = cur.expect_ident()?;
    let class = schema.require_class(&class_name)?;
    cur.expect(&TokenKind::LParen)?;
    let mut gamma = Condition::empty();
    if !cur.eat(&TokenKind::RParen) {
        gamma = parse_atoms_until(schema, cur, params, &TokenKind::RParen)?;
    }
    Ok(Literal { positive, class, gamma })
}

fn parse_update(
    schema: &Schema,
    cur: &mut Cursor,
    params: &[String],
) -> Result<AtomicUpdate, LangError> {
    let op = cur.expect_ident()?;
    cur.expect(&TokenKind::LParen)?;
    let class_name = cur.expect_ident()?;
    let class = schema.require_class(&class_name)?;
    let upd = match op.as_str() {
        "create" | "delete" | "generalize" => {
            cur.expect(&TokenKind::Comma)?;
            let gamma = parse_condition(schema, cur, params)?;
            match op.as_str() {
                "create" => AtomicUpdate::Create { class, gamma },
                "delete" => AtomicUpdate::Delete { class, gamma },
                _ => AtomicUpdate::Generalize { class, gamma },
            }
        }
        "modify" => {
            cur.expect(&TokenKind::Comma)?;
            let select = parse_condition(schema, cur, params)?;
            cur.expect(&TokenKind::Comma)?;
            let set = parse_condition(schema, cur, params)?;
            AtomicUpdate::Modify { class, select, set }
        }
        "specialize" => {
            cur.expect(&TokenKind::Comma)?;
            let to_name = cur.expect_ident()?;
            let to = schema.require_class(&to_name)?;
            cur.expect(&TokenKind::Comma)?;
            let select = parse_condition(schema, cur, params)?;
            cur.expect(&TokenKind::Comma)?;
            let set = parse_condition(schema, cur, params)?;
            AtomicUpdate::Specialize { from: class, to, select, set }
        }
        other => {
            return Err(cur
                .error_here(format!(
                    "unknown operator `{other}` (expected create, delete, modify, generalize or specialize)"
                ))
                .into())
        }
    };
    cur.expect(&TokenKind::RParen)?;
    Ok(upd)
}

fn parse_condition(
    schema: &Schema,
    cur: &mut Cursor,
    params: &[String],
) -> Result<Condition, LangError> {
    cur.expect(&TokenKind::LBrace)?;
    if cur.eat(&TokenKind::RBrace) {
        return Ok(Condition::empty());
    }
    parse_atoms_until(schema, cur, params, &TokenKind::RBrace)
}

fn parse_atoms_until(
    schema: &Schema,
    cur: &mut Cursor,
    params: &[String],
    close: &TokenKind,
) -> Result<Condition, LangError> {
    let mut cond = Condition::empty();
    loop {
        cond.push(parse_atom(schema, cur, params)?);
        if cur.eat(&TokenKind::Comma) {
            continue;
        }
        cur.expect(close)?;
        return Ok(cond);
    }
}

fn parse_atom(schema: &Schema, cur: &mut Cursor, params: &[String]) -> Result<Atom, LangError> {
    let attr_name = cur.expect_ident()?;
    let attr = schema.require_attr(&attr_name)?;
    let op = if cur.eat(&TokenKind::Eq) {
        CmpOp::Eq
    } else if cur.eat(&TokenKind::Ne) {
        CmpOp::Ne
    } else {
        return Err(cur.error_here("expected `=` or `!=`").into());
    };
    let term = parse_term(cur, params)?;
    Ok(Atom { attr, op, term })
}

fn parse_term(cur: &mut Cursor, params: &[String]) -> Result<Term, LangError> {
    let tok = cur.peek().clone();
    match tok.kind {
        TokenKind::Int(i) => {
            cur.next();
            Ok(Term::Const(Value::int(i)))
        }
        TokenKind::Str(ref s) => {
            let v = Value::str(s);
            cur.next();
            Ok(Term::Const(v))
        }
        TokenKind::Ident(ref name) => {
            let r = params
                .iter()
                .position(|p| p == name)
                .map(|i| Term::Var(VarId(i as u32)))
                .ok_or_else(|| LangError::UnknownVariable(name.clone()));
            cur.next();
            r
        }
        other => {
            Err(cur.error_here(format!("expected constant or parameter, found {other}")).into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Language;
    use migratory_model::schema::university_schema;

    const EXAMPLE_3_4: &str = r#"
        // Example 3.4 of the paper.
        transaction T1(n, s, t, m) {
          create(PERSON, { SSN = s, Name = n });
          specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
        }
        transaction T2(s, p, x, d) {
          specialize(STUDENT, GRAD_ASSIST, { SSN = s },
                     { PcAppoint = p, Salary = x, WorksIn = d });
        }
        transaction T3(s) {
          generalize(EMPLOYEE, { SSN = s });
        }
        transaction T4(s) {
          delete(PERSON, { SSN = s });
        }
    "#;

    #[test]
    fn parses_example_3_4() {
        let s = university_schema();
        let ts = parse_transactions(&s, EXAMPLE_3_4).unwrap();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.language(), Language::Sl);
        let t1 = ts.get("T1").unwrap();
        assert_eq!(t1.params, vec!["n", "s", "t", "m"]);
        assert_eq!(t1.steps.len(), 2);
        assert_eq!(t1.vars_used().len(), 4);
    }

    #[test]
    fn parses_guards() {
        let s = university_schema();
        let src = r#"
            transaction Guarded(x) {
              when PERSON(SSN = x), !EMPLOYEE(SSN = x) ->
                specialize(PERSON, EMPLOYEE, { SSN = x },
                           { Salary = 0, WorksIn = "tbd" });
            }
        "#;
        let ts = parse_transactions(&s, src).unwrap();
        assert_eq!(ts.language(), Language::Csl);
        let t = ts.get("Guarded").unwrap();
        assert_eq!(t.steps[0].guards.len(), 2);
        assert!(t.steps[0].guards[0].positive);
        assert!(!t.steps[0].guards[1].positive);
    }

    #[test]
    fn positive_only_is_csl_plus() {
        let s = university_schema();
        let src = r#"
            transaction G() {
              when PERSON() -> delete(PERSON, {});
            }
        "#;
        let ts = parse_transactions(&s, src).unwrap();
        assert_eq!(ts.language(), Language::CslPlus);
    }

    #[test]
    fn free_identifier_is_an_error() {
        let s = university_schema();
        let src = r"
            transaction T() {
              delete(PERSON, { SSN = s });
            }
        ";
        let e = parse_transactions(&s, src).unwrap_err();
        assert_eq!(e, LangError::UnknownVariable("s".into()));
    }

    #[test]
    fn unknown_names_rejected() {
        let s = university_schema();
        assert!(matches!(
            parse_transactions(&s, "transaction T() { delete(NOPE, {}); }"),
            Err(LangError::Model(migratory_model::ModelError::UnknownClass(_)))
        ));
        assert!(matches!(
            parse_transactions(&s, r#"transaction T() { delete(PERSON, { Huh = "x" }); }"#),
            Err(LangError::Model(migratory_model::ModelError::UnknownAttr(_)))
        ));
    }

    #[test]
    fn validation_runs_after_parse() {
        let s = university_schema();
        // create on non-root STUDENT: parses but fails validation.
        let e = parse_transactions(
            &s,
            r#"transaction T() { create(STUDENT, { SSN = "1", Name = "x" }); }"#,
        )
        .unwrap_err();
        assert!(matches!(e, LangError::NotIsaRoot(_) | LangError::ConditionAttrs { .. }));
    }

    #[test]
    fn integer_and_negative_constants() {
        let s = university_schema();
        let src = r#"
            transaction T(x) {
              modify(EMPLOYEE, { Salary = -1 }, { Salary = 35000 });
            }
        "#;
        let ts = parse_transactions(&s, src).unwrap();
        let t = ts.get("T").unwrap();
        let consts = t.constants();
        assert!(consts.contains(&Value::int(-1)) && consts.contains(&Value::int(35000)));
    }

    #[test]
    fn duplicate_transaction_names_rejected() {
        let s = university_schema();
        let src = "transaction A() { } transaction A() { }";
        assert!(matches!(parse_transactions(&s, src), Err(LangError::DuplicateTransaction(_))));
    }
}

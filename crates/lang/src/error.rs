//! Error types for the language layer.

use migratory_model::{ClassId, ModelError};

/// Errors raised while validating, parsing or executing transactions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LangError {
    /// An error from the data-model layer (including parse errors).
    Model(ModelError),
    /// `create`/`delete` applied to a class that is not an isa-root
    /// (Definition 2.3, items 1(a)/2(a)).
    NotIsaRoot(ClassId),
    /// `generalize` applied to an isa-root (Definition 2.3, item 4(a)) —
    /// root membership can only be removed by `delete`.
    IsIsaRoot(ClassId),
    /// `specialize(P, Q, …)` where `Q isa P` is not a direct edge
    /// (Definition 2.3, item 5(a)).
    NotDirectSubclass {
        /// The would-be subclass `Q`.
        sub: ClassId,
        /// The would-be superclass `P`.
        sup: ClassId,
    },
    /// A condition references or defines the wrong attribute set for its
    /// operator (Definition 2.3's `Att`/`Att_def` side conditions).
    ConditionAttrs {
        /// Which operator and which condition slot is at fault.
        context: &'static str,
    },
    /// A condition references a variable not declared by the transaction.
    UnboundVariable {
        /// Dense index of the variable.
        var: u32,
    },
    /// A transaction was applied with the wrong number of arguments.
    ArityMismatch {
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A variable name was referenced in a transaction body but not
    /// declared in its parameter list (parser-level; bare identifiers in
    /// conditions must be parameters — constants are quoted).
    UnknownVariable(String),
    /// A transaction name was declared twice in one schema.
    DuplicateTransaction(String),
    /// A transaction name was not found.
    UnknownTransaction(String),
    /// `mig` was asked to migrate between role sets of different
    /// weakly-connected components.
    MigAcrossComponents,
    /// `mig` lacked a value for an attribute acquired by the target role
    /// set.
    MigMissingValue(String),
}

impl From<ModelError> for LangError {
    fn from(e: ModelError) -> Self {
        LangError::Model(e)
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::Model(e) => write!(f, "{e}"),
            LangError::NotIsaRoot(c) => {
                write!(f, "class {c} is not an isa-root (required by create/delete)")
            }
            LangError::IsIsaRoot(c) => {
                write!(f, "class {c} is an isa-root (generalize requires a non-root)")
            }
            LangError::NotDirectSubclass { sub, sup } => {
                write!(f, "{sub} is not a direct subclass of {sup}")
            }
            LangError::ConditionAttrs { context } => {
                write!(f, "ill-formed condition attributes in {context}")
            }
            LangError::UnboundVariable { var } => write!(f, "unbound variable x{var}"),
            LangError::ArityMismatch { expected, got } => {
                write!(f, "transaction expects {expected} argument(s), got {got}")
            }
            LangError::UnknownVariable(n) => {
                write!(f, "identifier `{n}` is not a parameter (string constants must be quoted)")
            }
            LangError::DuplicateTransaction(n) => write!(f, "duplicate transaction `{n}`"),
            LangError::UnknownTransaction(n) => write!(f, "unknown transaction `{n}`"),
            LangError::MigAcrossComponents => {
                write!(f, "mig cannot move objects between weakly-connected components")
            }
            LangError::MigMissingValue(a) => {
                write!(f, "mig has no value for acquired attribute `{a}`")
            }
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Model(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LangError::NotIsaRoot(ClassId(3));
        assert!(e.to_string().contains("isa-root"));
        let e: LangError = ModelError::UnknownClass("X".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains('X'));
    }
}

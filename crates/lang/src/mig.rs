//! The derived migration operation of Proposition 3.1.
//!
//! `specialize` and `generalize` suffice to migrate objects between any
//! two non-empty role sets ω₁, ω₂ of a weakly-connected component. The
//! paper calls the generated sequence `mig(ω, ω′, Γ, Γ′)` and uses it as a
//! macro throughout the constructions of Lemma 3.4 and Theorem 4.3
//! (`migto`). The sequence produced here:
//!
//! 1. *generalizes away* every child of the component root that belongs to
//!    ω₁ (or every child, for [`migto_ops`]), shrinking the selected
//!    objects' role set to `{root}`;
//! 2. *specializes downward* through ω₂ in topological order, re-adding
//!    one class per step (each step's direct-subclass requirement is met
//!    because ancestors are processed first), assigning the newly acquired
//!    attributes from the supplied value map.
//!
//! The selection condition must use root attributes only (`Att(Γ) ⊆
//! A(root)`), so it keeps selecting the same objects across the whole
//! sequence — intermediate steps never clear root attributes.

use crate::ast::AtomicUpdate;
use crate::error::LangError;
use migratory_model::{AttrId, Condition, RoleSet, Schema, Term};
use std::collections::BTreeMap;

/// Build the `mig(ω₁, ω₂, Γ, values)` sequence. `values` must provide a
/// term for every attribute acquired anywhere inside ω₂ beyond the root's
/// own attributes (extra entries are ignored).
///
/// With `omega1 = None` the sequence generalizes *all* root children, so
/// it migrates objects regardless of their current role set — the paper's
/// `migto` (used in Theorem 4.3's construction).
pub fn mig_ops(
    schema: &Schema,
    omega1: Option<RoleSet>,
    omega2: RoleSet,
    select: &Condition,
    values: &BTreeMap<AttrId, Term>,
) -> Result<Vec<AtomicUpdate>, LangError> {
    let comp = omega2.component(schema).ok_or(LangError::MigAcrossComponents)?;
    if let Some(o1) = omega1 {
        if !o1.is_empty() && o1.component(schema) != Some(comp) {
            return Err(LangError::MigAcrossComponents);
        }
    }
    let root = schema.component_root(comp);
    let root_attrs: migratory_model::AttrSet = schema.attrs_of(root).iter().copied().collect();
    if !select.referenced_attrs().is_subset(root_attrs) {
        return Err(LangError::ConditionAttrs { context: "mig(ω₁, ω₂, Γ, ·): Γ" });
    }

    let mut ops = Vec::new();

    // Phase 1: strip down to {root}.
    for &child in schema.children(root) {
        let strip = match omega1 {
            Some(o1) => o1.contains(child),
            None => true,
        };
        if strip {
            ops.push(AtomicUpdate::Generalize { class: child, gamma: select.clone() });
        }
    }

    // Phase 2: rebuild ω₂ downward in topological order.
    for &q in schema.topo_order() {
        if q == root || !omega2.contains(q) {
            continue;
        }
        // Any parent works; all parents of q are in ω₂ (up-closedness) and
        // have been added already (topological order).
        let p = *schema.parents(q).first().expect("non-root class has a parent");
        let acquired = schema.attr_star(q).difference(schema.attr_star(p));
        let mut set = Condition::empty();
        for a in acquired.iter() {
            let term = values
                .get(&a)
                .ok_or_else(|| LangError::MigMissingValue(schema.attr_name(a).to_owned()))?;
            set.push(migratory_model::Atom {
                attr: a,
                op: migratory_model::CmpOp::Eq,
                term: term.clone(),
            });
        }
        ops.push(AtomicUpdate::Specialize { from: p, to: q, select: select.clone(), set });
    }
    Ok(ops)
}

/// The paper's `migto(ω)`: migrate **all** objects of ω's component
/// (whatever their current role set) to ω, selecting with the empty
/// condition.
pub fn migto_ops(
    schema: &Schema,
    omega: RoleSet,
    values: &BTreeMap<AttrId, Term>,
) -> Result<Vec<AtomicUpdate>, LangError> {
    mig_ops(schema, None, omega, &Condition::empty(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{con, Assignment, Transaction};
    use crate::interp::run;
    use crate::validate::validate_transaction;
    use migratory_model::roleset::all_nonempty_role_sets;
    use migratory_model::schema::university_schema;
    use migratory_model::{Atom, ClassSet, Instance, Oid, Value};

    fn default_values(schema: &Schema) -> BTreeMap<AttrId, Term> {
        schema.all_attrs().map(|a| (a, con(0))).collect()
    }

    fn person_db(schema: &Schema) -> Instance {
        let mut db = Instance::empty();
        let p = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let name = schema.attr_id("Name").unwrap();
        db.create(
            ClassSet::singleton(p),
            BTreeMap::from([(ssn, Value::str("1")), (name, Value::str("A"))]),
        );
        db
    }

    /// Proposition 3.1, exhaustively on the university schema: for every
    /// ordered pair (ω₁, ω₂) of non-empty role sets there is a
    /// {specialize, generalize}-transaction moving an ω₁ object to ω₂.
    #[test]
    fn proposition_3_1_university() {
        let s = university_schema();
        let values = default_values(&s);
        let all = all_nonempty_role_sets(&s, 0);
        for &w1 in &all {
            for &w2 in &all {
                // Prepare an object with role set ω₁ (via mig from [PERSON]).
                let mut db = person_db(&s);
                let to_w1 = Transaction::sl(
                    "to_w1",
                    &[],
                    mig_ops(&s, None, w1, &Condition::empty(), &values).unwrap(),
                );
                validate_transaction(&s, &to_w1).unwrap();
                db = run(&s, &db, &to_w1, &Assignment::empty()).unwrap();
                assert_eq!(db.role_set(Oid(1)), w1.classes(), "setup failed for {:?}", w1);

                // Now migrate ω₁ → ω₂.
                let t = Transaction::sl(
                    "mig",
                    &[],
                    mig_ops(&s, Some(w1), w2, &Condition::empty(), &values).unwrap(),
                );
                validate_transaction(&s, &t).unwrap();
                let out = run(&s, &db, &t, &Assignment::empty()).unwrap();
                assert_eq!(
                    out.role_set(Oid(1)),
                    w2.classes(),
                    "mig {} → {} failed",
                    w1.display(&s),
                    w2.display(&s)
                );
                out.check_invariants(&s).unwrap();
            }
        }
    }

    #[test]
    fn mig_only_touches_selected_objects() {
        let s = university_schema();
        let values = default_values(&s);
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        let p = s.class_id("PERSON").unwrap();
        let mut db = person_db(&s);
        db.create(
            ClassSet::singleton(p),
            BTreeMap::from([(ssn, Value::str("2")), (name, Value::str("B"))]),
        );
        let w2 = RoleSet::closure_of_named(&s, &["STUDENT"]).unwrap();
        let select = Condition::from_atoms([Atom::eq_const(ssn, "1")]);
        let t = Transaction::sl("m", &[], mig_ops(&s, None, w2, &select, &values).unwrap());
        let out = run(&s, &db, &t, &Assignment::empty()).unwrap();
        assert!(out.role_set(Oid(1)).contains(s.class_id("STUDENT").unwrap()));
        assert_eq!(out.role_set(Oid(2)), ClassSet::singleton(p), "o2 untouched");
    }

    #[test]
    fn migto_moves_everything() {
        let s = university_schema();
        let values = default_values(&s);
        let mut db = person_db(&s);
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        let p = s.class_id("PERSON").unwrap();
        db.create(
            ClassSet::singleton(p),
            BTreeMap::from([(ssn, Value::str("2")), (name, Value::str("B"))]),
        );
        let w = RoleSet::closure_of_named(&s, &["GRAD_ASSIST"]).unwrap();
        let t = Transaction::sl("m", &[], migto_ops(&s, w, &values).unwrap());
        let out = run(&s, &db, &t, &Assignment::empty()).unwrap();
        for o in [Oid(1), Oid(2)] {
            assert_eq!(out.role_set(o), w.classes());
        }
        out.check_invariants(&s).unwrap();
    }

    #[test]
    fn missing_value_reported() {
        let s = university_schema();
        let w = RoleSet::closure_of_named(&s, &["STUDENT"]).unwrap();
        let e = mig_ops(&s, None, w, &Condition::empty(), &BTreeMap::new()).unwrap_err();
        assert!(matches!(e, LangError::MigMissingValue(_)));
    }

    #[test]
    fn non_root_selection_rejected() {
        let s = university_schema();
        let w = RoleSet::closure_of_named(&s, &["STUDENT"]).unwrap();
        let major = s.attr_id("Major").unwrap();
        let sel = Condition::from_atoms([Atom::eq_const(major, "CS")]);
        let e = mig_ops(&s, None, w, &sel, &default_values(&s)).unwrap_err();
        assert!(matches!(e, LangError::ConditionAttrs { .. }));
    }

    #[test]
    fn mig_to_root_only_generalizes() {
        let s = university_schema();
        let values = default_values(&s);
        let root = RoleSet::closure_of_named(&s, &["PERSON"]).unwrap();
        let ops = mig_ops(&s, None, root, &Condition::empty(), &values).unwrap();
        assert!(ops.iter().all(|o| matches!(o, AtomicUpdate::Generalize { .. })));
        assert_eq!(ops.len(), 2, "one generalize per root child");
    }
}

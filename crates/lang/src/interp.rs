//! Operational semantics of SL / CSL⁺ / CSL (Definitions 2.5 and 4.3/4.4).
//!
//! Each ground atomic update denotes a total mapping `inst(D) → inst(D)`;
//! an update whose condition is unsatisfiable (the paper's `E`) is the
//! identity. Guarded updates first evaluate their literals against the
//! current database and fire only if all hold. Transactions compose
//! left-to-right: `⟦θ₁; …; θₙ⟧ = ⟦θₙ⟧ ∘ … ∘ ⟦θ₁⟧`.
//!
//! All entry points funnel through one recorder-generic core:
//! [`apply_transaction`] (and the [`run`] / [`run_trace`] wrappers) use a
//! zero-cost no-op recorder, while [`apply_transaction_delta`]
//! additionally captures before-images of exactly the touched objects and
//! returns them as a [`Delta`] — the O(touched) change-set that powers
//! incremental enforcement in `migratory-core`.

use crate::ast::{Assignment, AtomicUpdate, GuardedUpdate, Literal, Transaction};
use crate::error::LangError;
use migratory_model::{ClassSet, Instance, Oid, Schema, Tuple};
use std::collections::BTreeMap;

/// Observer of object mutations during an application. The interpreter
/// reports every object it is *about* to mutate (with its pre-state still
/// readable from `db`) and every object it mints; [`DeltaRecorder`]
/// captures before-images from these callbacks, while the plain entry
/// points use the zero-cost [`NoRecord`].
trait Recorder {
    /// `o` is about to be mutated; `db` still holds its pre-state.
    fn touch(&mut self, db: &Instance, o: Oid);
    /// `o` was just minted by `create` (no pre-state exists).
    fn minted(&mut self, o: Oid);
}

/// The no-op recorder behind [`apply_atomic`] and friends.
struct NoRecord;

impl Recorder for NoRecord {
    #[inline]
    fn touch(&mut self, _db: &Instance, _o: Oid) {}
    #[inline]
    fn minted(&mut self, _o: Oid) {}
}

/// Captures the before-image of each object on its first touch.
#[derive(Default)]
struct DeltaRecorder {
    touched: BTreeMap<Oid, Option<(ClassSet, Tuple)>>,
}

impl Recorder for DeltaRecorder {
    fn touch(&mut self, db: &Instance, o: Oid) {
        self.touched
            .entry(o)
            .or_insert_with(|| db.occurs(o).then(|| (db.role_set(o), db.tuple_of(o))));
    }
    fn minted(&mut self, o: Oid) {
        self.touched.entry(o).or_insert(None);
    }
}

/// One object's before/after images across a transaction application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ObjectDelta {
    /// The touched object.
    pub oid: Oid,
    /// Pre-state (class set and attribute tuple), `None` if the object did
    /// not occur before the application.
    pub before: Option<(ClassSet, Tuple)>,
    /// Post-state (class set and attribute tuple), `None` if the object
    /// does not occur after the application. Carrying the full after-image
    /// (not just the class set) makes the delta **exact in both
    /// directions**: [`Delta::undo`] restores the pre-state from
    /// `before`, [`Delta::redo`] replays the post-state from `after` —
    /// which is what lets the write-ahead log re-apply committed
    /// change-sets without re-running transactions.
    pub after: Option<(ClassSet, Tuple)>,
    /// Whether the attribute tuple differs between pre- and post-state
    /// (creation and deletion count as changes).
    pub tuple_changed: bool,
}

impl ObjectDelta {
    /// Pre-state class set (∅ when the object did not occur).
    #[must_use]
    pub fn before_classes(&self) -> ClassSet {
        self.before.as_ref().map(|(cs, _)| *cs).unwrap_or_default()
    }

    /// Post-state class set, `None` if the object does not occur after
    /// the application.
    #[must_use]
    pub fn after_classes(&self) -> Option<ClassSet> {
        self.after.as_ref().map(|(cs, _)| *cs)
    }

    /// The object was minted by this application (and still occurs).
    #[must_use]
    pub fn created(&self) -> bool {
        self.before.is_none() && self.after.is_some()
    }

    /// The object was removed by this application.
    #[must_use]
    pub fn deleted(&self) -> bool {
        self.before.is_some() && self.after.is_none()
    }

    /// The object's observable state is identical before and after (it was
    /// selected by some update that ended up writing back its own values).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        !self.tuple_changed && self.before.as_ref().map(|(cs, _)| *cs) == self.after_classes()
    }
}

/// The exact change-set of one transaction application: which objects were
/// created / updated / deleted (with before-images), plus enough state to
/// [`undo`](Delta::undo) the application in place.
///
/// Work and memory are **O(touched)** — objects the transaction never
/// selected are not represented. This is what makes incremental consumers
/// (the runtime [`Monitor`](../../migratory_core/enforce/struct.Monitor.html))
/// independent of database size.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Delta {
    pub(crate) old_next: u64,
    pub(crate) new_next: u64,
    pub(crate) objects: Vec<ObjectDelta>,
}

impl Delta {
    /// Per-object changes, ordered by object identifier.
    #[must_use]
    pub fn objects(&self) -> &[ObjectDelta] {
        &self.objects
    }

    /// Whether the application was the identity on the database —
    /// including the next-object counter, so a transaction that mints and
    /// immediately deletes an object is **not** an identity (Definition
    /// 4.6's "null application" test, computed in O(touched)).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.old_next == self.new_next && self.objects.iter().all(ObjectDelta::is_noop)
    }

    /// Roll the application back in place. `db` must be exactly the
    /// post-state this delta was produced on.
    pub fn undo(&self, db: &mut Instance) {
        for od in &self.objects {
            match &od.before {
                Some((cs, t)) => db.put_object(od.oid, *cs, t.clone()),
                None => db.delete_object(od.oid),
            }
        }
        db.set_next(self.old_next);
    }

    /// Re-apply the change-set in place. `db` must be exactly the
    /// pre-state this delta was produced on; afterwards it is
    /// bit-identical to the post-state. The inverse of [`Delta::undo`],
    /// and the recovery primitive behind the enforcement WAL: a logged
    /// delta replays without re-running its transaction.
    pub fn redo(&self, db: &mut Instance) {
        for od in &self.objects {
            match &od.after {
                Some((cs, t)) => db.put_object(od.oid, *cs, t.clone()),
                None => db.delete_object(od.oid),
            }
        }
        db.set_next(self.new_next);
    }
}

/// Apply a **ground** atomic update in place (Definition 2.5).
///
/// The update must have been validated against `schema`
/// (see [`crate::validate::validate_update`]); validation guarantees the
/// class/attribute side conditions this function relies on.
pub fn apply_atomic(schema: &Schema, db: &mut Instance, u: &AtomicUpdate) {
    apply_atomic_rec(schema, db, u, &mut NoRecord);
}

fn apply_atomic_rec<R: Recorder>(
    schema: &Schema,
    db: &mut Instance,
    u: &AtomicUpdate,
    rec: &mut R,
) {
    debug_assert!(u.is_ground(), "semantics is defined on ground updates");
    match u {
        AtomicUpdate::Create { class, gamma } => {
            if !gamma.is_satisfiable() {
                return;
            }
            // o'(P) = o(P) ∪ {oᵢ}; values from Γ's equalities. Creation is
            // unconditional: a fresh identifier is always minted.
            let values = gamma.value_map();
            let oid = db.create(migratory_model::ClassSet::singleton(*class), values);
            rec.minted(oid);
        }
        AtomicUpdate::Delete { class, gamma } => {
            if !gamma.is_satisfiable() {
                return;
            }
            // Removing from every Q isa* P removes the object entirely: P
            // is the unique root of its weakly-connected component, so
            // every class of a member object is a descendant of P.
            for o in db.sat(*class, gamma) {
                rec.touch(db, o);
                db.delete_object(o);
            }
        }
        AtomicUpdate::Modify { class, select, set } => {
            if !select.is_satisfiable() || !set.is_satisfiable() {
                return;
            }
            let values = set.value_map();
            for o in db.sat(*class, select) {
                rec.touch(db, o);
                db.set_values(o, values.clone());
            }
        }
        AtomicUpdate::Generalize { class, gamma } => {
            if !gamma.is_satisfiable() {
                return;
            }
            let remove = schema.down_closure_of(*class);
            // Attributes owned by P or a descendant are cleared
            // (a′ = a − {((o,A),·) | ∃Q isa* P, A ∈ A(Q)}).
            let clear: Vec<_> =
                remove.iter().flat_map(|c| schema.attrs_of(c).iter().copied()).collect();
            for o in db.sat(*class, gamma) {
                rec.touch(db, o);
                db.remove_classes(o, remove, clear.iter().copied());
            }
        }
        AtomicUpdate::Specialize { from, to, select, set } => {
            if !select.is_satisfiable() || !set.is_satisfiable() {
                return;
            }
            let add = schema.up_closure_of(*to);
            let values = set.value_map();
            // Objects already in Q are left untouched (Sat(Γ,d,P) − o(Q)).
            let targets: Vec<Oid> = db
                .sat(*from, select)
                .into_iter()
                .filter(|&o| !db.role_set(o).contains(*to))
                .collect();
            for o in targets {
                rec.touch(db, o);
                db.add_classes(o, add, values.clone());
            }
        }
    }
}

/// Whether the database satisfies a **ground** literal (Section 4):
/// `d ⊨ P(Γ)` iff some object of `o(P)` satisfies Γ; `d ⊨ ¬P(Γ)` iff none
/// does. Witness search is planned from Γ by [`Instance::sat_exists`] —
/// an indexed point lookup when Γ has an equality atom, the class index
/// otherwise — never a heap scan.
#[must_use]
pub fn satisfies_literal(db: &Instance, l: &Literal) -> bool {
    db.sat_exists(l.class, &l.gamma) == l.positive
}

/// Apply a **ground** guarded update (Definition 4.3): the update fires
/// only when every literal holds.
pub fn apply_guarded(schema: &Schema, db: &mut Instance, g: &GuardedUpdate) {
    apply_guarded_rec(schema, db, g, &mut NoRecord);
}

fn apply_guarded_rec<R: Recorder>(
    schema: &Schema,
    db: &mut Instance,
    g: &GuardedUpdate,
    rec: &mut R,
) {
    if g.guards.iter().all(|l| satisfies_literal(db, l)) {
        apply_atomic_rec(schema, db, &g.update, rec);
    }
}

/// Apply a **ground** transaction in place.
pub fn apply_ground_transaction(schema: &Schema, db: &mut Instance, t: &Transaction) {
    for step in &t.steps {
        apply_guarded(schema, db, step);
    }
}

fn apply_transaction_rec<R: Recorder>(
    schema: &Schema,
    db: &mut Instance,
    t: &Transaction,
    args: &Assignment,
    rec: &mut R,
) -> Result<(), LangError> {
    if args.len() != t.params.len() {
        return Err(LangError::ArityMismatch { expected: t.params.len(), got: args.len() });
    }
    let assign = |x: migratory_model::VarId| args.get(x).clone();
    for step in &t.steps {
        let ground = step.substitute(&assign);
        apply_guarded_rec(schema, db, &ground, rec);
    }
    Ok(())
}

/// Apply a parameterized transaction under an assignment, in place
/// (`⟦T(x₁,…,xₘ)⟧(α) = ⟦T[α]⟧`).
pub fn apply_transaction(
    schema: &Schema,
    db: &mut Instance,
    t: &Transaction,
    args: &Assignment,
) -> Result<(), LangError> {
    apply_transaction_rec(schema, db, t, args, &mut NoRecord)
}

/// Apply a parameterized transaction in place **and** return the exact
/// change-set: before/after images for every touched object plus the undo
/// needed to roll the application back. Errors (arity) leave `db`
/// untouched.
///
/// This is the incremental entry point behind the runtime monitor: cost
/// and allocation are O(touched objects), never O(|db|), and consumers
/// decide *after* seeing the delta whether to keep or
/// [`undo`](Delta::undo) the application — no defensive whole-database
/// clone.
pub fn apply_transaction_delta(
    schema: &Schema,
    db: &mut Instance,
    t: &Transaction,
    args: &Assignment,
) -> Result<Delta, LangError> {
    let old_next = db.next_oid().0;
    let mut rec = DeltaRecorder::default();
    apply_transaction_rec(schema, db, t, args, &mut rec)?;
    let objects = rec
        .touched
        .into_iter()
        .map(|(oid, before)| {
            let after = db.occurs(oid).then(|| (db.role_set(oid), db.tuple_of(oid)));
            let tuple_changed = match (&before, &after) {
                (Some((_, t_before)), Some((_, t_after))) => t_after != t_before,
                (None, Some(_)) | (Some(_), None) => true,
                // Minted and deleted within one application: never
                // observable (patterns read post-states only).
                (None, None) => false,
            };
            ObjectDelta { oid, before, after, tuple_changed }
        })
        .collect();
    Ok(Delta { old_next, new_next: db.next_oid().0, objects })
}

/// Chunked evaluation below this many steps stays on the calling thread:
/// spawning scoped workers costs more than evaluating a few conditions.
const BULK_PARALLEL_THRESHOLD: usize = 4096;

/// Bulk fast path of [`apply_transaction_delta`] for **create-only SL
/// transactions** — every step unguarded and an [`AtomicUpdate::Create`].
/// Returns `None` when the transaction has any other shape (callers fall
/// back to the general interpreter); otherwise the result is the exact
/// [`Delta`] (and database post-state) the general path would produce.
///
/// Where the general path pays O(log |db|) per created object (individual
/// heap and index inserts), this one evaluates every step's condition in
/// parallel chunks on [`std::thread::scope`] workers — substitution,
/// satisfiability and value extraction are pure, read-only work — then
/// mints the identifiers in step order with one bulk sorted-merge into
/// the heap and indexes ([`Instance::bulk_create`]). Creation never reads
/// the database, so chunk evaluation commutes with step order and the
/// serial mint keeps identifier assignment identical to the sequential
/// semantics.
pub fn apply_bulk_creates(
    schema: &Schema,
    db: &mut Instance,
    t: &Transaction,
    args: &Assignment,
) -> Option<Result<Delta, LangError>> {
    let _ = schema; // validated upstream, same as the general path
    let all_creates = !t.steps.is_empty()
        && t.steps
            .iter()
            .all(|g| g.guards.is_empty() && matches!(g.update, AtomicUpdate::Create { .. }));
    if !all_creates {
        return None;
    }
    if args.len() != t.params.len() {
        return Some(Err(LangError::ArityMismatch { expected: t.params.len(), got: args.len() }));
    }
    let assign = |x: migratory_model::VarId| args.get(x).clone();
    // Per step: the created class and tuple, or `None` for an
    // unsatisfiable condition (the paper's `E` — the identity, which
    // mints nothing). One pass over the sorted atoms instead of
    // `substitute` + `is_satisfiable` + `value_map` (three tree
    // allocations per row): atoms sort by (attr, op, term) with Eq < Ne,
    // so per attribute every equality precedes every inequality —
    // first-wins equality with a conflict check, then inequalities
    // against the agreed value, is the same decision in one sweep.
    let eval = |g: &GuardedUpdate| -> Option<(ClassSet, Tuple)> {
        let AtomicUpdate::Create { class, gamma } = &g.update else { unreachable!("all creates") };
        let mut vals: Vec<(migratory_model::AttrId, migratory_model::Value)> =
            Vec::with_capacity(gamma.len());
        for a in gamma.atoms() {
            let v = match &a.term {
                migratory_model::Term::Const(v) => v.clone(),
                migratory_model::Term::Var(x) => assign(*x),
            };
            match a.op {
                migratory_model::CmpOp::Eq => match vals.iter().find(|(at, _)| *at == a.attr) {
                    Some((_, agreed)) => {
                        if *agreed != v {
                            return None; // conflicting equalities: E
                        }
                    }
                    None => vals.push((a.attr, v)),
                },
                migratory_model::CmpOp::Ne => {
                    if vals.iter().any(|(at, agreed)| *at == a.attr && *agreed == v) {
                        return None; // inequality excludes the agreed value: E
                    }
                }
            }
        }
        Some((ClassSet::singleton(*class), Tuple::from_pairs(vals)))
    };
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let rows: Vec<(ClassSet, Tuple)> = if workers > 1 && t.steps.len() >= BULK_PARALLEL_THRESHOLD {
        let chunk = t.steps.len().div_ceil(workers);
        let mut parts: Vec<Vec<Option<(ClassSet, Tuple)>>> =
            vec![Vec::new(); t.steps.len().div_ceil(chunk)];
        std::thread::scope(|scope| {
            for (slot, steps) in parts.iter_mut().zip(t.steps.chunks(chunk)) {
                let eval = &eval;
                scope.spawn(move || *slot = steps.iter().map(eval).collect());
            }
        });
        parts.into_iter().flatten().flatten().collect()
    } else {
        t.steps.iter().filter_map(eval).collect()
    };
    let old_next = db.next_oid().0;
    let first = db.bulk_create(&rows);
    let objects = rows
        .into_iter()
        .enumerate()
        .map(|(i, (cs, tuple))| ObjectDelta {
            oid: Oid(first.0 + i as u64),
            before: None,
            after: Some((cs, tuple)),
            tuple_changed: true,
        })
        .collect();
    Some(Ok(Delta { old_next, new_next: db.next_oid().0, objects }))
}

/// Functional form of [`apply_transaction`].
pub fn run(
    schema: &Schema,
    db: &Instance,
    t: &Transaction,
    args: &Assignment,
) -> Result<Instance, LangError> {
    let mut out = db.clone();
    apply_transaction(schema, &mut out, t, args)?;
    Ok(out)
}

/// Run a sequence of `(transaction, assignment)` applications from a
/// starting database, returning every intermediate database
/// `d₀, d₁, …, dₙ` (useful for extracting migration patterns).
pub fn run_trace<'a>(
    schema: &Schema,
    start: &Instance,
    steps: impl IntoIterator<Item = (&'a Transaction, &'a Assignment)>,
) -> Result<Vec<Instance>, LangError> {
    let mut out = vec![start.clone()];
    for (t, args) in steps {
        let next = run(schema, out.last().expect("non-empty"), t, args)?;
        out.push(next);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::con;
    use migratory_model::schema::university_schema;
    use migratory_model::{Atom, ClassSet, Condition, Instance, Value};

    fn cond(atoms: Vec<Atom>) -> Condition {
        Condition::from_atoms(atoms)
    }

    struct Uni {
        s: Schema,
        person: migratory_model::ClassId,
        employee: migratory_model::ClassId,
        student: migratory_model::ClassId,
        ga: migratory_model::ClassId,
        ssn: migratory_model::AttrId,
        name: migratory_model::AttrId,
        salary: migratory_model::AttrId,
        works_in: migratory_model::AttrId,
        major: migratory_model::AttrId,
        fe: migratory_model::AttrId,
        pc: migratory_model::AttrId,
    }

    use migratory_model::Schema;

    fn uni() -> Uni {
        let s = university_schema();
        Uni {
            person: s.class_id("PERSON").unwrap(),
            employee: s.class_id("EMPLOYEE").unwrap(),
            student: s.class_id("STUDENT").unwrap(),
            ga: s.class_id("GRAD_ASSIST").unwrap(),
            ssn: s.attr_id("SSN").unwrap(),
            name: s.attr_id("Name").unwrap(),
            salary: s.attr_id("Salary").unwrap(),
            works_in: s.attr_id("WorksIn").unwrap(),
            major: s.attr_id("Major").unwrap(),
            fe: s.attr_id("FirstEnroll").unwrap(),
            pc: s.attr_id("PcAppoint").unwrap(),
            s,
        }
    }

    fn create_person(u: &Uni, db: &mut Instance, ssn: &str, name: &str) {
        apply_atomic(
            &u.s,
            db,
            &AtomicUpdate::Create {
                class: u.person,
                gamma: cond(vec![Atom::eq_const(u.ssn, ssn), Atom::eq_const(u.name, name)]),
            },
        );
    }

    #[test]
    fn create_always_mints_fresh_objects() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "Ann");
        create_person(&u, &mut db, "1", "Ann"); // identical tuple — still a new object
        assert_eq!(db.num_objects(), 2);
        db.check_invariants(&u.s).unwrap();
    }

    #[test]
    fn create_with_unsatisfiable_condition_is_identity() {
        let u = uni();
        let mut db = Instance::empty();
        let before = db.clone();
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Create {
                class: u.person,
                gamma: cond(vec![
                    Atom::eq_const(u.ssn, "1"),
                    Atom::ne_const(u.ssn, "1"),
                    Atom::eq_const(u.name, "x"),
                ]),
            },
        );
        assert_eq!(db, before, "Γ = E ⇒ identity (next counter untouched)");
    }

    #[test]
    fn specialize_and_generalize_migrate() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "7", "Kim");
        // PERSON → STUDENT.
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Specialize {
                from: u.person,
                to: u.student,
                select: cond(vec![Atom::eq_const(u.ssn, "7")]),
                set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
            },
        );
        let o = migratory_model::Oid(1);
        assert!(db.role_set(o).contains(u.student));
        assert_eq!(db.value(o, u.major), Some(&Value::str("CS")));
        db.check_invariants(&u.s).unwrap();

        // STUDENT → GRAD_ASSIST (acquires EMPLOYEE too, by up-closure).
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Specialize {
                from: u.student,
                to: u.ga,
                select: Condition::empty(),
                set: cond(vec![
                    Atom::eq_const(u.pc, 50),
                    Atom::eq_const(u.salary, 1000),
                    Atom::eq_const(u.works_in, "CS-dept"),
                ]),
            },
        );
        assert!(db.role_set(o).contains(u.ga) && db.role_set(o).contains(u.employee));
        db.check_invariants(&u.s).unwrap();

        // generalize(EMPLOYEE) removes EMPLOYEE and GRAD_ASSIST, keeps STUDENT.
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Generalize { class: u.employee, gamma: Condition::empty() },
        );
        let rs = db.role_set(o);
        assert!(rs.contains(u.student) && rs.contains(u.person));
        assert!(!rs.contains(u.employee) && !rs.contains(u.ga));
        assert!(db.value(o, u.salary).is_none(), "Salary cleared");
        assert!(db.value(o, u.pc).is_none(), "PcAppoint cleared");
        assert_eq!(db.value(o, u.major), Some(&Value::str("CS")), "Major kept");
        db.check_invariants(&u.s).unwrap();
    }

    #[test]
    fn specialize_leaves_existing_members_untouched() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "7", "Kim");
        let spec = |maj: &str| AtomicUpdate::Specialize {
            from: u.person,
            to: u.student,
            select: Condition::empty(),
            set: cond(vec![Atom::eq_const(u.major, maj), Atom::eq_const(u.fe, 1990)]),
        };
        apply_atomic(&u.s, &mut db, &spec("CS"));
        apply_atomic(&u.s, &mut db, &spec("Math"));
        // Second specialize must NOT overwrite Major (object already in Q).
        assert_eq!(db.value(migratory_model::Oid(1), u.major), Some(&Value::str("CS")));
    }

    #[test]
    fn delete_removes_everywhere() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "7", "Kim");
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Specialize {
                from: u.person,
                to: u.student,
                select: Condition::empty(),
                set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
            },
        );
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Delete {
                class: u.person,
                gamma: cond(vec![Atom::eq_const(u.ssn, "7")]),
            },
        );
        assert!(db.is_empty());
        assert_eq!(db.next_oid(), migratory_model::Oid(2), "identifiers never reused");
    }

    #[test]
    fn modify_overwrites_selected() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "Ann");
        create_person(&u, &mut db, "2", "Bob");
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Modify {
                class: u.person,
                select: cond(vec![Atom::eq_const(u.ssn, "2")]),
                set: cond(vec![Atom::eq_const(u.name, "Robert")]),
            },
        );
        assert_eq!(db.value(migratory_model::Oid(1), u.name), Some(&Value::str("Ann")));
        assert_eq!(db.value(migratory_model::Oid(2), u.name), Some(&Value::str("Robert")));
    }

    #[test]
    fn guards_gate_updates() {
        let u = uni();
        let mut db = Instance::empty();
        // ¬PERSON(SSN=1) → create(PERSON, {SSN=1, Name=x}): enforces key.
        let t = Transaction::new(
            "key_create",
            &["x"],
            vec![GuardedUpdate::when(
                vec![Literal::neg(u.person, cond(vec![Atom::eq_const(u.ssn, "1")]))],
                AtomicUpdate::Create {
                    class: u.person,
                    gamma: cond(vec![
                        Atom::eq_const(u.ssn, "1"),
                        Atom {
                            attr: u.name,
                            op: migratory_model::CmpOp::Eq,
                            term: crate::ast::var(0),
                        },
                    ]),
                },
            )],
        );
        let args = Assignment::new(vec![Value::str("Ann")]);
        apply_transaction(&u.s, &mut db, &t, &args).unwrap();
        assert_eq!(db.num_objects(), 1);
        // Firing again: guard fails, no duplicate.
        apply_transaction(&u.s, &mut db, &t, &args).unwrap();
        assert_eq!(db.num_objects(), 1, "negative guard enforced the key");
    }

    #[test]
    fn positive_guard_requires_witness() {
        let u = uni();
        let mut db = Instance::empty();
        let step = GuardedUpdate::when(
            vec![Literal::pos(u.person, Condition::empty())],
            AtomicUpdate::Delete { class: u.person, gamma: Condition::empty() },
        );
        // Empty database: guard unsatisfied, no-op.
        apply_guarded(&u.s, &mut db, &step);
        assert!(db.is_empty());
        create_person(&u, &mut db, "1", "A");
        apply_guarded(&u.s, &mut db, &step);
        assert!(db.is_empty(), "guard now holds; delete fired");
    }

    #[test]
    fn empty_transaction_is_identity() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "A");
        let before = db.clone();
        apply_transaction(&u.s, &mut db, &Transaction::empty("id"), &Assignment::empty()).unwrap();
        assert_eq!(db, before);
    }

    #[test]
    fn run_trace_returns_all_intermediates() {
        let u = uni();
        let t = Transaction::sl(
            "mk",
            &[],
            vec![AtomicUpdate::Create {
                class: u.person,
                gamma: cond(vec![Atom::eq_const(u.ssn, "1"), Atom::eq_const(u.name, "A")]),
            }],
        );
        let a = Assignment::empty();
        let trace = run_trace(&u.s, &Instance::empty(), [(&t, &a), (&t, &a)]).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].num_objects(), 0);
        assert_eq!(trace[1].num_objects(), 1);
        assert_eq!(trace[2].num_objects(), 2);
    }

    #[test]
    fn restriction_lemma_3_5_smoke() {
        // ⟦T⟧(d|I) = (⟦T⟧(d))|I for SL transactions.
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "A");
        create_person(&u, &mut db, "2", "B");
        let t = Transaction::sl(
            "spec",
            &[],
            vec![AtomicUpdate::Specialize {
                from: u.person,
                to: u.student,
                select: cond(vec![Atom::eq_const(u.ssn, "1")]),
                set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
            }],
        );
        let i = [migratory_model::Oid(1)];
        let lhs = run(&u.s, &db.restrict(&i), &t, &Assignment::empty()).unwrap();
        let rhs = run(&u.s, &db, &t, &Assignment::empty()).unwrap().restrict(&i);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn delta_reports_exact_change_set_and_undoes() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "Ann");
        create_person(&u, &mut db, "2", "Bob");
        let before = db.clone();

        // One transaction: specialize Ann to STUDENT, rename Bob, create Caz.
        let t = Transaction::sl(
            "mixed",
            &[],
            vec![
                AtomicUpdate::Specialize {
                    from: u.person,
                    to: u.student,
                    select: cond(vec![Atom::eq_const(u.ssn, "1")]),
                    set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
                },
                AtomicUpdate::Modify {
                    class: u.person,
                    select: cond(vec![Atom::eq_const(u.ssn, "2")]),
                    set: cond(vec![Atom::eq_const(u.name, "Robert")]),
                },
                AtomicUpdate::Create {
                    class: u.person,
                    gamma: cond(vec![Atom::eq_const(u.ssn, "3"), Atom::eq_const(u.name, "Caz")]),
                },
            ],
        );
        let delta = apply_transaction_delta(&u.s, &mut db, &t, &Assignment::empty()).unwrap();
        assert!(!delta.is_identity());
        assert_eq!(delta.objects().len(), 3, "exactly the touched objects");
        let [ann, bob, caz] = delta.objects() else { panic!("three objects") };
        assert_eq!(ann.oid, Oid(1));
        assert!(!ann.created() && !ann.deleted());
        assert_ne!(Some(ann.before_classes()), ann.after_classes(), "role set grew");
        assert!(ann.tuple_changed);
        assert_eq!(bob.oid, Oid(2));
        assert_eq!(Some(bob.before_classes()), bob.after_classes());
        assert!(bob.tuple_changed, "renamed");
        assert_eq!(caz.oid, Oid(3));
        assert!(caz.created() && caz.tuple_changed);

        // Undo restores the pre-state bit for bit (counter included),
        // redo replays the post-state — the delta is exact both ways.
        let after = db.clone();
        delta.undo(&mut db);
        assert_eq!(db, before);
        delta.redo(&mut db);
        assert_eq!(db, after);
        db.check_invariants(&u.s).unwrap();
    }

    #[test]
    fn delta_identity_for_noop_and_unsatisfied_selects() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "Ann");
        let before = db.clone();
        // Write back the value already stored: touched but a no-op.
        let t = Transaction::sl(
            "noop",
            &[],
            vec![AtomicUpdate::Modify {
                class: u.person,
                select: cond(vec![Atom::eq_const(u.ssn, "1")]),
                set: cond(vec![Atom::eq_const(u.name, "Ann")]),
            }],
        );
        let delta = apply_transaction_delta(&u.s, &mut db, &t, &Assignment::empty()).unwrap();
        assert_eq!(delta.objects().len(), 1);
        assert!(delta.objects()[0].is_noop());
        assert!(delta.is_identity());
        assert_eq!(db, before, "no-op application left the database intact");

        // A select matching nothing touches nothing at all.
        let t2 = Transaction::sl(
            "miss",
            &[],
            vec![AtomicUpdate::Delete {
                class: u.person,
                gamma: cond(vec![Atom::eq_const(u.ssn, "zzz")]),
            }],
        );
        let d2 = apply_transaction_delta(&u.s, &mut db, &t2, &Assignment::empty()).unwrap();
        assert!(d2.objects().is_empty() && d2.is_identity());
    }

    #[test]
    fn delta_create_then_delete_is_not_identity() {
        // The minted identifier advances the next-object counter even when
        // the object is gone by the end: matches Instance equality (and
        // Definition 4.6's null-application test).
        let u = uni();
        let mut db = Instance::empty();
        let before = db.clone();
        let t = Transaction::sl(
            "blip",
            &[],
            vec![
                AtomicUpdate::Create {
                    class: u.person,
                    gamma: cond(vec![Atom::eq_const(u.ssn, "1"), Atom::eq_const(u.name, "A")]),
                },
                AtomicUpdate::Delete {
                    class: u.person,
                    gamma: cond(vec![Atom::eq_const(u.ssn, "1")]),
                },
            ],
        );
        let delta = apply_transaction_delta(&u.s, &mut db, &t, &Assignment::empty()).unwrap();
        assert!(!delta.is_identity(), "next-object counter moved");
        assert_eq!(delta.objects().len(), 1);
        let od = &delta.objects()[0];
        assert!(od.is_noop(), "never observable before or after");
        assert!(!od.created() && !od.deleted());
        delta.undo(&mut db);
        assert_eq!(db, before);
    }

    #[test]
    fn delta_deletion_restores_full_tuple() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "7", "Kim");
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Specialize {
                from: u.person,
                to: u.student,
                select: Condition::empty(),
                set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
            },
        );
        let before = db.clone();
        let t = Transaction::sl(
            "rm",
            &[],
            vec![AtomicUpdate::Delete { class: u.person, gamma: Condition::empty() }],
        );
        let delta = apply_transaction_delta(&u.s, &mut db, &t, &Assignment::empty()).unwrap();
        assert!(db.is_empty());
        assert!(delta.objects()[0].deleted());
        delta.undo(&mut db);
        assert_eq!(db, before, "role set and attributes restored");
        db.check_invariants(&u.s).unwrap();
    }

    #[test]
    fn delta_agrees_with_run() {
        // apply_transaction_delta(db) == run(db) on the result, for a
        // guarded CSL transaction exercising every operator.
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "Ann");
        create_person(&u, &mut db, "2", "Bob");
        let t = Transaction::new(
            "guarded",
            &[],
            vec![
                GuardedUpdate::when(
                    vec![Literal::pos(u.person, cond(vec![Atom::eq_const(u.ssn, "1")]))],
                    AtomicUpdate::Specialize {
                        from: u.person,
                        to: u.student,
                        select: cond(vec![Atom::eq_const(u.ssn, "1")]),
                        set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
                    },
                ),
                GuardedUpdate::when(
                    vec![Literal::neg(u.person, cond(vec![Atom::eq_const(u.ssn, "9")]))],
                    AtomicUpdate::Delete {
                        class: u.person,
                        gamma: cond(vec![Atom::eq_const(u.ssn, "2")]),
                    },
                ),
            ],
        );
        let expected = run(&u.s, &db, &t, &Assignment::empty()).unwrap();
        let delta = apply_transaction_delta(&u.s, &mut db, &t, &Assignment::empty()).unwrap();
        assert_eq!(db, expected);
        assert_eq!(delta.objects().len(), 2);
    }

    #[test]
    fn objects_created_into_root_only() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "A");
        let rs = db.role_set(migratory_model::Oid(1));
        assert_eq!(rs, ClassSet::singleton(u.person));
        let _ = con(1); // silence helper import in this test module
    }
}

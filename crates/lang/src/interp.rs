//! Operational semantics of SL / CSL⁺ / CSL (Definitions 2.5 and 4.3/4.4).
//!
//! Each ground atomic update denotes a total mapping `inst(D) → inst(D)`;
//! an update whose condition is unsatisfiable (the paper's `E`) is the
//! identity. Guarded updates first evaluate their literals against the
//! current database and fire only if all hold. Transactions compose
//! left-to-right: `⟦θ₁; …; θₙ⟧ = ⟦θₙ⟧ ∘ … ∘ ⟦θ₁⟧`.

use crate::ast::{Assignment, AtomicUpdate, GuardedUpdate, Literal, Transaction};
use crate::error::LangError;
use migratory_model::{Instance, Oid, Schema};

/// Apply a **ground** atomic update in place (Definition 2.5).
///
/// The update must have been validated against `schema`
/// (see [`crate::validate::validate_update`]); validation guarantees the
/// class/attribute side conditions this function relies on.
pub fn apply_atomic(schema: &Schema, db: &mut Instance, u: &AtomicUpdate) {
    debug_assert!(u.is_ground(), "semantics is defined on ground updates");
    match u {
        AtomicUpdate::Create { class, gamma } => {
            if !gamma.is_satisfiable() {
                return;
            }
            // o'(P) = o(P) ∪ {oᵢ}; values from Γ's equalities. Creation is
            // unconditional: a fresh identifier is always minted.
            let values = gamma.value_map();
            db.create(migratory_model::ClassSet::singleton(*class), values);
        }
        AtomicUpdate::Delete { class, gamma } => {
            if !gamma.is_satisfiable() {
                return;
            }
            // Removing from every Q isa* P removes the object entirely: P
            // is the unique root of its weakly-connected component, so
            // every class of a member object is a descendant of P.
            for o in db.sat(*class, gamma) {
                db.delete_object(o);
            }
        }
        AtomicUpdate::Modify { class, select, set } => {
            if !select.is_satisfiable() || !set.is_satisfiable() {
                return;
            }
            let values = set.value_map();
            for o in db.sat(*class, select) {
                db.set_values(o, values.clone());
            }
        }
        AtomicUpdate::Generalize { class, gamma } => {
            if !gamma.is_satisfiable() {
                return;
            }
            let remove = schema.down_closure_of(*class);
            // Attributes owned by P or a descendant are cleared
            // (a′ = a − {((o,A),·) | ∃Q isa* P, A ∈ A(Q)}).
            let clear: Vec<_> =
                remove.iter().flat_map(|c| schema.attrs_of(c).iter().copied()).collect();
            for o in db.sat(*class, gamma) {
                db.remove_classes(o, remove, clear.iter().copied());
            }
        }
        AtomicUpdate::Specialize { from, to, select, set } => {
            if !select.is_satisfiable() || !set.is_satisfiable() {
                return;
            }
            let add = schema.up_closure_of(*to);
            let values = set.value_map();
            // Objects already in Q are left untouched (Sat(Γ,d,P) − o(Q)).
            let targets: Vec<Oid> = db
                .sat(*from, select)
                .into_iter()
                .filter(|&o| !db.role_set(o).contains(*to))
                .collect();
            for o in targets {
                db.add_classes(o, add, values.clone());
            }
        }
    }
}

/// Whether the database satisfies a **ground** literal (Section 4):
/// `d ⊨ P(Γ)` iff some object of `o(P)` satisfies Γ; `d ⊨ ¬P(Γ)` iff none
/// does.
#[must_use]
pub fn satisfies_literal(db: &Instance, l: &Literal) -> bool {
    let witness = db
        .objects_in(l.class)
        .any(|o| l.gamma.satisfied_by(&db.tuple_of(o)));
    witness == l.positive
}

/// Apply a **ground** guarded update (Definition 4.3): the update fires
/// only when every literal holds.
pub fn apply_guarded(schema: &Schema, db: &mut Instance, g: &GuardedUpdate) {
    if g.guards.iter().all(|l| satisfies_literal(db, l)) {
        apply_atomic(schema, db, &g.update);
    }
}

/// Apply a **ground** transaction in place.
pub fn apply_ground_transaction(schema: &Schema, db: &mut Instance, t: &Transaction) {
    for step in &t.steps {
        apply_guarded(schema, db, step);
    }
}

/// Apply a parameterized transaction under an assignment, in place
/// (`⟦T(x₁,…,xₘ)⟧(α) = ⟦T[α]⟧`).
pub fn apply_transaction(
    schema: &Schema,
    db: &mut Instance,
    t: &Transaction,
    args: &Assignment,
) -> Result<(), LangError> {
    if args.len() != t.params.len() {
        return Err(LangError::ArityMismatch { expected: t.params.len(), got: args.len() });
    }
    let assign = |x: migratory_model::VarId| args.get(x).clone();
    for step in &t.steps {
        let ground = step.substitute(&assign);
        apply_guarded(schema, db, &ground);
    }
    Ok(())
}

/// Functional form of [`apply_transaction`].
pub fn run(
    schema: &Schema,
    db: &Instance,
    t: &Transaction,
    args: &Assignment,
) -> Result<Instance, LangError> {
    let mut out = db.clone();
    apply_transaction(schema, &mut out, t, args)?;
    Ok(out)
}

/// Run a sequence of `(transaction, assignment)` applications from a
/// starting database, returning every intermediate database
/// `d₀, d₁, …, dₙ` (useful for extracting migration patterns).
pub fn run_trace<'a>(
    schema: &Schema,
    start: &Instance,
    steps: impl IntoIterator<Item = (&'a Transaction, &'a Assignment)>,
) -> Result<Vec<Instance>, LangError> {
    let mut out = vec![start.clone()];
    for (t, args) in steps {
        let next = run(schema, out.last().expect("non-empty"), t, args)?;
        out.push(next);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::con;
    use migratory_model::schema::university_schema;
    use migratory_model::{Atom, ClassSet, Condition, Instance, Value};

    fn cond(atoms: Vec<Atom>) -> Condition {
        Condition::from_atoms(atoms)
    }

    struct Uni {
        s: Schema,
        person: migratory_model::ClassId,
        employee: migratory_model::ClassId,
        student: migratory_model::ClassId,
        ga: migratory_model::ClassId,
        ssn: migratory_model::AttrId,
        name: migratory_model::AttrId,
        salary: migratory_model::AttrId,
        works_in: migratory_model::AttrId,
        major: migratory_model::AttrId,
        fe: migratory_model::AttrId,
        pc: migratory_model::AttrId,
    }

    use migratory_model::Schema;

    fn uni() -> Uni {
        let s = university_schema();
        Uni {
            person: s.class_id("PERSON").unwrap(),
            employee: s.class_id("EMPLOYEE").unwrap(),
            student: s.class_id("STUDENT").unwrap(),
            ga: s.class_id("GRAD_ASSIST").unwrap(),
            ssn: s.attr_id("SSN").unwrap(),
            name: s.attr_id("Name").unwrap(),
            salary: s.attr_id("Salary").unwrap(),
            works_in: s.attr_id("WorksIn").unwrap(),
            major: s.attr_id("Major").unwrap(),
            fe: s.attr_id("FirstEnroll").unwrap(),
            pc: s.attr_id("PcAppoint").unwrap(),
            s,
        }
    }

    fn create_person(u: &Uni, db: &mut Instance, ssn: &str, name: &str) {
        apply_atomic(
            &u.s,
            db,
            &AtomicUpdate::Create {
                class: u.person,
                gamma: cond(vec![Atom::eq_const(u.ssn, ssn), Atom::eq_const(u.name, name)]),
            },
        );
    }

    #[test]
    fn create_always_mints_fresh_objects() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "Ann");
        create_person(&u, &mut db, "1", "Ann"); // identical tuple — still a new object
        assert_eq!(db.num_objects(), 2);
        db.check_invariants(&u.s).unwrap();
    }

    #[test]
    fn create_with_unsatisfiable_condition_is_identity() {
        let u = uni();
        let mut db = Instance::empty();
        let before = db.clone();
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Create {
                class: u.person,
                gamma: cond(vec![
                    Atom::eq_const(u.ssn, "1"),
                    Atom::ne_const(u.ssn, "1"),
                    Atom::eq_const(u.name, "x"),
                ]),
            },
        );
        assert_eq!(db, before, "Γ = E ⇒ identity (next counter untouched)");
    }

    #[test]
    fn specialize_and_generalize_migrate() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "7", "Kim");
        // PERSON → STUDENT.
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Specialize {
                from: u.person,
                to: u.student,
                select: cond(vec![Atom::eq_const(u.ssn, "7")]),
                set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
            },
        );
        let o = migratory_model::Oid(1);
        assert!(db.role_set(o).contains(u.student));
        assert_eq!(db.value(o, u.major), Some(&Value::str("CS")));
        db.check_invariants(&u.s).unwrap();

        // STUDENT → GRAD_ASSIST (acquires EMPLOYEE too, by up-closure).
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Specialize {
                from: u.student,
                to: u.ga,
                select: Condition::empty(),
                set: cond(vec![
                    Atom::eq_const(u.pc, 50),
                    Atom::eq_const(u.salary, 1000),
                    Atom::eq_const(u.works_in, "CS-dept"),
                ]),
            },
        );
        assert!(db.role_set(o).contains(u.ga) && db.role_set(o).contains(u.employee));
        db.check_invariants(&u.s).unwrap();

        // generalize(EMPLOYEE) removes EMPLOYEE and GRAD_ASSIST, keeps STUDENT.
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Generalize { class: u.employee, gamma: Condition::empty() },
        );
        let rs = db.role_set(o);
        assert!(rs.contains(u.student) && rs.contains(u.person));
        assert!(!rs.contains(u.employee) && !rs.contains(u.ga));
        assert!(db.value(o, u.salary).is_none(), "Salary cleared");
        assert!(db.value(o, u.pc).is_none(), "PcAppoint cleared");
        assert_eq!(db.value(o, u.major), Some(&Value::str("CS")), "Major kept");
        db.check_invariants(&u.s).unwrap();
    }

    #[test]
    fn specialize_leaves_existing_members_untouched() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "7", "Kim");
        let spec = |maj: &str| AtomicUpdate::Specialize {
            from: u.person,
            to: u.student,
            select: Condition::empty(),
            set: cond(vec![Atom::eq_const(u.major, maj), Atom::eq_const(u.fe, 1990)]),
        };
        apply_atomic(&u.s, &mut db, &spec("CS"));
        apply_atomic(&u.s, &mut db, &spec("Math"));
        // Second specialize must NOT overwrite Major (object already in Q).
        assert_eq!(db.value(migratory_model::Oid(1), u.major), Some(&Value::str("CS")));
    }

    #[test]
    fn delete_removes_everywhere() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "7", "Kim");
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Specialize {
                from: u.person,
                to: u.student,
                select: Condition::empty(),
                set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
            },
        );
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Delete { class: u.person, gamma: cond(vec![Atom::eq_const(u.ssn, "7")]) },
        );
        assert!(db.is_empty());
        assert_eq!(db.next_oid(), migratory_model::Oid(2), "identifiers never reused");
    }

    #[test]
    fn modify_overwrites_selected() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "Ann");
        create_person(&u, &mut db, "2", "Bob");
        apply_atomic(
            &u.s,
            &mut db,
            &AtomicUpdate::Modify {
                class: u.person,
                select: cond(vec![Atom::eq_const(u.ssn, "2")]),
                set: cond(vec![Atom::eq_const(u.name, "Robert")]),
            },
        );
        assert_eq!(db.value(migratory_model::Oid(1), u.name), Some(&Value::str("Ann")));
        assert_eq!(db.value(migratory_model::Oid(2), u.name), Some(&Value::str("Robert")));
    }

    #[test]
    fn guards_gate_updates() {
        let u = uni();
        let mut db = Instance::empty();
        // ¬PERSON(SSN=1) → create(PERSON, {SSN=1, Name=x}): enforces key.
        let t = Transaction::new(
            "key_create",
            &["x"],
            vec![GuardedUpdate::when(
                vec![Literal::neg(u.person, cond(vec![Atom::eq_const(u.ssn, "1")]))],
                AtomicUpdate::Create {
                    class: u.person,
                    gamma: cond(vec![
                        Atom::eq_const(u.ssn, "1"),
                        Atom {
                            attr: u.name,
                            op: migratory_model::CmpOp::Eq,
                            term: crate::ast::var(0),
                        },
                    ]),
                },
            )],
        );
        let args = Assignment::new(vec![Value::str("Ann")]);
        apply_transaction(&u.s, &mut db, &t, &args).unwrap();
        assert_eq!(db.num_objects(), 1);
        // Firing again: guard fails, no duplicate.
        apply_transaction(&u.s, &mut db, &t, &args).unwrap();
        assert_eq!(db.num_objects(), 1, "negative guard enforced the key");
    }

    #[test]
    fn positive_guard_requires_witness() {
        let u = uni();
        let mut db = Instance::empty();
        let step = GuardedUpdate::when(
            vec![Literal::pos(u.person, Condition::empty())],
            AtomicUpdate::Delete { class: u.person, gamma: Condition::empty() },
        );
        // Empty database: guard unsatisfied, no-op.
        apply_guarded(&u.s, &mut db, &step);
        assert!(db.is_empty());
        create_person(&u, &mut db, "1", "A");
        apply_guarded(&u.s, &mut db, &step);
        assert!(db.is_empty(), "guard now holds; delete fired");
    }

    #[test]
    fn empty_transaction_is_identity() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "A");
        let before = db.clone();
        apply_transaction(&u.s, &mut db, &Transaction::empty("id"), &Assignment::empty())
            .unwrap();
        assert_eq!(db, before);
    }

    #[test]
    fn run_trace_returns_all_intermediates() {
        let u = uni();
        let t = Transaction::sl(
            "mk",
            &[],
            vec![AtomicUpdate::Create {
                class: u.person,
                gamma: cond(vec![Atom::eq_const(u.ssn, "1"), Atom::eq_const(u.name, "A")]),
            }],
        );
        let a = Assignment::empty();
        let trace =
            run_trace(&u.s, &Instance::empty(), [(&t, &a), (&t, &a)]).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].num_objects(), 0);
        assert_eq!(trace[1].num_objects(), 1);
        assert_eq!(trace[2].num_objects(), 2);
    }

    #[test]
    fn restriction_lemma_3_5_smoke() {
        // ⟦T⟧(d|I) = (⟦T⟧(d))|I for SL transactions.
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "A");
        create_person(&u, &mut db, "2", "B");
        let t = Transaction::sl(
            "spec",
            &[],
            vec![AtomicUpdate::Specialize {
                from: u.person,
                to: u.student,
                select: cond(vec![Atom::eq_const(u.ssn, "1")]),
                set: cond(vec![Atom::eq_const(u.major, "CS"), Atom::eq_const(u.fe, 1990)]),
            }],
        );
        let i = [migratory_model::Oid(1)];
        let lhs = run(&u.s, &db.restrict(&i), &t, &Assignment::empty()).unwrap();
        let rhs = run(&u.s, &db, &t, &Assignment::empty()).unwrap().restrict(&i);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn objects_created_into_root_only() {
        let u = uni();
        let mut db = Instance::empty();
        create_person(&u, &mut db, "1", "A");
        let rs = db.role_set(migratory_model::Oid(1));
        assert_eq!(rs, ClassSet::singleton(u.person));
        let _ = con(1); // silence helper import in this test module
    }
}

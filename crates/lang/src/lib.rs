//! # migratory-lang — the update languages SL, CSL⁺ and CSL
//!
//! This crate implements the three transaction languages of Su, *Dynamic
//! Constraints and Object Migration* (VLDB 1991 / TCS 1997):
//!
//! * **SL** (Section 2): five parameterized operators — `create`,
//!   `delete`, `modify`, `generalize`, `specialize` — adapted from the
//!   relational transaction language of Abiteboul & Vianu to an
//!   object-based model, the last two supporting object migration;
//! * **CSL⁺** (Section 4): SL plus *positive* testing literals `P(Γ)`
//!   guarding each update;
//! * **CSL** (Section 4): positive and negative literals.
//!
//! Provided here: the AST ([`ast`]), well-formedness validation against a
//! database schema ([`validate`], Definition 2.3/4.1), the operational
//! semantics ([`interp`], Definition 2.5/4.3), the `mig` derived operation
//! of Proposition 3.1 ([`mig`]), a text-format parser ([`parser`]) and
//! pretty-printer ([`pretty`]).
//!
//! ```
//! use migratory_lang::{parse_transactions, run, Assignment};
//! use migratory_model::{schema::university_schema, Instance, Value};
//!
//! let schema = university_schema();
//! let ts = parse_transactions(&schema, r#"
//!     transaction Enroll(n, s, t, m) {
//!       create(PERSON, { SSN = s, Name = n });
//!       specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
//!     }
//! "#).unwrap();
//! let args = Assignment::new(vec![
//!     Value::str("Ann"), Value::str("1234"), Value::int(1990), Value::str("CS"),
//! ]);
//! let db = run(&schema, &Instance::empty(), ts.get("Enroll").unwrap(), &args).unwrap();
//! assert_eq!(db.num_objects(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codec;
pub mod error;
pub mod interp;
pub mod mig;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use ast::{
    con, var, Assignment, AtomicUpdate, GuardedUpdate, Language, Literal, Transaction,
    TransactionSchema,
};
pub use codec::{decode_delta, delta_from_text, delta_to_text, encode_delta};
pub use error::LangError;
pub use interp::{
    apply_atomic, apply_bulk_creates, apply_guarded, apply_transaction, apply_transaction_delta,
    run, run_trace, satisfies_literal, Delta, ObjectDelta,
};
pub use mig::{mig_ops, migto_ops};
pub use parser::parse_transactions;
pub use validate::{validate_schema, validate_transaction, validate_update};

/// Alias used by downstream crates: a CSL transaction is a
/// [`Transaction`] whose steps carry guards.
pub type CslTransaction = Transaction;

//! Decision procedures for inventory constraints — Corollary 3.3.
//!
//! For an SL transaction schema Σ and a regular inventory 𝔏 it is
//! decidable whether Σ *satisfies* 𝔏 (every pattern of the chosen family
//! lies in 𝔏), *generates* 𝔏 (every word of 𝔏 is a pattern), and hence
//! whether it *characterizes* 𝔏 (both). Verdicts carry counterexample
//! words for diagnostics.

use crate::alphabet::RoleAlphabet;
use crate::analyze::{analyze_families, AnalyzeOptions, Families};
use crate::error::CoreError;
use crate::inventory::Inventory;
use crate::pattern::{MigrationPattern, PatternKind};
use migratory_lang::TransactionSchema;
use migratory_model::Schema;

/// The outcome of a satisfies/generates test.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The inclusion holds.
    Holds,
    /// The inclusion fails; a shortest offending pattern is included.
    Fails {
        /// A word witnessing the failure (in the left language, not the
        /// right).
        counterexample: MigrationPattern,
    },
}

impl Verdict {
    /// Whether the inclusion holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// The complete decision report for one pattern kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Σ satisfies 𝔏 — `family(Σ) ⊆ 𝔏` (Definition 3.5).
    pub satisfies: Verdict,
    /// Σ generates 𝔏 — `𝔏 ⊆ family(Σ)`.
    pub generates: Verdict,
}

impl Decision {
    /// Σ characterizes 𝔏 — satisfies and generates.
    #[must_use]
    pub fn characterizes(&self) -> bool {
        self.satisfies.holds() && self.generates.holds()
    }
}

fn inclusion(left: &migratory_automata::Dfa, right: &migratory_automata::Dfa) -> Verdict {
    match left.witness_not_subset(right) {
        None => Verdict::Holds,
        Some(counterexample) => Verdict::Fails { counterexample },
    }
}

/// Decide satisfies/generates for already-computed families.
#[must_use]
pub fn decide_with_families(
    families: &Families,
    inventory: &Inventory,
    kind: PatternKind,
) -> Decision {
    let fam = families.of(kind);
    Decision {
        satisfies: inclusion(fam, inventory.dfa()),
        generates: inclusion(inventory.dfa(), fam),
    }
}

/// Analyze Σ and decide satisfies/generates for the given pattern kind
/// (Corollary 3.3). Fails on non-SL schemas — for CSL the problem is
/// undecidable (Corollary 4.7), and the bounded explorer can only refute,
/// never confirm.
pub fn decide(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    inventory: &Inventory,
    kind: PatternKind,
) -> Result<Decision, CoreError> {
    let (_, fams) = analyze_families(schema, alphabet, ts, &AnalyzeOptions::default())?;
    Ok(decide_with_families(&fams, inventory, kind))
}

/// Bounded refutation for CSL schemas: search runs up to `max_steps` for
/// a pattern outside the inventory. `Some(word)` refutes satisfaction;
/// `None` is *not* a proof (Corollary 4.7: satisfiability is undecidable
/// for CSL⁺/CSL).
#[must_use]
pub fn refute_csl_satisfies(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    inventory: &Inventory,
    kind: PatternKind,
    max_steps: usize,
) -> Option<MigrationPattern> {
    let sets = crate::explore::explore(
        schema,
        alphabet,
        ts,
        &crate::explore::ExploreConfig { max_steps, ..Default::default() },
    );
    let family = match kind {
        PatternKind::All => &sets.all,
        PatternKind::ImmediateStart => &sets.imm,
        PatternKind::Proper => &sets.pro,
        PatternKind::Lazy => &sets.lazy,
    };
    family.iter().find(|w| !inventory.contains(w)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::synthesize;
    use migratory_automata::Regex;
    use migratory_lang::parse_transactions;
    use migratory_model::{RoleSet, SchemaBuilder};

    fn pq_schema() -> (Schema, RoleAlphabet) {
        let mut b = SchemaBuilder::new();
        let r = b.class("R", &["A", "B", "C"]).unwrap();
        b.subclass("p", &[r], &[]).unwrap();
        b.subclass("q", &[r], &[]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        (schema, alphabet)
    }

    fn sym(schema: &Schema, alphabet: &RoleAlphabet, class: &str) -> u32 {
        alphabet.symbol_of(RoleSet::closure_of_named(schema, &[class]).unwrap()).unwrap()
    }

    #[test]
    fn synthesized_schema_characterizes_its_inventory() {
        // Theorem 3.2(2) + Corollary 3.3 end to end: Σ_η characterizes
        // Init(η·∅*) w.r.t. immediate-start patterns.
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        let q = sym(&schema, &alphabet, "q");
        let eta = Regex::concat([Regex::Sym(p), Regex::star(Regex::word([q, q, p]))]);
        let synth = synthesize(&schema, &alphabet, &eta).unwrap();
        let inv = Inventory::init_of_regex(
            &schema,
            &alphabet,
            &Regex::concat([eta, Regex::star(Regex::Sym(alphabet.empty_symbol()))]),
        )
        .unwrap();
        let d = decide(&schema, &alphabet, &synth.transactions, &inv, PatternKind::ImmediateStart)
            .unwrap();
        assert!(d.satisfies.holds(), "{:?}", d.satisfies);
        assert!(d.generates.holds(), "{:?}", d.generates);
        assert!(d.characterizes());
    }

    #[test]
    fn violation_produces_counterexample() {
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        let q = sym(&schema, &alphabet, "q");
        // Σ allows p → q but the inventory forbids q entirely.
        let ts = parse_transactions(
            &schema,
            r#"
            transaction Mk(x) { create(R, { A = x, B = 0, C = 0 }); specialize(R, p, { A = x }, {}); }
            transaction Q(x) { generalize(p, { A = x }); specialize(R, q, { A = x }, {}); }
        "#,
        )
        .unwrap();
        let inv = Inventory::init_of_regex(
            &schema,
            &alphabet,
            &Regex::concat([
                Regex::star(Regex::Sym(alphabet.empty_symbol())),
                Regex::star(Regex::Sym(p)),
                Regex::star(Regex::Sym(alphabet.empty_symbol())),
            ]),
        )
        .unwrap();
        let d = decide(&schema, &alphabet, &ts, &inv, PatternKind::All).unwrap();
        match &d.satisfies {
            Verdict::Fails { counterexample } => {
                assert!(counterexample.contains(&q), "counterexample must show q");
                assert!(!inv.contains(counterexample));
            }
            Verdict::Holds => panic!("expected a violation"),
        }
        // Generation also fails: Σ cannot produce arbitrarily long p-runs…
        // actually it can (create repeatedly). Check the verdict is
        // consistent with the automata either way.
        match &d.generates {
            Verdict::Holds => {}
            Verdict::Fails { counterexample } => {
                assert!(inv.contains(counterexample));
            }
        }
    }

    #[test]
    fn csl_rejected_by_decider_but_refutable_by_bounds() {
        let (schema, alphabet) = pq_schema();
        let ts = parse_transactions(
            &schema,
            r#"
            transaction Mk(x) {
              when !R(A = x) -> create(R, { A = x, B = 0, C = 0 });
            }
        "#,
        )
        .unwrap();
        let inv = Inventory::parse_init(&schema, &alphabet, "∅*").unwrap();
        assert!(matches!(
            decide(&schema, &alphabet, &ts, &inv, PatternKind::All),
            Err(CoreError::NotSl)
        ));
        // The bounded explorer refutes "Σ satisfies ∅*" (it creates [R]
        // objects).
        let cex = refute_csl_satisfies(&schema, &alphabet, &ts, &inv, PatternKind::All, 2);
        assert!(cex.is_some());
        assert!(!inv.contains(&cex.unwrap()));
    }

    #[test]
    fn example_3_5_requires_phase_encoding() {
        // Example 3.5 (Ph.D. phases U → S → C). The paper's transactions,
        // read literally under Definition 2.5, do NOT satisfy the
        // sequential constraint: applying T3 to an unscreened student
        // adds C on top of U (specialize selects any G-object with the
        // right ID), producing the mixed role set [U,C]. The decision
        // procedure finds that counterexample. Encoding the phase in a
        // selection attribute repairs the design — see EXPERIMENTS.md
        // (ex3.5).
        let mut b = SchemaBuilder::new();
        let g = b.class("G", &["ID", "Phase"]).unwrap();
        b.subclass("U", &[g], &[]).unwrap();
        b.subclass("S", &[g], &[]).unwrap();
        b.subclass("C", &[g], &[]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let inv = Inventory::parse_init(&schema, &alphabet, "∅* [U]* [S]* [C]* ∅*").unwrap();

        // (a) The paper's literal transactions violate the inventory.
        let naive = parse_transactions(
            &schema,
            r#"
            transaction T1(sid) {
              create(G, { ID = sid, Phase = "u" });
              specialize(G, U, { ID = sid }, {});
            }
            transaction T2(sid) { generalize(U, { ID = sid }); specialize(G, S, { ID = sid }, {}); }
            transaction T3(sid) { generalize(S, { ID = sid }); specialize(G, C, { ID = sid }, {}); }
        "#,
        )
        .unwrap();
        let d = decide(&schema, &alphabet, &naive, &inv, PatternKind::All).unwrap();
        match &d.satisfies {
            Verdict::Fails { counterexample } => {
                // The offending symbol is a mixed role set ([U,C] or
                // [U,S]): more than one phase class at once.
                let mixed = counterexample.iter().any(|&sym| {
                    alphabet.role_set(sym).len() > 2 // {G, X, Y}
                });
                assert!(mixed, "expected a mixed-phase counterexample, got {counterexample:?}");
            }
            Verdict::Holds => panic!("the naive Example 3.5 design should be refuted"),
        }

        // (b) Selecting on a phase attribute repairs it, in pure SL.
        let phased = parse_transactions(
            &schema,
            r#"
            transaction T1(sid) {
              create(G, { ID = sid, Phase = "u" });
              specialize(G, U, { ID = sid, Phase = "u" }, {});
            }
            transaction T2(sid) {
              generalize(U, { ID = sid, Phase = "u" });
              specialize(G, S, { ID = sid, Phase = "u" }, {});
              modify(G, { ID = sid, Phase = "u" }, { Phase = "s" });
            }
            transaction T3(sid) {
              generalize(S, { ID = sid, Phase = "s" });
              specialize(G, C, { ID = sid, Phase = "s" }, {});
              modify(G, { ID = sid, Phase = "s" }, { Phase = "c" });
            }
        "#,
        )
        .unwrap();
        let d = decide(&schema, &alphabet, &phased, &inv, PatternKind::All).unwrap();
        assert!(d.satisfies.holds(), "{:?}", d.satisfies);
        // It still does not *generate* the full inventory (e.g. nothing
        // starts at [S]).
        assert!(!d.generates.holds());
        if let Verdict::Fails { counterexample } = &d.generates {
            assert!(inv.contains(counterexample));
        }
    }
}

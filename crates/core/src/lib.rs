//! # migratory-core — dynamic constraints and object migration
//!
//! The primary contribution of Su, *Dynamic Constraints and Object
//! Migration* (VLDB 1991 / TCS 184 (1997) 195–236), implemented in full:
//!
//! * **Patterns and inventories** ([`pattern`], [`inventory`]): migration
//!   patterns as words over the role-set alphabet Ω ([`alphabet`]), the
//!   four families (all / immediate-start / proper / lazy), and regular
//!   inventories as dynamic integrity constraints;
//! * **Analysis** ([`separator`], [`graph`], [`mod@analyze`]): Theorem 3.2(1)
//!   — the hyperplane/separator construction turning any SL transaction
//!   schema into a migration graph whose walks spell its pattern
//!   families, each a regular language with an effectively constructed
//!   regular expression;
//! * **Synthesis** ([`mod@synthesize`]): Lemma 3.4 / Theorem 3.2(2) — SL
//!   transactions characterizing any regular inventory;
//! * **Decision procedures** ([`mod@decide`]): Corollary 3.3 —
//!   satisfies/generates/characterizes with counterexamples;
//! * **Runtime enforcement** ([`enforce`]): the paper's motivating
//!   application — a monitor admitting only updates whose object
//!   migration patterns stay inside the inventory. The default engine is
//!   **incremental**: transactions are applied through
//!   `migratory_lang::apply_transaction_delta` and validated from the
//!   change-set alone (apply-then-undo, no database clone), untouched
//!   objects advance via cohorts keyed by (DFA state, role symbol) — one
//!   `dfa.step` per cohort, not per object — and per-object histories are
//!   run-length encoded, so admitting a transaction costs O(touched +
//!   |cohorts|) instead of O(|db| × run-length). The pre-optimization
//!   rescan algorithm survives as `Monitor::new_reference`, the testing
//!   oracle and benchmark baseline, and Corollary 3.3 still provides the
//!   static certification fast path for provably conforming SL schemas.
//!   Because objects evolve independently (Lemma 3.5), tracking also
//!   *shards*: `enforce::ShardedMonitor` partitions the population by
//!   weakly-connected role component (oid stripes as fallback), stages
//!   every shard's checks concurrently, and batch-admits whole blocks of
//!   transactions against one cohort sweep per shard
//!   (`try_apply_batch`), coordinating only through the shared step
//!   counter. Tracking state is **durable** on request: a write-ahead
//!   log of committed transaction deltas plus canonical snapshots
//!   (`enforce::wal`, group-committed per block) lets a monitor recover
//!   byte-identical state after a crash without replaying history, and
//!   a bounded per-shard ingress (`enforce::ingress`) admits concurrent
//!   callers with backpressure;
//! * **CSL expressiveness** ([`tm_compile`], [`cfg_compile`]): Theorem
//!   4.3's Turing-machine simulation and Theorem 4.8's Greibach-normal-
//!   form compiler, with scripted completeness drivers and fuzzable
//!   soundness;
//! * **Ground truth** ([`mod@explore`]): Theorem 4.2's bounded r.e.
//!   enumeration of pattern families, the oracle everything else is
//!   tested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod analyze;
pub mod cfg_compile;
pub mod decide;
pub mod enforce;
pub mod error;
pub mod explore;
pub mod graph;
pub mod inventory;
pub mod pattern;
pub mod separator;
pub mod synthesize;
pub mod tm_compile;

pub use alphabet::RoleAlphabet;
pub use analyze::{
    analyze, analyze_all_components, analyze_families, families, Analysis, AnalyzeOptions, Families,
};
pub use cfg_compile::{compile_cfg, standard_cfg_schema, CfgCompiled};
pub use decide::{decide, decide_with_families, Decision, Verdict};
pub use enforce::{EnforceError, Monitor, ShardStats, ShardedMonitor, StepPolicy, Violation};
pub use error::CoreError;
pub use explore::{explore, ExploreConfig, PatternSets};
pub use graph::MigrationGraph;
pub use inventory::Inventory;
pub use pattern::{MigrationPattern, PatternKind};
pub use separator::VertexKey;
pub use synthesize::{from_graph, synthesize, synthesize_lazy, Synthesis};
pub use tm_compile::{compile_tm, drive_word, standard_tm_schema, TmCompiled, TmSpec};

//! Migration inventories (Definition 3.3) — prefix-closed sets of
//! well-formed migration patterns used as dynamic integrity constraints.
//!
//! A language 𝔏 over Ω is an inventory iff `Init(𝔏) ⊆ 𝔏 ⊆ ∅*Ω₊*∅*`.
//! Regular inventories are represented by a DFA over a [`RoleAlphabet`];
//! constructors accept paper-notation regular expressions
//! (`∅* [P]* [S]* [G]* [E]+ [P]* ∅*`, Example 3.2) with optional
//! prefix-closure.

use crate::alphabet::RoleAlphabet;
use crate::error::CoreError;
use migratory_automata::{Dfa, Nfa, Regex};
use migratory_model::Schema;

/// A regular migration inventory over a component's role alphabet.
#[derive(Clone, Debug)]
pub struct Inventory {
    dfa: Dfa,
}

impl Inventory {
    /// Build from a regular expression, taking the prefix closure
    /// (`Init`) — the usual way inventories are written in the paper
    /// ("This can be expressed as a set Init(𝔏) of migration patterns").
    /// Words violating the well-formed shape `∅*Ω₊*∅*` are excluded.
    pub fn init_of_regex(
        schema: &Schema,
        alphabet: &RoleAlphabet,
        regex: &Regex,
    ) -> Result<Inventory, CoreError> {
        let _ = schema;
        let nfa = Nfa::from_regex(regex, alphabet.num_symbols()).prefix_closure();
        let dfa = Dfa::from_nfa(&nfa).intersect(&shape_dfa(alphabet)).minimize();
        Ok(Inventory { dfa })
    }

    /// Parse a paper-notation expression and take its prefix closure.
    pub fn parse_init(
        schema: &Schema,
        alphabet: &RoleAlphabet,
        src: &str,
    ) -> Result<Inventory, CoreError> {
        let regex = alphabet.parse_regex(schema, src)?;
        Self::init_of_regex(schema, alphabet, &regex)
    }

    /// Wrap an explicit language, validating the inventory conditions of
    /// Definition 3.3 (prefix-closed, well-formed shape).
    pub fn from_dfa(alphabet: &RoleAlphabet, dfa: Dfa) -> Result<Inventory, CoreError> {
        let shape = shape_dfa(alphabet);
        if !dfa.is_subset_of(&shape) {
            return Err(CoreError::UnsupportedRegex(
                "inventory words must have the shape ∅*Ω₊*∅*".to_owned(),
            ));
        }
        let closed = Dfa::from_nfa(&dfa.to_nfa().prefix_closure());
        if !closed.is_subset_of(&dfa) {
            return Err(CoreError::UnsupportedRegex(
                "inventory must be prefix-closed (Init(𝔏) ⊆ 𝔏)".to_owned(),
            ));
        }
        Ok(Inventory { dfa: dfa.minimize() })
    }

    /// The underlying DFA.
    #[must_use]
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, word: &[u32]) -> bool {
        self.dfa.accepts(word)
    }

    /// An equivalent regular expression (state elimination).
    #[must_use]
    pub fn to_regex(&self) -> Regex {
        migratory_automata::dfa_to_regex(&self.dfa)
    }

    /// Canonical byte encoding of the inventory.
    ///
    /// The stored DFA is always minimized, and [`Dfa::minimize`] renumbers
    /// states canonically (BFS order), so two inventories denote the same
    /// language iff their encodings are byte-identical. This is the form
    /// persisted in WAL redefine records and v3 snapshots.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let dfa = &self.dfa;
        let ns = dfa.num_symbols();
        let nq = dfa.num_states() as u32;
        let mut out = Vec::with_capacity(12 + nq as usize * (ns as usize * 4 + 1));
        out.extend_from_slice(&ns.to_le_bytes());
        out.extend_from_slice(&nq.to_le_bytes());
        out.extend_from_slice(&dfa.start().to_le_bytes());
        for q in 0..nq {
            out.push(u8::from(dfa.is_accepting(q)));
            for s in 0..ns {
                out.extend_from_slice(&dfa.step(q, s).to_le_bytes());
            }
        }
        out
    }

    /// Decode an inventory previously produced by [`Inventory::encode`].
    ///
    /// Revalidates Definition 3.3 (shape + prefix closure) and re-minimizes,
    /// so hostile or corrupted bytes are rejected rather than trusted, and the
    /// decoded inventory encodes byte-identically to the original.
    pub fn decode(alphabet: &RoleAlphabet, bytes: &[u8]) -> Result<Inventory, CoreError> {
        let bad = |m: &str| CoreError::UnsupportedRegex(format!("inventory encoding: {m}"));
        let u32_at = |b: &[u8], i: usize| u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        if bytes.len() < 12 {
            return Err(bad("truncated header"));
        }
        let ns = u32_at(bytes, 0);
        let nq = u32_at(bytes, 4);
        let start = u32_at(bytes, 8);
        if ns != alphabet.num_symbols() {
            return Err(bad("alphabet size mismatch"));
        }
        if nq == 0 || nq > 1 << 20 {
            return Err(bad("implausible state count"));
        }
        if start >= nq {
            return Err(bad("start state out of range"));
        }
        let row = ns as usize * 4 + 1;
        if bytes.len() != 12 + nq as usize * row {
            return Err(bad("length does not match state count"));
        }
        let mut accept = Vec::with_capacity(nq as usize);
        let mut trans = Vec::with_capacity(nq as usize * ns as usize);
        for q in 0..nq as usize {
            let base = 12 + q * row;
            match bytes[base] {
                0 => accept.push(false),
                1 => accept.push(true),
                _ => return Err(bad("accept flag must be 0 or 1")),
            }
            for s in 0..ns as usize {
                let t = u32_at(bytes, base + 1 + s * 4);
                if t >= nq {
                    return Err(bad("transition target out of range"));
                }
                trans.push(t);
            }
        }
        let dfa = Dfa::from_parts(ns, trans, accept, start);
        Self::from_dfa(alphabet, dfa)
    }
}

/// The DFA of well-formed pattern words `∅*Ω₊*∅*`.
#[must_use]
pub fn shape_dfa(alphabet: &RoleAlphabet) -> Dfa {
    let e = alphabet.empty_symbol();
    let nonempty = Regex::union(alphabet.nonempty_symbols().map(Regex::Sym).collect::<Vec<_>>());
    let shape = Regex::concat([
        Regex::star(Regex::Sym(e)),
        Regex::star(nonempty),
        Regex::star(Regex::Sym(e)),
    ]);
    Dfa::from_nfa(&Nfa::from_regex(&shape, alphabet.num_symbols())).minimize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_model::schema::university_schema;
    use migratory_model::RoleSet;

    fn setup() -> (Schema, RoleAlphabet) {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        (s, a)
    }

    #[test]
    fn example_3_2_inventory() {
        // Init(∅*[P]*[S]*[G]*[E]+[P]*∅*): live as P, study, assist,
        // be employed, retire to plain person, leave.
        let (s, a) = setup();
        let inv = Inventory::parse_init(
            &s,
            &a,
            "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]+ [PERSON]* ∅*",
        )
        .unwrap();
        let sym =
            |names: &[&str]| a.symbol_of(RoleSet::closure_of_named(&s, names).unwrap()).unwrap();
        let (p, st, g, e) =
            (sym(&["PERSON"]), sym(&["STUDENT"]), sym(&["GRAD_ASSIST"]), sym(&["EMPLOYEE"]));
        assert!(inv.contains(&[]));
        assert!(inv.contains(&[p, st, g, e, p, 0]));
        assert!(inv.contains(&[p, st]), "prefixes belong to Init");
        assert!(inv.contains(&[0, 0, p]));
        assert!(!inv.contains(&[e, st]), "employment cannot precede study");
        assert!(!inv.contains(&[p, 0, p]), "not well-formed: re-creation");
    }

    #[test]
    fn shape_enforced() {
        let (s, a) = setup();
        let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        // A "bad" language containing [P]∅[P].
        let bad = Regex::word([p, a.empty_symbol(), p]);
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&bad, a.num_symbols()));
        assert!(matches!(Inventory::from_dfa(&a, dfa), Err(CoreError::UnsupportedRegex(_))));
        // init_of_regex silently intersects the shape away.
        let inv = Inventory::init_of_regex(&s, &a, &bad).unwrap();
        assert!(!inv.contains(&[p, 0, p]));
        assert!(inv.contains(&[p, 0]), "the well-formed prefix survives");
    }

    #[test]
    fn prefix_closure_required() {
        let (s, a) = setup();
        let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        // {pp} alone is not prefix-closed.
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&Regex::word([p, p]), a.num_symbols()));
        assert!(Inventory::from_dfa(&a, dfa.clone()).is_err());
        let closed = Dfa::from_nfa(&dfa.to_nfa().prefix_closure());
        let inv = Inventory::from_dfa(&a, closed).unwrap();
        assert!(inv.contains(&[p]) && inv.contains(&[]));
    }

    #[test]
    fn example_3_3_path_expression() {
        // (p(q ∪ r)s)* as an inventory over a four-operation hierarchy
        // (Fig. 3): each operation is a subclass of R.
        let mut b = migratory_model::SchemaBuilder::new();
        let r = b.class("R", &["A"]).unwrap();
        for op in ["p", "q", "r_", "s"] {
            b.subclass(op, &[r], &[]).unwrap();
        }
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let inv =
            Inventory::parse_init(&schema, &alphabet, "∅* ([p] ([q] ∪ [r_]) [s])* ∅*").unwrap();
        let sym = |n: &str| {
            alphabet.symbol_of(RoleSet::closure_of_named(&schema, &[n]).unwrap()).unwrap()
        };
        let (p, q, r_, sct) = (sym("p"), sym("q"), sym("r_"), sym("s"));
        assert!(inv.contains(&[p, q, sct, p, r_, sct]));
        assert!(inv.contains(&[p, q]), "a prefix — the next operation may be pending");
        assert!(!inv.contains(&[q]), "q may not run before p");
        assert!(!inv.contains(&[p, sct]));
    }

    #[test]
    fn encoding_is_canonical_and_roundtrips() {
        let (s, a) = setup();
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* ∅*").unwrap();
        let bytes = inv.encode();
        let back = Inventory::decode(&a, &bytes).unwrap();
        assert_eq!(back.encode(), bytes, "decode∘encode is the identity on bytes");
        // A differently-written expression for the same language encodes
        // identically (minimization is canonical).
        let same =
            Inventory::parse_init(&s, &a, "∅* ∅* [PERSON]* [PERSON]* [STUDENT]* ∅*").unwrap();
        assert_eq!(same.encode(), bytes);
        // Hostile bytes are rejected, never trusted.
        assert!(Inventory::decode(&a, &[]).is_err());
        assert!(Inventory::decode(&a, &bytes[..bytes.len() - 1]).is_err());
        let mut huge = bytes.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Inventory::decode(&a, &huge).is_err());
    }

    #[test]
    fn regex_roundtrip() {
        let (s, a) = setup();
        let inv = Inventory::parse_init(&s, &a, "[PERSON]* ∅*").unwrap();
        let r = inv.to_regex();
        let back = Inventory::init_of_regex(&s, &a, &r).unwrap();
        assert!(inv.dfa().equivalent(back.dfa()));
    }
}

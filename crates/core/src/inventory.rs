//! Migration inventories (Definition 3.3) — prefix-closed sets of
//! well-formed migration patterns used as dynamic integrity constraints.
//!
//! A language 𝔏 over Ω is an inventory iff `Init(𝔏) ⊆ 𝔏 ⊆ ∅*Ω₊*∅*`.
//! Regular inventories are represented by a DFA over a [`RoleAlphabet`];
//! constructors accept paper-notation regular expressions
//! (`∅* [P]* [S]* [G]* [E]+ [P]* ∅*`, Example 3.2) with optional
//! prefix-closure.

use crate::alphabet::RoleAlphabet;
use crate::error::CoreError;
use migratory_automata::{Dfa, Nfa, Regex};
use migratory_model::Schema;

/// A regular migration inventory over a component's role alphabet.
#[derive(Clone, Debug)]
pub struct Inventory {
    dfa: Dfa,
}

impl Inventory {
    /// Build from a regular expression, taking the prefix closure
    /// (`Init`) — the usual way inventories are written in the paper
    /// ("This can be expressed as a set Init(𝔏) of migration patterns").
    /// Words violating the well-formed shape `∅*Ω₊*∅*` are excluded.
    pub fn init_of_regex(
        schema: &Schema,
        alphabet: &RoleAlphabet,
        regex: &Regex,
    ) -> Result<Inventory, CoreError> {
        let _ = schema;
        let nfa = Nfa::from_regex(regex, alphabet.num_symbols()).prefix_closure();
        let dfa = Dfa::from_nfa(&nfa).intersect(&shape_dfa(alphabet)).minimize();
        Ok(Inventory { dfa })
    }

    /// Parse a paper-notation expression and take its prefix closure.
    pub fn parse_init(
        schema: &Schema,
        alphabet: &RoleAlphabet,
        src: &str,
    ) -> Result<Inventory, CoreError> {
        let regex = alphabet.parse_regex(schema, src)?;
        Self::init_of_regex(schema, alphabet, &regex)
    }

    /// Wrap an explicit language, validating the inventory conditions of
    /// Definition 3.3 (prefix-closed, well-formed shape).
    pub fn from_dfa(alphabet: &RoleAlphabet, dfa: Dfa) -> Result<Inventory, CoreError> {
        let shape = shape_dfa(alphabet);
        if !dfa.is_subset_of(&shape) {
            return Err(CoreError::UnsupportedRegex(
                "inventory words must have the shape ∅*Ω₊*∅*".to_owned(),
            ));
        }
        let closed = Dfa::from_nfa(&dfa.to_nfa().prefix_closure());
        if !closed.is_subset_of(&dfa) {
            return Err(CoreError::UnsupportedRegex(
                "inventory must be prefix-closed (Init(𝔏) ⊆ 𝔏)".to_owned(),
            ));
        }
        Ok(Inventory { dfa: dfa.minimize() })
    }

    /// The underlying DFA.
    #[must_use]
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, word: &[u32]) -> bool {
        self.dfa.accepts(word)
    }

    /// An equivalent regular expression (state elimination).
    #[must_use]
    pub fn to_regex(&self) -> Regex {
        migratory_automata::dfa_to_regex(&self.dfa)
    }
}

/// The DFA of well-formed pattern words `∅*Ω₊*∅*`.
#[must_use]
pub fn shape_dfa(alphabet: &RoleAlphabet) -> Dfa {
    let e = alphabet.empty_symbol();
    let nonempty = Regex::union(alphabet.nonempty_symbols().map(Regex::Sym).collect::<Vec<_>>());
    let shape = Regex::concat([
        Regex::star(Regex::Sym(e)),
        Regex::star(nonempty),
        Regex::star(Regex::Sym(e)),
    ]);
    Dfa::from_nfa(&Nfa::from_regex(&shape, alphabet.num_symbols())).minimize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_model::schema::university_schema;
    use migratory_model::RoleSet;

    fn setup() -> (Schema, RoleAlphabet) {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        (s, a)
    }

    #[test]
    fn example_3_2_inventory() {
        // Init(∅*[P]*[S]*[G]*[E]+[P]*∅*): live as P, study, assist,
        // be employed, retire to plain person, leave.
        let (s, a) = setup();
        let inv = Inventory::parse_init(
            &s,
            &a,
            "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]+ [PERSON]* ∅*",
        )
        .unwrap();
        let sym =
            |names: &[&str]| a.symbol_of(RoleSet::closure_of_named(&s, names).unwrap()).unwrap();
        let (p, st, g, e) =
            (sym(&["PERSON"]), sym(&["STUDENT"]), sym(&["GRAD_ASSIST"]), sym(&["EMPLOYEE"]));
        assert!(inv.contains(&[]));
        assert!(inv.contains(&[p, st, g, e, p, 0]));
        assert!(inv.contains(&[p, st]), "prefixes belong to Init");
        assert!(inv.contains(&[0, 0, p]));
        assert!(!inv.contains(&[e, st]), "employment cannot precede study");
        assert!(!inv.contains(&[p, 0, p]), "not well-formed: re-creation");
    }

    #[test]
    fn shape_enforced() {
        let (s, a) = setup();
        let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        // A "bad" language containing [P]∅[P].
        let bad = Regex::word([p, a.empty_symbol(), p]);
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&bad, a.num_symbols()));
        assert!(matches!(Inventory::from_dfa(&a, dfa), Err(CoreError::UnsupportedRegex(_))));
        // init_of_regex silently intersects the shape away.
        let inv = Inventory::init_of_regex(&s, &a, &bad).unwrap();
        assert!(!inv.contains(&[p, 0, p]));
        assert!(inv.contains(&[p, 0]), "the well-formed prefix survives");
    }

    #[test]
    fn prefix_closure_required() {
        let (s, a) = setup();
        let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        // {pp} alone is not prefix-closed.
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&Regex::word([p, p]), a.num_symbols()));
        assert!(Inventory::from_dfa(&a, dfa.clone()).is_err());
        let closed = Dfa::from_nfa(&dfa.to_nfa().prefix_closure());
        let inv = Inventory::from_dfa(&a, closed).unwrap();
        assert!(inv.contains(&[p]) && inv.contains(&[]));
    }

    #[test]
    fn example_3_3_path_expression() {
        // (p(q ∪ r)s)* as an inventory over a four-operation hierarchy
        // (Fig. 3): each operation is a subclass of R.
        let mut b = migratory_model::SchemaBuilder::new();
        let r = b.class("R", &["A"]).unwrap();
        for op in ["p", "q", "r_", "s"] {
            b.subclass(op, &[r], &[]).unwrap();
        }
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let inv =
            Inventory::parse_init(&schema, &alphabet, "∅* ([p] ([q] ∪ [r_]) [s])* ∅*").unwrap();
        let sym = |n: &str| {
            alphabet.symbol_of(RoleSet::closure_of_named(&schema, &[n]).unwrap()).unwrap()
        };
        let (p, q, r_, sct) = (sym("p"), sym("q"), sym("r_"), sym("s"));
        assert!(inv.contains(&[p, q, sct, p, r_, sct]));
        assert!(inv.contains(&[p, q]), "a prefix — the next operation may be pending");
        assert!(!inv.contains(&[q]), "q may not run before p");
        assert!(!inv.contains(&[p, sct]));
    }

    #[test]
    fn regex_roundtrip() {
        let (s, a) = setup();
        let inv = Inventory::parse_init(&s, &a, "[PERSON]* ∅*").unwrap();
        let r = inv.to_regex();
        let back = Inventory::init_of_regex(&s, &a, &r).unwrap();
        assert!(inv.dfa().equivalent(back.dfa()));
    }
}

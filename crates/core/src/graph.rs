//! Migration graphs (Definition 3.6) — the central combinatorial object
//! of Theorem 3.2.
//!
//! A migration graph has a *source* `vs`, a *sink* `vt`, and interior
//! vertices labelled with non-empty role sets; edges avoid entering `vs`
//! or leaving `vt`. Two constructions use it:
//!
//! * **synthesis** (Lemma 3.4): [`MigrationGraph::from_regex`] builds
//!   G_η from a regular expression η over Ω₊, mirroring the paper's
//!   inductive construction (Fig. 6 shows G for `P(QQP)*`);
//! * **analysis** (Theorem 3.2(1)): the separator construction produces a
//!   migration graph whose walks from `vs` spell exactly the pattern
//!   families; [`MigrationGraph::walks_nfa`] converts walks to an NFA.

use crate::error::CoreError;
use crate::pattern::PatternKind;
use migratory_automata::{Nfa, Regex};
use std::collections::BTreeMap;

/// The source vertex id.
pub const VS: u32 = 0;
/// The sink vertex id.
pub const VT: u32 = 1;

/// Edge annotations produced by the analyzer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EdgeInfo {
    /// Whether some realizing transaction application *updates the
    /// object* (role set or attribute values change) — the condition for
    /// the edge to participate in proper patterns.
    pub proper: bool,
}

/// A vertex-labelled migration graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MigrationGraph {
    /// Labels of interior vertices: `labels[v - 2]` is the role-set symbol
    /// of vertex `v ≥ 2`.
    labels: Vec<u32>,
    edges: BTreeMap<(u32, u32), EdgeInfo>,
}

impl Default for MigrationGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl MigrationGraph {
    /// An empty graph (source and sink only).
    #[must_use]
    pub fn new() -> Self {
        MigrationGraph { labels: Vec::new(), edges: BTreeMap::new() }
    }

    /// Add an interior vertex with the given role-set symbol; returns its
    /// id (≥ 2).
    pub fn add_vertex(&mut self, label: u32) -> u32 {
        self.labels.push(label);
        self.labels.len() as u32 + 1
    }

    /// Number of vertices, source and sink included.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.labels.len() + 2
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The label of an interior vertex.
    ///
    /// # Panics
    /// Panics on `VS`/`VT`, which are unlabelled.
    #[must_use]
    pub fn label(&self, v: u32) -> u32 {
        assert!(v >= 2, "vs/vt have no label");
        self.labels[v as usize - 2]
    }

    /// Interior vertex ids.
    pub fn interior(&self) -> impl Iterator<Item = u32> + '_ {
        2..self.num_vertices() as u32
    }

    /// Add an edge `(u, v)`; `proper` marks are OR-merged on duplicates.
    ///
    /// # Panics
    /// Panics if the edge enters `vs` or leaves `vt` (Definition 3.6).
    pub fn add_edge(&mut self, u: u32, v: u32, info: EdgeInfo) {
        assert!(u != VT, "no edges leave the sink");
        assert!(v != VS, "no edges enter the source");
        let e = self.edges.entry((u, v)).or_default();
        e.proper |= info.proper;
    }

    /// Iterate edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, EdgeInfo)> + '_ {
        self.edges.iter().map(|(&(u, v), &i)| (u, v, i))
    }

    /// The successors of a vertex.
    pub fn successors(&self, u: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges.range((u, 0)..(u + 1, 0)).map(|(&(_, v), _)| v)
    }

    /// Whether an edge is *lazy* (its endpoints carry different role
    /// sets; `vs` counts as ∅ and `vt` as ∅).
    #[must_use]
    pub fn edge_is_lazy(&self, u: u32, v: u32, empty_sym: u32) -> bool {
        let lab = |x: u32| if x == VS || x == VT { empty_sym } else { self.label(x) };
        lab(u) != lab(v)
    }

    /// Build G_η from a regular expression over non-empty role-set
    /// symbols, following the paper's inductive construction (symbols,
    /// concatenation, union, star; `λ` becomes the edge `(vs, vt)` and ∅
    /// the edge-less graph).
    pub fn from_regex(regex: &Regex, empty_sym: u32) -> Result<MigrationGraph, CoreError> {
        fn build(r: &Regex, empty_sym: u32) -> Result<MigrationGraph, CoreError> {
            match r {
                Regex::Empty => Ok(MigrationGraph::new()),
                Regex::Epsilon => {
                    let mut g = MigrationGraph::new();
                    g.add_edge(VS, VT, EdgeInfo { proper: true });
                    Ok(g)
                }
                Regex::Sym(s) => {
                    if *s == empty_sym {
                        return Err(CoreError::NotANonEmptyRoleSet(*s));
                    }
                    let mut g = MigrationGraph::new();
                    let u = g.add_vertex(*s);
                    g.add_edge(VS, u, EdgeInfo { proper: true });
                    g.add_edge(u, VT, EdgeInfo { proper: true });
                    Ok(g)
                }
                Regex::Concat(parts) => {
                    let mut acc = build(&Regex::Epsilon, empty_sym)?;
                    for p in parts {
                        let g2 = build(p, empty_sym)?;
                        acc = concat(&acc, &g2);
                    }
                    Ok(acc)
                }
                Regex::Union(parts) => {
                    let mut acc = MigrationGraph::new();
                    for p in parts {
                        let g2 = build(p, empty_sym)?;
                        acc = union(&acc, &g2);
                    }
                    Ok(acc)
                }
                Regex::Star(inner) => {
                    let g1 = build(inner, empty_sym)?;
                    Ok(star(&g1))
                }
            }
        }

        /// Disjoint embedding of `g`'s interior into `out`; returns the
        /// vertex map.
        fn embed(g: &MigrationGraph, out: &mut MigrationGraph) -> Vec<u32> {
            let mut map = vec![VS, VT];
            for v in g.interior() {
                map.push(out.add_vertex(g.label(v)));
            }
            map
        }

        fn concat(g1: &MigrationGraph, g2: &MigrationGraph) -> MigrationGraph {
            let mut out = MigrationGraph::new();
            let m1 = embed(g1, &mut out);
            let m2 = embed(g2, &mut out);
            // E = {e ∈ E1 | e does not enter vt} ∪ {e ∈ E2 | e does not
            // leave vs} ∪ {(u,v) | (u,vt) ∈ E1, (vs,v) ∈ E2}.
            for (u, v, i) in g1.edges() {
                if v != VT {
                    out.add_edge(m1[u as usize], m1[v as usize], i);
                }
            }
            for (u, v, i) in g2.edges() {
                if u != VS {
                    out.add_edge(m2[u as usize], m2[v as usize], i);
                }
            }
            for (u, v1, i1) in g1.edges() {
                if v1 != VT {
                    continue;
                }
                for (u2, v, i2) in g2.edges() {
                    if u2 != VS {
                        continue;
                    }
                    out.add_edge(
                        m1[u as usize],
                        m2[v as usize],
                        EdgeInfo { proper: i1.proper && i2.proper },
                    );
                }
            }
            out
        }

        fn union(g1: &MigrationGraph, g2: &MigrationGraph) -> MigrationGraph {
            let mut out = MigrationGraph::new();
            let m1 = embed(g1, &mut out);
            let m2 = embed(g2, &mut out);
            for (u, v, i) in g1.edges() {
                out.add_edge(m1[u as usize], m1[v as usize], i);
            }
            for (u, v, i) in g2.edges() {
                out.add_edge(m2[u as usize], m2[v as usize], i);
            }
            out
        }

        fn star(g1: &MigrationGraph) -> MigrationGraph {
            let mut out = MigrationGraph::new();
            let m1 = embed(g1, &mut out);
            for (u, v, i) in g1.edges() {
                out.add_edge(m1[u as usize], m1[v as usize], i);
            }
            out.add_edge(VS, VT, EdgeInfo { proper: true });
            // {(u,v) | (u,vt) ∈ E1, (vs,v) ∈ E1}.
            for (u, v1, i1) in g1.edges() {
                if v1 != VT {
                    continue;
                }
                for (u2, v, i2) in g1.edges() {
                    if u2 != VS {
                        continue;
                    }
                    out.add_edge(
                        m1[u as usize],
                        m1[v as usize],
                        EdgeInfo { proper: i1.proper && i2.proper },
                    );
                }
            }
            out
        }

        build(regex, empty_sym)
    }

    /// The NFA of **vs→vt path labels** — accepts exactly `L(η)` when the
    /// graph is `G_η` (used to validate `from_regex`).
    #[must_use]
    pub fn path_language_nfa(&self, num_symbols: u32) -> Nfa {
        let mut nfa = Nfa::empty(num_symbols);
        for v in 0..self.num_vertices() as u32 {
            nfa.add_state(v == VT);
        }
        for (u, v, _) in self.edges() {
            if v == VT {
                nfa.add_eps(u, VT);
            } else {
                nfa.add_transition(u, self.label(v), v);
            }
        }
        nfa.add_start(VS);
        nfa
    }

    /// The NFA of **walk labels from vs**, the pattern-family language of
    /// the analyzer's graph:
    ///
    /// * every vertex is accepting (families are prefix-closed);
    /// * an edge `(u, v)` with `v` interior reads `L(v)`;
    /// * an edge `(u, vt)` reads ∅ (the deletion step);
    /// * for [`PatternKind::All`]/[`PatternKind::ImmediateStart`] the sink
    ///   carries an ∅ self-loop (steps after deletion);
    /// * for [`PatternKind::Proper`] only proper edges participate and
    ///   there is no sink loop;
    /// * for [`PatternKind::Lazy`] only label-changing edges participate.
    ///
    /// The ∅*-prefix of `All` and the (λ∪∅)-prefix of `Proper`/`Lazy` are
    /// assembled by the caller (see `analyze::families`).
    #[must_use]
    pub fn walks_nfa(&self, num_symbols: u32, empty_sym: u32, kind: PatternKind) -> Nfa {
        let mut nfa = Nfa::empty(num_symbols);
        for _ in 0..self.num_vertices() {
            nfa.add_state(true);
        }
        for (u, v, info) in self.edges() {
            let include = match kind {
                PatternKind::All | PatternKind::ImmediateStart => true,
                PatternKind::Proper => info.proper,
                PatternKind::Lazy => self.edge_is_lazy(u, v, empty_sym),
            };
            if !include {
                continue;
            }
            if v == VT {
                nfa.add_transition(u, empty_sym, VT);
            } else {
                nfa.add_transition(u, self.label(v), v);
            }
        }
        if matches!(kind, PatternKind::All | PatternKind::ImmediateStart) {
            nfa.add_transition(VT, empty_sym, VT);
        }
        nfa.add_start(VS);
        nfa
    }

    /// The grammar N of the proof of Theorem 3.2(1): nonterminals are the
    /// vertices, with `u → L(v) v` per edge `(u, v)` (the paper calls it
    /// left-linear; with the terminal emitted before the nonterminal the
    /// conventional name is right-linear) and `u → λ` for every vertex,
    /// making the generated language the prefix-closed walk language.
    /// Tested equivalent to [`MigrationGraph::walks_nfa`] for the
    /// immediate-start kind (without the sink's ∅-loop, which the grammar
    /// models with an extra ∅-emitting production on the sink).
    #[must_use]
    pub fn to_grammar(
        &self,
        num_symbols: u32,
        empty_sym: u32,
    ) -> migratory_automata::RightLinearGrammar {
        let n = self.num_vertices() as u32;
        let mut g = migratory_automata::RightLinearGrammar::new(num_symbols, n, VS);
        for (u, v, _) in self.edges() {
            let sym = if v == VT { empty_sym } else { self.label(v) };
            g.add(u, Some(sym), Some(v));
        }
        // Sink ∅-loop (steps after deletion) and prefix closure (walks may
        // stop anywhere).
        g.add(VT, Some(empty_sym), Some(VT));
        for u in 0..n {
            g.add(u, None, None);
        }
        g
    }

    /// The lazy contraction Ĝ used by Lemma 3.4(2): `(u, v) ∈ Ĝ` iff G has
    /// a path `u = v₀, …, vₙ = v` (n ≥ 1) whose intermediate vertices all
    /// carry `u`'s label and whose endpoint label differs. Synthesis from
    /// Ĝ produces a schema whose lazy patterns are `f_rr` of the
    /// original's.
    #[must_use]
    pub fn lazy_contraction(&self, empty_sym: u32) -> MigrationGraph {
        let mut out = MigrationGraph::new();
        for v in self.interior() {
            let nv = out.add_vertex(self.label(v));
            debug_assert_eq!(nv, v);
        }
        for u in std::iter::once(VS).chain(self.interior()) {
            let lab_u = if u == VS { empty_sym } else { self.label(u) };
            // BFS through same-labelled vertices.
            let mut stack: Vec<u32> = vec![u];
            let mut seen = vec![false; self.num_vertices()];
            seen[u as usize] = true;
            while let Some(x) = stack.pop() {
                for y in self.successors(x) {
                    if y == VT {
                        out.add_edge(u, VT, EdgeInfo { proper: true });
                        continue;
                    }
                    if self.label(y) == lab_u {
                        if !seen[y as usize] {
                            seen[y as usize] = true;
                            stack.push(y);
                        }
                    } else {
                        out.add_edge(u, y, EdgeInfo { proper: true });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_automata::{Dfa, Nfa};

    const EMPTY: u32 = 0;

    fn lang_of_regex(r: &Regex, ns: u32) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(r, ns))
    }

    fn path_lang(r: &Regex, ns: u32) -> Dfa {
        let g = MigrationGraph::from_regex(r, EMPTY).unwrap();
        Dfa::from_nfa(&g.path_language_nfa(ns))
    }

    #[test]
    fn from_regex_preserves_language() {
        // Symbols 1, 2, 3 are non-empty role sets.
        let cases = [
            Regex::Sym(1),
            Regex::word([1, 2]),
            Regex::star(Regex::Sym(1)),
            Regex::concat([
                Regex::Sym(1),
                Regex::star(Regex::concat([Regex::Sym(2), Regex::Sym(2), Regex::Sym(1)])),
            ]), // P(QQP)* — Example 3.6 / Fig. 6
            Regex::union([Regex::word([1, 2, 2]), Regex::plus(Regex::Sym(3))]),
            Regex::opt(Regex::Sym(2)),
            Regex::Epsilon,
            Regex::Empty,
            Regex::concat([
                Regex::star(Regex::Sym(1)),
                Regex::union([Regex::Sym(2), Regex::Epsilon]),
                Regex::Sym(3),
            ]),
        ];
        for r in &cases {
            let expect = lang_of_regex(r, 4);
            let got = path_lang(r, 4);
            assert!(expect.equivalent(&got), "G_η language mismatch for {r}: wanted equivalence");
        }
    }

    #[test]
    fn fig6_shape_for_p_qqp_star() {
        // P(QQP)* has the 4-interior-vertex graph of Fig. 6.
        let r = Regex::concat([
            Regex::Sym(1),
            Regex::star(Regex::concat([Regex::Sym(2), Regex::Sym(2), Regex::Sym(1)])),
        ]);
        let g = MigrationGraph::from_regex(&r, EMPTY).unwrap();
        assert_eq!(g.num_vertices(), 6); // vs, vt, P, Q, Q, P
        let labels: Vec<u32> = g.interior().map(|v| g.label(v)).collect();
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 2);
        assert_eq!(labels.iter().filter(|&&l| l == 2).count(), 2);
    }

    #[test]
    fn empty_symbol_rejected_in_regex() {
        assert!(matches!(
            MigrationGraph::from_regex(&Regex::Sym(EMPTY), EMPTY),
            Err(CoreError::NotANonEmptyRoleSet(0))
        ));
    }

    #[test]
    fn walks_nfa_prefix_closed_with_deletion() {
        // G for the single word "12": walks spell Init(1·2·∅*).
        let g = MigrationGraph::from_regex(&Regex::word([1, 2]), EMPTY).unwrap();
        let d = Dfa::from_nfa(&g.walks_nfa(3, EMPTY, PatternKind::ImmediateStart));
        for w in [&[][..], &[1], &[1, 2], &[1, 2, 0], &[1, 2, 0, 0]] {
            assert!(d.accepts(w), "{w:?} should be an immediate-start pattern");
        }
        for w in [&[2][..], &[0, 1], &[1, 0, 2], &[1, 2, 1]] {
            assert!(!d.accepts(w), "{w:?} should not be accepted");
        }
    }

    #[test]
    fn proper_walks_exclude_improper_edges() {
        let mut g = MigrationGraph::new();
        let a = g.add_vertex(1);
        g.add_edge(VS, a, EdgeInfo { proper: true });
        g.add_edge(a, a, EdgeInfo { proper: false }); // idempotent self-loop
        let all = Dfa::from_nfa(&g.walks_nfa(2, EMPTY, PatternKind::All));
        let pro = Dfa::from_nfa(&g.walks_nfa(2, EMPTY, PatternKind::Proper));
        assert!(all.accepts(&[1, 1]));
        assert!(!pro.accepts(&[1, 1]));
        assert!(pro.accepts(&[1]));
    }

    #[test]
    fn lazy_walks_require_label_change() {
        let mut g = MigrationGraph::new();
        let a = g.add_vertex(1);
        let b = g.add_vertex(1); // same label, different vertex
        let c = g.add_vertex(2);
        g.add_edge(VS, a, EdgeInfo { proper: true });
        g.add_edge(a, b, EdgeInfo { proper: true });
        g.add_edge(b, c, EdgeInfo { proper: true });
        let lazy = Dfa::from_nfa(&g.walks_nfa(3, EMPTY, PatternKind::Lazy));
        assert!(lazy.accepts(&[1]));
        assert!(!lazy.accepts(&[1, 1]), "a→b keeps label 1: not lazy");
        assert!(!lazy.accepts(&[1, 1, 2]));
    }

    #[test]
    fn lazy_contraction_skips_same_label_runs() {
        // vs → a(1) → b(1) → c(2) → vt contracts to vs → a → c → vt plus
        // vs→… (b unreachable directly from vs in Ĝ).
        let mut g = MigrationGraph::new();
        let a = g.add_vertex(1);
        let b = g.add_vertex(1);
        let c = g.add_vertex(2);
        g.add_edge(VS, a, EdgeInfo { proper: true });
        g.add_edge(a, b, EdgeInfo { proper: true });
        g.add_edge(b, c, EdgeInfo { proper: true });
        g.add_edge(c, VT, EdgeInfo { proper: true });
        let h = g.lazy_contraction(EMPTY);
        let d = Dfa::from_nfa(&h.walks_nfa(3, EMPTY, PatternKind::Lazy));
        assert!(d.accepts(&[1, 2]));
        assert!(d.accepts(&[1, 2, 0]));
        assert!(!d.accepts(&[1, 1, 2]));
        // vs-side contraction: vs has label ∅, a has 1 → direct edge kept.
        assert!(d.accepts(&[1]));
    }

    #[test]
    fn grammar_route_matches_walks_nfa() {
        // The paper's proof extracts the family via a linear grammar; it
        // must agree with the direct NFA over walks.
        let r = Regex::concat([
            Regex::Sym(1),
            Regex::star(Regex::concat([Regex::Sym(2), Regex::Sym(2), Regex::Sym(1)])),
        ]);
        let g = MigrationGraph::from_regex(&r, EMPTY).unwrap();
        let via_nfa = Dfa::from_nfa(&g.walks_nfa(3, EMPTY, PatternKind::ImmediateStart));
        let via_grammar = Dfa::from_nfa(&g.to_grammar(3, EMPTY).to_nfa());
        assert!(via_nfa.equivalent(&via_grammar));
    }

    #[test]
    fn edge_endpoint_rules_enforced() {
        let mut g = MigrationGraph::new();
        let a = g.add_vertex(1);
        g.add_edge(VS, a, EdgeInfo::default());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g2 = g.clone();
            g2.add_edge(VT, a, EdgeInfo::default());
        }));
        assert!(r.is_err(), "edges may not leave the sink");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g2 = g.clone();
            g2.add_edge(a, VS, EdgeInfo::default());
        }));
        assert!(r.is_err(), "edges may not enter the source");
    }

    #[test]
    fn successors_and_counts() {
        let mut g = MigrationGraph::new();
        let a = g.add_vertex(1);
        let b = g.add_vertex(2);
        g.add_edge(VS, a, EdgeInfo::default());
        g.add_edge(a, b, EdgeInfo::default());
        g.add_edge(a, VT, EdgeInfo::default());
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        let succ: Vec<u32> = g.successors(a).collect();
        assert_eq!(succ, vec![VT, b]);
        // Duplicate edges OR-merge properness.
        g.add_edge(a, b, EdgeInfo { proper: true });
        assert_eq!(g.num_edges(), 3);
        assert!(g.edges().any(|(u, v, i)| u == a && v == b && i.proper));
    }
}

//! Migration patterns and their classification (Definitions 3.2 and 3.4).
//!
//! A migration pattern of a transaction schema Σ is the word
//! `ω₁ … ωₙ`, `ωᵢ = Rs(o, dᵢ)`, traced by some object `o` along a run
//! `d₀ (empty) → d₁ → … → dₙ`. The paper distinguishes:
//!
//! * **immediate-start** — `ω₁ ≠ ∅` (the object is created by the first
//!   application, starting from the empty database);
//! * **proper** — every step from the second on *updates the object*
//!   (its role set or attribute tuple changes);
//! * **lazy** — every step from the second on changes the role set.
//!
//! The "from the second on" reading resolves an ambiguity in Definition
//! 3.4 in favour of the closed forms of Theorem 3.2(2) — see DESIGN.md §2.

use crate::alphabet::RoleAlphabet;
use migratory_model::{Instance, Oid, RoleSet, Schema};

/// Which pattern family is being considered.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PatternKind {
    /// All migration patterns, 𝓛(Σ).
    All,
    /// Immediate-start patterns, 𝓛ᵢₘₘ(Σ).
    ImmediateStart,
    /// Proper patterns, 𝓛ₚᵣₒ(Σ).
    Proper,
    /// Lazy patterns, 𝓛ₗₐ(Σ).
    Lazy,
}

impl PatternKind {
    /// All four kinds, in the paper's order.
    pub const ALL: [PatternKind; 4] =
        [PatternKind::All, PatternKind::ImmediateStart, PatternKind::Proper, PatternKind::Lazy];
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternKind::All => write!(f, "all"),
            PatternKind::ImmediateStart => write!(f, "immediate-start"),
            PatternKind::Proper => write!(f, "proper"),
            PatternKind::Lazy => write!(f, "lazy"),
        }
    }
}

/// A migration pattern as a word over a [`RoleAlphabet`].
pub type MigrationPattern = Vec<u32>;

/// Per-step observation of one object along a run, sufficient to classify
/// its pattern into the four families.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StepObservation {
    /// The role-set symbol after the step (`Rs(o, dᵢ)`).
    pub role: u32,
    /// Whether the object's role set changed at this step.
    pub role_changed: bool,
    /// Whether the object changed at all (role set or attribute tuple).
    pub object_changed: bool,
    /// Whether the database changed at all (`dᵢ ≠ dᵢ₋₁`, relevant for the
    /// CSL pattern semantics of Definition 4.6).
    pub db_changed: bool,
}

/// Observe one object along a database trace `d₀ … dₙ`
/// (as produced by [`migratory_lang::run_trace`]). Objects whose role set
/// lies outside `alphabet`'s component observe ∅ (they can never enter
/// this component's patterns).
#[must_use]
pub fn observe(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    trace: &[Instance],
    o: Oid,
) -> Vec<StepObservation> {
    let mut out = Vec::with_capacity(trace.len().saturating_sub(1));
    for i in 1..trace.len() {
        let prev = &trace[i - 1];
        let cur = &trace[i];
        let sym = |db: &Instance| -> u32 {
            let cs = db.role_set(o);
            RoleSet::new(schema, cs)
                .ok()
                .and_then(|rs| alphabet.symbol_of(rs))
                .unwrap_or_else(|| alphabet.empty_symbol())
        };
        let (s_prev, s_cur) = (sym(prev), sym(cur));
        let tuple_changed = prev.tuple_of(o) != cur.tuple_of(o);
        out.push(StepObservation {
            role: s_cur,
            role_changed: s_prev != s_cur,
            object_changed: s_prev != s_cur || tuple_changed,
            db_changed: prev != cur,
        });
    }
    out
}

/// The pattern word of a sequence of observations.
#[must_use]
pub fn pattern_of(obs: &[StepObservation]) -> MigrationPattern {
    obs.iter().map(|s| s.role).collect()
}

/// Whether the observed pattern is of the given kind.
#[must_use]
pub fn is_kind(obs: &[StepObservation], empty_sym: u32, kind: PatternKind) -> bool {
    match kind {
        PatternKind::All => true,
        PatternKind::ImmediateStart => obs.first().is_none_or(|s| s.role != empty_sym),
        PatternKind::Proper => obs.iter().skip(1).all(|s| s.object_changed),
        PatternKind::Lazy => obs.iter().skip(1).all(|s| s.role_changed),
    }
}

/// Whether a pattern word has the well-formed shape `∅*Ω₊*∅*`
/// (Definition 3.2): once an object leaves the database it never returns.
#[must_use]
pub fn is_well_formed(word: &[u32], empty_sym: u32) -> bool {
    let mut state = 0u8; // 0 = leading ∅s, 1 = inside Ω₊, 2 = trailing ∅s
    for &s in word {
        state = match (state, s == empty_sym) {
            (0, true) => 0,
            (0 | 1, false) => 1,
            (1 | 2, true) => 2,
            _ => return false,
        };
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_lang::{parse_transactions, run_trace, Assignment};
    use migratory_model::schema::university_schema;
    use migratory_model::Value;

    #[test]
    fn well_formed_shapes() {
        // ∅ = 0.
        assert!(is_well_formed(&[], 0));
        assert!(is_well_formed(&[0, 0], 0));
        assert!(is_well_formed(&[0, 1, 2, 0, 0], 0));
        assert!(is_well_formed(&[1, 1], 0));
        assert!(!is_well_formed(&[1, 0, 1], 0), "objects are created at most once");
        assert!(!is_well_formed(&[0, 1, 0, 0, 2], 0));
    }

    #[test]
    fn observation_and_classification() {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let ts = parse_transactions(
            &s,
            r#"
            transaction Mk(x, n) { create(PERSON, { SSN = x, Name = n }); }
            transaction Up(x, n) { modify(PERSON, { SSN = x }, { Name = n }); }
            transaction St(x) {
              specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
            }
            transaction Rm(x) { delete(PERSON, { SSN = x }); }
        "#,
        )
        .unwrap();
        let mk = ts.get("Mk").unwrap();
        let up = ts.get("Up").unwrap();
        let st = ts.get("St").unwrap();
        let rm = ts.get("Rm").unwrap();
        let one = Assignment::new(vec![Value::str("1"), Value::str("a")]);
        let one_b = Assignment::new(vec![Value::str("1"), Value::str("b")]);
        let just1 = Assignment::new(vec![Value::str("1")]);

        // Run: create o1; rename; specialize; rename again (no-op name), delete.
        let trace = run_trace(
            &s,
            &migratory_model::Instance::empty(),
            [
                (mk, &one),
                (up, &one_b),
                (st, &just1),
                (up, &one_b), // same name: object unchanged
                (rm, &just1),
            ],
        )
        .unwrap();
        let obs = observe(&s, &a, &trace, migratory_model::Oid(1));
        assert_eq!(obs.len(), 5);
        let p = pattern_of(&obs);
        // [P] [P] [S] [S] ∅
        assert_eq!(p[4], a.empty_symbol());
        assert_eq!(p[0], p[1]);
        assert_ne!(p[1], p[2]);
        assert_eq!(p[2], p[3]);

        assert!(is_kind(&obs, 0, PatternKind::All));
        assert!(is_kind(&obs, 0, PatternKind::ImmediateStart));
        // Step 4 (second Up with same name) changed nothing about o1.
        assert!(!is_kind(&obs, 0, PatternKind::Proper));
        assert!(!is_kind(&obs, 0, PatternKind::Lazy));

        // Without the idempotent step it is proper but not lazy (rename
        // keeps the role set).
        let trace2 = run_trace(
            &s,
            &migratory_model::Instance::empty(),
            [(mk, &one), (up, &one_b), (st, &just1), (rm, &just1)],
        )
        .unwrap();
        let obs2 = observe(&s, &a, &trace2, migratory_model::Oid(1));
        assert!(is_kind(&obs2, 0, PatternKind::Proper));
        assert!(!is_kind(&obs2, 0, PatternKind::Lazy));

        // Pure role-changing run is lazy.
        let trace3 = run_trace(
            &s,
            &migratory_model::Instance::empty(),
            [(mk, &one), (st, &just1), (rm, &just1)],
        )
        .unwrap();
        let obs3 = observe(&s, &a, &trace3, migratory_model::Oid(1));
        assert!(is_kind(&obs3, 0, PatternKind::Lazy));
    }

    #[test]
    fn uncreated_objects_observe_empties() {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let ts = parse_transactions(
            &s,
            r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
        )
        .unwrap();
        let mk = ts.get("Mk").unwrap();
        let arg = Assignment::new(vec![Value::str("1")]);
        let trace =
            run_trace(&s, &migratory_model::Instance::empty(), [(mk, &arg), (mk, &arg)]).unwrap();
        // o9 never exists: pattern ∅∅; not immediate-start (non-trivially),
        // proper holds only for the one-step prefix rule (step 2 no change).
        let obs = observe(&s, &a, &trace, migratory_model::Oid(9));
        assert_eq!(pattern_of(&obs), vec![0, 0]);
        assert!(!is_kind(&obs, 0, PatternKind::ImmediateStart));
        assert!(!is_kind(&obs, 0, PatternKind::Proper));
        // o2 is created at step 2: ∅ then [P] — proper and lazy (single ∅
        // prefix), not immediate-start.
        let obs2 = observe(&s, &a, &trace, migratory_model::Oid(2));
        assert!(!is_kind(&obs2, 0, PatternKind::ImmediateStart));
        assert!(is_kind(&obs2, 0, PatternKind::Proper));
        assert!(is_kind(&obs2, 0, PatternKind::Lazy));
    }

    #[test]
    fn kind_display_names() {
        let names: Vec<String> = PatternKind::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, vec!["all", "immediate-start", "proper", "lazy"]);
    }
}

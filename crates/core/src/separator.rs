//! Hyperplanes and separators (the proof machinery of Theorem 3.2(1)).
//!
//! A *hyperplane* on an attribute set `S` with respect to a constant set
//! `C` fixes, for every attribute, either one constant of `C` or
//! "different from every constant of C" (*free*). A hyperplane is refined
//! by an equivalence relation over its free attributes recording which of
//! them hold equal values. A *separator vertex* is a triple
//! `(ω, hyperplane, equivalence)`; every object of a database matches
//! exactly one vertex (Lemma 3.7), and SL transactions cannot distinguish
//! objects matching the same vertex (Lemma 3.8) — which is why the
//! migration graph over these vertices captures the pattern families.

use crate::alphabet::RoleAlphabet;
use migratory_model::{AttrId, Instance, Oid, RoleSet, Schema, Tuple, Value};

/// Per-attribute hyperplane choice.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Choice {
    /// The attribute equals `constants[i]`.
    Eq(u16),
    /// The attribute differs from every constant (`Att₊`).
    Free,
}

/// A separator vertex `(ω, Γ, [r])`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VertexKey {
    /// Role-set symbol (non-empty).
    pub role: u32,
    /// Hyperplane choice per attribute of `A_ω`, in `AttrId` order.
    pub choices: Vec<Choice>,
    /// Equivalence classes over the free attributes, as a canonical
    /// restricted-growth string (class of the i-th free attribute;
    /// first occurrence of each class index is increasing).
    pub partition: Vec<u8>,
}

/// The sorted attribute list `A_ω` of a role set.
#[must_use]
pub fn attrs_of_role(schema: &Schema, rs: RoleSet) -> Vec<AttrId> {
    schema.attrs_of_class_set(rs.classes()).iter().collect()
}

/// The vertex matched by object `o` in `db` (Lemma 3.7), or `None` when
/// the object does not occur.
#[must_use]
pub fn vertex_of(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    constants: &[Value],
    db: &Instance,
    o: Oid,
) -> Option<VertexKey> {
    let cs = db.role_set(o);
    if cs.is_empty() {
        return None;
    }
    let rs = RoleSet::new(schema, cs).ok()?;
    let role = alphabet.symbol_of(rs)?;
    let attrs = attrs_of_role(schema, rs);
    let tuple = db.tuple_ref(o)?;
    Some(key_of_tuple(role, &attrs, constants, tuple))
}

/// Compute the key of a tuple over the given attributes.
#[must_use]
pub fn key_of_tuple(role: u32, attrs: &[AttrId], constants: &[Value], tuple: &Tuple) -> VertexKey {
    let mut choices = Vec::with_capacity(attrs.len());
    let mut free_values: Vec<&Value> = Vec::new();
    for &a in attrs {
        let v = tuple.get(a).expect("instance invariant: total attribute map");
        match constants.iter().position(|c| c == v) {
            Some(i) => choices.push(Choice::Eq(i as u16)),
            None => {
                choices.push(Choice::Free);
                free_values.push(v);
            }
        }
    }
    // Canonical restricted-growth string over free attribute values.
    let mut partition = Vec::with_capacity(free_values.len());
    let mut reps: Vec<&Value> = Vec::new();
    for v in free_values {
        match reps.iter().position(|r| *r == v) {
            Some(i) => partition.push(i as u8),
            None => {
                partition.push(reps.len() as u8);
                reps.push(v);
            }
        }
    }
    VertexKey { role, choices, partition }
}

/// Build the canonical single-object database `d_{v}` of Lemma 3.9: one
/// object `o₁` matching the vertex, with the `j`-th free equivalence
/// class holding the fresh value `pⱼ = Fresh(j)`.
#[must_use]
pub fn canonical_db(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    constants: &[Value],
    key: &VertexKey,
) -> Instance {
    let rs = alphabet.role_set(key.role);
    let attrs = attrs_of_role(schema, rs);
    debug_assert_eq!(attrs.len(), key.choices.len());
    let mut values = std::collections::BTreeMap::new();
    let mut free_i = 0usize;
    for (&a, choice) in attrs.iter().zip(&key.choices) {
        let v = match choice {
            Choice::Eq(i) => constants[*i as usize].clone(),
            Choice::Free => {
                let class = key.partition[free_i];
                free_i += 1;
                Value::Fresh(u32::from(class))
            }
        };
        values.insert(a, v);
    }
    let mut db = Instance::empty();
    db.create(rs.classes(), values);
    db
}

/// Number of free equivalence classes of a key (the `l` of Lemma 3.9).
#[must_use]
pub fn num_free_classes(key: &VertexKey) -> usize {
    key.partition.iter().map(|&c| c as usize + 1).max().unwrap_or(0)
}

/// All canonical partitions (restricted growth strings) of `n` elements —
/// Bell(n) many. Used by the full-space ablation.
#[must_use]
pub fn all_partitions(n: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut cur = vec![0u8; n];
    fn rec(i: usize, n: usize, maxc: u8, cur: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if i == n {
            out.push(cur.clone());
            return;
        }
        for c in 0..=maxc {
            cur[i] = c;
            rec(i + 1, n, maxc.max(c + 1), cur, out);
        }
    }
    if n == 0 {
        out.push(Vec::new());
    } else {
        rec(0, n, 0, &mut cur, &mut out);
    }
    out
}

/// Enumerate the **entire** separator vertex space `V_Σ` (every non-empty
/// role set × every hyperplane × every equivalence) — the paper's
/// construction before reachability pruning. Exponential; exposed for the
/// ablation benchmark and for exhaustiveness tests on tiny inputs.
#[must_use]
pub fn enumerate_full_space(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    constants: &[Value],
) -> Vec<VertexKey> {
    let mut out = Vec::new();
    let k = constants.len();
    for role in alphabet.nonempty_symbols() {
        let attrs = attrs_of_role(schema, alphabet.role_set(role));
        let n = attrs.len();
        // Odometer over (k+1)^n hyperplanes.
        let mut digits = vec![0usize; n];
        loop {
            let choices: Vec<Choice> = digits
                .iter()
                .map(|&d| if d < k { Choice::Eq(d as u16) } else { Choice::Free })
                .collect();
            let free_count = choices.iter().filter(|c| **c == Choice::Free).count();
            for partition in all_partitions(free_count) {
                out.push(VertexKey { role, choices: choices.clone(), partition });
            }
            // Advance.
            let mut pos = 0;
            loop {
                if pos == n {
                    break;
                }
                digits[pos] += 1;
                if digits[pos] <= k {
                    break;
                }
                digits[pos] = 0;
                pos += 1;
            }
            if pos == n {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_model::schema::university_schema;
    use std::collections::BTreeMap;

    fn setup() -> (Schema, RoleAlphabet, Vec<Value>) {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let constants = vec![Value::str("c1"), Value::int(7)];
        (s, a, constants)
    }

    #[test]
    fn lemma_3_7_each_object_matches_one_vertex() {
        let (s, a, constants) = setup();
        let person = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        let mut db = Instance::empty();
        db.create(
            migratory_model::ClassSet::singleton(person),
            BTreeMap::from([(ssn, Value::str("c1")), (name, Value::str("weird"))]),
        );
        let key = vertex_of(&s, &a, &constants, &db, Oid(1)).unwrap();
        assert_eq!(key.choices, vec![Choice::Eq(0), Choice::Free]);
        assert_eq!(key.partition, vec![0]);
        assert!(vertex_of(&s, &a, &constants, &db, Oid(9)).is_none());
    }

    #[test]
    fn equal_free_values_share_a_class() {
        let (s, a, constants) = setup();
        let person = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        let mk = |v1: &str, v2: &str| {
            let mut db = Instance::empty();
            db.create(
                migratory_model::ClassSet::singleton(person),
                BTreeMap::from([(ssn, Value::str(v1)), (name, Value::str(v2))]),
            );
            vertex_of(&s, &a, &constants, &db, Oid(1)).unwrap()
        };
        assert_eq!(mk("x", "x").partition, vec![0, 0]);
        assert_eq!(mk("x", "y").partition, vec![0, 1]);
        // Canonical: different value pairs give the same key.
        assert_eq!(mk("x", "y"), mk("p", "q"));
        assert_ne!(mk("x", "x"), mk("x", "y"));
    }

    #[test]
    fn canonical_db_matches_its_own_key() {
        let (s, a, constants) = setup();
        for key in enumerate_full_space(&s, &a, &constants).into_iter().take(500) {
            let db = canonical_db(&s, &a, &constants, &key);
            db.check_invariants(&s).unwrap();
            let key2 = vertex_of(&s, &a, &constants, &db, Oid(1)).unwrap();
            assert_eq!(key, key2, "canonical database must match its vertex");
        }
    }

    #[test]
    fn partitions_are_bell_numbers() {
        assert_eq!(all_partitions(0).len(), 1);
        assert_eq!(all_partitions(1).len(), 1);
        assert_eq!(all_partitions(2).len(), 2);
        assert_eq!(all_partitions(3).len(), 5);
        assert_eq!(all_partitions(4).len(), 15);
        // Restricted-growth canonical form.
        for p in all_partitions(3) {
            assert_eq!(p[0], 0);
            for i in 1..p.len() {
                let max_before = p[..i].iter().copied().max().unwrap_or(0);
                assert!(p[i] <= max_before + 1);
            }
        }
    }

    #[test]
    fn full_space_size() {
        // PERSON role set: 2 attrs, k = 2 constants: hyperplanes = 3² = 9;
        // free-count 0 → 1 partition ×4, 1 → 1 ×4, 2 → 2 ×1: total 4+4+2=10.
        let (s, a, constants) = setup();
        let person_sym = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        let count = enumerate_full_space(&s, &a, &constants)
            .into_iter()
            .filter(|k| k.role == person_sym)
            .count();
        assert_eq!(count, 10);
    }

    #[test]
    fn num_free_classes_counts() {
        let key = VertexKey {
            role: 1,
            choices: vec![Choice::Free, Choice::Free, Choice::Eq(0)],
            partition: vec![0, 1],
        };
        assert_eq!(num_free_classes(&key), 2);
        let key2 = VertexKey { role: 1, choices: vec![Choice::Eq(0)], partition: vec![] };
        assert_eq!(num_free_classes(&key2), 0);
    }
}

//! The migration-graph analyzer — Theorem 3.2(1) as an algorithm.
//!
//! Given an SL transaction schema Σ, build the migration graph G_Σ whose
//! walks from `vs` spell exactly the migration patterns of Σ:
//!
//! * **vertices** are the separator triples `(ω, hyperplane, equivalence)`
//!   of [`crate::separator`] — by Lemma 3.8, Σ cannot distinguish objects
//!   matching the same vertex, so per-vertex behaviour is well defined;
//! * **creation edges** `vs → v` arise from running every transaction on
//!   the empty database under every canonical assignment (Lemma 3.9's
//!   claim shows constants ∪ fresh values suffice);
//! * **interior edges** `v → v′` and **deletion edges** `v → vt` arise
//!   from running every transaction on the canonical one-object database
//!   `d_v` under assignments over constants ∪ {p₁…p_l} ∪ {ν₁…ν_m}.
//!
//! Two search modes are provided (the ablation of DESIGN.md §6):
//! *reachable-only* (default — only vertices reachable from creations are
//! materialized) and *full-space* (the paper's whole `V_Σ`, exponential).
//! Edge computation can optionally run on multiple threads.

use crate::alphabet::RoleAlphabet;
use crate::error::CoreError;
use crate::graph::{EdgeInfo, MigrationGraph, VS, VT};
use crate::pattern::PatternKind;
use crate::separator::{
    canonical_db, enumerate_full_space, num_free_classes, vertex_of, VertexKey,
};
use migratory_automata::{concat as nfa_concat, Dfa, Nfa, Regex};
use migratory_lang::{run, validate_schema, Assignment, Language, TransactionSchema};
use migratory_model::{Instance, Oid, Schema, Value};
use std::collections::HashMap;

/// Base tag for the ν (per-assignment fresh) values; the p values of
/// canonical databases use tags `0..128`.
const NU_BASE: u32 = 1 << 16;

/// Options controlling [`analyze`].
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Materialize the full separator space instead of only reachable
    /// vertices (ablation; exponential).
    pub full_space: bool,
    /// Compute edges of each frontier in parallel with crossbeam scoped
    /// threads.
    pub parallel: bool,
    /// Abort when more than this many vertices get materialized.
    pub max_vertices: usize,
    /// Extra constants to refine hyperplanes with (used by the
    /// reachability procedures of Section 5, whose assertions mention
    /// constants of their own).
    pub extra_constants: Vec<Value>,
    /// Enumerate the *full product* of assignment values instead of the
    /// deduplicated canonical (restricted-growth) generator — the ablation
    /// of DESIGN.md §6.2. Identical results, strictly more ground runs.
    pub naive_assignments: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            full_space: false,
            parallel: false,
            max_vertices: 200_000,
            extra_constants: Vec::new(),
            naive_assignments: false,
        }
    }
}

/// Statistics of an analysis run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AnalyzeStats {
    /// Interior vertices materialized.
    pub vertices: usize,
    /// Edges of the migration graph.
    pub edges: usize,
    /// Ground transactions executed.
    pub runs: u64,
}

/// The result of analyzing an SL schema.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The migration graph (vertex `v ≥ 2` has key `keys[v-2]`).
    pub graph: MigrationGraph,
    /// The separator key of each interior vertex.
    pub keys: Vec<VertexKey>,
    /// The constant set `C` used for hyperplanes.
    pub constants: Vec<Value>,
    /// Search statistics.
    pub stats: AnalyzeStats,
}

/// Which transaction/assignment realizes an edge — kept per edge for the
/// reachability procedures of Section 5.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EdgeWitness {
    /// Edge endpoints.
    pub from: u32,
    /// Edge endpoints.
    pub to: u32,
    /// Index of the transaction in the schema.
    pub transaction: usize,
    /// Whether this realization *updates the object* (role set or
    /// attribute change) — script schemas (Definition 5.3) only order the
    /// updating applications.
    pub updates_object: bool,
}

/// Analyze an SL transaction schema over one component, producing its
/// migration graph (Theorem 3.2(1)). Fails with [`CoreError::NotSl`] on
/// CSL input — those families are r.e.-complete (Section 4), not regular.
pub fn analyze(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    opts: &AnalyzeOptions,
) -> Result<Analysis, CoreError> {
    let (analysis, _) = analyze_with_witnesses(schema, alphabet, ts, opts)?;
    Ok(analysis)
}

/// [`analyze`], additionally returning one witness per edge.
pub fn analyze_with_witnesses(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    opts: &AnalyzeOptions,
) -> Result<(Analysis, Vec<EdgeWitness>), CoreError> {
    if ts.language() != Language::Sl {
        return Err(CoreError::NotSl);
    }
    validate_schema(schema, ts)?;
    let mut constants: Vec<Value> = ts.constants().into_iter().collect();
    constants.extend(opts.extra_constants.iter().cloned());
    constants.sort();
    constants.dedup();
    assert!(
        constants.iter().all(|c| !c.is_fresh()),
        "schema constants must not use the reserved Fresh values"
    );

    let mut graph = MigrationGraph::new();
    let mut keys: Vec<VertexKey> = Vec::new();
    let mut index: HashMap<VertexKey, u32> = HashMap::new();
    let mut witnesses: Vec<EdgeWitness> = Vec::new();
    let mut stats = AnalyzeStats::default();

    let intern = |key: VertexKey,
                  graph: &mut MigrationGraph,
                  keys: &mut Vec<VertexKey>,
                  index: &mut HashMap<VertexKey, u32>|
     -> u32 {
        if let Some(&v) = index.get(&key) {
            return v;
        }
        let v = graph.add_vertex(key.role);
        keys.push(key.clone());
        index.insert(key, v);
        v
    };

    // Full-space mode materializes every separator vertex up front.
    let mut frontier: Vec<u32> = Vec::new();
    if opts.full_space {
        for key in enumerate_full_space(schema, alphabet, &constants) {
            let v = intern(key, &mut graph, &mut keys, &mut index);
            frontier.push(v);
            if keys.len() > opts.max_vertices {
                return Err(CoreError::VertexBudgetExceeded(opts.max_vertices));
            }
        }
    }

    // Creation edges: run every transaction on the empty database.
    for (ti, t) in ts.transactions().iter().enumerate() {
        for args in assignments(&constants, 0, t.params.len(), opts.naive_assignments) {
            stats.runs += 1;
            let next = run(schema, &Instance::empty(), t, &args).expect("validated");
            for o in next.objects() {
                let cs = next.role_set(o);
                let comp = cs.first().map(|c| schema.component_of(c));
                if comp != Some(alphabet.component()) {
                    continue;
                }
                if let Some(key) = vertex_of(schema, alphabet, &constants, &next, o) {
                    let v = intern(key, &mut graph, &mut keys, &mut index);
                    if (v as usize - 2) == keys.len() - 1 && !opts.full_space {
                        frontier.push(v);
                    }
                    // Creation changes the object (∅ → ω): always proper.
                    graph.add_edge(VS, v, EdgeInfo { proper: true });
                    witnesses.push(EdgeWitness {
                        from: VS,
                        to: v,
                        transaction: ti,
                        updates_object: true,
                    });
                }
            }
        }
        if keys.len() > opts.max_vertices {
            return Err(CoreError::VertexBudgetExceeded(opts.max_vertices));
        }
    }

    // Interior and deletion edges, breadth-first over new vertices.
    let naive = opts.naive_assignments;
    while !frontier.is_empty() {
        let batch = std::mem::take(&mut frontier);
        let results: Vec<(u32, Vec<(usize, Target)>)> = if opts.parallel && batch.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|&v| {
                        let key = keys[v as usize - 2].clone();
                        let constants = &constants;
                        scope.spawn(move || {
                            (v, vertex_edges(schema, alphabet, ts, constants, &key, naive))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("no panics")).collect()
            })
        } else {
            batch
                .iter()
                .map(|&v| {
                    let key = keys[v as usize - 2].clone();
                    (v, vertex_edges(schema, alphabet, ts, &constants, &key, naive))
                })
                .collect()
        };
        for (v, edges) in results {
            for (ti, target) in edges {
                stats.runs += 1;
                match target {
                    Target::Deleted => {
                        graph.add_edge(v, VT, EdgeInfo { proper: true });
                        witnesses.push(EdgeWitness {
                            from: v,
                            to: VT,
                            transaction: ti,
                            updates_object: true,
                        });
                    }
                    Target::Moved { key, proper } => {
                        let before = keys.len();
                        let v2 = intern(key, &mut graph, &mut keys, &mut index);
                        if keys.len() > before && !opts.full_space {
                            frontier.push(v2);
                        }
                        graph.add_edge(v, v2, EdgeInfo { proper });
                        witnesses.push(EdgeWitness {
                            from: v,
                            to: v2,
                            transaction: ti,
                            updates_object: proper,
                        });
                    }
                }
            }
            if keys.len() > opts.max_vertices {
                return Err(CoreError::VertexBudgetExceeded(opts.max_vertices));
            }
        }
    }

    stats.vertices = keys.len();
    stats.edges = graph.num_edges();
    Ok((Analysis { graph, keys, constants, stats }, witnesses))
}

/// One observed outcome for the canonical object.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Target {
    Deleted,
    Moved { key: VertexKey, proper: bool },
}

/// All `(transaction index, outcome)` pairs observable from a vertex's
/// canonical database (deduplicated).
fn vertex_edges(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    constants: &[Value],
    key: &VertexKey,
    naive: bool,
) -> Vec<(usize, Target)> {
    let db = canonical_db(schema, alphabet, constants, key);
    let o1 = Oid(1);
    let before_tuple = db.tuple_of(o1);
    let l = num_free_classes(key);
    let mut out: Vec<(usize, Target)> = Vec::new();
    for (ti, t) in ts.transactions().iter().enumerate() {
        for args in assignments(constants, l, t.params.len(), naive) {
            let next = run(schema, &db, t, &args).expect("validated");
            let target = if next.occurs(o1) {
                let key2 = vertex_of(schema, alphabet, constants, &next, o1)
                    .expect("occurring object matches a vertex");
                let proper = key2 != *key || next.tuple_of(o1) != before_tuple;
                Target::Moved { key: key2, proper }
            } else {
                Target::Deleted
            };
            let entry = (ti, target);
            if !out.contains(&entry) {
                out.push(entry);
            }
        }
    }
    out
}

/// Canonical assignments over `constants ∪ {p₀…p_{l−1}} ∪ {ν…}`:
/// ν values are used in restricted-growth order (`ν_k` only after
/// `ν_{k−1}` has appeared), which enumerates every behaviour class of
/// Lemma 3.9's claim without redundant fresh renamings.
fn assignments(constants: &[Value], l: usize, m: usize, naive: bool) -> Vec<Assignment> {
    let mut base: Vec<Value> = constants.to_vec();
    for j in 0..l {
        base.push(Value::Fresh(j as u32));
    }
    if naive {
        // Full product over base ∪ {ν₀…ν_{m−1}}: every behaviour class of
        // the canonical generator appears here too (with redundant fresh
        // renamings), so the analysis result is identical.
        for k in 0..m {
            base.push(Value::Fresh(NU_BASE + k as u32));
        }
        let mut out = Vec::new();
        let mut cur: Vec<Value> = Vec::with_capacity(m);
        fn prod(base: &[Value], m: usize, cur: &mut Vec<Value>, out: &mut Vec<Assignment>) {
            if cur.len() == m {
                out.push(Assignment::new(cur.clone()));
                return;
            }
            for v in base {
                cur.push(v.clone());
                prod(base, m, cur, out);
                cur.pop();
            }
        }
        prod(&base, m, &mut cur, &mut out);
        return out;
    }
    let mut out = Vec::new();
    let mut cur: Vec<Value> = Vec::with_capacity(m);
    fn rec(
        base: &[Value],
        m: usize,
        fresh_used: u32,
        cur: &mut Vec<Value>,
        out: &mut Vec<Assignment>,
    ) {
        if cur.len() == m {
            out.push(Assignment::new(cur.clone()));
            return;
        }
        for v in base {
            cur.push(v.clone());
            rec(base, m, fresh_used, cur, out);
            cur.pop();
        }
        for k in 0..=fresh_used {
            cur.push(Value::Fresh(NU_BASE + k));
            rec(base, m, fresh_used.max(k + 1), cur, out);
            cur.pop();
            if k == fresh_used {
                break;
            }
        }
    }
    rec(&base, m, 0, &mut cur, &mut out);
    out
}

/// The four pattern-family DFAs of an analyzed schema.
#[derive(Clone, Debug)]
pub struct Families {
    /// 𝓛(Σ) — all patterns.
    pub all: Dfa,
    /// 𝓛ᵢₘₘ(Σ).
    pub imm: Dfa,
    /// 𝓛ₚᵣₒ(Σ).
    pub pro: Dfa,
    /// 𝓛ₗₐ(Σ).
    pub lazy: Dfa,
}

impl Families {
    /// The family of a given kind.
    #[must_use]
    pub fn of(&self, kind: PatternKind) -> &Dfa {
        match kind {
            PatternKind::All => &self.all,
            PatternKind::ImmediateStart => &self.imm,
            PatternKind::Proper => &self.pro,
            PatternKind::Lazy => &self.lazy,
        }
    }

    /// Effectively constructed regular expressions for each family
    /// (Theorem 3.2(1)'s "whose regular expressions can be effectively
    /// constructed").
    #[must_use]
    pub fn regexes(&self) -> [Regex; 4] {
        [
            migratory_automata::dfa_to_regex(&self.all),
            migratory_automata::dfa_to_regex(&self.imm),
            migratory_automata::dfa_to_regex(&self.pro),
            migratory_automata::dfa_to_regex(&self.lazy),
        ]
    }
}

/// Assemble the family DFAs from a migration graph:
///
/// * 𝓛ᵢₘₘ = walk labels (∅-loop at the sink);
/// * 𝓛 = ∅*·𝓛ᵢₘₘ (Corollary 3.6 — the ∅* alternative is subsumed since
///   λ ∈ 𝓛ᵢₘₘ);
/// * 𝓛ₚᵣₒ = (λ∪∅)·(proper walks, no sink loop);
/// * 𝓛ₗₐ = (λ∪∅)·(label-changing walks, no sink loop).
///
/// With an empty transaction schema there are no steps at all and every
/// family is `{λ}`.
#[must_use]
pub fn families(
    graph: &MigrationGraph,
    alphabet: &RoleAlphabet,
    num_transactions: usize,
) -> Families {
    let ns = alphabet.num_symbols();
    let e = alphabet.empty_symbol();
    if num_transactions == 0 {
        let lambda = Dfa::from_nfa(&Nfa::from_regex(&Regex::Epsilon, ns)).minimize();
        return Families {
            all: lambda.clone(),
            imm: lambda.clone(),
            pro: lambda.clone(),
            lazy: lambda,
        };
    }
    let imm_nfa = graph.walks_nfa(ns, e, PatternKind::ImmediateStart);
    let empty_star = Nfa::from_regex(&Regex::star(Regex::Sym(e)), ns);
    let empty_opt = Nfa::from_regex(&Regex::opt(Regex::Sym(e)), ns);
    let all_nfa = nfa_concat(&empty_star, &imm_nfa).expect("same alphabet");
    let pro_nfa = nfa_concat(&empty_opt, &graph.walks_nfa(ns, e, PatternKind::Proper))
        .expect("same alphabet");
    let lazy_nfa =
        nfa_concat(&empty_opt, &graph.walks_nfa(ns, e, PatternKind::Lazy)).expect("same alphabet");
    Families {
        all: Dfa::from_nfa(&all_nfa).minimize(),
        imm: Dfa::from_nfa(&imm_nfa).minimize(),
        pro: Dfa::from_nfa(&pro_nfa).minimize(),
        lazy: Dfa::from_nfa(&lazy_nfa).minimize(),
    }
}

/// Analyze and assemble families in one call.
///
/// ```
/// use migratory_core::{analyze_families, AnalyzeOptions, PatternKind, RoleAlphabet};
/// use migratory_lang::parse_transactions;
/// use migratory_model::{schema::university_schema, RoleSet};
///
/// let schema = university_schema();
/// let alphabet = RoleAlphabet::new(&schema, 0)?;
/// let ts = parse_transactions(&schema, r#"
///     transaction Hire(x) { create(PERSON, { SSN = x, Name = "n" }); }
///     transaction Fire(x) { delete(PERSON, { SSN = x }); }
/// "#)?;
/// let (_, fams) = analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default())?;
/// let p = alphabet
///     .symbol_of(RoleSet::closure_of_named(&schema, &["PERSON"])?)
///     .expect("[PERSON] is a role set");
/// let e = alphabet.empty_symbol();
/// assert!(fams.of(PatternKind::All).accepts(&[p, p, e]));
/// assert!(!fams.of(PatternKind::All).accepts(&[p, e, p]), "no re-creation");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze_families(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    opts: &AnalyzeOptions,
) -> Result<(Analysis, Families), CoreError> {
    let analysis = analyze(schema, alphabet, ts, opts)?;
    let fams = families(&analysis.graph, alphabet, ts.len());
    Ok((analysis, fams))
}

/// Lemma 4.1 — migration patterns never cross weakly-connected
/// components, so the families of a schema over a multi-component
/// database schema decompose as the per-component union
/// `𝓛(Σ) = ⋃ᵢ 𝓛(Σ, Gᵢ)`. This analyzes every component with its own
/// role alphabet (Section 3's weak-connectivity assumption is recovered
/// component by component; SL operations on one component cannot observe
/// another).
pub fn analyze_all_components(
    schema: &Schema,
    ts: &TransactionSchema,
    opts: &AnalyzeOptions,
) -> Result<Vec<(RoleAlphabet, Families)>, CoreError> {
    let mut out = Vec::with_capacity(schema.num_components());
    for comp in 0..schema.num_components() as u32 {
        let alphabet = RoleAlphabet::new(schema, comp)?;
        let (_, fams) = analyze_families(schema, &alphabet, ts, opts)?;
        out.push((alphabet, fams));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use migratory_lang::parse_transactions;
    use migratory_model::schema::university_schema;
    use migratory_model::{RoleSet, SchemaBuilder};

    /// A slim university schema: one attribute total, so the separator
    /// space stays tiny and the explorer equivalence check is cheap.
    fn slim() -> (Schema, RoleAlphabet) {
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &["Id"]).unwrap();
        let s = b.subclass("S", &[p], &[]).unwrap();
        b.subclass("G", &[s], &[]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        (schema, alphabet)
    }

    use migratory_model::Schema;

    const SLIM_TS: &str = r"
        transaction Mk(x) { create(P, { Id = x }); }
        transaction Up(x) { specialize(P, S, { Id = x }, {}); }
        transaction Dn(x) { generalize(S, { Id = x }); }
        transaction Rm(x) { delete(P, { Id = x }); }
    ";

    fn check_against_explorer(schema: &Schema, alphabet: &RoleAlphabet, src: &str, depth: usize) {
        let ts = parse_transactions(schema, src).unwrap();
        let (_, fams) =
            analyze_families(schema, alphabet, &ts, &AnalyzeOptions::default()).unwrap();
        let sets = explore(
            schema,
            alphabet,
            &ts,
            &ExploreConfig { max_steps: depth, ..Default::default() },
        );
        // Every word of length ≤ depth must agree between the DFA and the
        // enumerated ground truth.
        let ns = alphabet.num_symbols();
        let mut words: Vec<Vec<u32>> = vec![vec![]];
        let mut layer = vec![vec![]];
        for _ in 0..depth {
            let mut next = Vec::new();
            for w in &layer {
                for s in 0..ns {
                    let mut w2: Vec<u32> = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            words.extend(next.iter().cloned());
            layer = next;
        }
        for w in &words {
            for (kind, dfa, set) in [
                (PatternKind::All, &fams.all, &sets.all),
                (PatternKind::ImmediateStart, &fams.imm, &sets.imm),
                (PatternKind::Proper, &fams.pro, &sets.pro),
                (PatternKind::Lazy, &fams.lazy, &sets.lazy),
            ] {
                assert_eq!(
                    dfa.accepts(w),
                    set.contains(w),
                    "{kind} family disagrees on {} (analyzer={}, explorer={})",
                    alphabet.display_word(w),
                    dfa.accepts(w),
                    set.contains(w),
                );
            }
        }
    }

    #[test]
    fn analyzer_matches_explorer_on_slim_schema() {
        let (schema, alphabet) = slim();
        check_against_explorer(&schema, &alphabet, SLIM_TS, 3);
    }

    #[test]
    fn naive_assignments_agree_with_canonical() {
        // DESIGN.md §6.2: the restricted-growth canonical generator and
        // the full value product must produce identical graphs and
        // families; the product executes strictly more ground runs.
        let (schema, alphabet) = slim();
        let src = r#"
            transaction Mk(x) { create(P, { Id = x }); }
            transaction Mv(x, y) { modify(P, { Id = x }, { Id = y }); }
            transaction UpV() { specialize(P, S, { Id = "v" }, {}); }
            transaction Rm(x) { delete(P, { Id = x }); }
        "#;
        let ts = parse_transactions(&schema, src).unwrap();
        let (a1, f1) =
            analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
        let (a2, f2) = analyze_families(
            &schema,
            &alphabet,
            &ts,
            &AnalyzeOptions { naive_assignments: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(a1.graph, a2.graph, "same migration graph");
        for kind in PatternKind::ALL {
            assert!(f1.of(kind).equivalent(f2.of(kind)), "{kind} family differs");
        }
        assert!(
            a2.stats.runs > a1.stats.runs,
            "the full product must run more ground transactions ({} vs {})",
            a2.stats.runs,
            a1.stats.runs
        );
    }

    #[test]
    fn analyzer_matches_explorer_with_constants() {
        let (schema, alphabet) = slim();
        // Constants refine the hyperplanes: objects with Id="v" behave
        // differently from others.
        let src = r#"
            transaction Mk(x) { create(P, { Id = x }); }
            transaction UpV() { specialize(P, S, { Id = "v" }, {}); }
            transaction Rn(x) { modify(P, { Id = x }, { Id = "v" }); }
            transaction Rm() { delete(P, { Id = "v" }); }
        "#;
        check_against_explorer(&schema, &alphabet, src, 3);
    }

    #[test]
    fn analyzer_matches_explorer_on_modify_only_properness() {
        let (schema, alphabet) = slim();
        // Up is idempotent on already-S objects; Touch changes values
        // without changing the role set (proper but not lazy).
        let src = r#"
            transaction Mk(x) { create(P, { Id = x }); }
            transaction Touch(x, y) { modify(P, { Id = x }, { Id = y }); }
        "#;
        check_against_explorer(&schema, &alphabet, src, 3);
    }

    #[test]
    fn lemma_4_1_components_decompose() {
        // Two weakly-connected components: P ⊇ S (component of P) and a
        // lone class Q. Patterns never cross components; each component's
        // family is exactly what the per-component explorer observes, and
        // transactions on the other component only contribute repeated
        // role sets (the object is untouched).
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &["Id"]).unwrap();
        b.subclass("S", &[p], &[]).unwrap();
        b.class("Q", &["Jd"]).unwrap();
        let schema = b.build().unwrap();
        assert_eq!(schema.num_components(), 2);
        let src = r"
            transaction MkP(x) { create(P, { Id = x }); }
            transaction UpS(x) { specialize(P, S, { Id = x }, {}); }
            transaction MkQ(x) { create(Q, { Jd = x }); }
            transaction RmQ(x) { delete(Q, { Jd = x }); }
        ";
        let ts = parse_transactions(&schema, src).unwrap();
        let per_comp = analyze_all_components(&schema, &ts, &AnalyzeOptions::default()).unwrap();
        assert_eq!(per_comp.len(), 2);
        for (alphabet, fams) in &per_comp {
            // Agreement with the bounded explorer on this component.
            let sets = explore(
                &schema,
                alphabet,
                &ts,
                &ExploreConfig { max_steps: 3, ..Default::default() },
            );
            for w in sets.all.iter() {
                assert!(fams.all.accepts(w), "component {} missing {w:?}", alphabet.component());
            }
            for w in fams.all.enumerate(3, 10_000) {
                assert!(
                    sets.all.contains(&w),
                    "component {} over-approximates {w:?}",
                    alphabet.component()
                );
            }
        }
        // Cross-component repetition: on the P-component, MkQ can fire
        // while a P-object sits still, so [P][P] is a pattern there.
        let (a0, f0) = &per_comp[0];
        let psym = a0.symbol_of(RoleSet::closure_of_named(&schema, &["P"]).unwrap()).unwrap();
        assert!(f0.all.accepts(&[psym, psym]));
        // And the Q-component cannot see S: its alphabet has ∅ and [Q]
        // only.
        let (a1, _) = &per_comp[1];
        assert_eq!(a1.num_symbols(), 2);
    }

    #[test]
    fn example_3_4_families_closed_forms() {
        // The paper's Example 3.4 on the full Fig. 1 schema.
        let schema = university_schema();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let ts = parse_transactions(
            &schema,
            r"
            transaction T1(n, s, t, m) {
              create(PERSON, { SSN = s, Name = n });
              specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
            }
            transaction T2(s, p, x, d) {
              specialize(STUDENT, GRAD_ASSIST, { SSN = s },
                         { PcAppoint = p, Salary = x, WorksIn = d });
            }
            transaction T3(s) { generalize(EMPLOYEE, { SSN = s }); }
            transaction T4(s) { delete(PERSON, { SSN = s }); }
        ",
        )
        .unwrap();
        let (analysis, fams) = analyze_families(
            &schema,
            &alphabet,
            &ts,
            &AnalyzeOptions { parallel: true, ..Default::default() },
        )
        .unwrap();
        assert!(analysis.stats.vertices > 0);

        let re = |src: &str| {
            let r = alphabet.parse_regex(&schema, src).unwrap();
            Dfa::from_nfa(&Nfa::from_regex(&r, alphabet.num_symbols())).minimize()
        };
        // 𝓛ᵢₘₘ = Init(([S]⁺[G]*)*∅*)  (paper's closed form).
        let imm_expected = Dfa::from_nfa(
            &Nfa::from_regex(
                &{
                    let s = alphabet
                        .symbol_of(RoleSet::closure_of_named(&schema, &["STUDENT"]).unwrap())
                        .unwrap();
                    let g = alphabet
                        .symbol_of(RoleSet::closure_of_named(&schema, &["GRAD_ASSIST"]).unwrap())
                        .unwrap();
                    Regex::concat([
                        Regex::star(Regex::concat([
                            Regex::plus(Regex::Sym(s)),
                            Regex::star(Regex::Sym(g)),
                        ])),
                        Regex::star(Regex::Sym(alphabet.empty_symbol())),
                    ])
                },
                alphabet.num_symbols(),
            )
            .prefix_closure(),
        )
        .minimize();
        // The paper's displayed form accidentally contains pure-∅ words
        // (λ ∈ ([S]+[G]*)* composes with ∅*); strict Definition 3.4
        // excludes them from immediate-start (ω₁ ≠ ∅), so intersect with
        // "λ or non-∅ start". See EXPERIMENTS.md (ex3.4).
        let empty_start = Dfa::from_nfa(&Nfa::from_regex(
            &Regex::concat([
                Regex::Sym(alphabet.empty_symbol()),
                Regex::star(Regex::union(
                    (0..alphabet.num_symbols()).map(Regex::Sym).collect::<Vec<_>>(),
                )),
            ]),
            alphabet.num_symbols(),
        ));
        let imm_expected = imm_expected.intersect(&empty_start.complement()).minimize();
        assert!(
            fams.imm.equivalent(&imm_expected),
            "𝓛ᵢₘₘ ≠ Init(([S]+[G]*)*∅*) ∖ ∅Σ*: counterexample {:?}",
            fams.imm
                .witness_not_subset(&imm_expected)
                .or_else(|| imm_expected.witness_not_subset(&fams.imm))
                .map(|w| alphabet.display_word(&w)),
        );

        // 𝓛 = ∅*·𝓛ᵢₘₘ.
        let all_expected = Dfa::from_nfa(
            &nfa_concat(
                &Nfa::from_regex(
                    &Regex::star(Regex::Sym(alphabet.empty_symbol())),
                    alphabet.num_symbols(),
                ),
                &imm_expected.to_nfa(),
            )
            .unwrap(),
        )
        .minimize();
        assert!(fams.all.equivalent(&all_expected), "𝓛 ≠ ∅*𝓛ᵢₘₘ (Corollary 3.6)");

        // 𝓛ₚᵣₒ = 𝓛ₗₐ = (λ∪∅)·Init([S]([G][S])*(λ∪[G])(λ∪∅)): strict
        // alternation (T1/T2 are idempotent on existing members).
        let pro_expected = re("(λ ∪ ∅) ([STUDENT] ([GRAD_ASSIST] [STUDENT])* [GRAD_ASSIST]? ∅?)?");
        // prefix-close the walk part: build via Init of the inner walk.
        let pro_expected = {
            let s = alphabet
                .symbol_of(RoleSet::closure_of_named(&schema, &["STUDENT"]).unwrap())
                .unwrap();
            let g = alphabet
                .symbol_of(RoleSet::closure_of_named(&schema, &["GRAD_ASSIST"]).unwrap())
                .unwrap();
            let walk = Regex::concat([
                Regex::Sym(s),
                Regex::star(Regex::word([g, s])),
                Regex::opt(Regex::Sym(g)),
                Regex::opt(Regex::Sym(alphabet.empty_symbol())),
            ]);
            let init = Nfa::from_regex(&walk, alphabet.num_symbols()).prefix_closure();
            let with_prefix = nfa_concat(
                &Nfa::from_regex(
                    &Regex::opt(Regex::Sym(alphabet.empty_symbol())),
                    alphabet.num_symbols(),
                ),
                &init,
            )
            .unwrap();
            let _ = pro_expected;
            Dfa::from_nfa(&with_prefix).minimize()
        };
        assert!(
            fams.pro.equivalent(&pro_expected),
            "𝓛ₚᵣₒ ≠ (λ∪∅)·Init([S]([G][S])*[G]?∅?): counterexample {:?}",
            fams.pro
                .witness_not_subset(&pro_expected)
                .or_else(|| pro_expected.witness_not_subset(&fams.pro))
                .map(|w| alphabet.display_word(&w)),
        );
        assert!(fams.lazy.equivalent(&pro_expected), "𝓛ₗₐ = 𝓛ₚᵣₒ in Example 3.4");

        // Family inclusions: pro/lazy words of shape … are within all.
        assert!(fams.imm.is_subset_of(&fams.all));
        assert!(fams.pro.is_subset_of(&fams.all));
        assert!(fams.lazy.is_subset_of(&fams.pro));
    }

    #[test]
    fn full_space_agrees_with_reachable() {
        let (schema, alphabet) = slim();
        let ts = parse_transactions(&schema, SLIM_TS).unwrap();
        let (_, f1) =
            analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
        let (a2, f2) = analyze_families(
            &schema,
            &alphabet,
            &ts,
            &AnalyzeOptions { full_space: true, ..Default::default() },
        )
        .unwrap();
        assert!(f1.all.equivalent(&f2.all));
        assert!(f1.imm.equivalent(&f2.imm));
        assert!(f1.pro.equivalent(&f2.pro));
        assert!(f1.lazy.equivalent(&f2.lazy));
        // Full space materializes at least as many vertices.
        let (a1, _) =
            analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
        assert!(a2.stats.vertices >= a1.stats.vertices);
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let (schema, alphabet) = slim();
        let ts = parse_transactions(&schema, SLIM_TS).unwrap();
        let (_, f1) =
            analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
        let (_, f2) = analyze_families(
            &schema,
            &alphabet,
            &ts,
            &AnalyzeOptions { parallel: true, ..Default::default() },
        )
        .unwrap();
        assert!(f1.all.equivalent(&f2.all) && f1.imm.equivalent(&f2.imm));
        assert!(f1.pro.equivalent(&f2.pro) && f1.lazy.equivalent(&f2.lazy));
    }

    #[test]
    fn csl_input_rejected() {
        let (schema, alphabet) = slim();
        let ts =
            parse_transactions(&schema, "transaction T() { when P() -> delete(P, {}); }").unwrap();
        assert_eq!(
            analyze(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap_err(),
            CoreError::NotSl
        );
    }

    #[test]
    fn empty_schema_families_are_lambda() {
        let (schema, alphabet) = slim();
        let ts = migratory_lang::TransactionSchema::new();
        let (_, fams) =
            analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
        assert!(fams.all.accepts(&[]));
        assert!(!fams.all.accepts(&[0]));
        assert!(!fams.all.accepts(&[1]));
    }

    #[test]
    fn vertex_budget_respected() {
        let (schema, alphabet) = slim();
        let ts = parse_transactions(&schema, SLIM_TS).unwrap();
        let err = analyze(
            &schema,
            &alphabet,
            &ts,
            &AnalyzeOptions { max_vertices: 0, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::VertexBudgetExceeded(0)));
    }

    #[test]
    fn assignment_generator_is_canonical() {
        let asg = assignments(&[Value::int(1)], 1, 2, false);
        // Values per slot: {1, p0, ν0, (ν1 after ν0)} — canonical count:
        // first slot 3 choices; ν1 allowed in slot 2 only after ν0.
        // Enumerate and verify no assignment uses ν1 without ν0 earlier.
        for a in &asg {
            let vals: Vec<&Value> = a.values().collect();
            if vals.contains(&&Value::Fresh(NU_BASE + 1)) {
                let pos1 = vals.iter().position(|v| **v == Value::Fresh(NU_BASE + 1)).unwrap();
                let pos0 = vals.iter().position(|v| **v == Value::Fresh(NU_BASE));
                assert!(pos0.is_some_and(|p0| p0 < pos1), "non-canonical ν use: {vals:?}");
            }
        }
        // 3 base values for slot one… total = 3*4 + ν-restricted cases.
        assert!(asg.len() > 9);
        assert!(asg.iter().all(|a| a.len() == 2));
    }
}

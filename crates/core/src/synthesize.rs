//! Synthesis of SL transactions from a regular inventory — Lemma 3.4 /
//! Theorem 3.2(2).
//!
//! Given a regular expression η over the non-empty role sets of a
//! component whose isa-root carries at least three attributes `A, B, C`,
//! build a transaction schema Σ_η that *characterizes* η:
//!
//! * `A` identifies the migration-graph vertex an object currently sits
//!   on (`A = h(u)`);
//! * `B` receives the transaction parameter `x` and selects the outgoing
//!   edge (values `1..k−1` pick a specific edge; anything else the last);
//! * `C` is the processing mark. The single transaction T_η carries two
//!   block sets: objects entering with `C = 0` are processed by set A
//!   (marks 2 → 1, leave at 10), objects entering with `C = 10` by set B
//!   (marks 3 → 4, leave at 0). Every application moves **every** live
//!   object along an edge and flips `C` — the paper's refinement ("the
//!   value for the attribute C of each object will switch between, say,
//!   0 and 10") — so objects cannot stand still (which keeps 𝓛ᵢₘₘ exactly
//!   the walk language) and every step is proper.
//!
//! The transaction: `create` at the source vertex, the two block sets
//! (mark, then per-edge `mig`/`delete` with branch conditions on `B`),
//! and the final round flips.

use crate::alphabet::RoleAlphabet;
use crate::error::CoreError;
use crate::graph::{MigrationGraph, VS, VT};
use migratory_automata::Regex;
use migratory_lang::{
    con, mig_ops, var, AtomicUpdate, GuardedUpdate, Transaction, TransactionSchema,
};
use migratory_model::{Atom, AttrId, CmpOp, Condition, RoleSet, Schema, Term, Value};
use std::collections::BTreeMap;

/// The synthesis result: the schema Σ_η plus the migration graph it was
/// driven by (useful for stating the expected families in tests/benches).
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The singleton SL schema {T_η(x)}.
    pub transactions: TransactionSchema,
    /// The migration graph G_η.
    pub graph: MigrationGraph,
}

/// Synthesize an SL schema characterizing η (Theorem 3.2(2) items (a)–(c)).
pub fn synthesize(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    eta: &Regex,
) -> Result<Synthesis, CoreError> {
    let graph = MigrationGraph::from_regex(eta, alphabet.empty_symbol())?;
    from_graph(schema, alphabet, graph)
}

/// Synthesize the *lazy* companion schema Σ′ of Lemma 3.4(2): built from
/// the lazy contraction Ĝ of G_η, its lazy family is
/// `f_rr(Init(∅*η∅*))`-shaped.
pub fn synthesize_lazy(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    eta: &Regex,
) -> Result<Synthesis, CoreError> {
    let graph = MigrationGraph::from_regex(eta, alphabet.empty_symbol())?
        .lazy_contraction(alphabet.empty_symbol());
    from_graph(schema, alphabet, graph)
}

/// Build Σ from an explicit migration graph.
pub fn from_graph(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    graph: MigrationGraph,
) -> Result<Synthesis, CoreError> {
    let root = schema.component_root(alphabet.component());
    let root_attrs = schema.attrs_of(root);
    if root_attrs.len() < 3 {
        return Err(CoreError::RootNeedsThreeAttrs);
    }
    let (a, b, c) = (root_attrs[0], root_attrs[1], root_attrs[2]);

    // Default values for every attribute the migrations may need to set.
    let mut mig_values: BTreeMap<AttrId, Term> = BTreeMap::new();
    for class in schema.component_classes(alphabet.component()).iter() {
        for &attr in schema.attrs_of(class) {
            mig_values.insert(attr, con(0));
        }
    }

    let h = |v: u32| -> Value { Value::str(&format!("@v{v}")) };

    // One transaction with two block sets: objects entering with C = 0 are
    // processed by set A (marks 2 → 1) and leave with C = 10; objects
    // entering with C = 10 by set B (marks 3 → 4) and leave with C = 0.
    // Every application therefore moves EVERY live object along an edge
    // and flips C — no object can stand still, and every step is proper
    // (the paper's "switch between, say, 0 and 10" refinement).
    let mut steps: Vec<AtomicUpdate> = Vec::new();

    // create(R, {A = h(vs), B = x, C = 0, extras = 0}).
    let mut create_cond = Condition::from_atoms([
        Atom::eq_const(a, h(VS)),
        Atom { attr: b, op: CmpOp::Eq, term: var(0) },
        Atom::eq_const(c, 0),
    ]);
    for &extra in &root_attrs[3..] {
        create_cond.push(Atom::eq_const(extra, 0));
    }
    steps.push(AtomicUpdate::Create { class: root, gamma: create_cond });

    for (round_in, processing, done) in [(0i64, 2i64, 1i64), (10, 3, 4)] {
        // Per-vertex blocks, source first then interior vertices.
        for u in std::iter::once(VS).chain(graph.interior()) {
            let succ: Vec<u32> = graph.successors(u).collect();
            if succ.is_empty() {
                continue;
            }
            let at_u = |extra: Vec<Atom>| -> Condition {
                let mut cond =
                    Condition::from_atoms([Atom::eq_const(a, h(u)), Atom::eq_const(c, processing)]);
                for at in extra {
                    cond.push(at);
                }
                cond
            };
            // Mark: objects at u entering this round.
            steps.push(AtomicUpdate::Modify {
                class: root,
                select: Condition::from_atoms([
                    Atom::eq_const(a, h(u)),
                    Atom::eq_const(c, round_in),
                ]),
                set: Condition::from_atoms([
                    Atom { attr: b, op: CmpOp::Eq, term: var(0) },
                    Atom::eq_const(c, processing),
                ]),
            });
            let k = succ.len();
            for (i, &v) in succ.iter().enumerate() {
                // Branch condition Γ_u(v): B = i+1 for all but the last
                // successor; the last takes everything else.
                let branch: Vec<Atom> = if k == 1 {
                    Vec::new()
                } else if i + 1 < k {
                    vec![Atom::eq_const(b, (i + 1) as i64)]
                } else {
                    (1..k).map(|j| Atom::ne_const(b, j as i64)).collect()
                };
                if v == VT {
                    steps.push(AtomicUpdate::Delete { class: root, gamma: at_u(branch) });
                } else {
                    let target = alphabet.role_set(graph.label(v));
                    let from_role: Option<RoleSet> = if u == VS {
                        None // freshly created objects sit at the bare root
                    } else {
                        Some(alphabet.role_set(graph.label(u)))
                    };
                    steps.extend(mig_ops(
                        schema,
                        from_role,
                        target,
                        &at_u(branch.clone()),
                        &mig_values,
                    )?);
                    // Stamp the new vertex and the done-mark.
                    steps.push(AtomicUpdate::Modify {
                        class: root,
                        select: at_u(branch),
                        set: Condition::from_atoms([
                            Atom::eq_const(a, h(v)),
                            Atom::eq_const(c, done),
                        ]),
                    });
                }
            }
        }
    }

    // Round flips: set-A finishers (C = 1) enter the next round at 10,
    // set-B finishers (C = 4) at 0.
    steps.push(AtomicUpdate::Modify {
        class: root,
        select: Condition::from_atoms([Atom::eq_const(c, 1)]),
        set: Condition::from_atoms([Atom::eq_const(c, 10)]),
    });
    steps.push(AtomicUpdate::Modify {
        class: root,
        select: Condition::from_atoms([Atom::eq_const(c, 4)]),
        set: Condition::from_atoms([Atom::eq_const(c, 0)]),
    });

    let mut ts = TransactionSchema::new();
    ts.add(Transaction {
        name: "T_eta".to_owned(),
        params: vec!["x".to_owned()],
        steps: steps.into_iter().map(GuardedUpdate::plain).collect(),
    })?;
    migratory_lang::validate_schema(schema, &ts)?;
    Ok(Synthesis { transactions: ts, graph })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze_families, AnalyzeOptions};
    use crate::pattern::PatternKind;
    use migratory_automata::{concat as nfa_concat, f_rr_image, Dfa, Nfa};
    use migratory_model::SchemaBuilder;

    /// Fig. 3-style schema: root R{A,B,C} with subclasses p, q.
    fn pq_schema() -> (Schema, RoleAlphabet) {
        let mut bld = SchemaBuilder::new();
        let r = bld.class("R", &["A", "B", "C"]).unwrap();
        bld.subclass("p", &[r], &[]).unwrap();
        bld.subclass("q", &[r], &[]).unwrap();
        let schema = bld.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        (schema, alphabet)
    }

    fn sym(schema: &Schema, alphabet: &RoleAlphabet, class: &str) -> u32 {
        alphabet.symbol_of(RoleSet::closure_of_named(schema, &[class]).unwrap()).unwrap()
    }

    /// `λ ∪ (Ω₊ · Σ*)` — words not starting with ∅.
    fn nonempty_start(alphabet: &RoleAlphabet) -> Dfa {
        let ns = alphabet.num_symbols();
        let any = Regex::union((0..ns).map(Regex::Sym).collect::<Vec<_>>());
        let bad = Regex::concat([Regex::Sym(alphabet.empty_symbol()), Regex::star(any)]);
        Dfa::from_nfa(&Nfa::from_regex(&bad, ns)).complement()
    }

    /// Run the full round trip for η and check all four families.
    fn round_trip(eta: &Regex) {
        let (schema, alphabet) = pq_schema();
        let ns = alphabet.num_symbols();
        let e = alphabet.empty_symbol();
        let synth = synthesize(&schema, &alphabet, eta).unwrap();
        let (_, fams) =
            analyze_families(&schema, &alphabet, &synth.transactions, &AnalyzeOptions::default())
                .unwrap();

        let ns_start = nonempty_start(&alphabet);
        let walks_imm = Dfa::from_nfa(&synth.graph.walks_nfa(ns, e, PatternKind::ImmediateStart));
        let expected_imm = walks_imm.intersect(&ns_start).minimize();
        assert!(
            fams.imm.equivalent(&expected_imm),
            "imm mismatch for {eta}: {:?}",
            fams.imm
                .witness_not_subset(&expected_imm)
                .or_else(|| expected_imm.witness_not_subset(&fams.imm))
                .map(|w| alphabet.display_word(&w)),
        );

        let empty_star = Nfa::from_regex(&Regex::star(Regex::Sym(e)), ns);
        let expected_all =
            Dfa::from_nfa(&nfa_concat(&empty_star, &walks_imm.to_nfa()).unwrap()).minimize();
        assert!(
            fams.all.equivalent(&expected_all),
            "all mismatch for {eta}: {:?}",
            fams.all
                .witness_not_subset(&expected_all)
                .or_else(|| expected_all.witness_not_subset(&fams.all))
                .map(|w| alphabet.display_word(&w)),
        );

        let empty_opt = Nfa::from_regex(&Regex::opt(Regex::Sym(e)), ns);
        for (kind, got) in [(PatternKind::Proper, &fams.pro), (PatternKind::Lazy, &fams.lazy)] {
            let walks = Dfa::from_nfa(&synth.graph.walks_nfa(ns, e, kind)).intersect(&ns_start);
            let expected =
                Dfa::from_nfa(&nfa_concat(&empty_opt, &walks.to_nfa()).unwrap()).minimize();
            assert!(
                got.equivalent(&expected),
                "{kind} mismatch for {eta}: {:?}",
                got.witness_not_subset(&expected)
                    .or_else(|| expected.witness_not_subset(got))
                    .map(|w| alphabet.display_word(&w)),
            );
        }
    }

    #[test]
    fn round_trip_single_symbol() {
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        round_trip(&Regex::Sym(p));
    }

    #[test]
    fn round_trip_word_and_star() {
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        let q = sym(&schema, &alphabet, "q");
        round_trip(&Regex::word([p, q]));
        round_trip(&Regex::star(Regex::Sym(p)));
    }

    #[test]
    fn round_trip_example_3_6_p_qqp_star() {
        // P(QQP)* — Example 3.6 / Fig. 5-6 of the paper.
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        let q = sym(&schema, &alphabet, "q");
        round_trip(&Regex::concat([Regex::Sym(p), Regex::star(Regex::word([q, q, p]))]));
    }

    #[test]
    fn round_trip_example_3_6_second_expression() {
        // ∅*(PQ* ∪ QP*)∅* — the paper's second Example 3.6 expression
        // (the ∅-padding is what 𝓛 adds anyway, so synthesize the core).
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        let q = sym(&schema, &alphabet, "q");
        round_trip(&Regex::union([
            Regex::concat([Regex::Sym(p), Regex::star(Regex::Sym(q))]),
            Regex::concat([Regex::Sym(q), Regex::star(Regex::Sym(p))]),
        ]));
    }

    #[test]
    fn round_trip_branching_and_lambda() {
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        let q = sym(&schema, &alphabet, "q");
        // (p ∪ qq)? — exercises branch conditions and a nullable η.
        round_trip(&Regex::opt(Regex::union([Regex::Sym(p), Regex::word([q, q])])));
    }

    #[test]
    fn role_set_with_both_classes() {
        let (schema, alphabet) = pq_schema();
        let pq =
            alphabet.symbol_of(RoleSet::closure_of_named(&schema, &["p", "q"]).unwrap()).unwrap();
        let p = sym(&schema, &alphabet, "p");
        round_trip(&Regex::concat([Regex::Sym(p), Regex::Sym(pq)]));
    }

    #[test]
    fn lazy_synthesis_matches_f_rr() {
        // Lemma 3.4(2): 𝓛ₗₐ(Σ′) = f_rr(Init(∅*η∅*)).
        let (schema, alphabet) = pq_schema();
        let ns = alphabet.num_symbols();
        let e = alphabet.empty_symbol();
        let p = sym(&schema, &alphabet, "p");
        let q = sym(&schema, &alphabet, "q");
        for eta in [
            Regex::concat([Regex::plus(Regex::Sym(p)), Regex::plus(Regex::Sym(q))]),
            Regex::word([p, p]),
            Regex::star(Regex::Sym(p)),
        ] {
            let synth = synthesize_lazy(&schema, &alphabet, &eta).unwrap();
            let (_, fams) = analyze_families(
                &schema,
                &alphabet,
                &synth.transactions,
                &AnalyzeOptions::default(),
            )
            .unwrap();
            // f_rr(Init(∅*η∅*)).
            let padded = Regex::concat([
                Regex::star(Regex::Sym(e)),
                eta.clone(),
                Regex::star(Regex::Sym(e)),
            ]);
            let init = Nfa::from_regex(&padded, ns).prefix_closure();
            let expected = Dfa::from_nfa(&f_rr_image(&init)).minimize();
            assert!(
                fams.lazy.equivalent(&expected),
                "lazy mismatch for {eta}: {:?}",
                fams.lazy
                    .witness_not_subset(&expected)
                    .or_else(|| expected.witness_not_subset(&fams.lazy))
                    .map(|w| alphabet.display_word(&w)),
            );
        }
    }

    #[test]
    fn needs_three_root_attributes() {
        let mut bld = SchemaBuilder::new();
        let r = bld.class("R", &["A"]).unwrap();
        bld.subclass("p", &[r], &[]).unwrap();
        let schema = bld.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let p = sym(&schema, &alphabet, "p");
        assert_eq!(
            synthesize(&schema, &alphabet, &Regex::Sym(p)).unwrap_err(),
            CoreError::RootNeedsThreeAttrs
        );
    }

    #[test]
    fn synthesized_schema_is_valid_sl() {
        let (schema, alphabet) = pq_schema();
        let p = sym(&schema, &alphabet, "p");
        let synth = synthesize(&schema, &alphabet, &Regex::star(Regex::Sym(p))).unwrap();
        assert_eq!(synth.transactions.len(), 1);
        assert_eq!(synth.transactions.language(), migratory_lang::Language::Sl);
        migratory_lang::validate_schema(&schema, &synth.transactions).unwrap();
    }
}

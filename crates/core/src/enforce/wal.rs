//! Durability for the enforcement engine: a write-ahead log of committed
//! [`Delta`] blocks plus **incremental, per-shard checkpoints** of the
//! cohort/RLE tracking state.
//!
//! # Why deltas are the right log record
//!
//! The paper's migration constraints are *histories*: the monitor's DFA
//! tracking state **is** the constraint (losing it is losing which
//! patterns have been consumed). A transaction application is not
//! replayable from its syntax alone — `Sat` depends on the whole
//! database — but its [`Delta`] change-set is exact and invertible, so a
//! log of committed deltas replays with [`Delta::redo`] in O(touched)
//! per record, independent of database size and with no interpreter in
//! the loop.
//!
//! # Shard-local letter clocks
//!
//! Every partition of the object population carries its **own letter
//! clock** (see `enforce::delta`), so a logged block no longer records
//! one global step offset: a [`WalBlock`] carries, per participating
//! shard, the shard-local clock before the block and *which* of the
//! block's deltas are letters for that shard ([`ShardLetters`]).
//! Recovery folds each shard's sub-log independently — a record is
//! skipped for a shard whose clock (restored from the checkpoint chain)
//! is already past it, and replayed at its original commit granularity
//! otherwise. Gap detection is per shard. For the single
//! [`Monitor`](super::Monitor) everything lives on shard 0 and the
//! shard-local clock *is* the global step counter.
//!
//! # Durability contract
//!
//! A monitor with an attached [`CommitSink`] writes **ahead**: a block
//! of admitted letters reaches the sink after every shard has staged
//! (so only admissible blocks are ever logged) and *before* any
//! in-memory tracking state is written. If the sink fails, the database
//! application is rolled back and the monitor is unchanged — the log
//! never lags the engine. One sink call covers the whole block, so
//! batched admission **group-commits**: one record, one flush, per
//! block.
//!
//! # Incremental checkpoints and the background snapshotter
//!
//! A checkpoint no longer has to re-encode the world. The chain is:
//!
//! * a **base** [`Snapshot`] — the full database heap plus every
//!   shard's tracking state, written atomically (`snapshot.bin`);
//! * zero or more **increments** ([`CheckpointDelta`], `delta-N.bin`) —
//!   only the objects and records dirtied since the previous
//!   checkpoint, plus each shard's (small) cohort tables and clock.
//!   Each increment is a consistent point-in-time capture; folding
//!   base + increments with [`Snapshot::apply`] reproduces the full
//!   state byte-identically.
//!
//! Capturing an increment ([`Monitor::checkpoint_delta`],
//! [`ShardedMonitor::checkpoint_delta`]) costs O(dirty), not O(db) —
//! that is the *only* work on the admission path.
//! [`Wal::begin_checkpoint`] then rotates the live log (a rename) and
//! returns a [`CheckpointJob`] whose encode/write/fsync/prune runs
//! anywhere — inline, or handed to a [`Snapshotter`] thread so the
//! admission path never pays the encoding pause. The log is segmented:
//! rotation seals `wal.log` into `sealed-N.log`, and the job deletes
//! sealed segments once the checkpoint that covers them is durable.
//! WAL truncation cadence therefore no longer pays the full-snapshot
//! pause.
//!
//! Crash-safety of the chain, point by point:
//!
//! * checkpoint files are written to `*.tmp`, fsynced, renamed, and the
//!   directory fsynced — a stale temp file from a failed checkpoint is
//!   ignored (and cleaned) by [`Wal::open`]/[`Wal::load`];
//! * a crash after sealing the log but before the checkpoint lands
//!   leaves `sealed-N.log` without `delta-N.bin`: its records simply
//!   replay on top of the previous checkpoint;
//! * a crash after the checkpoint lands but before segment pruning
//!   leaves covered records on disk: recovery skips them **per shard by
//!   step offset**, so they are never double-applied;
//! * increments from before a newer base snapshot (stale sequence
//!   numbers) are ignored; a gap *inside* the chain is real corruption
//!   and reported as such.
//!
//! # Prefix-closedness and torn tails
//!
//! Records are length-prefixed and checksummed; a crash mid-append
//! leaves a torn final record, which [`Wal::load`] (and
//! [`decode_records`]) silently drop. That is *correct*, not merely
//! tolerated: inventories are prefix-closed (Definition 3.3), so the
//! state reached by any prefix of a committed run is itself a legal
//! monitor state — recovering "one block short" yields a monitor that
//! was valid the instant before the lost commit, and whose caller never
//! saw that commit acknowledged. The length header is **untrusted**: it
//! is capped at [`MAX_RECORD_LEN`] before any buffer is sized from it —
//! an oversized claim at the end of the log is torn-tail truncation, an
//! oversized claim with the bytes actually present is reported as
//! corruption instead of silently hiding every later record.
//!
//! ```
//! use migratory_core::enforce::{MemoryWal, Monitor};
//! use migratory_core::{Inventory, PatternKind, RoleAlphabet};
//! use migratory_lang::{parse_transactions, Assignment};
//! use migratory_model::{schema::university_schema, Value};
//! use std::sync::{Arc, Mutex};
//!
//! let s = university_schema();
//! let a = RoleAlphabet::new(&s, 0).unwrap();
//! let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
//! let ts = parse_transactions(&s, r#"
//!     transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
//! "#).unwrap();
//! let wal = Arc::new(Mutex::new(MemoryWal::new()));
//! // Write-ahead: each admitted block is logged before tracking moves.
//! let mut m = Monitor::new(&s, &a, &inv, PatternKind::All).with_sink(wal.clone());
//! let mk = ts.get("Mk").unwrap();
//! m.try_apply(mk, &Assignment::new(vec![Value::str("1")])).unwrap();
//! m.try_apply(mk, &Assignment::new(vec![Value::str("2")])).unwrap();
//! // "Crash": rebuild from the log alone — byte-identical state.
//! let records = wal.lock().unwrap().records();
//! let r = Monitor::recover(&s, &a, &inv, PatternKind::All, None, records).unwrap();
//! assert_eq!(r.snapshot().encode(), m.snapshot().encode());
//! assert_eq!(r.db().num_objects(), 2);
//! ```
//!
//! [`Delta`]: migratory_lang::Delta
//! [`Monitor::checkpoint_delta`]: super::Monitor::checkpoint_delta
//! [`ShardedMonitor::checkpoint_delta`]: super::ShardedMonitor::checkpoint_delta

use super::delta::{Cohort, DeltaState, ObjRecord};
use super::faults::{FaultSite, IoFaults};
use super::health::Health;
use super::{ResiduePolicy, StepPolicy};
use migratory_lang::Delta;
use migratory_model::codec::{encode_idset, encode_tuple, encode_u64, Reader};
use migratory_model::{ClassSet, Instance, ModelError, Oid, Tuple};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Errors of the durability layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalError {
    /// An I/O failure from the backing store (message of the underlying
    /// `std::io::Error`).
    Io(String),
    /// A snapshot or log payload is malformed.
    Corrupt(String),
    /// Snapshot and WAL tail disagree (wrong shard count, a step gap
    /// between snapshot and first tail block, a block that does not
    /// admit).
    Mismatch(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
            WalError::Mismatch(m) => write!(f, "wal mismatch: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

impl From<ModelError> for WalError {
    fn from(e: ModelError) -> Self {
        WalError::Corrupt(e.to_string())
    }
}

/// When the log issues `fdatasync` — the meaning of an `ok` ack.
///
/// * [`FsyncPolicy::Off`] — never: an ack means the record reached the
///   OS page cache (survives a process crash, not power loss).
/// * [`FsyncPolicy::Batch`] — once per committer batch: acks are
///   released only after the `fdatasync` covering their records
///   returns, so an ack survives power loss, and one sync is amortized
///   over every block that arrived while the previous sync was in
///   flight (group commit).
/// * [`FsyncPolicy::Always`] — once per appended record: the strictest
///   (and slowest) policy; acks survive power loss with no batching
///   window at all.
///
/// `Batch` and `Always` give the *same* guarantee per acked op; they
/// differ only in how many ops share one disk round-trip.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FsyncPolicy {
    /// Never `fdatasync` on the append path (flushed-to-OS acks).
    #[default]
    Off,
    /// One `fdatasync` per committer batch, acks released after it.
    Batch,
    /// One `fdatasync` per record.
    Always,
}

impl FsyncPolicy {
    /// Parse the CLI spelling (`off` | `batch` | `always`).
    #[must_use]
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "off" => Some(FsyncPolicy::Off),
            "batch" => Some(FsyncPolicy::Batch),
            "always" => Some(FsyncPolicy::Always),
            _ => None,
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Off => "off",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Always => "always",
        })
    }
}

/// One shard's view of a committed block: where its letter clock stood
/// before the block, and which of the block's deltas it read as
/// letters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardLetters {
    /// Shard index.
    pub shard: u32,
    /// The shard's letter clock before the block.
    pub steps0: usize,
    /// Ascending indices into the block's deltas — the shard reads one
    /// letter per entry, in order.
    pub letters: Vec<u32>,
}

/// A committed block as handed to a [`CommitSink`]: the effective
/// deltas plus each participating shard's clock and letter assignment.
#[derive(Clone, Copy)]
pub struct BlockRef<'a> {
    /// The block's effective deltas, in commit order.
    pub deltas: &'a [&'a Delta],
    /// Participating shards, ascending by shard index.
    pub shards: &'a [ShardLetters],
}

/// Receiver of committed blocks — the pluggable seam between the
/// admission engines and durable storage. The engines call
/// [`CommitSink::committed`] once per admitted block, after staging
/// succeeds and **before** tracking state is written; an `Err` aborts
/// the commit (the application is rolled back). "No sink" is the no-op
/// default — an in-memory monitor pays nothing for the seam.
pub trait CommitSink: Send {
    /// A block is about to commit; `block` carries the effective deltas
    /// and every participating shard's clock + letter assignment.
    fn committed(&mut self, block: &BlockRef<'_>) -> Result<(), WalError>;

    /// The monitor certified its transaction schema at letter count
    /// `steps` (Corollary 3.3): tracking freezes here and later blocks
    /// are logged unchecked. Durable stores must record this — replay
    /// is wrong without it — so the marker is written through the same
    /// write-ahead discipline; an `Err` keeps the monitor uncertified.
    fn certified(&mut self, steps: usize) -> Result<(), WalError>;

    /// The monitor is about to redefine its inventory: `epoch` is the
    /// epoch the redefinition *moves to*, `shards` carries each
    /// participating shard's letter clock at the instant of the swap,
    /// and `inventory` is the canonical
    /// [`Inventory::encode`](crate::Inventory::encode) bytes of the new
    /// automaton. Written **ahead** of the tracking swap, like every
    /// other record — an `Err` leaves the old inventory in force.
    fn redefined(
        &mut self,
        epoch: u64,
        policy: ResiduePolicy,
        shards: &[(u32, usize)],
        inventory: &[u8],
    ) -> Result<(), WalError>;
}

/// One committed block as read back from a log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalBlock {
    /// The block's effective deltas, in commit order.
    pub deltas: Vec<Delta>,
    /// Participating shards: clock offsets and letter assignments.
    pub shards: Vec<ShardLetters>,
}

/// One log record as read back from a log: a committed block, or the
/// certification event (which freezes tracking from its step on).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// A committed block of effective letters.
    Block(WalBlock),
    /// [`Monitor::certify`](super::Monitor::certify) succeeded with the
    /// monitor at this letter count (shard 0's clock — only the single
    /// monitor certifies).
    Certified {
        /// Letters emitted when certification took effect.
        steps: usize,
    },
    /// The inventory was redefined online
    /// ([`Monitor::redefine`](super::Monitor::redefine)): the epoch the
    /// monitor moved to, the residue policy, every participating
    /// shard's letter clock at the swap instant, and the canonical
    /// encoding of the new automaton. Replay re-runs the same
    /// deterministic viability split at the same clock positions.
    Redefined {
        /// The epoch this redefinition moves to (previous epoch + 1).
        epoch: u64,
        /// How non-viable residue was handled.
        policy: ResiduePolicy,
        /// `(shard, letter clock)` pairs, ascending by shard index.
        shards: Vec<(u32, usize)>,
        /// [`Inventory::encode`](crate::Inventory::encode) bytes of the
        /// new automaton.
        inventory: Vec<u8>,
    },
}

impl WalRecord {
    /// Effective deltas this record carries.
    #[must_use]
    pub fn letters(&self) -> usize {
        match self {
            WalRecord::Block(b) => b.deltas.len(),
            WalRecord::Certified { .. } | WalRecord::Redefined { .. } => 0,
        }
    }
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

/// IEEE CRC-32, table-driven.
fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Record payload tags.
const TAG_BLOCK: u8 = 0;
const TAG_CERTIFY: u8 = 1;
const TAG_REDEFINE: u8 = 2;

/// Hard cap on a framed record's claimed payload length (256 MiB). The
/// 4-byte length header is **untrusted** input: without the cap, one
/// corrupted byte can claim a multi-GiB record and drive allocation or
/// file reads before the checksum is ever consulted. Real records are
/// orders of magnitude smaller (a 1M-object bulk-load block encodes to
/// a few tens of MiB).
pub const MAX_RECORD_LEN: usize = 1 << 28;

/// Append one framed record (`[len][crc][payload]`, little-endian
/// prefixes) for a committed block. Errs — leaving `out` untouched —
/// when the block encodes past [`MAX_RECORD_LEN`]: the caller's commit
/// rolls back cleanly (split the batch) instead of writing a record
/// recovery would refuse.
pub fn encode_record(out: &mut Vec<u8>, block: &BlockRef<'_>) -> Result<(), WalError> {
    let mut payload = Vec::new();
    payload.push(TAG_BLOCK);
    encode_u64(&mut payload, block.deltas.len() as u64);
    for d in block.deltas {
        migratory_lang::encode_delta(&mut payload, d);
    }
    encode_u64(&mut payload, block.shards.len() as u64);
    for sl in block.shards {
        encode_u64(&mut payload, u64::from(sl.shard));
        encode_u64(&mut payload, sl.steps0 as u64);
        encode_u64(&mut payload, sl.letters.len() as u64);
        for &i in &sl.letters {
            encode_u64(&mut payload, u64::from(i));
        }
    }
    frame(out, &payload)
}

/// Append one framed certification-marker record.
pub fn encode_certify_record(out: &mut Vec<u8>, steps: usize) {
    let mut payload = Vec::new();
    payload.push(TAG_CERTIFY);
    encode_u64(&mut payload, steps as u64);
    frame(out, &payload).expect("a certification marker is a dozen bytes");
}

/// Append one framed redefinition record: the epoch moved to, the
/// residue policy, each participating shard's letter clock at the swap
/// instant, and the canonical new-inventory encoding.
pub fn encode_redefine_record(
    out: &mut Vec<u8>,
    epoch: u64,
    policy: ResiduePolicy,
    shards: &[(u32, usize)],
    inventory: &[u8],
) -> Result<(), WalError> {
    let mut payload = Vec::new();
    payload.push(TAG_REDEFINE);
    encode_u64(&mut payload, epoch);
    payload.push(policy.as_byte());
    encode_u64(&mut payload, shards.len() as u64);
    for &(shard, steps) in shards {
        encode_u64(&mut payload, u64::from(shard));
        encode_u64(&mut payload, steps as u64);
    }
    encode_u64(&mut payload, inventory.len() as u64);
    payload.extend_from_slice(inventory);
    frame(out, &payload)
}

fn frame(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), WalError> {
    if payload.len() > MAX_RECORD_LEN {
        return Err(WalError::Io(format!(
            "block encodes to {} bytes, over the {MAX_RECORD_LEN}-byte record cap — \
             split the batch",
            payload.len()
        )));
    }
    out.extend_from_slice(&u32::try_from(payload.len()).expect("record fits u32").to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Decode a log byte stream into records. A torn final record — a
/// truncated header, a length claim running past the end of the input,
/// a checksum failure — ends the stream (the crash-truncation
/// semantics; see the module docs for why dropping the torn tail is
/// sound). A length claim over [`MAX_RECORD_LEN`] whose bytes *are*
/// present cannot be a torn append and is reported as corruption
/// instead of silently hiding every later record.
pub fn decode_records(mut bytes: &[u8]) -> Result<Vec<WalRecord>, WalError> {
    let mut records = Vec::new();
    loop {
        let Some((head, rest)) = bytes.split_at_checked(8) else { return Ok(records) };
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            if len > rest.len() {
                return Ok(records); // indistinguishable from a torn append
            }
            return Err(WalError::Corrupt(format!(
                "record length {len} exceeds the {MAX_RECORD_LEN}-byte cap"
            )));
        }
        let Some((payload, rest)) = rest.split_at_checked(len) else { return Ok(records) };
        if crc32(payload) != crc {
            return Ok(records);
        }
        let Ok(record) = decode_record(payload) else { return Ok(records) };
        records.push(record);
        bytes = rest;
    }
}

/// Decode the longest valid record prefix of a **replication byte
/// stream** and report how many bytes it consumed, so a streaming
/// consumer (the replica puller in [`repl`](super::repl)) can carry the
/// torn tail forward into its next read instead of dropping it. The
/// framing is exactly the log's (`[len][crc][payload]`), so a stream cut
/// at any byte offset yields a whole-record prefix plus an incomplete
/// fragment — never a half-applied record.
///
/// # Errors
/// Only on an over-cap length claim whose bytes are present (mid-stream
/// corruption, not a tear): the connection must be dropped and resynced.
pub fn decode_stream(bytes: &[u8]) -> Result<(Vec<WalRecord>, usize), WalError> {
    let consumed = valid_prefix_len(bytes)?;
    let records = decode_records(&bytes[..consumed])?;
    Ok((records, consumed))
}

/// Byte length of the longest prefix of whole, checksum-valid records —
/// where [`Wal::open`] truncates to before appending. Errors only on an
/// over-cap length claim whose bytes are present (mid-log corruption —
/// truncating there would silently drop valid later records).
fn valid_prefix_len(bytes: &[u8]) -> Result<usize, WalError> {
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        let Some((head, tail)) = rest.split_at_checked(8) else { return Ok(pos) };
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            if len > tail.len() {
                return Ok(pos);
            }
            return Err(WalError::Corrupt(format!(
                "record length {len} exceeds the {MAX_RECORD_LEN}-byte cap"
            )));
        }
        let Some(payload) = tail.get(..len) else { return Ok(pos) };
        if crc32(payload) != crc || decode_record(payload).is_err() {
            return Ok(pos);
        }
        pos += 8 + len;
    }
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, WalError> {
    let mut r = Reader::new(payload);
    let record = match r.byte()? {
        TAG_BLOCK => {
            let n = r.count()?;
            let mut deltas = Vec::with_capacity(n);
            for _ in 0..n {
                deltas.push(
                    migratory_lang::decode_delta(&mut r)
                        .map_err(|e| WalError::Corrupt(e.to_string()))?,
                );
            }
            let ns = r.count()?;
            let mut shards = Vec::with_capacity(ns);
            for _ in 0..ns {
                let shard = u32_of(r.u64()?, "shard")?;
                let steps0 = usize_of(r.u64()?, "shard clock")?;
                let nl = r.count()?;
                let mut letters = Vec::with_capacity(nl);
                for _ in 0..nl {
                    let i = u32_of(r.u64()?, "letter index")?;
                    if i as usize >= deltas.len() {
                        return Err(WalError::Corrupt("letter index out of range".into()));
                    }
                    if letters.last().is_some_and(|&p| i <= p) {
                        return Err(WalError::Corrupt("letter indices out of order".into()));
                    }
                    letters.push(i);
                }
                if letters.is_empty() {
                    return Err(WalError::Corrupt("participating shard reads no letter".into()));
                }
                if shards.last().is_some_and(|p: &ShardLetters| shard <= p.shard) {
                    return Err(WalError::Corrupt("shards out of order".into()));
                }
                shards.push(ShardLetters { shard, steps0, letters });
            }
            WalRecord::Block(WalBlock { deltas, shards })
        }
        TAG_CERTIFY => WalRecord::Certified {
            steps: usize::try_from(r.u64()?).map_err(|_| WalError::Corrupt("steps".into()))?,
        },
        TAG_REDEFINE => {
            let epoch = r.u64()?;
            let policy = ResiduePolicy::from_byte(r.byte()?).map_err(WalError::Corrupt)?;
            let n = r.count()?;
            let mut shards: Vec<(u32, usize)> = Vec::with_capacity(n);
            for _ in 0..n {
                let shard = u32_of(r.u64()?, "shard")?;
                let steps = usize_of(r.u64()?, "shard clock")?;
                if shards.last().is_some_and(|&(p, _)| shard <= p) {
                    return Err(WalError::Corrupt("shards out of order".into()));
                }
                shards.push((shard, steps));
            }
            if shards.is_empty() {
                return Err(WalError::Corrupt("redefinition touches no shard".into()));
            }
            let inventory = read_blob(&mut r)?;
            WalRecord::Redefined { epoch, policy, shards, inventory }
        }
        t => return Err(WalError::Corrupt(format!("unknown record tag {t}"))),
    };
    if !r.is_exhausted() {
        return Err(WalError::Corrupt("trailing bytes in record".into()));
    }
    Ok(record)
}

// ---------------------------------------------------------------------
// Snapshot (full checkpoint)
// ---------------------------------------------------------------------

/// Current snapshot format (v3: adds the [`Evolution`] block). v2
/// snapshots still decode — they predate online redefinition, so their
/// evolution state is [`Evolution::default`].
const SNAP_MAGIC: &[u8; 6] = b"MGSNP3";
const SNAP_MAGIC_V2: &[u8; 6] = b"MGSNP2";
/// Current incremental-checkpoint format (v2: adds the [`Evolution`]
/// block). v1 increments still decode with a default evolution.
const DELTA_MAGIC: &[u8; 6] = b"MGDLT2";
const DELTA_MAGIC_V1: &[u8; 6] = b"MGDLT1";

/// The constraint-evolution state a checkpoint carries: the epoch
/// clock, the lifetime counters behind `stats`, and the canonical
/// encoding of the inventory in force. Always captured whole (it is a
/// few dozen bytes plus the automaton) — an increment covering a
/// pruned segment that contained a redefinition record would otherwise
/// lose the upgrade.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Evolution {
    /// The epoch in force at the capture instant (0 = never redefined).
    pub epoch: u64,
    /// Lifetime count of admitted redefinitions.
    pub redefine_total: u64,
    /// Lifetime count of objects quarantined by redefinitions.
    pub quarantined_total: u64,
    /// [`Inventory::encode`](crate::Inventory::encode) bytes of the
    /// inventory in force; `None` only for pre-v3 snapshots (recovery
    /// falls back to the constructor inventory).
    pub inventory: Option<Vec<u8>>,
}

impl Evolution {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_u64(out, self.epoch);
        encode_u64(out, self.redefine_total);
        encode_u64(out, self.quarantined_total);
        match &self.inventory {
            Some(bytes) => {
                out.push(1);
                encode_u64(out, bytes.len() as u64);
                out.extend_from_slice(bytes);
            }
            None => out.push(0),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Evolution, WalError> {
        let epoch = r.u64()?;
        let redefine_total = r.u64()?;
        let quarantined_total = r.u64()?;
        let inventory = match r.byte()? {
            0 => None,
            1 => Some(read_blob(r)?),
            t => return Err(WalError::Corrupt(format!("unknown inventory tag {t}"))),
        };
        Ok(Evolution { epoch, redefine_total, quarantined_total, inventory })
    }
}

/// A full checkpoint of everything a monitor cannot rebuild from its
/// constructor arguments: the database heap, the per-shard tracking
/// states (each carrying its **own letter clock**), and the
/// constraint-evolution state (epoch + inventory in force). Encoding is
/// canonical, so snapshot bytes decide state equality — the recovery
/// suite's "byte-identical" check is `encode()` equality.
#[derive(Clone)]
pub struct Snapshot {
    pub(crate) policy: StepPolicy,
    pub(crate) certified: bool,
    pub(crate) certified_at: Option<usize>,
    pub(crate) evolution: Evolution,
    pub(crate) db: Instance,
    pub(crate) shards: Vec<DeltaState>,
}

impl Snapshot {
    /// Sum of the per-shard letter clocks at the moment of the
    /// checkpoint — a monotone progress measure (for a single
    /// [`Monitor`](super::Monitor) it is exactly the global step
    /// counter).
    #[must_use]
    pub fn steps(&self) -> usize {
        self.shards.iter().map(|s| s.steps).sum()
    }

    /// The per-shard letter clocks at the moment of the checkpoint.
    #[must_use]
    pub fn clocks(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.steps).collect()
    }

    /// The checkpointed database.
    #[must_use]
    pub fn db(&self) -> &Instance {
        &self.db
    }

    /// Number of tracking shards (1 for the single
    /// [`Monitor`](super::Monitor)).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The constraint-evolution state at the capture instant.
    #[must_use]
    pub fn evolution(&self) -> &Evolution {
        &self.evolution
    }

    /// Canonical binary encoding (current format, v3).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAP_MAGIC);
        out.push(flags_byte(self.policy, self.certified, self.certified_at));
        if let Some(at) = self.certified_at {
            encode_u64(&mut out, at as u64);
        }
        self.evolution.encode(&mut out);
        self.db.encode_snapshot(&mut out);
        encode_u64(&mut out, self.shards.len() as u64);
        for s in &self.shards {
            encode_state(&mut out, s);
        }
        out
    }

    /// Decode [`Snapshot::encode`] bytes — the current v3 format, or a
    /// pre-evolution v2 snapshot (epoch 0, no stored inventory).
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, WalError> {
        let v3 = bytes.len() >= SNAP_MAGIC.len() && &bytes[..SNAP_MAGIC.len()] == SNAP_MAGIC;
        let v2 =
            bytes.len() >= SNAP_MAGIC_V2.len() && &bytes[..SNAP_MAGIC_V2.len()] == SNAP_MAGIC_V2;
        if !v3 && !v2 {
            return Err(WalError::Corrupt("bad snapshot magic".into()));
        }
        let mut r = Reader::new(&bytes[SNAP_MAGIC.len()..]);
        let (policy, certified, certified_at) = decode_flags(&mut r)?;
        let evolution = if v3 { Evolution::decode(&mut r)? } else { Evolution::default() };
        let db = Instance::decode_snapshot(&mut r)?;
        let n = r.count()?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(decode_state(&mut r)?);
        }
        if !r.is_exhausted() {
            return Err(WalError::Corrupt("trailing bytes in snapshot".into()));
        }
        Ok(Snapshot { policy, certified, certified_at, evolution, db, shards })
    }

    /// Fold one incremental checkpoint into this snapshot: replace the
    /// dirtied objects and records, each shard's cohort tables and
    /// clock, and the monitor flags. The increment is a consistent
    /// capture taken *after* this snapshot's instant, so folding
    /// base + increments in order reproduces the live state
    /// byte-identically.
    pub fn apply(&mut self, d: CheckpointDelta) -> Result<(), WalError> {
        if d.shards.len() != self.shards.len() {
            return Err(WalError::Mismatch(format!(
                "increment has {} shards, snapshot has {}",
                d.shards.len(),
                self.shards.len()
            )));
        }
        for (s, sd) in self.shards.iter_mut().zip(d.shards) {
            if sd.steps < s.steps {
                return Err(WalError::Mismatch(format!(
                    "stale increment: shard clock {} behind snapshot clock {}",
                    sd.steps, s.steps
                )));
            }
            s.steps = sd.steps;
            s.pre_state = sd.pre_state;
            s.pre_exempt = sd.pre_exempt;
            s.cohorts = sd.cohorts;
            s.by_key = sd.by_key;
            s.free = sd.free;
            if sd.full {
                s.records = sd.records;
            } else {
                for (o, rec) in sd.records {
                    s.records.insert(o, rec);
                }
            }
            for rec in s.records.values() {
                if (rec.cohort as usize) >= s.cohorts.len() {
                    return Err(WalError::Corrupt("record points at missing cohort".into()));
                }
            }
        }
        for (o, state) in d.objects {
            match state {
                Some((classes, tuple)) => self.db.put_object(o, classes, tuple),
                None => {
                    if self.db.occurs(o) {
                        self.db.delete_object(o);
                    }
                }
            }
        }
        self.db.set_next(d.next_oid);
        self.policy = d.policy;
        self.certified = d.certified;
        self.certified_at = d.certified_at;
        if d.evolution.epoch < self.evolution.epoch {
            return Err(WalError::Mismatch(format!(
                "stale increment: epoch {} behind snapshot epoch {}",
                d.evolution.epoch, self.evolution.epoch
            )));
        }
        // Pre-evolution (v1) increments carry no inventory; they can
        // only come from epoch-0 history, so keeping the base's
        // evolution state is exact.
        if d.evolution.inventory.is_some() || d.evolution != Evolution::default() {
            self.evolution = d.evolution;
        }
        Ok(())
    }
}

fn flags_byte(policy: StepPolicy, certified: bool, certified_at: Option<usize>) -> u8 {
    let mut flags = 0u8;
    if policy == StepPolicy::OnlyChanging {
        flags |= 1;
    }
    if certified {
        flags |= 2;
    }
    if certified_at.is_some() {
        flags |= 4;
    }
    flags
}

fn decode_flags(r: &mut Reader<'_>) -> Result<(StepPolicy, bool, Option<usize>), WalError> {
    let flags = r.byte()?;
    if flags & !0x07 != 0 {
        return Err(WalError::Corrupt(format!("unknown checkpoint flags {flags:#x}")));
    }
    let certified_at = if flags & 4 != 0 {
        Some(usize::try_from(r.u64()?).map_err(|_| WalError::Corrupt("horizon".into()))?)
    } else {
        None
    };
    let policy =
        if flags & 1 != 0 { StepPolicy::OnlyChanging } else { StepPolicy::EveryApplication };
    Ok((policy, flags & 2 != 0, certified_at))
}

// ---------------------------------------------------------------------
// Incremental checkpoints
// ---------------------------------------------------------------------

/// One shard's share of an incremental checkpoint.
pub(crate) struct ShardDelta {
    pub(crate) steps: usize,
    pub(crate) pre_state: u32,
    pub(crate) pre_exempt: bool,
    /// `records` is the *complete* table (set after a compaction
    /// rewrote every record's cohort slot); otherwise only the dirtied
    /// records.
    pub(crate) full: bool,
    pub(crate) records: BTreeMap<Oid, ObjRecord>,
    pub(crate) cohorts: Vec<Cohort>,
    pub(crate) by_key: BTreeMap<(u32, u32), u32>,
    pub(crate) free: Vec<u32>,
}

/// An incremental checkpoint: a consistent point-in-time capture of
/// everything dirtied since the previous checkpoint — changed database
/// objects, changed tracking records, and each shard's (small) cohort
/// tables and letter clock. Produced by
/// [`Monitor::checkpoint_delta`](super::Monitor::checkpoint_delta) /
/// [`ShardedMonitor::checkpoint_delta`](super::ShardedMonitor::checkpoint_delta)
/// in O(dirty); folded back with [`Snapshot::apply`].
pub struct CheckpointDelta {
    pub(crate) policy: StepPolicy,
    pub(crate) certified: bool,
    pub(crate) certified_at: Option<usize>,
    /// Always the complete evolution state, never a diff: an increment
    /// can cover (and prune) a sealed segment holding a redefinition
    /// record, so the chain itself must carry the upgrade.
    pub(crate) evolution: Evolution,
    pub(crate) next_oid: u64,
    /// Dirtied objects: current heap state, or `None` when deleted.
    pub(crate) objects: BTreeMap<Oid, Option<(ClassSet, Tuple)>>,
    pub(crate) shards: Vec<ShardDelta>,
}

impl CheckpointDelta {
    /// Objects this increment re-encodes — the capture cost is
    /// proportional to this, never to the database size.
    #[must_use]
    pub fn num_dirty_objects(&self) -> usize {
        self.objects.len()
    }

    /// The oids this increment touches, deletion tombstones included.
    /// Capture these **before** staging the delta: if
    /// [`Wal::begin_checkpoint`] fails, hand them back via
    /// [`ShardedMonitor::restore_dirty`](super::ShardedMonitor::restore_dirty)
    /// so the next capture re-covers them and the chain has no hole.
    #[must_use]
    pub fn oids(&self) -> Vec<Oid> {
        self.objects.keys().copied().collect()
    }

    /// The per-shard letter clocks at the capture instant.
    #[must_use]
    pub fn clocks(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.steps).collect()
    }

    /// Canonical binary encoding (current format, v2).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DELTA_MAGIC);
        out.push(flags_byte(self.policy, self.certified, self.certified_at));
        if let Some(at) = self.certified_at {
            encode_u64(&mut out, at as u64);
        }
        self.evolution.encode(&mut out);
        encode_u64(&mut out, self.next_oid);
        encode_u64(&mut out, self.objects.len() as u64);
        for (o, state) in &self.objects {
            encode_u64(&mut out, o.0);
            match state {
                Some((classes, tuple)) => {
                    out.push(1);
                    encode_idset(&mut out, *classes);
                    encode_tuple(&mut out, tuple);
                }
                None => out.push(0),
            }
        }
        encode_u64(&mut out, self.shards.len() as u64);
        for s in &self.shards {
            encode_u64(&mut out, s.steps as u64);
            encode_u64(&mut out, u64::from(s.pre_state));
            out.push(u8::from(s.pre_exempt) | (u8::from(s.full) << 1));
            encode_record_map(&mut out, &s.records);
            encode_cohort_tables(&mut out, &s.cohorts, &s.by_key, &s.free);
        }
        out
    }

    /// Decode [`CheckpointDelta::encode`] bytes — the current v2
    /// format, or a pre-evolution v1 increment.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointDelta, WalError> {
        let v2 = bytes.len() >= DELTA_MAGIC.len() && &bytes[..DELTA_MAGIC.len()] == DELTA_MAGIC;
        let v1 =
            bytes.len() >= DELTA_MAGIC_V1.len() && &bytes[..DELTA_MAGIC_V1.len()] == DELTA_MAGIC_V1;
        if !v2 && !v1 {
            return Err(WalError::Corrupt("bad checkpoint-delta magic".into()));
        }
        let mut r = Reader::new(&bytes[DELTA_MAGIC.len()..]);
        let (policy, certified, certified_at) = decode_flags(&mut r)?;
        let evolution = if v2 { Evolution::decode(&mut r)? } else { Evolution::default() };
        let next_oid = r.u64()?;
        let n = r.count()?;
        let mut objects = BTreeMap::new();
        for _ in 0..n {
            let o = Oid(r.u64()?);
            let state = match r.byte()? {
                0 => None,
                1 => {
                    let classes: ClassSet = r.idset()?;
                    if classes.is_empty() {
                        return Err(WalError::Corrupt("object without classes".into()));
                    }
                    Some((classes, r.tuple()?))
                }
                t => return Err(WalError::Corrupt(format!("unknown object tag {t}"))),
            };
            objects.insert(o, state);
        }
        let n = r.count()?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            let steps = usize_of(r.u64()?, "shard clock")?;
            let pre_state = u32_of(r.u64()?, "pre state")?;
            let bits = r.byte()?;
            if bits & !0x03 != 0 {
                return Err(WalError::Corrupt("unknown shard-delta bits".into()));
            }
            let records = decode_record_map(&mut r)?;
            let (cohorts, by_key, free) = decode_cohort_tables(&mut r)?;
            for rec in records.values() {
                if (rec.cohort as usize) >= cohorts.len() {
                    return Err(WalError::Corrupt("record points at missing cohort".into()));
                }
            }
            shards.push(ShardDelta {
                steps,
                pre_state,
                pre_exempt: bits & 1 != 0,
                full: bits & 2 != 0,
                records,
                cohorts,
                by_key,
                free,
            });
        }
        if !r.is_exhausted() {
            return Err(WalError::Corrupt("trailing bytes in checkpoint delta".into()));
        }
        Ok(CheckpointDelta {
            policy,
            certified,
            certified_at,
            evolution,
            next_oid,
            objects,
            shards,
        })
    }
}

/// Capture an incremental checkpoint from a database plus its tracking
/// partitions, draining each partition's dirty set — the shared
/// implementation behind
/// [`Monitor::checkpoint_delta`](super::Monitor::checkpoint_delta) and
/// [`ShardedMonitor::checkpoint_delta`](super::ShardedMonitor::checkpoint_delta).
/// O(dirty): only dirtied objects are re-read from the heap, only
/// dirtied records cloned (all of them after a compaction), plus the
/// bounded cohort tables.
pub(crate) fn capture_delta(
    db: &Instance,
    shards: &mut [DeltaState],
    policy: StepPolicy,
    certified: bool,
    certified_at: Option<usize>,
    evolution: Evolution,
) -> CheckpointDelta {
    let mut objects: BTreeMap<Oid, Option<(ClassSet, Tuple)>> = BTreeMap::new();
    let mut out_shards = Vec::with_capacity(shards.len());
    for s in shards.iter_mut() {
        let dirty = std::mem::take(&mut s.dirty);
        let full = std::mem::replace(&mut s.all_dirty, false);
        for &o in &dirty {
            objects
                .entry(o)
                .or_insert_with(|| db.occurs(o).then(|| (db.role_set(o), db.tuple_of(o))));
        }
        let records = if full {
            s.records.clone()
        } else {
            dirty.iter().filter_map(|o| s.records.get(o).map(|r| (*o, r.clone()))).collect()
        };
        out_shards.push(ShardDelta {
            steps: s.steps,
            pre_state: s.pre_state,
            pre_exempt: s.pre_exempt,
            full,
            records,
            cohorts: s.cohorts.clone(),
            by_key: s.by_key.clone(),
            free: s.free.clone(),
        });
    }
    CheckpointDelta {
        policy,
        certified,
        certified_at,
        evolution,
        next_oid: db.next_oid().0,
        objects,
        shards: out_shards,
    }
}

/// Encode one shard's tracking state verbatim — clock, slot table, key
/// map, free list and all. The engine is deterministic (ordered
/// iteration everywhere), so replay from a verbatim state reproduces
/// slot assignment exactly; nothing needs canonicalizing beyond the
/// ordered maps themselves.
fn encode_state(out: &mut Vec<u8>, s: &DeltaState) {
    encode_u64(out, s.steps as u64);
    encode_u64(out, u64::from(s.pre_state));
    out.push(u8::from(s.pre_exempt));
    encode_record_map(out, &s.records);
    encode_cohort_tables(out, &s.cohorts, &s.by_key, &s.free);
    // `last_touched` and the dirty set are deliberately NOT encoded:
    // diagnostics and checkpoint bookkeeping, not durable state.
}

fn encode_record_map(out: &mut Vec<u8>, records: &BTreeMap<Oid, ObjRecord>) {
    encode_u64(out, records.len() as u64);
    for (o, rec) in records {
        encode_u64(out, o.0);
        encode_u64(out, rec.creation_step as u64);
        encode_u64(out, u64::from(rec.cohort));
        encode_u64(out, rec.segments.len() as u64);
        for &(letter, from) in &rec.segments {
            encode_u64(out, u64::from(letter));
            encode_u64(out, from as u64);
        }
    }
}

fn encode_cohort_tables(
    out: &mut Vec<u8>,
    cohorts: &[Cohort],
    by_key: &BTreeMap<(u32, u32), u32>,
    free: &[u32],
) {
    encode_u64(out, cohorts.len() as u64);
    for c in cohorts {
        encode_u64(out, u64::from(c.state));
        encode_u64(out, u64::from(c.last_role));
        encode_u64(out, c.size as u64);
        encode_u64(out, u64::from(c.parent));
    }
    encode_u64(out, by_key.len() as u64);
    for (&(state, role), &id) in by_key {
        encode_u64(out, u64::from(state));
        encode_u64(out, u64::from(role));
        encode_u64(out, u64::from(id));
    }
    encode_u64(out, free.len() as u64);
    for &id in free {
        encode_u64(out, u64::from(id));
    }
}

fn u32_of(v: u64, what: &str) -> Result<u32, WalError> {
    u32::try_from(v).map_err(|_| WalError::Corrupt(format!("{what} out of range")))
}

/// Read a length-prefixed byte blob (the length is bounds-checked
/// against the remaining input by [`Reader::count`]).
fn read_blob(r: &mut Reader<'_>) -> Result<Vec<u8>, WalError> {
    let len = r.count()?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.byte()?);
    }
    Ok(out)
}

fn usize_of(v: u64, what: &str) -> Result<usize, WalError> {
    usize::try_from(v).map_err(|_| WalError::Corrupt(format!("{what} out of range")))
}

fn decode_record_map(r: &mut Reader<'_>) -> Result<BTreeMap<Oid, ObjRecord>, WalError> {
    let n = r.count()?;
    let mut entries: Vec<(Oid, ObjRecord)> = Vec::with_capacity(n);
    for _ in 0..n {
        let o = Oid(r.u64()?);
        if entries.last().is_some_and(|&(p, _)| o <= p) {
            return Err(WalError::Corrupt("records out of oid order".into()));
        }
        let creation_step = usize_of(r.u64()?, "creation step")?;
        let cohort = u32_of(r.u64()?, "cohort")?;
        let m = r.count()?;
        let mut segments = Vec::with_capacity(m);
        for _ in 0..m {
            let letter = u32_of(r.u64()?, "letter")?;
            let from = usize_of(r.u64()?, "segment start")?;
            segments.push((letter, from));
        }
        if segments.is_empty() {
            return Err(WalError::Corrupt(format!("record {o} has no segments")));
        }
        entries.push((o, ObjRecord { creation_step, segments, cohort }));
    }
    // Ascending order verified above: the map bulk-builds.
    Ok(entries.into_iter().collect())
}

type CohortTables = (Vec<Cohort>, BTreeMap<(u32, u32), u32>, Vec<u32>);

fn decode_cohort_tables(r: &mut Reader<'_>) -> Result<CohortTables, WalError> {
    let n = r.count()?;
    let mut cohorts = Vec::with_capacity(n);
    for _ in 0..n {
        cohorts.push(Cohort {
            state: u32_of(r.u64()?, "cohort state")?,
            last_role: u32_of(r.u64()?, "cohort role")?,
            size: usize_of(r.u64()?, "cohort size")?,
            parent: u32_of(r.u64()?, "cohort parent")?,
        });
    }
    if cohorts.is_empty() {
        return Err(WalError::Corrupt("missing exempt sink cohort".into()));
    }
    let n = r.count()?;
    let mut by_key = BTreeMap::new();
    for _ in 0..n {
        let state = u32_of(r.u64()?, "key state")?;
        let role = u32_of(r.u64()?, "key role")?;
        let id = u32_of(r.u64()?, "key cohort")?;
        if (id as usize) >= cohorts.len() {
            return Err(WalError::Corrupt("key maps to missing cohort".into()));
        }
        by_key.insert((state, role), id);
    }
    let n = r.count()?;
    let mut free = Vec::with_capacity(n);
    for _ in 0..n {
        let id = u32_of(r.u64()?, "free slot")?;
        if (id as usize) >= cohorts.len() {
            return Err(WalError::Corrupt("free slot out of range".into()));
        }
        free.push(id);
    }
    Ok((cohorts, by_key, free))
}

fn decode_state(r: &mut Reader<'_>) -> Result<DeltaState, WalError> {
    let steps = usize_of(r.u64()?, "shard clock")?;
    let pre_state = u32_of(r.u64()?, "pre state")?;
    let pre_exempt = match r.byte()? {
        0 => false,
        1 => true,
        b => return Err(WalError::Corrupt(format!("bad pre-exempt byte {b}"))),
    };
    let records = decode_record_map(r)?;
    let (cohorts, by_key, free) = decode_cohort_tables(r)?;
    for rec in records.values() {
        if (rec.cohort as usize) >= cohorts.len() {
            return Err(WalError::Corrupt("record points at missing cohort".into()));
        }
    }
    Ok(DeltaState {
        records,
        cohorts,
        by_key,
        free,
        steps,
        pre_state,
        pre_exempt,
        ..DeltaState::default()
    })
}

// ---------------------------------------------------------------------
// Backing stores
// ---------------------------------------------------------------------

const LIVE_LOG: &str = "wal.log";
const BASE_FILE: &str = "snapshot.bin";
/// A pre-created empty segment the next seal renames into place, so
/// the admission path pays two renames instead of a file creation
/// (which journals directory metadata synchronously on some
/// filesystems). Always empty; replenished off-path by the checkpoint
/// job. The name deliberately matches no recovery pattern — `load` and
/// `open` ignore it.
const SPARE_LOG: &str = "wal-next.log";

fn sealed_name(seq: u64) -> String {
    format!("sealed-{seq:08}.log")
}

fn delta_name(seq: u64) -> String {
    format!("delta-{seq:08}.bin")
}

fn seq_of(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// Frame a checkpoint payload (`[len][crc][seq + body]`; increments
/// prepend the **parent** checkpoint sequence they chain onto to the
/// body, so the chain survives sequence numbers swallowed by crashed
/// jobs).
fn frame_checkpoint(seq: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(body.len() + 10);
    encode_u64(&mut payload, seq);
    payload.extend_from_slice(body);
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&u32::try_from(payload.len()).expect("fits u32").to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Unframe a checkpoint file into `(seq, body)`.
fn unframe_checkpoint<'a>(bytes: &'a [u8], what: &str) -> Result<(u64, &'a [u8]), WalError> {
    let Some((head, rest)) = bytes.split_at_checked(8) else {
        return Err(WalError::Corrupt(format!("{what} header truncated")));
    };
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
    let Some(payload) = rest.get(..len) else {
        return Err(WalError::Corrupt(format!("{what} truncated")));
    };
    if crc32(payload) != crc {
        return Err(WalError::Corrupt(format!("{what} checksum mismatch")));
    }
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let body = &payload[payload.len() - r.remaining()..];
    Ok((seq, body))
}

/// Read just the sequence number from a checkpoint file's frame prefix
/// — `Wal::open` needs only this, and the base snapshot can be tens of
/// MiB ([`Wal::load`] validates the full payload when it matters).
fn peek_checkpoint_seq(path: &Path) -> Option<u64> {
    use std::io::Read as _;
    let mut f = std::fs::File::open(path).ok()?;
    let mut buf = [0u8; 24];
    let mut n = 0;
    while n < buf.len() {
        match f.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(m) => n += m,
            Err(_) => return None,
        }
    }
    if n < 9 {
        return None;
    }
    Reader::new(&buf[8..n]).u64().ok()
}

/// The data of one checkpoint: a full base snapshot, or an increment
/// over the previous checkpoint.
pub enum CheckpointData {
    /// A full [`Snapshot`] — becomes the new base; everything older is
    /// pruned once it is durable.
    Full(Snapshot),
    /// An increment — folded onto the chain at load time.
    Incremental(CheckpointDelta),
}

/// A staged checkpoint returned by [`Wal::begin_checkpoint`]: the
/// captured state plus the bookkeeping to make it durable. `run` does
/// the expensive part (encode, write, fsync, prune) and can execute
/// anywhere — inline for a synchronous checkpoint, or on a
/// [`Snapshotter`] thread to keep it off the admission path. Jobs of
/// one [`Wal`] must run **in order** (a single `Snapshotter` does).
#[must_use = "a checkpoint is not durable until the job runs"]
pub struct CheckpointJob {
    dir: PathBuf,
    seq: u64,
    /// The checkpoint this one chains onto (increments only): recorded
    /// in the file so a sequence number swallowed by a crashed job is
    /// not mistaken for a lost increment.
    parent: u64,
    data: CheckpointData,
    faults: IoFaults,
}

impl CheckpointJob {
    /// The checkpoint's sequence number in the chain.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Encode and durably write the checkpoint, then prune the log
    /// segments (and, for a full snapshot, the increments) it covers.
    /// Takes `&self` so a failed run can be retried: every step is
    /// idempotent (`create` truncates the temp file, the rename and the
    /// prunes re-apply cleanly).
    pub fn run(&self) -> Result<(), WalError> {
        let (body, target) = match &self.data {
            CheckpointData::Full(snap) => (snap.encode(), self.dir.join(BASE_FILE)),
            CheckpointData::Incremental(delta) => {
                let mut body = Vec::new();
                encode_u64(&mut body, self.parent);
                body.extend_from_slice(&delta.encode());
                (body, self.dir.join(delta_name(self.seq)))
            }
        };
        let framed = frame_checkpoint(self.seq, &body);
        let tmp = self.dir.join(format!("checkpoint-{:08}.tmp", self.seq));
        {
            self.faults.check(FaultSite::CheckpointWrite)?;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&framed)?;
            self.faults.check(FaultSite::CheckpointSync)?;
            f.sync_all()?;
        }
        self.faults.check(FaultSite::CheckpointRename)?;
        std::fs::rename(&tmp, &target)?;
        // Persist the rename itself before dropping the records it
        // supersedes (directory fsync; best-effort where unsupported).
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // Prune everything this checkpoint covers.
        self.faults.check(FaultSite::CheckpointPrune)?;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let covered = seq_of(name, "sealed-", ".log").is_some_and(|s| s <= self.seq)
                || (matches!(self.data, CheckpointData::Full(_))
                    && seq_of(name, "delta-", ".bin").is_some_and(|s| s <= self.seq));
            if covered {
                std::fs::remove_file(entry.path())?;
            }
        }
        // Replenish the spare segment off the admission path (best
        // effort — the next seal falls back to creating one inline).
        let _ = std::fs::File::create(self.dir.join(SPARE_LOG));
        Ok(())
    }
}

/// A background checkpoint writer: a single worker thread running
/// [`CheckpointJob`]s in submission order, so the admission path pays
/// only the O(dirty) capture and the log rotation — never the encode
/// and fsync. The first failing job stops the worker; later submissions
/// and [`Snapshotter::finish`] surface the error.
pub struct Snapshotter {
    tx: Option<mpsc::Sender<CheckpointJob>>,
    worker: Option<std::thread::JoinHandle<Result<(), WalError>>>,
    /// First failure, surfaced by every later `submit`/`finish`.
    error: Option<WalError>,
}

impl Snapshotter {
    /// Spawn the worker thread with no retries and no health reporting:
    /// `spawn_with(0, Duration::ZERO, None)`.
    #[must_use]
    pub fn spawn() -> Snapshotter {
        Snapshotter::spawn_with(0, Duration::ZERO, None)
    }

    /// Spawn the worker thread with a retry budget and optional health
    /// reporting. A failing job is re-run up to `retries` times (the
    /// n-th retry sleeps `n × backoff` first — [`CheckpointJob::run`]
    /// is idempotent); success is recorded in `health` as the last
    /// durable checkpoint. Exhausting the budget records the failure in
    /// `health` and stops the worker as before — the chain must not
    /// advance past a hole — but now the stop is *visible*: the `stats`
    /// verb reports `last_checkpoint=failed` instead of nothing.
    #[must_use]
    pub fn spawn_with(retries: u32, backoff: Duration, health: Option<Arc<Health>>) -> Snapshotter {
        let (tx, rx) = mpsc::channel::<CheckpointJob>();
        let worker = std::thread::Builder::new()
            .name("migratory-snapshotter".into())
            .spawn(move || {
                for job in rx {
                    let mut attempt = 0u32;
                    loop {
                        match job.run() {
                            Ok(()) => {
                                if let Some(h) = &health {
                                    h.checkpoint_ok(job.seq());
                                }
                                break;
                            }
                            Err(_) if attempt < retries => {
                                attempt += 1;
                                std::thread::sleep(backoff.saturating_mul(attempt));
                            }
                            Err(e) => {
                                if let Some(h) = &health {
                                    h.checkpoint_failed(&e);
                                }
                                return Err(e);
                            }
                        }
                    }
                }
                Ok(())
            })
            .expect("spawn snapshotter thread");
        Snapshotter { tx: Some(tx), worker: Some(worker), error: None }
    }

    /// Queue a checkpoint job. Fails — and keeps failing, without
    /// panicking — once an earlier job failed (the checkpoint chain
    /// must not advance past a hole — write a full snapshot to
    /// re-establish it).
    pub fn submit(&mut self, job: CheckpointJob) -> Result<(), WalError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        match &self.tx {
            Some(tx) if tx.send(job).is_ok() => Ok(()),
            // Worker exited early (a job failed): join and surface it.
            Some(_) => Err(self.join().expect_err("worker only exits early on failure")),
            None => Err(WalError::Io("snapshotter already finished".into())),
        }
    }

    /// Wait for every queued checkpoint to become durable.
    pub fn finish(mut self) -> Result<(), WalError> {
        self.join()
    }

    fn join(&mut self) -> Result<(), WalError> {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let outcome = match w.join() {
                Ok(r) => r,
                Err(_) => Err(WalError::Io("snapshotter thread panicked".into())),
            };
            if let Err(e) = outcome {
                self.error = Some(e);
            }
        }
        match &self.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        let _ = self.join();
    }
}

/// A directory-backed log: a live `wal.log` (appended records), sealed
/// segments rotated out by checkpoints, and a checkpoint chain — the
/// latest full `snapshot.bin` plus `delta-N.bin` increments. Writing a
/// checkpoint seals the live log; the checkpoint job prunes sealed
/// segments once it is durable, so recovery never replays history the
/// chain already covers.
pub struct Wal {
    dir: PathBuf,
    log: std::fs::File,
    policy: FsyncPolicy,
    buf: Vec<u8>,
    /// End of the last whole record — the append position, and where a
    /// failed append rolls back to.
    end: u64,
    /// End of the durable prefix: everything at or below this offset
    /// has been covered by a successful `fdatasync` (or was on disk at
    /// open). Under [`FsyncPolicy::Off`] it tracks `end` — "as durable
    /// as the policy promises". [`Wal::rollback_unsynced`] truncates
    /// back to this horizon when a batched sync fails for good.
    synced: u64,
    /// Next checkpoint sequence number (one past everything on disk,
    /// sealed segments included — a crashed job's sequence is never
    /// reused).
    next_seq: u64,
    /// The checkpoint the next increment chains onto: the last one
    /// staged this session, or the last **durable** one found at open
    /// (a sealed segment whose checkpoint never landed does not count —
    /// its records replay instead).
    chain_seq: u64,
    /// A base snapshot exists or has been staged — increments may
    /// chain onto it.
    has_base: bool,
    /// Injectable error schedule; default is a no-op (see
    /// [`Wal::with_faults`]).
    faults: IoFaults,
}

impl Wal {
    /// Open (creating if needed) the log directory for appending. A
    /// torn tail left by a crash mid-append is truncated away first —
    /// appending after garbage would hide every later record from
    /// recovery (which stops at the first bad frame) — and stale
    /// `*.tmp` checkpoint files from crashed checkpoint jobs are
    /// removed.
    pub fn open(dir: impl AsRef<Path>) -> Result<Wal, WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut max_seq = 0u64;
        let mut chain_seq = 0u64;
        let mut has_base = false;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                // A checkpoint job died mid-write; the chain never
                // referenced this file.
                let _ = std::fs::remove_file(entry.path());
                continue;
            }
            if let Some(s) = seq_of(name, "sealed-", ".log") {
                // A sealed segment's sequence must never be reused, but
                // its checkpoint may have died before landing — only
                // durable checkpoints enter the chain.
                max_seq = max_seq.max(s);
            }
            if let Some(s) = seq_of(name, "delta-", ".bin") {
                max_seq = max_seq.max(s);
                chain_seq = chain_seq.max(s);
            }
            if name == BASE_FILE {
                has_base = true;
                // Only the frame's sequence prefix is needed here (the
                // base can be tens of MiB); load() validates the full
                // payload.
                if let Some(s) = peek_checkpoint_seq(&entry.path()) {
                    max_seq = max_seq.max(s);
                    chain_seq = chain_seq.max(s);
                }
            }
        }
        let path = dir.join(LIVE_LOG);
        let valid = match std::fs::read(&path) {
            Ok(bytes) => valid_prefix_len(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        let log = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        log.set_len(valid as u64)?;
        Ok(Wal {
            dir,
            log,
            policy: FsyncPolicy::Off,
            buf: Vec::new(),
            end: valid as u64,
            synced: valid as u64,
            next_seq: max_seq + 1,
            chain_seq,
            has_base,
            faults: IoFaults::default(),
        })
    }

    /// Append the staged record in `buf`, rolling the file back to the
    /// last whole record on any failure so a half-written frame never
    /// poisons later appends. This is the **synchronous** sink path
    /// (one caller, acked on return), so any policy stricter than
    /// [`FsyncPolicy::Off`] syncs per record — there is no later batch
    /// boundary that could cover the ack.
    fn append(&mut self) -> Result<(), WalError> {
        let res = (|| -> Result<(), WalError> {
            self.faults.check(FaultSite::AppendWrite)?;
            self.log.write_all(&self.buf)?;
            self.log.flush()?;
            if self.policy != FsyncPolicy::Off {
                self.faults.check(FaultSite::AppendSync)?;
                self.log.sync_data()?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.end += self.buf.len() as u64;
                self.synced = self.end;
                Ok(())
            }
            Err(e) => {
                let _ = self.log.set_len(self.end);
                Err(e)
            }
        }
    }

    /// Append pre-framed record bytes **without** syncing (unless the
    /// policy is [`FsyncPolicy::Always`]) — the committer thread's
    /// write half of group commit. On failure the file is rolled back
    /// to the last whole record; on success the bytes are appended but
    /// *not durable* until the next [`Wal::sync`] returns.
    pub fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let res = (|| -> Result<(), WalError> {
            self.faults.check(FaultSite::AppendWrite)?;
            self.log.write_all(bytes)?;
            self.log.flush()?;
            if self.policy == FsyncPolicy::Always {
                self.faults.check(FaultSite::AppendSync)?;
                self.log.sync_data()?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.end += bytes.len() as u64;
                if self.policy == FsyncPolicy::Always {
                    self.synced = self.end;
                }
                Ok(())
            }
            Err(e) => {
                let _ = self.log.set_len(self.end);
                Err(e)
            }
        }
    }

    /// Make every appended record durable: one `fdatasync` covering
    /// everything since the last sync — the committer's batch boundary.
    /// Under [`FsyncPolicy::Off`] this is a no-op that still advances
    /// the durable horizon (the policy's contract is flushed-to-OS).
    pub fn sync(&mut self) -> Result<(), WalError> {
        if self.policy != FsyncPolicy::Off && self.synced != self.end {
            self.faults.check(FaultSite::AppendSync)?;
            self.log.sync_data()?;
        }
        self.synced = self.end;
        Ok(())
    }

    /// Truncate appended-but-never-synced records after a failed batch
    /// sync, so a later reopen cannot replay blocks whose acks were
    /// never released. Returns the bytes discarded.
    pub fn rollback_unsynced(&mut self) -> u64 {
        let lost = self.end.saturating_sub(self.synced);
        if lost > 0 {
            let _ = self.log.set_len(self.synced);
            self.end = self.synced;
        }
        lost
    }

    /// End of the durable prefix, in bytes (diagnostics/tests).
    #[must_use]
    pub fn synced_len(&self) -> u64 {
        self.synced
    }

    /// Whether to `fsync` after every group commit (default: off —
    /// flushed-to-OS durability; turn on to survive power loss at the
    /// cost of one `fdatasync` per block). Compatibility spelling of
    /// [`Wal::with_fsync`]: `true` is [`FsyncPolicy::Always`], `false`
    /// is [`FsyncPolicy::Off`].
    #[must_use]
    pub fn with_sync(self, sync: bool) -> Wal {
        self.with_fsync(if sync { FsyncPolicy::Always } else { FsyncPolicy::Off })
    }

    /// Set the [`FsyncPolicy`] (default [`FsyncPolicy::Off`]).
    #[must_use]
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Wal {
        self.policy = policy;
        self
    }

    /// The configured [`FsyncPolicy`].
    #[must_use]
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Attach an [`IoFaults`] error schedule: every append, seal and
    /// checkpoint of this log (and of the [`CheckpointJob`]s it stages)
    /// consults the plan before touching the disk. The default plan
    /// never fires.
    #[must_use]
    pub fn with_faults(mut self, faults: IoFaults) -> Wal {
        self.faults = faults;
        self
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a base snapshot exists (or has been staged) for
    /// increments to chain onto. `false` on a fresh directory — and
    /// after recovering from a crash that killed the base checkpoint
    /// job itself: the caller must write a full checkpoint before the
    /// first [`CheckpointData::Incremental`].
    #[must_use]
    pub fn has_base(&self) -> bool {
        self.has_base
    }

    /// Stage a checkpoint: assign it the next sequence number and seal
    /// the live log (a rename — the only admission-path cost besides
    /// the caller's O(dirty) capture). The returned [`CheckpointJob`]
    /// carries the expensive work; run it inline or hand it to a
    /// [`Snapshotter`]. Until the job completes the previous chain
    /// stays authoritative — a crash in between replays the sealed
    /// segment instead.
    ///
    /// An [`CheckpointData::Incremental`] requires a base snapshot
    /// (written or staged) to chain onto.
    pub fn begin_checkpoint(&mut self, data: CheckpointData) -> Result<CheckpointJob, WalError> {
        if matches!(data, CheckpointData::Incremental(_)) && !self.has_base {
            return Err(WalError::Mismatch(
                "incremental checkpoint without a base snapshot".into(),
            ));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.end > 0 {
            self.log.flush()?;
            if self.policy != FsyncPolicy::Off {
                self.log.sync_data()?;
            }
            self.faults.check(FaultSite::SealRename)?;
            let live = self.dir.join(LIVE_LOG);
            std::fs::rename(&live, self.dir.join(sealed_name(seq)))?;
            // Install the pre-created spare segment if the checkpoint
            // job has replenished one (always empty); fall back to
            // creating in place on the first seal.
            let _ = std::fs::rename(self.dir.join(SPARE_LOG), &live);
            self.log = std::fs::OpenOptions::new().create(true).append(true).open(&live)?;
            self.end = 0;
            self.synced = 0;
        }
        if matches!(data, CheckpointData::Full(_)) {
            self.has_base = true;
        }
        // The increment chains onto the previous checkpoint (or, after
        // a reopen, the last durable one — a sequence swallowed by a
        // crashed job leaves a gap in the numbering, which the recorded
        // parent link distinguishes from a genuinely lost increment).
        let parent = std::mem::replace(&mut self.chain_seq, seq);
        Ok(CheckpointJob { dir: self.dir.clone(), seq, parent, data, faults: self.faults.clone() })
    }

    /// Write `snap` as a new full checkpoint **synchronously**: stage
    /// it and run the job inline. Equivalent to
    /// `begin_checkpoint(Full)` + [`CheckpointJob::run`].
    pub fn write_snapshot(&mut self, snap: &Snapshot) -> Result<(), WalError> {
        self.begin_checkpoint(CheckpointData::Full(snap.clone()))?.run()
    }

    /// Read a directory's checkpoint chain and WAL tail: fold the base
    /// snapshot and every increment after it, then decode the sealed
    /// segments and the live log in order. Returns `None` for the
    /// snapshot when no checkpoint was ever written (recover from the
    /// empty monitor, replaying every record). Records already covered
    /// by the chain are *not* filtered here — recovery skips them per
    /// shard by step offset, which is what makes the
    /// crash-between-checkpoint-and-prune window safe. A torn final
    /// record per segment is dropped; a torn or checksum-failing
    /// checkpoint file is an error (checkpoints are written atomically,
    /// so a bad one is real corruption, not a crash artifact); an
    /// increment older than the base is a stale leftover and ignored.
    pub fn load(dir: impl AsRef<Path>) -> Result<(Option<Snapshot>, Vec<WalRecord>), WalError> {
        let dir = dir.as_ref();
        let (mut base_seq, mut snap) = (0u64, None);
        match std::fs::read(dir.join(BASE_FILE)) {
            Ok(bytes) => {
                let (seq, body) = unframe_checkpoint(&bytes, "snapshot")?;
                base_seq = seq;
                snap = Some(Snapshot::decode(body)?);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        // Collect increments and sealed segments by sequence number.
        let mut delta_seqs: Vec<u64> = Vec::new();
        let mut sealed_seqs: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(s) = seq_of(name, "delta-", ".bin") {
                delta_seqs.push(s);
            } else if let Some(s) = seq_of(name, "sealed-", ".log") {
                sealed_seqs.push(s);
            }
        }
        delta_seqs.sort_unstable();
        sealed_seqs.sort_unstable();
        // Fold the chain by recorded parent links: sequence numbers may
        // have holes (a crashed job's sealed segment keeps its number,
        // and its records replay below), but each increment must chain
        // onto exactly the previously folded checkpoint.
        let mut chained = base_seq;
        for &s in &delta_seqs {
            if s <= base_seq {
                continue; // stale increment from before the current base
            }
            let Some(base) = snap.as_mut() else {
                return Err(WalError::Corrupt(format!("increment {s} without a base snapshot")));
            };
            let bytes = std::fs::read(dir.join(delta_name(s)))?;
            let (seq, body) = unframe_checkpoint(&bytes, "checkpoint delta")?;
            if seq != s {
                return Err(WalError::Corrupt(format!(
                    "increment file {s} carries sequence {seq}"
                )));
            }
            let mut r = Reader::new(body);
            let parent = r.u64()?;
            let delta_bytes = &body[body.len() - r.remaining()..];
            if parent != chained {
                return Err(WalError::Corrupt(format!(
                    "checkpoint chain broken: increment {s} chains onto {parent}, \
                     last folded checkpoint is {chained}"
                )));
            }
            base.apply(CheckpointDelta::decode(delta_bytes)?)?;
            chained = s;
        }
        let mut records = Vec::new();
        for &s in &sealed_seqs {
            let bytes = std::fs::read(dir.join(sealed_name(s)))?;
            records.extend(decode_records(&bytes)?);
        }
        match std::fs::read(dir.join(LIVE_LOG)) {
            Ok(bytes) => records.extend(decode_records(&bytes)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok((snap, records))
    }
}

impl CommitSink for Wal {
    fn committed(&mut self, block: &BlockRef<'_>) -> Result<(), WalError> {
        self.buf.clear();
        encode_record(&mut self.buf, block)?;
        self.append()
    }

    fn certified(&mut self, steps: usize) -> Result<(), WalError> {
        self.buf.clear();
        encode_certify_record(&mut self.buf, steps);
        self.append()
    }

    fn redefined(
        &mut self,
        epoch: u64,
        policy: ResiduePolicy,
        shards: &[(u32, usize)],
        inventory: &[u8],
    ) -> Result<(), WalError> {
        self.buf.clear();
        encode_redefine_record(&mut self.buf, epoch, policy, shards, inventory)?;
        self.append()
    }
}

/// An in-memory log holding the exact bytes a [`Wal`] would write —
/// the property-test and benchmark double, byte-compatible with the
/// file format (including torn-tail semantics via
/// [`MemoryWal::records_up_to`], and the incremental checkpoint chain
/// via [`MemoryWal::write_checkpoint_delta`]).
#[derive(Default)]
pub struct MemoryWal {
    log: Vec<u8>,
    base: Option<Vec<u8>>,
    deltas: Vec<Vec<u8>>,
    faults: IoFaults,
}

impl MemoryWal {
    /// An empty in-memory log.
    #[must_use]
    pub fn new() -> MemoryWal {
        MemoryWal::default()
    }

    /// Attach an [`IoFaults`] error schedule: `committed`/`certified`
    /// consult the [`FaultSite::AppendWrite`] site before encoding,
    /// mirroring the file-backed [`Wal`] — so ingress-level failure
    /// policies are testable without a real disk.
    #[must_use]
    pub fn with_faults(mut self, faults: IoFaults) -> MemoryWal {
        self.faults = faults;
        self
    }

    /// Size of the log in bytes.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Decode every complete record.
    #[must_use]
    pub fn records(&self) -> Vec<WalRecord> {
        decode_records(&self.log).expect("self-written log decodes")
    }

    /// Decode the records recoverable from the first `len` bytes — i.e.
    /// after a crash that persisted only a prefix of the log.
    #[must_use]
    pub fn records_up_to(&self, len: usize) -> Vec<WalRecord> {
        decode_records(&self.log[..len.min(self.log.len())]).expect("prefix decodes")
    }

    /// Store `snap` as the new base checkpoint, dropping earlier
    /// increments and truncating the log — mirroring a full
    /// [`Wal::begin_checkpoint`] whose job has completed.
    pub fn write_snapshot(&mut self, snap: &Snapshot) {
        self.base = Some(snap.encode());
        self.deltas.clear();
        self.log.clear();
    }

    /// Append an incremental checkpoint to the chain and truncate the
    /// log (the records it covers are "pruned").
    ///
    /// # Panics
    /// Panics if no base snapshot was ever written (mirrors
    /// [`Wal::begin_checkpoint`]'s error).
    pub fn write_checkpoint_delta(&mut self, delta: &CheckpointDelta) {
        assert!(self.base.is_some(), "incremental checkpoint without a base snapshot");
        self.deltas.push(delta.encode());
        self.log.clear();
    }

    /// The stored checkpoint chain, folded: base snapshot plus every
    /// increment in order.
    pub fn snapshot(&self) -> Result<Option<Snapshot>, WalError> {
        let Some(base) = &self.base else { return Ok(None) };
        let mut snap = Snapshot::decode(base)?;
        for bytes in &self.deltas {
            snap.apply(CheckpointDelta::decode(bytes)?)?;
        }
        Ok(Some(snap))
    }
}

impl CommitSink for MemoryWal {
    fn committed(&mut self, block: &BlockRef<'_>) -> Result<(), WalError> {
        self.faults.check(FaultSite::AppendWrite)?;
        encode_record(&mut self.log, block)
    }

    fn certified(&mut self, steps: usize) -> Result<(), WalError> {
        self.faults.check(FaultSite::AppendWrite)?;
        encode_certify_record(&mut self.log, steps);
        Ok(())
    }

    fn redefined(
        &mut self,
        epoch: u64,
        policy: ResiduePolicy,
        shards: &[(u32, usize)],
        inventory: &[u8],
    ) -> Result<(), WalError> {
        self.faults.check(FaultSite::AppendWrite)?;
        encode_redefine_record(&mut self.log, epoch, policy, shards, inventory)
    }
}

/// A sink that fails on command — exercises the abort-on-sink-error
/// contract in tests.
#[doc(hidden)]
#[derive(Default)]
pub struct FailingSink {
    /// When true, every commit errors.
    pub fail: bool,
    /// Blocks accepted while `fail` was false.
    pub accepted: usize,
}

impl CommitSink for FailingSink {
    fn committed(&mut self, _block: &BlockRef<'_>) -> Result<(), WalError> {
        if self.fail {
            return Err(WalError::Io("injected sink failure".into()));
        }
        self.accepted += 1;
        Ok(())
    }

    fn certified(&mut self, _steps: usize) -> Result<(), WalError> {
        if self.fail {
            return Err(WalError::Io("injected sink failure".into()));
        }
        Ok(())
    }

    fn redefined(
        &mut self,
        _epoch: u64,
        _policy: ResiduePolicy,
        _shards: &[(u32, usize)],
        _inventory: &[u8],
    ) -> Result<(), WalError> {
        if self.fail {
            return Err(WalError::Io("injected sink failure".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn one_shard(steps0: usize, k: usize) -> Vec<ShardLetters> {
        vec![ShardLetters { shard: 0, steps0, letters: (0..k as u32).collect() }]
    }

    #[test]
    fn records_survive_round_trip_and_drop_torn_tail() {
        let s = migratory_model::schema::university_schema();
        let ts = migratory_lang::parse_transactions(
            &s,
            r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
        )
        .unwrap();
        let mut db = Instance::default();
        let mk = ts.get("Mk").unwrap();
        let deltas: Vec<Delta> = (0..3)
            .map(|i| {
                let args = migratory_lang::Assignment::new(vec![migratory_model::Value::str(
                    &format!("{i}"),
                )]);
                migratory_lang::apply_transaction_delta(&s, &mut db, mk, &args).unwrap()
            })
            .collect();
        let mut log = Vec::new();
        let s0 = one_shard(0, 1);
        encode_record(&mut log, &BlockRef { deltas: &[&deltas[0]], shards: &s0 }).unwrap();
        let s1 = one_shard(1, 2);
        encode_record(&mut log, &BlockRef { deltas: &[&deltas[1], &deltas[2]], shards: &s1 })
            .unwrap();
        let full = decode_records(&log).unwrap();
        assert_eq!(full.len(), 2);
        let WalRecord::Block(b0) = &full[0] else { panic!("block record") };
        assert_eq!(b0.deltas, vec![deltas[0].clone()]);
        assert_eq!(b0.shards, one_shard(0, 1));
        let WalRecord::Block(b1) = &full[1] else { panic!("block record") };
        assert_eq!((b1.shards[0].steps0, b1.deltas.len(), full[1].letters()), (1, 2, 2));
        // Certification markers frame through the same channel.
        let mut with_cert = log.clone();
        encode_certify_record(&mut with_cert, 3);
        let all = decode_records(&with_cert).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2], WalRecord::Certified { steps: 3 });
        assert_eq!(all[2].letters(), 0);
        // Every truncation point recovers a (possibly empty) prefix of
        // whole blocks — never an error, never a partial block.
        let first_len = {
            let mut one = Vec::new();
            encode_record(&mut one, &BlockRef { deltas: &[&deltas[0]], shards: &s0 }).unwrap();
            one.len()
        };
        for cut in 0..log.len() {
            let got = decode_records(&log[..cut]).unwrap();
            let want = usize::from(cut >= first_len);
            assert_eq!(got.len(), want, "cut at {cut}");
        }
        // A flipped payload byte fails the checksum and truncates there.
        let mut bad = log.clone();
        let idx = first_len + 10;
        bad[idx] ^= 0xff;
        assert_eq!(decode_records(&bad).unwrap().len(), 1);
    }

    #[test]
    fn oversized_length_claims_are_capped() {
        let mut log = Vec::new();
        encode_certify_record(&mut log, 7);
        let good_len = log.len();
        encode_certify_record(&mut log, 8);
        // Corrupt the second record's length header to claim ~3.4 GiB.
        log[good_len..good_len + 4].copy_from_slice(&0xccff_ffffu32.to_le_bytes());
        // The claimed bytes are NOT present: torn-tail semantics, the
        // first record survives, no multi-GiB buffer is ever sized.
        let got = decode_records(&log).unwrap();
        assert_eq!(got, vec![WalRecord::Certified { steps: 7 }]);
        assert_eq!(valid_prefix_len(&log).unwrap(), good_len);
        // With the claimed bytes present the claim cannot be a torn
        // append: corruption, loudly (one byte over the cap keeps the
        // test buffer as small as possible).
        let over = u32::try_from(MAX_RECORD_LEN + 1).unwrap();
        let mut padded = log[..good_len].to_vec();
        padded.extend_from_slice(&over.to_le_bytes());
        padded.extend_from_slice(&[0u8; 4]); // bogus crc, never consulted
        padded.resize(good_len + 8 + MAX_RECORD_LEN + 1, 0);
        assert!(matches!(decode_records(&padded), Err(WalError::Corrupt(_))));
        assert!(matches!(valid_prefix_len(&padded), Err(WalError::Corrupt(_))));
    }
}

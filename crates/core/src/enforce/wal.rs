//! Durability for the enforcement engine: a write-ahead log of committed
//! [`Delta`] blocks plus snapshots of the cohort/RLE tracking state.
//!
//! # Why deltas are the right log record
//!
//! The paper's migration constraints are *histories*: the monitor's DFA
//! tracking state **is** the constraint (losing it is losing which
//! patterns have been consumed). A transaction application is not
//! replayable from its syntax alone — `Sat` depends on the whole
//! database — but its [`Delta`] change-set is exact and invertible, so a
//! log of committed deltas replays with [`Delta::redo`] in O(touched)
//! per record, independent of database size and with no interpreter in
//! the loop.
//!
//! # Durability contract
//!
//! A monitor with an attached [`CommitSink`] writes **ahead**: a block
//! of admitted letters reaches the sink after every shard has staged
//! (so only admissible blocks are ever logged) and *before* any
//! in-memory tracking state is written. If the sink fails, the database
//! application is rolled back and the monitor is unchanged — the log
//! never lags the engine. One sink call covers the whole block (`k`
//! effective letters), so batched admission **group-commits**: one
//! record, one flush, per block.
//!
//! Recovery ([`Monitor::recover`](super::Monitor::recover),
//! [`ShardedMonitor::recover`](super::ShardedMonitor::recover)) loads
//! the latest [`Snapshot`] and replays only the WAL tail past it —
//! never the full history. Replay re-applies each block at its original
//! commit granularity (one cohort sweep per logged block, mirroring the
//! original admission), and because every engine structure iterates in
//! canonical order (`BTreeMap`s throughout — see
//! `DeltaState::by_key`), the recovered tracking state is
//! **byte-identical** to the uncrashed monitor's: re-encoding both
//! snapshots yields equal bytes. The randomized crash-point suite in
//! `tests/wal_recovery.rs` checks exactly this at every prefix of
//! random runs.
//!
//! # Prefix-closedness and torn tails
//!
//! Records are length-prefixed and checksummed; a crash mid-append
//! leaves a torn final record, which [`Wal::load`] (and
//! [`decode_records`]) silently drop. That is *correct*, not merely
//! tolerated: inventories are prefix-closed (Definition 3.3), so the
//! state reached by any prefix of a committed run is itself a legal
//! monitor state — recovering "one block short" yields a monitor that
//! was valid the instant before the lost commit, and whose caller never
//! saw that commit acknowledged (the sink flush happens before
//! admission returns).
//!
//! [`Delta`]: migratory_lang::Delta

use super::delta::{Cohort, DeltaState, ObjRecord};
use super::StepPolicy;
use migratory_lang::Delta;
use migratory_model::codec::{encode_u64, Reader};
use migratory_model::{Instance, ModelError, Oid};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Errors of the durability layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalError {
    /// An I/O failure from the backing store (message of the underlying
    /// `std::io::Error`).
    Io(String),
    /// A snapshot or log payload is malformed.
    Corrupt(String),
    /// Snapshot and WAL tail disagree (wrong shard count, a step gap
    /// between snapshot and first tail block, a block that does not
    /// admit).
    Mismatch(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
            WalError::Mismatch(m) => write!(f, "wal mismatch: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

impl From<ModelError> for WalError {
    fn from(e: ModelError) -> Self {
        WalError::Corrupt(e.to_string())
    }
}

/// Receiver of committed blocks — the pluggable seam between the
/// admission engines and durable storage. The engines call
/// [`CommitSink::committed`] once per admitted block, after staging
/// succeeds and **before** tracking state is written; an `Err` aborts
/// the commit (the application is rolled back). "No sink" is the no-op
/// default — an in-memory monitor pays nothing for the seam.
pub trait CommitSink: Send {
    /// A block of `deltas` (the effective letters, in order) is about to
    /// commit; `steps0` is the number of letters emitted before it.
    fn committed(&mut self, steps0: usize, deltas: &[&Delta]) -> Result<(), WalError>;

    /// The monitor certified its transaction schema at letter count
    /// `steps` (Corollary 3.3): tracking freezes here and later blocks
    /// are logged unchecked. Durable stores must record this — replay
    /// is wrong without it — so the marker is written through the same
    /// write-ahead discipline; an `Err` keeps the monitor uncertified.
    fn certified(&mut self, steps: usize) -> Result<(), WalError>;
}

/// One committed block as read back from a log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalBlock {
    /// Letters emitted before this block.
    pub steps0: usize,
    /// The block's effective deltas, in commit order.
    pub deltas: Vec<Delta>,
}

/// One log record as read back from a log: a committed block, or the
/// certification event (which freezes tracking from its step on).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// A committed block of effective letters.
    Block(WalBlock),
    /// [`Monitor::certify`](super::Monitor::certify) succeeded with the
    /// monitor at this letter count.
    Certified {
        /// Letters emitted when certification took effect.
        steps: usize,
    },
}

impl WalRecord {
    /// Letters this record contributes to the run.
    #[must_use]
    pub fn letters(&self) -> usize {
        match self {
            WalRecord::Block(b) => b.deltas.len(),
            WalRecord::Certified { .. } => 0,
        }
    }
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

/// IEEE CRC-32, table-driven.
fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Record payload tags.
const TAG_BLOCK: u8 = 0;
const TAG_CERTIFY: u8 = 1;

/// Append one framed record (`[len][crc][payload]`, little-endian
/// prefixes) for a committed block.
pub fn encode_record(out: &mut Vec<u8>, steps0: usize, deltas: &[&Delta]) {
    let mut payload = Vec::new();
    payload.push(TAG_BLOCK);
    encode_u64(&mut payload, steps0 as u64);
    encode_u64(&mut payload, deltas.len() as u64);
    for d in deltas {
        migratory_lang::encode_delta(&mut payload, d);
    }
    frame(out, &payload);
}

/// Append one framed certification-marker record.
pub fn encode_certify_record(out: &mut Vec<u8>, steps: usize) {
    let mut payload = Vec::new();
    payload.push(TAG_CERTIFY);
    encode_u64(&mut payload, steps as u64);
    frame(out, &payload);
}

fn frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&u32::try_from(payload.len()).expect("record fits u32").to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode a log byte stream into records, stopping at the first torn or
/// checksum-failing record (the crash-truncation semantics — see the
/// module docs for why dropping the torn tail is sound).
#[must_use]
pub fn decode_records(mut bytes: &[u8]) -> Vec<WalRecord> {
    let mut records = Vec::new();
    loop {
        let Some((head, rest)) = bytes.split_at_checked(8) else { return records };
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
        let Some((payload, rest)) = rest.split_at_checked(len) else { return records };
        if crc32(payload) != crc {
            return records;
        }
        let Ok(record) = decode_record(payload) else { return records };
        records.push(record);
        bytes = rest;
    }
}

/// Byte length of the longest prefix of whole, checksum-valid records —
/// where [`Wal::open`] truncates to before appending.
fn valid_prefix_len(bytes: &[u8]) -> usize {
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        let Some((head, tail)) = rest.split_at_checked(8) else { return pos };
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
        let Some(payload) = tail.get(..len) else { return pos };
        if crc32(payload) != crc || decode_record(payload).is_err() {
            return pos;
        }
        pos += 8 + len;
    }
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, WalError> {
    let mut r = Reader::new(payload);
    let record = match r.byte()? {
        TAG_BLOCK => {
            let steps0 =
                usize::try_from(r.u64()?).map_err(|_| WalError::Corrupt("steps0".into()))?;
            let n = r.count()?;
            let mut deltas = Vec::with_capacity(n);
            for _ in 0..n {
                deltas.push(
                    migratory_lang::decode_delta(&mut r)
                        .map_err(|e| WalError::Corrupt(e.to_string()))?,
                );
            }
            WalRecord::Block(WalBlock { steps0, deltas })
        }
        TAG_CERTIFY => WalRecord::Certified {
            steps: usize::try_from(r.u64()?).map_err(|_| WalError::Corrupt("steps".into()))?,
        },
        t => return Err(WalError::Corrupt(format!("unknown record tag {t}"))),
    };
    if !r.is_exhausted() {
        return Err(WalError::Corrupt("trailing bytes in record".into()));
    }
    Ok(record)
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

const SNAP_MAGIC: &[u8; 6] = b"MGSNP1";

/// A checkpoint of everything a monitor cannot rebuild from its
/// constructor arguments: the database heap, the per-shard cohort/RLE
/// tracking state, and the step/pre-state counters. Encoding is
/// canonical, so snapshot bytes decide state equality — the recovery
/// suite's "byte-identical" check is `encode()` equality.
#[derive(Clone)]
pub struct Snapshot {
    pub(crate) steps: usize,
    pub(crate) pre_state: u32,
    pub(crate) pre_exempt: bool,
    pub(crate) policy: StepPolicy,
    pub(crate) certified: bool,
    pub(crate) certified_at: Option<usize>,
    pub(crate) db: Instance,
    pub(crate) shards: Vec<DeltaState>,
}

impl Snapshot {
    /// Letters emitted at the moment of the checkpoint. WAL blocks with
    /// `steps0 <` this are already folded in and are skipped on
    /// recovery.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The checkpointed database.
    #[must_use]
    pub fn db(&self) -> &Instance {
        &self.db
    }

    /// Number of tracking shards (1 for the single
    /// [`Monitor`](super::Monitor)).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Canonical binary encoding.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAP_MAGIC);
        encode_u64(&mut out, self.steps as u64);
        encode_u64(&mut out, u64::from(self.pre_state));
        let mut flags = 0u8;
        if self.pre_exempt {
            flags |= 1;
        }
        if self.policy == StepPolicy::OnlyChanging {
            flags |= 2;
        }
        if self.certified {
            flags |= 4;
        }
        if self.certified_at.is_some() {
            flags |= 8;
        }
        out.push(flags);
        if let Some(at) = self.certified_at {
            encode_u64(&mut out, at as u64);
        }
        self.db.encode_snapshot(&mut out);
        encode_u64(&mut out, self.shards.len() as u64);
        for s in &self.shards {
            encode_state(&mut out, s);
        }
        out
    }

    /// Decode [`Snapshot::encode`] bytes.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, WalError> {
        if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(WalError::Corrupt("bad snapshot magic".into()));
        }
        let mut r = Reader::new(&bytes[SNAP_MAGIC.len()..]);
        let steps = usize::try_from(r.u64()?).map_err(|_| WalError::Corrupt("steps".into()))?;
        let pre_state =
            u32::try_from(r.u64()?).map_err(|_| WalError::Corrupt("pre_state".into()))?;
        let flags = r.byte()?;
        if flags & !0x0f != 0 {
            return Err(WalError::Corrupt(format!("unknown snapshot flags {flags:#x}")));
        }
        let certified_at = if flags & 8 != 0 {
            Some(usize::try_from(r.u64()?).map_err(|_| WalError::Corrupt("horizon".into()))?)
        } else {
            None
        };
        let db = Instance::decode_snapshot(&mut r)?;
        let n = r.count()?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(decode_state(&mut r)?);
        }
        if !r.is_exhausted() {
            return Err(WalError::Corrupt("trailing bytes in snapshot".into()));
        }
        Ok(Snapshot {
            steps,
            pre_state,
            pre_exempt: flags & 1 != 0,
            policy: if flags & 2 != 0 {
                StepPolicy::OnlyChanging
            } else {
                StepPolicy::EveryApplication
            },
            certified: flags & 4 != 0,
            certified_at,
            db,
            shards,
        })
    }
}

/// Encode one shard's tracking state verbatim — slot table, key map,
/// free list and all. The engine is deterministic (ordered iteration
/// everywhere), so replay from a verbatim state reproduces slot
/// assignment exactly; nothing needs canonicalizing beyond the ordered
/// maps themselves.
fn encode_state(out: &mut Vec<u8>, s: &DeltaState) {
    encode_u64(out, s.records.len() as u64);
    for (o, rec) in &s.records {
        encode_u64(out, o.0);
        encode_u64(out, rec.creation_step as u64);
        encode_u64(out, u64::from(rec.cohort));
        encode_u64(out, rec.segments.len() as u64);
        for &(letter, from) in &rec.segments {
            encode_u64(out, u64::from(letter));
            encode_u64(out, from as u64);
        }
    }
    encode_u64(out, s.cohorts.len() as u64);
    for c in &s.cohorts {
        encode_u64(out, u64::from(c.state));
        encode_u64(out, u64::from(c.last_role));
        encode_u64(out, c.size as u64);
        encode_u64(out, u64::from(c.parent));
    }
    encode_u64(out, s.by_key.len() as u64);
    for (&(state, role), &id) in &s.by_key {
        encode_u64(out, u64::from(state));
        encode_u64(out, u64::from(role));
        encode_u64(out, u64::from(id));
    }
    encode_u64(out, s.free.len() as u64);
    for &id in &s.free {
        encode_u64(out, u64::from(id));
    }
    // `last_touched` is deliberately NOT encoded: it is a diagnostics
    // counter that even unlogged null applications update, so it is not
    // part of the durable (byte-compared) state.
}

fn u32_of(v: u64, what: &str) -> Result<u32, WalError> {
    u32::try_from(v).map_err(|_| WalError::Corrupt(format!("{what} out of range")))
}

fn usize_of(v: u64, what: &str) -> Result<usize, WalError> {
    usize::try_from(v).map_err(|_| WalError::Corrupt(format!("{what} out of range")))
}

fn decode_state(r: &mut Reader<'_>) -> Result<DeltaState, WalError> {
    let n = r.count()?;
    let mut entries: Vec<(Oid, ObjRecord)> = Vec::with_capacity(n);
    for _ in 0..n {
        let o = Oid(r.u64()?);
        if entries.last().is_some_and(|&(p, _)| o <= p) {
            return Err(WalError::Corrupt("records out of oid order".into()));
        }
        let creation_step = usize_of(r.u64()?, "creation step")?;
        let cohort = u32_of(r.u64()?, "cohort")?;
        let m = r.count()?;
        let mut segments = Vec::with_capacity(m);
        for _ in 0..m {
            let letter = u32_of(r.u64()?, "letter")?;
            let from = usize_of(r.u64()?, "segment start")?;
            segments.push((letter, from));
        }
        if segments.is_empty() {
            return Err(WalError::Corrupt(format!("record {o} has no segments")));
        }
        entries.push((o, ObjRecord { creation_step, segments, cohort }));
    }
    // Ascending order verified above: the map bulk-builds.
    let records: BTreeMap<Oid, ObjRecord> = entries.into_iter().collect();
    let n = r.count()?;
    let mut cohorts = Vec::with_capacity(n);
    for _ in 0..n {
        cohorts.push(Cohort {
            state: u32_of(r.u64()?, "cohort state")?,
            last_role: u32_of(r.u64()?, "cohort role")?,
            size: usize_of(r.u64()?, "cohort size")?,
            parent: u32_of(r.u64()?, "cohort parent")?,
        });
    }
    if cohorts.is_empty() {
        return Err(WalError::Corrupt("missing exempt sink cohort".into()));
    }
    let n = r.count()?;
    let mut by_key = BTreeMap::new();
    for _ in 0..n {
        let state = u32_of(r.u64()?, "key state")?;
        let role = u32_of(r.u64()?, "key role")?;
        let id = u32_of(r.u64()?, "key cohort")?;
        if (id as usize) >= cohorts.len() {
            return Err(WalError::Corrupt("key maps to missing cohort".into()));
        }
        by_key.insert((state, role), id);
    }
    let n = r.count()?;
    let mut free = Vec::with_capacity(n);
    for _ in 0..n {
        let id = u32_of(r.u64()?, "free slot")?;
        if (id as usize) >= cohorts.len() {
            return Err(WalError::Corrupt("free slot out of range".into()));
        }
        free.push(id);
    }
    for rec in records.values() {
        if (rec.cohort as usize) >= cohorts.len() {
            return Err(WalError::Corrupt("record points at missing cohort".into()));
        }
    }
    Ok(DeltaState { records, cohorts, by_key, free, last_touched: 0 })
}

// ---------------------------------------------------------------------
// Backing stores
// ---------------------------------------------------------------------

/// A directory-backed log: `wal.log` (appended records) plus
/// `snapshot.bin` (the latest checkpoint, replaced atomically via
/// temp-file rename). Writing a snapshot truncates the log — recovery
/// never replays history the checkpoint already covers.
pub struct Wal {
    dir: PathBuf,
    log: std::fs::File,
    sync: bool,
    buf: Vec<u8>,
    /// End of the last whole record — the append position, and where a
    /// failed append rolls back to.
    end: u64,
}

impl Wal {
    /// Open (creating if needed) the log directory for appending. A
    /// torn tail left by a crash mid-append is truncated away first —
    /// appending after garbage would hide every later record from
    /// recovery (which stops at the first bad frame).
    pub fn open(dir: impl AsRef<Path>) -> Result<Wal, WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("wal.log");
        let valid = match std::fs::read(&path) {
            Ok(bytes) => valid_prefix_len(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        let log = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        log.set_len(valid as u64)?;
        Ok(Wal { dir, log, sync: false, buf: Vec::new(), end: valid as u64 })
    }

    /// Append the staged record in `buf`, rolling the file back to the
    /// last whole record on any failure so a half-written frame never
    /// poisons later appends.
    fn append(&mut self) -> Result<(), WalError> {
        let res = (|| -> Result<(), WalError> {
            self.log.write_all(&self.buf)?;
            self.log.flush()?;
            if self.sync {
                self.log.sync_data()?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.end += self.buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                let _ = self.log.set_len(self.end);
                Err(e)
            }
        }
    }

    /// Whether to `fsync` after every group commit (default: off —
    /// flushed-to-OS durability; turn on to survive power loss at the
    /// cost of one `fdatasync` per block).
    #[must_use]
    pub fn with_sync(mut self, sync: bool) -> Wal {
        self.sync = sync;
        self
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write `snap` as the new checkpoint (temp file + atomic rename),
    /// then truncate the log: everything up to `snap.steps()` is now in
    /// the snapshot, and recovery must not see it twice. (Block records
    /// carry their step offset, so even a crash between rename and
    /// truncate recovers correctly — pre-snapshot blocks are skipped by
    /// step.)
    ///
    /// Ordering against power loss: the temp file is fsynced *before*
    /// the rename and the directory *after* it, and only then is the
    /// log truncated — the truncation can never reach disk ahead of the
    /// snapshot bytes it makes load-bearing.
    pub fn write_snapshot(&mut self, snap: &Snapshot) -> Result<(), WalError> {
        let tmp = self.dir.join("snapshot.tmp");
        let bytes = snap.encode();
        let mut payload = Vec::with_capacity(bytes.len() + 8);
        payload.extend_from_slice(&u32::try_from(bytes.len()).expect("fits").to_le_bytes());
        payload.extend_from_slice(&crc32(&bytes).to_le_bytes());
        payload.extend_from_slice(&bytes);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&payload)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join("snapshot.bin"))?;
        // Persist the rename itself before dropping the records it
        // supersedes (directory fsync; best-effort where unsupported).
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.log.set_len(0)?;
        self.end = 0;
        if self.sync {
            self.log.sync_data()?;
        }
        Ok(())
    }

    /// Read a directory's checkpoint and WAL tail. Returns `None` for
    /// the snapshot when no checkpoint was ever written (recover from
    /// the empty monitor, replaying every block). A torn final log
    /// record is dropped; a torn snapshot is an error (snapshots are
    /// written atomically, so a bad one is real corruption, not a
    /// crash artifact).
    pub fn load(dir: impl AsRef<Path>) -> Result<(Option<Snapshot>, Vec<WalRecord>), WalError> {
        let dir = dir.as_ref();
        let snap = match std::fs::read(dir.join("snapshot.bin")) {
            Ok(bytes) => {
                let Some((head, rest)) = bytes.split_at_checked(8) else {
                    return Err(WalError::Corrupt("snapshot header truncated".into()));
                };
                let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
                let crc = u32::from_le_bytes(head[4..].try_into().expect("4 bytes"));
                let Some(payload) = rest.get(..len) else {
                    return Err(WalError::Corrupt("snapshot truncated".into()));
                };
                if crc32(payload) != crc {
                    return Err(WalError::Corrupt("snapshot checksum mismatch".into()));
                }
                Some(Snapshot::decode(payload)?)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let log = match std::fs::read(dir.join("wal.log")) {
            Ok(bytes) => decode_records(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        Ok((snap, log))
    }
}

impl CommitSink for Wal {
    fn committed(&mut self, steps0: usize, deltas: &[&Delta]) -> Result<(), WalError> {
        self.buf.clear();
        encode_record(&mut self.buf, steps0, deltas);
        self.append()
    }

    fn certified(&mut self, steps: usize) -> Result<(), WalError> {
        self.buf.clear();
        encode_certify_record(&mut self.buf, steps);
        self.append()
    }
}

/// An in-memory log holding the exact bytes a [`Wal`] would write —
/// the property-test and benchmark double, byte-compatible with the
/// file format (including torn-tail semantics via
/// [`MemoryWal::records_up_to`]).
#[derive(Default)]
pub struct MemoryWal {
    log: Vec<u8>,
    snapshot: Option<Vec<u8>>,
}

impl MemoryWal {
    /// An empty in-memory log.
    #[must_use]
    pub fn new() -> MemoryWal {
        MemoryWal::default()
    }

    /// Size of the log in bytes.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Decode every complete record.
    #[must_use]
    pub fn records(&self) -> Vec<WalRecord> {
        decode_records(&self.log)
    }

    /// Decode the records recoverable from the first `len` bytes — i.e.
    /// after a crash that persisted only a prefix of the log.
    #[must_use]
    pub fn records_up_to(&self, len: usize) -> Vec<WalRecord> {
        decode_records(&self.log[..len.min(self.log.len())])
    }

    /// Store `snap` as the checkpoint and truncate the log, mirroring
    /// [`Wal::write_snapshot`].
    pub fn write_snapshot(&mut self, snap: &Snapshot) {
        self.snapshot = Some(snap.encode());
        self.log.clear();
    }

    /// The stored checkpoint, decoded.
    pub fn snapshot(&self) -> Result<Option<Snapshot>, WalError> {
        self.snapshot.as_deref().map(Snapshot::decode).transpose()
    }
}

impl CommitSink for MemoryWal {
    fn committed(&mut self, steps0: usize, deltas: &[&Delta]) -> Result<(), WalError> {
        encode_record(&mut self.log, steps0, deltas);
        Ok(())
    }

    fn certified(&mut self, steps: usize) -> Result<(), WalError> {
        encode_certify_record(&mut self.log, steps);
        Ok(())
    }
}

/// A sink that fails on command — exercises the abort-on-sink-error
/// contract in tests.
#[doc(hidden)]
#[derive(Default)]
pub struct FailingSink {
    /// When true, every commit errors.
    pub fail: bool,
    /// Blocks accepted while `fail` was false.
    pub accepted: usize,
}

impl CommitSink for FailingSink {
    fn committed(&mut self, _steps0: usize, _deltas: &[&Delta]) -> Result<(), WalError> {
        if self.fail {
            return Err(WalError::Io("injected sink failure".into()));
        }
        self.accepted += 1;
        Ok(())
    }

    fn certified(&mut self, _steps: usize) -> Result<(), WalError> {
        if self.fail {
            return Err(WalError::Io("injected sink failure".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_survive_round_trip_and_drop_torn_tail() {
        let s = migratory_model::schema::university_schema();
        let ts = migratory_lang::parse_transactions(
            &s,
            r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
        )
        .unwrap();
        let mut db = Instance::default();
        let mk = ts.get("Mk").unwrap();
        let deltas: Vec<Delta> = (0..3)
            .map(|i| {
                let args = migratory_lang::Assignment::new(vec![migratory_model::Value::str(
                    &format!("{i}"),
                )]);
                migratory_lang::apply_transaction_delta(&s, &mut db, mk, &args).unwrap()
            })
            .collect();
        let mut log = Vec::new();
        encode_record(&mut log, 0, &[&deltas[0]]);
        encode_record(&mut log, 1, &[&deltas[1], &deltas[2]]);
        let full = decode_records(&log);
        assert_eq!(full.len(), 2);
        let WalRecord::Block(b0) = &full[0] else { panic!("block record") };
        assert_eq!(b0.deltas, vec![deltas[0].clone()]);
        let WalRecord::Block(b1) = &full[1] else { panic!("block record") };
        assert_eq!((b1.steps0, b1.deltas.len(), full[1].letters()), (1, 2, 2));
        // Certification markers frame through the same channel.
        let mut with_cert = log.clone();
        encode_certify_record(&mut with_cert, 3);
        let all = decode_records(&with_cert);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2], WalRecord::Certified { steps: 3 });
        assert_eq!(all[2].letters(), 0);
        // Every truncation point recovers a (possibly empty) prefix of
        // whole blocks — never an error, never a partial block.
        let first_len = {
            let mut one = Vec::new();
            encode_record(&mut one, 0, &[&deltas[0]]);
            one.len()
        };
        for cut in 0..log.len() {
            let got = decode_records(&log[..cut]);
            let want = if cut >= first_len { 1 } else { 0 };
            assert_eq!(got.len(), want, "cut at {cut}");
        }
        // A flipped payload byte fails the checksum and truncates there.
        let mut bad = log.clone();
        let idx = first_len + 10;
        bad[idx] ^= 0xff;
        assert_eq!(decode_records(&bad).len(), 1);
    }
}

//! Admission-path observability: lock-free, log-bucketed latency and
//! size histograms, rendered in Prometheus text exposition format.
//!
//! Every histogram is a fixed array of power-of-two buckets updated
//! with relaxed atomics — recording is a couple of nanoseconds and
//! never takes a lock, so the admission worker and the committer
//! thread can stamp every block without perturbing the tail they are
//! supposed to measure. Per-shard series (queue depth, block size,
//! commit latency) carry a `shard` label; pipeline-global series
//! (fsync batch size, checkpoint stall) do not.
//!
//! The flat `stats` wire verb stays untouched (it is test-locked);
//! `stats prom` returns [`AdmissionMetrics::render_prometheus`] as a
//! length-prefixed payload.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: upper bounds `2^0 .. 2^30`, then `+Inf`.
const BUCKETS: usize = 32;

/// A lock-free histogram over `u64` samples with power-of-two bucket
/// bounds (`le = 1, 2, 4, …, 2^30, +Inf`). Recording is wait-free;
/// readers see a consistent-enough view for monitoring (relaxed loads —
/// a scrape racing a record may be one sample behind).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Index of the smallest bucket whose upper bound holds `v`.
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    // ceil(log2(v)) = bit length of v-1; clamp overflow into +Inf.
    (u64::BITS - (v - 1).leading_zeros()).min(BUCKETS as u32 - 1) as usize
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of every recorded sample.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bucket bound at or below which fraction `p` (`0.0..=1.0`)
    /// of the samples fall — a log2-granular percentile, good enough to
    /// see a tail move by an order of magnitude. Returns 0 when empty.
    #[must_use]
    pub fn quantile_bound(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bound(i);
            }
        }
        u64::MAX
    }

    /// Fold another histogram's samples into this one, bucket-wise —
    /// how a reader aggregates per-shard series into one distribution
    /// (quantiles of the merged histogram are quantiles of the union
    /// of the samples, at the same log2 granularity).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.count.fetch_add(other.count(), Ordering::Relaxed);
    }

    /// Render one Prometheus histogram series (cumulative buckets,
    /// `_sum`, `_count`) with an optional label pair.
    fn render(&self, out: &mut String, name: &str, label: Option<(&str, usize)>) {
        use std::fmt::Write as _;
        let tail = |extra: &str| match label {
            Some((k, v)) if extra.is_empty() => format!("{{{k}=\"{v}\"}}"),
            Some((k, v)) => format!("{{{k}=\"{v}\",{extra}}}"),
            None if extra.is_empty() => String::new(),
            None => format!("{{{extra}}}"),
        };
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            let le = if i == BUCKETS - 1 {
                "le=\"+Inf\"".to_owned()
            } else {
                format!("le=\"{}\"", bound(i))
            };
            let _ = writeln!(out, "{name}_bucket{} {cum}", tail(&le));
        }
        let _ = writeln!(out, "{name}_sum{} {}", tail(""), self.sum());
        let _ = writeln!(out, "{name}_count{} {}", tail(""), self.count());
    }
}

/// Upper bound of bucket `i` (`2^i`; the last bucket is `+Inf`,
/// reported here as `u64::MAX`).
fn bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Every histogram the admission pipeline maintains, shared (`Arc`)
/// between the ingress worker, the committer thread, and the wire
/// front end that serves `stats prom`.
#[derive(Debug)]
pub struct AdmissionMetrics {
    /// Per-lane queue depth sampled at each drain (`shard` label).
    pub queue_depth: Vec<Histogram>,
    /// Ops per admitted block, per lane (`shard` label).
    pub block_size: Vec<Histogram>,
    /// Microseconds from drain to durable release, per lane
    /// (`shard` label).
    pub commit_latency_us: Vec<Histogram>,
    /// Records covered by one committer `fdatasync` (group-commit
    /// amortization factor).
    pub fsync_batch: Histogram,
    /// Microseconds the admission worker spent inside the maintenance
    /// hook (checkpoint capture + log seal) — the stall every queued op
    /// behind it observes.
    pub checkpoint_stall_us: Histogram,
    /// Current constraint-inventory epoch (gauge; bumped by each
    /// durable `redefine`).
    pub epoch: AtomicU64,
    /// Online redefinitions applied over the monitor's history
    /// (counter).
    pub redefine_total: AtomicU64,
    /// Objects quarantined across every redefinition (gauge — residue
    /// whose consumed history the new inventory cannot absorb).
    pub quarantined_objects: AtomicU64,
    /// Microseconds the committer spent in the replication tee per
    /// batch (hand-off under `ack-on-local-fsync`, full wait for the
    /// k-th replica ack under `ack-on-replica-k`).
    pub repl_ship_wait_us: Histogram,
    /// Replication-stream bytes teed to the replicas (counter; one copy
    /// regardless of fan-out — the per-peer sends carry the same bytes).
    pub repl_shipped_bytes: AtomicU64,
    /// Batches teed to the replicas (counter).
    pub repl_shipped_batches: AtomicU64,
    /// Currently attached replication peers (gauge).
    pub repl_live_replicas: AtomicU64,
    /// Replication-stream records this replica folded into its monitor
    /// (counter; stays 0 on a primary).
    pub repl_applied_records: AtomicU64,
}

impl AdmissionMetrics {
    /// Metrics for `lanes` admission lanes (one per component shard).
    #[must_use]
    pub fn new(lanes: usize) -> AdmissionMetrics {
        let lanes = lanes.max(1);
        let mk = || (0..lanes).map(|_| Histogram::new()).collect();
        AdmissionMetrics {
            queue_depth: mk(),
            block_size: mk(),
            commit_latency_us: mk(),
            fsync_batch: Histogram::new(),
            checkpoint_stall_us: Histogram::new(),
            epoch: AtomicU64::new(0),
            redefine_total: AtomicU64::new(0),
            quarantined_objects: AtomicU64::new(0),
            repl_ship_wait_us: Histogram::new(),
            repl_shipped_bytes: AtomicU64::new(0),
            repl_shipped_batches: AtomicU64::new(0),
            repl_live_replicas: AtomicU64::new(0),
            repl_applied_records: AtomicU64::new(0),
        }
    }

    /// The Prometheus text exposition of every series.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let per_shard: [(&str, &str, &Vec<Histogram>); 3] = [
            ("migratory_queue_depth", "ops waiting in the lane at drain", &self.queue_depth),
            ("migratory_block_size", "ops per admitted block", &self.block_size),
            (
                "migratory_commit_latency_us",
                "microseconds from drain to durable release",
                &self.commit_latency_us,
            ),
        ];
        for (name, help, series) in per_shard {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            for (shard, h) in series.iter().enumerate() {
                h.render(&mut out, name, Some(("shard", shard)));
            }
        }
        for (name, help, h) in [
            (
                "migratory_fsync_batch",
                "records covered by one committer fdatasync",
                &self.fsync_batch,
            ),
            (
                "migratory_checkpoint_stall_us",
                "microseconds admission stalled for checkpoint capture and seal",
                &self.checkpoint_stall_us,
            ),
            (
                "migratory_repl_ship_wait_us",
                "microseconds the committer spent teeing a batch to the replicas",
                &self.repl_ship_wait_us,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            h.render(&mut out, name, None);
        }
        for (name, kind, help, v) in [
            ("migratory_epoch", "gauge", "current constraint-inventory epoch", &self.epoch),
            (
                "migratory_redefine_total",
                "counter",
                "online inventory redefinitions applied",
                &self.redefine_total,
            ),
            (
                "migratory_quarantined_objects",
                "gauge",
                "objects quarantined across every redefinition",
                &self.quarantined_objects,
            ),
            (
                "migratory_repl_shipped_bytes",
                "counter",
                "replication-stream bytes teed to the replicas",
                &self.repl_shipped_bytes,
            ),
            (
                "migratory_repl_shipped_batches",
                "counter",
                "batches teed to the replicas",
                &self.repl_shipped_batches,
            ),
            (
                "migratory_repl_live_replicas",
                "gauge",
                "currently attached replication peers",
                &self.repl_live_replicas,
            ),
            (
                "migratory_repl_applied_records",
                "counter",
                "replication-stream records folded by this replica",
                &self.repl_applied_records,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            out.push_str(&format!("{name} {}\n", v.load(Ordering::Relaxed)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1 << 30), 30);
        assert_eq!(bucket_of((1 << 30) + 1), 31);
        assert_eq!(bucket_of(u64::MAX), 31);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = Histogram::new();
        for v in [1u64, 1, 1, 8, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1019);
        assert_eq!(h.quantile_bound(0.5), 1);
        assert_eq!(h.quantile_bound(0.8), 8);
        assert_eq!(h.quantile_bound(1.0), 1024);
        assert_eq!(Histogram::new().quantile_bound(0.99), 0);
    }

    #[test]
    fn merge_unions_the_samples() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 8] {
            a.record(v);
        }
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1009);
        assert_eq!(a.quantile_bound(1.0), 1024);
        assert_eq!(b.count(), 1, "the source histogram is untouched");
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_labelled() {
        let m = AdmissionMetrics::new(2);
        m.block_size[1].record(3);
        m.block_size[1].record(200);
        m.fsync_batch.record(7);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE migratory_block_size histogram"), "{text}");
        assert!(text.contains("migratory_block_size_bucket{shard=\"1\",le=\"4\"} 1"), "{text}");
        assert!(text.contains("migratory_block_size_bucket{shard=\"1\",le=\"256\"} 2"), "{text}");
        assert!(text.contains("migratory_block_size_bucket{shard=\"1\",le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("migratory_block_size_sum{shard=\"1\"} 203"), "{text}");
        assert!(text.contains("migratory_block_size_count{shard=\"0\"} 0"), "{text}");
        assert!(text.contains("migratory_fsync_batch_bucket{le=\"8\"} 1"), "{text}");
        assert!(text.contains("migratory_fsync_batch_count 1"), "{text}");
    }
}

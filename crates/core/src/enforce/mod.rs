//! Runtime enforcement of migration inventories — the paper's motivating
//! application of dynamic constraints ("updates on objects are only
//! allowed if the migration patterns of the objects are within the
//! permissible set", Section 3).
//!
//! A [`Monitor`] wraps a live database and a regular [`Inventory`] and
//! admits a transaction application only if every object's migration
//! pattern — including the never-created objects' all-∅ patterns and the
//! trailing ∅s of deleted objects — stays inside the inventory. Because
//! inventories are prefix-closed (Definition 3.3), checking each prefix
//! as it is produced is exactly the constraint `family(Σ) ⊆ 𝔏` of
//! Definition 3.5 restricted to the runs that actually happen.
//!
//! # The delta/cohort engine
//!
//! The default engine ([`Monitor::new`]) makes the admit path cost
//! **O(touched + |cohorts|)** per application instead of O(|db| ×
//! run-length):
//!
//! * **Apply-then-undo instead of clone.** The transaction is applied in
//!   place through [`migratory_lang::apply_transaction_delta`], which
//!   returns the exact change-set (created / updated / deleted objects
//!   with before-images) plus the information needed to roll the
//!   application back on violation. No whole-`Instance` clone ever
//!   happens.
//! * **Cohort-compressed DFA tracking.** An object untouched by a step
//!   re-reads its current role symbol, so all objects sharing a (DFA
//!   state, last role symbol) pair move *identically*. The monitor groups
//!   them into cohorts and performs one `dfa.step` per cohort per
//!   application — the number of cohorts is bounded by |Q| × |Ω|, not by
//!   the database size. Objects exempted from the enforced family (e.g.
//!   a non-changing step under [`PatternKind::Proper`]) collapse into a
//!   single never-checked cohort.
//! * **Run-length-encoded histories.** Per object the monitor stores only
//!   its creation step and the steps at which its role symbol *changed*
//!   (`(letter, from_step)` segments). Full patterns are reconstructed
//!   on demand — for [`Monitor::pattern_of`] and [`Violation`]
//!   diagnostics — so per-step allocation no longer grows with run
//!   length.
//!
//! Violations are rare and roll back anyway, so the rejection path
//! affords an O(objects) diagnostic scan that replays the step in the
//! reference engine's object order; the reported [`Violation`] (object,
//! pattern, letter) is therefore *identical* to the reference engine's.
//!
//! The pre-optimization engine is preserved behind
//! [`Monitor::new_reference`] — it re-derives every object's letter from
//! a cloned database each step and is used by tests as the oracle and by
//! `bench_enforce` as the baseline.
//!
//! # Module layout: sharding, batching, per-shard letter clocks
//!
//! The engine's state machinery (records, cohorts, staging/commit,
//! diagnostics, **and the letter clock**) lives in the private `delta`
//! submodule, shared between two front ends: this file's
//! single-partition [`Monitor`] and [`sharded::ShardedMonitor`], which
//! partitions the object population by weakly-connected role component
//! (oid stripes as fallback), stages participating shards' checks
//! concurrently on scoped threads, and admits whole *batches* of
//! transactions against one cohort sweep per participating shard
//! ([`ShardedMonitor::try_apply_batch`]). Objects evolve independently
//! (Lemma 3.5) and, under a component alphabet, objects of different
//! components never read each other's letters — so every partition
//! carries its **own letter clock** and the shards share *no* mutable
//! state at all: disjoint components stage, commit, checkpoint and
//! recover fully independently. The single [`Monitor`] is the
//! one-partition case (its shard-local clock *is* the paper's global
//! step counter, surviving as the derived [`Monitor::steps`] view) and
//! stays the k = 1 oracle: each shard of a [`sharded::ShardedMonitor`]
//! is observationally identical to a `Monitor` fed exactly the
//! subsequence of applications routed to it, byte-identical
//! [`Violation`]s included.
//!
//! Enforcement is *kind-aware*: under [`PatternKind::Proper`] a pattern
//! stops being constrained the moment a step leaves its object unchanged
//! (the full pattern can then never be proper), and similarly for
//! [`PatternKind::Lazy`] (role set unchanged) and
//! [`PatternKind::ImmediateStart`] (first letter ∅). This makes the
//! monitor enforce precisely "every *kind*-pattern of every realized run
//! lies in 𝔏" — sound and complete per run prefix, since every prefix of
//! a run is itself a run.
//!
//! The monitor also implements the paper's punchline for SL: Corollary
//! 3.3 makes `satisfies` decidable, so a schema can be **statically
//! certified** once ([`Monitor::certify`]) and all runtime checks skipped
//! thereafter — the ablation benchmarked in `bench_enforce`.
//!
//! # Durability and concurrent ingress
//!
//! The paper's migration constraints are histories, so the monitor's
//! tracking state *is* the constraint — two further layers make it
//! survive crashes and concurrent callers:
//!
//! * [`wal`] — a write-ahead log of committed [`Delta`] blocks (each
//!   carrying its participating shards' clock offsets and letter
//!   assignments) plus a checkpoint chain: a full base [`Snapshot`] and
//!   **incremental** [`CheckpointDelta`]s capturing only the dirtied
//!   state, written by a background [`Snapshotter`] so the admission
//!   path pays O(dirty), never the full-snapshot pause. Both front
//!   ends accept a pluggable [`CommitSink`] ([`Monitor::with_sink`],
//!   [`ShardedMonitor::with_sink`]; no-op when absent) that receives
//!   each admitted block *before* tracking state commits, and both
//!   recover from the folded chain + tail without replaying history
//!   ([`Monitor::recover`], [`ShardedMonitor::recover`]), folding each
//!   shard's sub-log at shard-local granularity — byte-identically,
//!   because every engine structure iterates in canonical order.
//! * [`ingress`] — bounded per-shard admission queues in front of a
//!   [`ShardedMonitor`]: concurrent producers enqueue single
//!   applications, an admission worker drains lanes into
//!   [`ShardedMonitor::try_apply_batch`] blocks (emergent batching,
//!   one group commit per block), violations reject only their own op.
//! * [`net`] — the wire front end: a TCP line-protocol server
//!   (`migctl serve`) mapping each connection onto an ingress
//!   producer, so admission requests arrive from parties that share
//!   nothing with the engine but the protocol (`docs/PROTOCOL.md`).
//!   Acknowledgement on the wire implies the write-ahead append
//!   succeeded; shutdown drains close-and-answer.

// The enforcement stack is the crate's production surface: every public
// item must carry documentation (CI compiles with `-D warnings`).
#![warn(missing_docs)]

mod delta;
pub mod faults;
pub mod health;
pub mod ingress;
pub mod metrics;
pub mod net;
pub mod repl;
pub mod sharded;
pub mod wal;

pub use faults::{FaultKind, FaultSite, IoFaults};
pub use health::{CheckpointHealth, Health};
pub use ingress::{Completion, DurabilityPolicy, IngressConfig, IngressStats};
pub use metrics::{AdmissionMetrics, Histogram};
pub use repl::{AckPolicy, ReplicaCtl, Replicator, ShipFault};
pub use sharded::{ShardStats, ShardedMonitor};
pub use wal::{
    BlockRef, CheckpointData, CheckpointDelta, CheckpointJob, CommitSink, Evolution, FsyncPolicy,
    MemoryWal, ShardLetters, Snapshot, Snapshotter, Wal, WalBlock, WalError, WalRecord,
};

use crate::alphabet::RoleAlphabet;
use crate::error::CoreError;
use crate::inventory::Inventory;
use crate::pattern::{MigrationPattern, PatternKind};
use delta::{classes_symbol, diagnose_step, DeltaState, DiagParams, EXEMPT};
use migratory_lang::{
    apply_bulk_creates, apply_transaction, apply_transaction_delta, run, Assignment, Delta,
    LangError, ObjectDelta, Transaction, TransactionSchema,
};
use migratory_model::{ClassSet, Instance, Oid, Schema};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Transactions with at least this many steps are probed for the
/// create-only bulk-load fast path
/// ([`migratory_lang::apply_bulk_creates`]). Below it, the general
/// interpreter's per-object inserts are cheaper than the bulk path's
/// sorted-merge rebuild of the heap maps (`BTreeMap::append` is
/// O(existing + new) regardless of batch size).
pub(crate) const BULK_APPLY_THRESHOLD: usize = 4096;

/// Apply `t[args]` to `db` and return the exact change-set, routing
/// large create-only transactions through the bulk loader — parallel
/// chunked condition evaluation plus one sorted-merge into the heap and
/// indexes. The produced [`Delta`] (and database post-state) is
/// identical to [`apply_transaction_delta`]'s, so everything downstream
/// (tracking, WAL encoding, rollback) is unaffected by the routing.
pub(crate) fn apply_delta_bulk(
    schema: &Schema,
    db: &mut Instance,
    t: &Transaction,
    args: &Assignment,
) -> Result<Delta, LangError> {
    if t.steps.len() >= BULK_APPLY_THRESHOLD {
        if let Some(bulk) = apply_bulk_creates(schema, db, t, args) {
            return bulk;
        }
    }
    apply_transaction_delta(schema, db, t, args)
}

/// A shared, pluggable commit sink handle (see [`wal::CommitSink`]).
/// `Arc<Mutex<…>>` so a monitor stays cloneable and sharded staging
/// threads can be spawned while the sink is attached; the engines lock
/// it exactly once per admitted block (group commit).
pub type SharedSink = Arc<Mutex<dyn CommitSink>>;

/// When a transaction application contributes a letter to the patterns.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StepPolicy {
    /// Every application is a step (Definition 3.4, the SL semantics).
    #[default]
    EveryApplication,
    /// Only applications that change the database are steps (Definition
    /// 4.6, the CSL semantics — "null" applications are invisible).
    OnlyChanging,
}

/// A rejected application: the object whose pattern would leave the
/// inventory, the offending pattern (including the new letter), and the
/// letter itself.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// The object whose pattern would escape 𝔏, or `None` for the class
    /// of never-created objects (their shared pattern ∅ⁿ must also lie in
    /// the inventory when the kind does not exempt it).
    pub oid: Option<Oid>,
    /// The pattern so far, ending with the offending letter.
    pub pattern: MigrationPattern,
    /// The letter (role-set symbol) that escaped the inventory.
    pub letter: u32,
    /// The constraint epoch the rejection was produced under (0 until
    /// the first [`Monitor::redefine`]): operators can tell pre- from
    /// post-redefinition rejections apart.
    pub epoch: u64,
}

impl Violation {
    /// Render with role-set names from the alphabet.
    #[must_use]
    pub fn display(&self, alphabet: &RoleAlphabet) -> String {
        let who = match self.oid {
            Some(o) => format!("object o{}", o.0),
            None => "never-created objects".to_owned(),
        };
        format!(
            "{} would follow the pattern {} ∉ 𝔏 (offending role set {}) [epoch {}]",
            who,
            alphabet.display_word(&self.pattern),
            alphabet.name(self.letter),
            self.epoch,
        )
    }
}

/// Errors raised by [`Monitor::try_apply`].
#[derive(Clone, PartialEq, Debug)]
pub enum EnforceError {
    /// The application would violate the inventory; the database is
    /// unchanged.
    Violation(Violation),
    /// The transaction itself failed to apply (arity, validation).
    Lang(LangError),
    /// The attached [`CommitSink`] refused the block: the write-ahead
    /// append failed, so the application was rolled back — the log never
    /// lags the engine. The database and tracking state are unchanged.
    Durability(WalError),
    /// The server is in degraded read-only mode (persistent durability
    /// failure; see [`Health`]): the op was refused *before* any apply,
    /// nothing changed. Carries the reason recorded when the server
    /// degraded. An operator fixes the fault and re-arms (`rearm`).
    Degraded(String),
    /// A [`Monitor::redefine`] was refused — the new inventory is
    /// invalid for this monitor (alphabet mismatch, certified or
    /// reference monitor, or the never-created class's ∅-walk leaves the
    /// new language). Nothing changed; the epoch did not advance.
    Redefine(String),
}

impl std::fmt::Display for EnforceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnforceError::Violation(v) => {
                write!(f, "inventory violation: pattern {:?} escapes 𝔏", v.pattern)
            }
            EnforceError::Lang(e) => write!(f, "{e}"),
            EnforceError::Durability(e) => write!(f, "commit not durable, rolled back: {e}"),
            EnforceError::Degraded(reason) => write!(f, "degraded (read-only): {reason}"),
            EnforceError::Redefine(reason) => write!(f, "redefine refused: {reason}"),
        }
    }
}

/// What happens to **residue** — objects whose consumed history is not
/// provably viable under a redefined inventory (see
/// [`Monitor::redefine`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ResiduePolicy {
    /// Quarantine: fold residue cohorts into the exempt sink. The
    /// objects stay in the database but are never pattern-checked again;
    /// `stats` counts them as `quarantined_objects`.
    #[default]
    Quarantine,
    /// Certify-and-reset: grandfather the residue's old history and
    /// restart its tracking walk at `δ_new(start, current role)`; only
    /// objects whose restart state is non-accepting fall back to
    /// quarantine.
    CertifyAndReset,
}

impl ResiduePolicy {
    /// Parse the wire token (`quarantine` | `certify-and-reset`).
    pub fn parse(s: &str) -> Result<ResiduePolicy, String> {
        match s {
            "quarantine" => Ok(ResiduePolicy::Quarantine),
            "certify-and-reset" => Ok(ResiduePolicy::CertifyAndReset),
            other => {
                Err(format!("unknown residue policy `{other}` (quarantine|certify-and-reset)"))
            }
        }
    }

    /// The stable wire byte persisted in WAL records and snapshots.
    #[must_use]
    pub fn as_byte(self) -> u8 {
        match self {
            ResiduePolicy::Quarantine => 0,
            ResiduePolicy::CertifyAndReset => 1,
        }
    }

    /// Decode [`ResiduePolicy::as_byte`].
    pub fn from_byte(b: u8) -> Result<ResiduePolicy, String> {
        match b {
            0 => Ok(ResiduePolicy::Quarantine),
            1 => Ok(ResiduePolicy::CertifyAndReset),
            other => Err(format!("unknown residue policy byte {other}")),
        }
    }
}

impl std::fmt::Display for ResiduePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResiduePolicy::Quarantine => "quarantine",
            ResiduePolicy::CertifyAndReset => "certify-and-reset",
        })
    }
}

/// The outcome of an admitted [`Monitor::redefine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RedefineOutcome {
    /// The new constraint epoch (old epoch + 1).
    pub epoch: u64,
    /// Objects whose consumed history was not provably viable under the
    /// new automaton — handled per [`ResiduePolicy`].
    pub residue: usize,
    /// Of the residue, how many were folded into the exempt quarantine
    /// cohort by this redefinition.
    pub quarantined: usize,
}

impl std::error::Error for EnforceError {}

impl From<LangError> for EnforceError {
    fn from(e: LangError) -> Self {
        EnforceError::Lang(e)
    }
}

// ---------------------------------------------------------------------
// Reference engine state (the pre-optimization algorithm, kept as the
// oracle and benchmark baseline)
// ---------------------------------------------------------------------

/// Per-object tracking state of the reference engine.
#[derive(Clone, Debug)]
struct Tracked {
    /// Inventory-DFA state after the object's pattern so far.
    state: u32,
    /// The object's pattern is already outside the enforced family
    /// (e.g. a non-changing step under `Proper`) — never constrained
    /// again.
    exempt: bool,
    /// Role-set symbol after the last step.
    last_role: u32,
    /// The full pattern, for diagnostics.
    history: MigrationPattern,
}

#[derive(Clone)]
enum Engine {
    /// Incremental delta/cohort engine (default).
    Delta(DeltaState),
    /// Whole-database rescan engine (oracle / baseline).
    Reference { tracked: BTreeMap<Oid, Tracked> },
}

/// A database guarded by a migration inventory.
///
/// ```
/// use migratory_core::{enforce::Monitor, Inventory, PatternKind, RoleAlphabet};
/// use migratory_lang::{parse_transactions, Assignment};
/// use migratory_model::{schema::university_schema, Value};
///
/// let s = university_schema();
/// let a = RoleAlphabet::new(&s, 0).unwrap();
/// let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* ∅*").unwrap();
/// let ts = parse_transactions(&s, r#"
///     transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
///     transaction St(x) {
///       specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
///     }
///     transaction Emp(x) {
///       specialize(PERSON, EMPLOYEE, { SSN = x }, { Salary = 1, WorksIn = "D" });
///     }
/// "#).unwrap();
/// let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
/// let x = Assignment::new(vec![Value::str("1")]);
/// m.try_apply(ts.get("Mk").unwrap(), &x).unwrap();
/// m.try_apply(ts.get("St").unwrap(), &x).unwrap();
/// // Employment is not in the inventory: rejected, database unchanged.
/// assert!(m.try_apply(ts.get("Emp").unwrap(), &x).is_err());
/// assert_eq!(m.db().num_objects(), 1);
/// ```
#[derive(Clone)]
pub struct Monitor<'a> {
    schema: &'a Schema,
    alphabet: &'a RoleAlphabet,
    /// Owned: [`Monitor::redefine`] swaps it under a live monitor. The
    /// constructors clone the caller's inventory (epoch 0).
    inventory: Inventory,
    kind: PatternKind,
    policy: StepPolicy,
    db: Instance,
    engine: Engine,
    /// Where committed blocks are logged before tracking state is
    /// written (`None`: volatile monitor, zero overhead).
    sink: Option<SharedSink>,
    /// Reference-engine clock state (the delta engine's lives inside
    /// its [`DeltaState`] — the monitor's single partition, whose
    /// shard-local letter clock *is* the global step counter at k = 1).
    pre_state: u32,
    /// The never-created pattern has already left the enforced family
    /// (reference engine).
    pre_exempt: bool,
    /// Number of letters emitted so far (reference engine).
    steps: usize,
    certified: bool,
    /// Step count at the moment certification succeeded — the horizon at
    /// which pattern tracking froze.
    certified_at: Option<usize>,
    /// Constraint epoch: 0 at construction, +1 per admitted
    /// [`Monitor::redefine`].
    epoch: u64,
    /// Admitted redefinitions over the monitor's whole history
    /// (including recovered ones).
    redefine_total: u64,
    /// Objects folded into the exempt quarantine cohort by
    /// redefinitions, cumulative.
    quarantined_total: u64,
}

impl<'a> Monitor<'a> {
    fn with_engine(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &Inventory,
        kind: PatternKind,
        engine: Engine,
    ) -> Monitor<'a> {
        Monitor {
            schema,
            alphabet,
            inventory: inventory.clone(),
            kind,
            policy: StepPolicy::default(),
            db: Instance::empty(),
            engine,
            sink: None,
            pre_state: inventory.dfa().start(),
            // ∅ⁿ never starts with a non-∅ letter.
            pre_exempt: kind == PatternKind::ImmediateStart,
            steps: 0,
            certified: false,
            certified_at: None,
            epoch: 0,
            redefine_total: 0,
            quarantined_total: 0,
        }
    }

    /// A monitor over the empty database, enforcing `inventory` for the
    /// given pattern family with the incremental delta/cohort engine.
    #[must_use]
    pub fn new(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &Inventory,
        kind: PatternKind,
    ) -> Monitor<'a> {
        let state = DeltaState::new(inventory.dfa().start(), kind == PatternKind::ImmediateStart);
        Self::with_engine(schema, alphabet, inventory, kind, Engine::Delta(state))
    }

    /// A monitor driven by the **reference** algorithm: every application
    /// clones the database, rescans all tracked objects and clones their
    /// full histories. Semantically identical to [`Monitor::new`]
    /// (including reported [`Violation`]s) but O(|db| × run-length) per
    /// step — kept as the testing oracle and benchmark baseline.
    #[must_use]
    pub fn new_reference(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &Inventory,
        kind: PatternKind,
    ) -> Monitor<'a> {
        Self::with_engine(
            schema,
            alphabet,
            inventory,
            kind,
            Engine::Reference { tracked: BTreeMap::new() },
        )
    }

    /// Choose when applications contribute letters (default:
    /// [`StepPolicy::EveryApplication`]).
    #[must_use]
    pub fn with_policy(mut self, policy: StepPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a [`CommitSink`]: every admitted block is appended to the
    /// sink *before* tracking state commits (write-ahead), and a sink
    /// failure rolls the application back
    /// ([`EnforceError::Durability`]). Requires the delta engine — the
    /// reference engine has no delta to log.
    #[must_use]
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        assert!(self.is_incremental(), "the reference engine cannot log deltas");
        self.sink = Some(sink);
        self
    }

    /// The current database.
    #[must_use]
    pub fn db(&self) -> &Instance {
        &self.db
    }

    /// The schema this monitor enforces over.
    #[must_use]
    pub fn schema(&self) -> &'a Schema {
        self.schema
    }

    /// The role alphabet patterns are spelled in.
    #[must_use]
    pub fn alphabet(&self) -> &'a RoleAlphabet {
        self.alphabet
    }

    /// The enforced inventory (of the **current** epoch).
    #[must_use]
    pub fn inventory(&self) -> &Inventory {
        &self.inventory
    }

    /// The current constraint epoch (0 until the first
    /// [`Monitor::redefine`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Admitted redefinitions over the monitor's whole history.
    #[must_use]
    pub fn redefine_total(&self) -> u64 {
        self.redefine_total
    }

    /// Objects quarantined by redefinitions, cumulative.
    #[must_use]
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined_total
    }

    /// The enforced pattern family.
    #[must_use]
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// The letter-contribution policy.
    #[must_use]
    pub fn policy(&self) -> StepPolicy {
        self.policy
    }

    /// Number of pattern letters emitted so far. For the delta engine
    /// this is a **derived view**: the single partition's shard-local
    /// letter clock, which at k = 1 coincides with the paper's global
    /// step counter.
    #[must_use]
    pub fn steps(&self) -> usize {
        match &self.engine {
            Engine::Delta(d) => d.steps,
            Engine::Reference { .. } => self.steps,
        }
    }

    /// Whether the monitor runs in the certified fast path.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        self.certified
    }

    /// Whether this monitor uses the incremental delta/cohort engine.
    #[must_use]
    pub fn is_incremental(&self) -> bool {
        matches!(self.engine, Engine::Delta(_))
    }

    /// Number of objects touched by the last admitted **checked**
    /// application (`None` on the reference engine, which has no
    /// touched-set notion). The admit-path work of the delta engine is
    /// proportional to this, never to the database size. Certified-mode
    /// applications skip change capture entirely and leave the count
    /// untouched.
    #[must_use]
    pub fn last_touched(&self) -> Option<usize> {
        match &self.engine {
            Engine::Delta(d) => Some(d.last_touched),
            Engine::Reference { .. } => None,
        }
    }

    /// The recorded pattern of an object (present once it has occurred in
    /// the database; absent when tracking never saw it, e.g. objects
    /// created after certification). Reconstructed from the run-length
    /// encoding on demand. After a mid-run [`Monitor::certify`], patterns
    /// are frozen at the certification point — certified steps skip all
    /// tracking, in both engines.
    #[must_use]
    pub fn pattern_of(&self, o: Oid) -> Option<MigrationPattern> {
        match &self.engine {
            Engine::Delta(d) => {
                // Records stop advancing once certified: clamp the
                // reconstruction horizon so certified steps do not
                // fabricate repeat letters.
                let horizon = self.certified_at.unwrap_or(d.steps);
                d.records.get(&o).map(|r| r.pattern_through(self.alphabet.empty_symbol(), horizon))
            }
            Engine::Reference { tracked } => tracked.get(&o).map(|t| t.history.clone()),
        }
    }

    /// Statically certify an SL transaction schema against the inventory
    /// (Corollary 3.3). On success the monitor skips all per-object
    /// runtime checks: no application of certified transactions can ever
    /// produce a pattern outside 𝔏. Returns whether `ts` certifies; errs
    /// on non-SL schemas, where the problem is undecidable (Corollary
    /// 4.7).
    ///
    /// Certification is **one-way**: once a monitor is certified, pattern
    /// tracking stops and later `certify` calls only report the new
    /// schema's verdict without re-enabling checks (the tracking state
    /// would be stale). Enforce a different, non-certifying schema with a
    /// fresh monitor.
    pub fn certify(&mut self, ts: &TransactionSchema) -> Result<bool, CoreError> {
        let decision =
            crate::decide::decide(self.schema, self.alphabet, ts, &self.inventory, self.kind)?;
        let holds = decision.satisfies.holds();
        if holds && !self.certified {
            // Certification freezes tracking, so a durable monitor must
            // record the event — recovery would otherwise replay
            // unchecked post-certification blocks through the tracker.
            // Write-ahead: if the marker cannot be logged, certification
            // does not take effect.
            let at = self.steps();
            if let Some(sink) = &self.sink {
                sink.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .certified(at)
                    .map_err(|e| CoreError::Durability(e.to_string()))?;
            }
            self.certified = true;
            self.certified_at = Some(at);
        }
        Ok(holds)
    }

    /// Redefine the enforced inventory **online**, bumping the
    /// constraint epoch — the paper's dynamic constraints made dynamic
    /// themselves.
    ///
    /// The viability of consumed history is decided per *cohort*, never
    /// per object: a product construction walks the old DFA × new DFA
    /// over every path the old DFA certifies
    /// ([`delta::viability_map`]); a cohort is viable iff all enforced
    /// histories ending in its old state land in exactly one accepting
    /// new state. Viable cohorts remap wholesale; the residue is
    /// quarantined or reset per `policy`. Total cost O(|Q_old| ×
    /// |Q_new| × |Σ| + |cohorts|) — independent of the database size.
    ///
    /// Durability: when a sink is attached the redefinition is
    /// write-ahead logged (epoch bump + canonical inventory encoding +
    /// the partition clock) *before* any tracking state changes;
    /// [`Monitor::recover`] replays it at the exact clock position.
    ///
    /// Refused (with [`EnforceError::Redefine`], nothing changed) on the
    /// reference engine, on a certified monitor (tracking is frozen), on
    /// an alphabet mismatch, and when the never-created class's ∅-walk
    /// leaves the new language while still enforced.
    pub fn redefine(
        &mut self,
        new_inventory: &Inventory,
        policy: ResiduePolicy,
    ) -> Result<RedefineOutcome, EnforceError> {
        let Engine::Delta(_) = &self.engine else {
            return Err(EnforceError::Redefine(
                "the reference engine does not support online redefinition".into(),
            ));
        };
        if self.certified {
            return Err(EnforceError::Redefine(
                "monitor is certified: tracking is frozen, redefine needs a fresh monitor".into(),
            ));
        }
        let new_dfa = new_inventory.dfa();
        if new_dfa.num_symbols() != self.alphabet.num_symbols() {
            return Err(EnforceError::Redefine(format!(
                "inventory alphabet has {} symbols, monitor's has {}",
                new_dfa.num_symbols(),
                self.alphabet.num_symbols()
            )));
        }
        let empty = self.alphabet.empty_symbol();
        let fates = delta::viability_map(self.inventory.dfa(), new_dfa);
        let Engine::Delta(state) = &self.engine else { unreachable!() };
        let new_pre = state.redefine_pre_walk(new_dfa, empty).map_err(|steps| {
            EnforceError::Redefine(format!(
                "the never-created class's pattern ∅^{steps} leaves the new inventory"
            ))
        })?;
        let steps0 = state.steps;
        // Write-ahead: the record reaches the log before any tracking
        // state is touched; a sink failure aborts with nothing changed.
        if let Some(sink) = &self.sink {
            sink.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .redefined(self.epoch + 1, policy, &[(0, steps0)], &new_inventory.encode())
                .map_err(EnforceError::Durability)?;
        }
        let Engine::Delta(state) = &mut self.engine else { unreachable!() };
        let (residue, quarantined) = state.apply_redefine(
            &fates,
            new_dfa,
            new_pre,
            policy == ResiduePolicy::CertifyAndReset,
        );
        self.inventory = new_inventory.clone();
        self.epoch += 1;
        self.redefine_total += 1;
        self.quarantined_total += quarantined as u64;
        Ok(RedefineOutcome { epoch: self.epoch, residue, quarantined })
    }

    /// Append one block to the attached sink (one lock, one record —
    /// the group-commit unit). A single monitor is one partition:
    /// every delta is a letter on shard 0's clock.
    fn log_block(&self, steps0: usize, deltas: &[&Delta]) -> Result<(), WalError> {
        match &self.sink {
            Some(sink) => {
                let shards = [ShardLetters {
                    shard: 0,
                    steps0,
                    letters: (0..deltas.len() as u32).collect(),
                }];
                sink.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .committed(&BlockRef { deltas, shards: &shards })
            }
            None => Ok(()),
        }
    }

    // -----------------------------------------------------------------
    // Durability: snapshot + recovery (see [`wal`])
    // -----------------------------------------------------------------

    /// Checkpoint everything this monitor cannot rebuild from its
    /// constructor arguments: database heap, cohort/RLE tracking state
    /// with its letter clock, policy and certification horizon. The
    /// encoding is canonical — equal monitor states yield equal
    /// [`Snapshot::encode`] bytes.
    ///
    /// # Panics
    /// Panics on the reference engine, which this layer does not
    /// persist.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let Engine::Delta(state) = &self.engine else {
            panic!("snapshot requires the delta engine")
        };
        Snapshot {
            policy: self.policy,
            certified: self.certified,
            certified_at: self.certified_at,
            evolution: self.evolution(),
            db: self.db.clone(),
            shards: vec![state.clone()],
        }
    }

    /// The constraint-evolution state persisted with every checkpoint.
    fn evolution(&self) -> wal::Evolution {
        wal::Evolution {
            epoch: self.epoch,
            redefine_total: self.redefine_total,
            quarantined_total: self.quarantined_total,
            inventory: Some(self.inventory.encode()),
        }
    }

    /// Capture a **full checkpoint** and reset the incremental dirty
    /// tracking: the returned snapshot covers everything, so the next
    /// [`Monitor::checkpoint_delta`] captures only changes made from
    /// here on. Prefer this over [`Monitor::snapshot`] (a pure
    /// observation that leaves the dirty set alone) when the snapshot
    /// will be written as a base checkpoint.
    ///
    /// # Panics
    /// Panics on the reference engine, which this layer does not
    /// persist.
    pub fn checkpoint_full(&mut self) -> Snapshot {
        let snap = self.snapshot();
        let Engine::Delta(state) = &mut self.engine else { unreachable!() };
        state.dirty.clear();
        state.all_dirty = false;
        snap
    }

    /// Capture an **incremental checkpoint**: the objects and tracking
    /// records dirtied since the last capture (or recovery), the cohort
    /// tables and the letter clock — O(dirty), never O(db). Drains the
    /// dirty set: the caller must make the returned increment durable
    /// (or fall back to a full [`Monitor::checkpoint_full`]) before
    /// capturing again, or the chain loses these changes.
    ///
    /// # Panics
    /// Panics on the reference engine, which this layer does not
    /// persist.
    pub fn checkpoint_delta(&mut self) -> CheckpointDelta {
        let evolution = self.evolution();
        let Engine::Delta(state) = &mut self.engine else {
            panic!("checkpoint requires the delta engine")
        };
        wal::capture_delta(
            &self.db,
            std::slice::from_mut(state),
            self.policy,
            self.certified,
            self.certified_at,
            evolution,
        )
    }

    /// Rebuild a monitor from a checkpoint plus the WAL tail written
    /// after it — **without replaying history**: the snapshot (the
    /// folded checkpoint chain — see [`wal::Wal::load`]) restores the
    /// tracking state directly and each tail block replays as one
    /// [`Delta::redo`] + one cohort sweep (its original commit
    /// granularity), so recovery costs O(snapshot + tail), never
    /// O(run length).
    ///
    /// `snapshot: None` recovers from an empty monitor (a log that
    /// predates the first checkpoint); the recovered policy then
    /// defaults to [`StepPolicy::EveryApplication`] — logged blocks
    /// hold only effective letters, so replay itself is
    /// policy-independent.
    ///
    /// Records whose shard-0 clock offset predates the snapshot are
    /// skipped (they are already folded into it — the
    /// crash-between-checkpoint-and-prune window); a gap or a
    /// non-admitting block is reported as [`WalError::Mismatch`]. A
    /// [`wal::WalRecord::Certified`] marker in the tail freezes
    /// tracking exactly where the crashed monitor froze it. The
    /// recovered monitor has no sink attached — reattach with
    /// [`Monitor::with_sink`] to resume logging.
    pub fn recover(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &Inventory,
        kind: PatternKind,
        snapshot: Option<Snapshot>,
        tail: impl IntoIterator<Item = wal::WalRecord>,
    ) -> Result<Monitor<'a>, WalError> {
        let mut m = match snapshot {
            Some(snap) => {
                let Snapshot { policy, certified, certified_at, evolution, db, mut shards } = snap;
                if shards.len() != 1 {
                    return Err(WalError::Mismatch(format!(
                        "snapshot has {} shards; a Monitor persists exactly one",
                        shards.len()
                    )));
                }
                let state = shards.pop().expect("one shard");
                let mut m =
                    Self::with_engine(schema, alphabet, inventory, kind, Engine::Delta(state));
                m.db = db;
                m.policy = policy;
                m.certified = certified;
                m.certified_at = certified_at;
                // A v3 checkpoint carries the inventory of its epoch;
                // pre-evolution (v2) checkpoints fall back to the
                // constructor's inventory at epoch 0.
                if let Some(bytes) = &evolution.inventory {
                    m.inventory = Inventory::decode(alphabet, bytes).map_err(|e| {
                        WalError::Mismatch(format!("snapshot inventory does not decode: {e}"))
                    })?;
                }
                m.epoch = evolution.epoch;
                m.redefine_total = evolution.redefine_total;
                m.quarantined_total = evolution.quarantined_total;
                m
            }
            None => Self::new(schema, alphabet, inventory, kind),
        };
        for record in tail {
            match record {
                wal::WalRecord::Block(block) => {
                    if block.shards.len() != 1 || block.shards[0].shard != 0 {
                        return Err(WalError::Mismatch(
                            "multi-shard block in a single monitor's log".into(),
                        ));
                    }
                    let steps0 = block.shards[0].steps0;
                    let at = m.steps();
                    if steps0 < at {
                        continue; // already folded into the snapshot
                    }
                    if steps0 > at {
                        return Err(WalError::Mismatch(format!(
                            "wal gap: next block starts at letter {steps0}, monitor is at {at}"
                        )));
                    }
                    m.replay_block(&block.deltas)?;
                }
                wal::WalRecord::Certified { steps } => {
                    let at = m.steps();
                    if steps < at {
                        continue; // the snapshot already carries it
                    }
                    if steps > at {
                        return Err(WalError::Mismatch(format!(
                            "wal gap: certification at letter {steps}, monitor is at {at}"
                        )));
                    }
                    if !m.certified {
                        m.certified = true;
                        m.certified_at = Some(steps);
                    }
                }
                wal::WalRecord::Redefined { epoch, policy, shards, inventory } => {
                    if epoch <= m.epoch {
                        continue; // already folded into the snapshot
                    }
                    if epoch != m.epoch + 1 {
                        return Err(WalError::Mismatch(format!(
                            "wal gap: redefinition to epoch {epoch}, monitor is at {}",
                            m.epoch
                        )));
                    }
                    if shards.len() != 1 || shards[0].0 != 0 {
                        return Err(WalError::Mismatch(
                            "multi-shard redefinition in a single monitor's log".into(),
                        ));
                    }
                    let at = m.steps();
                    if shards[0].1 != at {
                        return Err(WalError::Mismatch(format!(
                            "wal gap: redefinition at letter {}, monitor is at {at}",
                            shards[0].1
                        )));
                    }
                    let new_inv = Inventory::decode(alphabet, &inventory).map_err(|e| {
                        WalError::Mismatch(format!("redefine record inventory: {e}"))
                    })?;
                    // Replay through the same code path admission ran —
                    // the recovered monitor has no sink, so nothing is
                    // re-logged. Epoch, totals and tracking remap advance
                    // exactly as they did live.
                    m.redefine(&new_inv, policy).map_err(|e| {
                        WalError::Mismatch(format!("logged redefinition does not admit: {e}"))
                    })?;
                }
            }
        }
        Ok(m)
    }

    /// Replay one logged block onto the recovered state: redo the
    /// database change-sets, then run the same staged sweep + commit
    /// the original admission ran (`k =` block length — for a single
    /// monitor every logged block holds one delta). Admission already
    /// proved the block conforming, so a failing stage means the log
    /// and snapshot do not belong together.
    fn replay_block(&mut self, deltas: &[Delta]) -> Result<(), WalError> {
        for d in deltas {
            d.redo(&mut self.db);
        }
        let k = deltas.len();
        if k == 0 {
            return Ok(());
        }
        let Engine::Delta(state) = &mut self.engine else { unreachable!() };
        if self.certified {
            // Certified blocks were logged without tracking; replay
            // mirrors that. The touched objects still dirty the next
            // incremental checkpoint (their heap state changed).
            state.steps += k;
            for d in deltas {
                state.dirty.extend(d.objects().iter().map(|od| od.oid));
            }
            return Ok(());
        }
        let refs: Vec<&Delta> = deltas.iter().collect();
        let touched = delta::touched_map(&refs);
        let ctx = delta::BatchCtx {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa: self.inventory.dfa(),
            kind: self.kind,
        };
        // The same staged walk the admission path ran — committed
        // blocks were proved admissible, so a violation here means the
        // log does not belong to this snapshot.
        let stage = state
            .stage_batch(&ctx, k, &touched)
            .map_err(|()| WalError::Mismatch("logged block does not admit".into()))?;
        state.commit_batch(stage);
        if k == 1 {
            state.last_touched = deltas[0].objects().len();
        }
        Ok(())
    }

    /// The role-set symbol of a raw class set (∅ when absent or outside
    /// this component).
    fn symbol_of_classes(&self, cs: ClassSet) -> u32 {
        classes_symbol(self.schema, self.alphabet, cs)
    }

    /// The role-set symbol of `o` in `db` (∅ when absent).
    fn role_symbol(&self, db: &Instance, o: Oid) -> u32 {
        self.symbol_of_classes(db.role_set(o))
    }

    /// Apply `t[args]`, committing only if no enforced pattern leaves the
    /// inventory. On violation the database is unchanged and the first
    /// offending object is reported.
    pub fn try_apply(&mut self, t: &Transaction, args: &Assignment) -> Result<(), EnforceError> {
        match &self.engine {
            Engine::Delta(_) => self.try_apply_delta(t, args),
            Engine::Reference { .. } => self.try_apply_reference(t, args),
        }
    }

    /// Apply a whole sequence, stopping at the first rejection; returns
    /// how many applications committed.
    pub fn try_apply_all<'t>(
        &mut self,
        steps: impl IntoIterator<Item = (&'t Transaction, &'t Assignment)>,
    ) -> (usize, Option<EnforceError>) {
        let mut done = 0;
        for (t, args) in steps {
            match self.try_apply(t, args) {
                Ok(()) => done += 1,
                Err(e) => return (done, Some(e)),
            }
        }
        (done, None)
    }

    // -----------------------------------------------------------------
    // Delta/cohort engine
    // -----------------------------------------------------------------

    fn try_apply_delta(&mut self, t: &Transaction, args: &Assignment) -> Result<(), EnforceError> {
        if self.certified {
            // Certified fast path: no checks will run. Without a sink,
            // skip the before-image capture entirely — the raw
            // interpreter cost is all that remains. A durable monitor
            // still captures the delta (it must be logged), but runs no
            // admission work on it.
            let steps0 = self.steps();
            if self.sink.is_some() {
                let delta = apply_delta_bulk(self.schema, &mut self.db, t, args)?;
                if let Err(e) = self.log_block(steps0, &[&delta]) {
                    delta.undo(&mut self.db);
                    return Err(EnforceError::Durability(e));
                }
                let Engine::Delta(state) = &mut self.engine else { unreachable!() };
                // The heap changed: the next incremental checkpoint
                // must carry these objects even though tracking froze.
                state.dirty.extend(delta.objects().iter().map(|od| od.oid));
                state.steps += 1;
            } else {
                apply_transaction(self.schema, &mut self.db, t, args)?;
                let Engine::Delta(state) = &mut self.engine else { unreachable!() };
                state.steps += 1;
            }
            return Ok(());
        }
        let delta = apply_delta_bulk(self.schema, &mut self.db, t, args)?;
        if self.policy == StepPolicy::OnlyChanging && delta.is_identity() {
            // Null application (Definition 4.6): no letter, and the
            // database is bit-identical — nothing to undo.
            let Engine::Delta(state) = &mut self.engine else { unreachable!() };
            state.last_touched = delta.objects().len();
            return Ok(());
        }

        // One staged, read-only pass at k = 1 — the never-created ∅
        // walk plus touched objects and untouched cohorts, all from the
        // partition's own letter clock (nothing is written until the
        // step is known admissible), then a commit. This is the same
        // code path the sharded monitor runs per shard, so the engines
        // cannot drift.
        let ctx = delta::BatchCtx {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa: self.inventory.dfa(),
            kind: self.kind,
        };
        // Bulk-creation fast path: a big all-creations letter stages
        // without the per-object touched map (uniform creation context,
        // one DFA step per distinct role symbol, sorted record append).
        // Byte-identical to the generic path below — WAL replay goes
        // through `stage_batch` and recovery compares snapshot bytes.
        if delta.objects().len() >= BULK_APPLY_THRESHOLD
            && delta.objects().iter().all(ObjectDelta::created)
        {
            let Engine::Delta(state) = &self.engine else { unreachable!() };
            let steps0 = state.steps;
            return match state.stage_bulk_creates(&ctx, delta.objects().iter()) {
                Ok(stage) => {
                    if let Err(e) = self.log_block(steps0, &[&delta]) {
                        delta.undo(&mut self.db);
                        return Err(EnforceError::Durability(e));
                    }
                    let Engine::Delta(state) = &mut self.engine else { unreachable!() };
                    state.commit_bulk_creates(stage);
                    Ok(())
                }
                Err(()) => {
                    let v = self.diagnose_violation(&delta);
                    delta.undo(&mut self.db);
                    Err(EnforceError::Violation(v))
                }
            };
        }
        let touched = delta::touched_map(&[&delta]);
        let Engine::Delta(state) = &mut self.engine else { unreachable!() };
        let steps0 = state.steps;
        match state.stage_batch(&ctx, 1, &touched) {
            Ok(stage) => {
                // Write-ahead: the block reaches the log after staging
                // proved it admissible and before any tracking state is
                // written; a sink failure aborts the whole application.
                if let Err(e) = self.log_block(steps0, &[&delta]) {
                    delta.undo(&mut self.db);
                    return Err(EnforceError::Durability(e));
                }
                let Engine::Delta(state) = &mut self.engine else { unreachable!() };
                state.commit_batch(stage);
                // `last_touched` counts every object of the change-set,
                // including within-step blips the tracker never sees.
                state.last_touched = delta.objects().len();
                Ok(())
            }
            Err(()) => {
                // Rejection path: reproduce the reference engine's scan
                // (never-created class first, then all objects in
                // ascending oid order) so the reported violation is
                // byte-identical to [`Monitor::new_reference`]'s, then
                // roll the database back. O(objects), paid only on
                // rejection.
                let v = self.diagnose_violation(&delta);
                delta.undo(&mut self.db);
                Err(EnforceError::Violation(v))
            }
        }
    }

    /// Rejection diagnostics: replay this step over **all** objects in
    /// ascending oid order — exactly the reference engine's scan — and
    /// return the first violation (see [`delta::diagnose_step`]).
    /// `self.db` still holds the post-state; per-object pre-states come
    /// from the tracking records and `delta`. O(objects), paid only on
    /// rejection.
    fn diagnose_violation(&self, delta: &Delta) -> Violation {
        let Engine::Delta(state) = &self.engine else { unreachable!() };
        let dfa = self.inventory.dfa();
        let empty = self.alphabet.empty_symbol();
        let step_idx = state.steps + 1;
        // The reference engine checks the never-created class first.
        let pre = delta::never_created_walk(
            dfa,
            empty,
            self.kind,
            state.pre_state,
            state.pre_exempt,
            state.steps,
            1,
        );
        if pre.violation_at.is_some() {
            return Violation {
                oid: None,
                pattern: vec![empty; step_idx],
                letter: empty,
                epoch: self.epoch,
            };
        }
        let params = DiagParams {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa,
            kind: self.kind,
            epoch: self.epoch,
        };
        diagnose_step(
            &params,
            state.records.iter().map(|(&o, rec)| {
                let root = state.find_ro(rec.cohort);
                (o, rec, root == EXEMPT, state.cohorts[root as usize].state, step_idx)
            }),
            |_| (state.pre_state, state.pre_exempt, step_idx),
            delta,
        )
    }

    // -----------------------------------------------------------------
    // Reference engine (pre-optimization algorithm, verbatim)
    // -----------------------------------------------------------------

    fn try_apply_reference(
        &mut self,
        t: &Transaction,
        args: &Assignment,
    ) -> Result<(), EnforceError> {
        let next = run(self.schema, &self.db, t, args)?;
        if self.certified {
            self.db = next;
            self.steps += 1;
            return Ok(());
        }
        if self.policy == StepPolicy::OnlyChanging && next == self.db {
            return Ok(());
        }
        let dfa = self.inventory.dfa();
        let empty = self.alphabet.empty_symbol();
        let step_idx = self.steps + 1; // 1-based index of this letter

        // 1. The never-created objects read one more ∅.
        let pre_state_old = self.pre_state;
        let mut pre_exempt_new = self.pre_exempt;
        if !pre_exempt_new
            && step_idx >= 2
            && matches!(self.kind, PatternKind::Proper | PatternKind::Lazy)
        {
            // A second ∅ neither changes the object nor its role set.
            pre_exempt_new = true;
        }
        let pre_state_new = dfa.step(pre_state_old, empty);
        if !pre_exempt_new && !dfa.is_accepting(pre_state_new) {
            return Err(EnforceError::Violation(Violation {
                oid: None,
                pattern: vec![empty; step_idx],
                letter: empty,
                epoch: self.epoch,
            }));
        }

        let Engine::Reference { tracked } = &self.engine else { unreachable!() };

        // 2. Already-tracked objects (live or deleted) read their new
        //    role symbol.
        let mut updates: Vec<(Oid, Tracked)> = Vec::with_capacity(tracked.len());
        for (&o, tr) in tracked {
            let letter = self.role_symbol(&next, o);
            let role_changed = letter != tr.last_role;
            let object_changed = role_changed || self.db.tuple_ref(o) != next.tuple_ref(o);
            let mut exempt = tr.exempt;
            if !exempt && step_idx >= 2 {
                exempt = match self.kind {
                    PatternKind::All | PatternKind::ImmediateStart => false,
                    PatternKind::Proper => !object_changed,
                    PatternKind::Lazy => !role_changed,
                };
            }
            let state = dfa.step(tr.state, letter);
            if !exempt && !dfa.is_accepting(state) {
                let mut pattern = tr.history.clone();
                pattern.push(letter);
                return Err(EnforceError::Violation(Violation {
                    oid: Some(o),
                    pattern,
                    letter,
                    epoch: self.epoch,
                }));
            }
            let mut history = tr.history.clone();
            history.push(letter);
            updates.push((o, Tracked { state, exempt, last_role: letter, history }));
        }

        // 3. Objects created by this application: pattern ∅^(step_idx−1)·ω.
        let mut created: Vec<(Oid, Tracked)> = Vec::new();
        for o in next.objects() {
            if tracked.contains_key(&o) {
                continue;
            }
            let letter = self.role_symbol(&next, o);
            // Inherit the never-created exemption accrued before this
            // step; the creation step itself always changes the object.
            let exempt = match self.kind {
                PatternKind::All => false,
                PatternKind::ImmediateStart => step_idx > 1,
                PatternKind::Proper | PatternKind::Lazy => self.pre_exempt,
            };
            let state = dfa.step(pre_state_old, letter);
            if !exempt && !dfa.is_accepting(state) {
                let mut pattern = vec![empty; step_idx - 1];
                pattern.push(letter);
                return Err(EnforceError::Violation(Violation {
                    oid: Some(o),
                    pattern,
                    letter,
                    epoch: self.epoch,
                }));
            }
            let mut history = vec![empty; step_idx - 1];
            history.push(letter);
            created.push((o, Tracked { state, exempt, last_role: letter, history }));
        }

        // Commit.
        self.db = next;
        self.steps = step_idx;
        self.pre_state = pre_state_new;
        self.pre_exempt = pre_exempt_new;
        let Engine::Reference { tracked } = &mut self.engine else { unreachable!() };
        for (o, tr) in updates.into_iter().chain(created) {
            tracked.insert(o, tr);
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use migratory_lang::parse_transactions;
    use migratory_model::schema::university_schema;
    use migratory_model::{RoleSet, Value};

    fn setup() -> (Schema, RoleAlphabet) {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        (s, a)
    }

    fn uni_transactions(s: &Schema) -> TransactionSchema {
        parse_transactions(
            s,
            r#"
            transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
            transaction Nm(x, n) { modify(PERSON, { SSN = x }, { Name = n }); }
            transaction St(x) {
              specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
            }
            transaction Emp(x) {
              specialize(PERSON, EMPLOYEE, { SSN = x }, { Salary = 1, WorksIn = "D" });
            }
            transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
            transaction Rm(x) { delete(PERSON, { SSN = x }); }
        "#,
        )
        .unwrap()
    }

    fn arg(v: &str) -> Assignment {
        Assignment::new(vec![Value::str(v)])
    }

    #[test]
    fn admits_conforming_run_and_rejects_violation() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        let x = arg("1");
        m.try_apply(ts.get("Mk").unwrap(), &x).unwrap();
        m.try_apply(ts.get("St").unwrap(), &x).unwrap();
        m.try_apply(ts.get("UnSt").unwrap(), &x).unwrap();
        // Re-specializing to STUDENT breaks [P]*[S]*[P]*:
        let err = m.try_apply(ts.get("St").unwrap(), &x).unwrap_err();
        match err {
            EnforceError::Violation(v) => {
                assert_eq!(v.oid, Some(Oid(1)));
                assert_eq!(v.pattern.len(), 4);
                assert!(v.display(&a).contains("o1"));
            }
            EnforceError::Lang(e) => panic!("unexpected {e}"),
            EnforceError::Durability(e) => panic!("unexpected {e}"),
            EnforceError::Degraded(e) => panic!("unexpected {e}"),
            EnforceError::Redefine(e) => panic!("unexpected {e}"),
        }
        // Rolled back: the object is still a plain person, 3 letters.
        assert_eq!(m.steps(), 3);
        assert_eq!(m.pattern_of(Oid(1)).unwrap().len(), 3, "the rejected letter was not recorded");
        // The run can continue down a permitted branch.
        m.try_apply(ts.get("Rm").unwrap(), &x).unwrap();
        assert_eq!(m.db().num_objects(), 0);
    }

    #[test]
    fn bulk_create_staging_matches_generic_staging() {
        // The bulk-load fast path must produce tracking state *equal* to
        // the generic `stage_batch`/`commit_batch` path — WAL replay runs
        // the generic path and recovery compares snapshot bytes.
        use migratory_lang::{apply_transaction_delta, AtomicUpdate};
        use migratory_model::{Atom, Condition};
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let person = s.class_id("PERSON").unwrap();
        let student = s.class_id("STUDENT").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        // Mixed classes: the bulk stage must group by role symbol and
        // allocate cohorts in the generic first-occurrence order.
        let mixed: Vec<AtomicUpdate> = (0..40)
            .map(|i| AtomicUpdate::Create {
                class: if i % 3 == 0 { student } else { person },
                gamma: Condition::from_atoms([Atom::eq_const(ssn, format!("b{i}"))]),
            })
            .collect();
        let bulk = Transaction::sl("B", &[], mixed);
        let none = Assignment::empty();
        for kind in
            [PatternKind::All, PatternKind::ImmediateStart, PatternKind::Proper, PatternKind::Lazy]
        {
            let inv = Inventory::parse_init(&s, &a, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
            let mut m = Monitor::new(&s, &a, &inv, kind);
            // Seed regular letters so cohorts and the ∅ walk are mid-run.
            m.try_apply(ts.get("Mk").unwrap(), &arg("1")).unwrap();
            m.try_apply(ts.get("St").unwrap(), &arg("1")).unwrap();
            m.try_apply(ts.get("Mk").unwrap(), &arg("2")).unwrap();
            let mut dbx = m.db().clone();
            let d = apply_transaction_delta(&s, &mut dbx, &bulk, &none).unwrap();
            let ctx = delta::BatchCtx { schema: &s, alphabet: &a, dfa: inv.dfa(), kind };
            let Engine::Delta(state) = &m.engine else { unreachable!() };
            let generic = {
                let mut st = state.clone();
                let touched = delta::touched_map(&[&d]);
                let stage = st.stage_batch(&ctx, 1, &touched).expect("conforming");
                st.commit_batch(stage);
                st
            };
            let bulked = {
                let mut st = state.clone();
                let stage = st.stage_bulk_creates(&ctx, d.objects().iter()).expect("conforming");
                st.commit_bulk_creates(stage);
                st
            };
            assert!(
                generic == bulked,
                "bulk staging diverged from the generic path under {kind:?}"
            );
        }
        // Both paths agree on rejection too: [PERSON] creations against
        // an inventory admitting only [STUDENT] letters (exemption never
        // saves a creation under All).
        let inv = Inventory::parse_init(&s, &a, "∅* [STUDENT]* ∅*").unwrap();
        let m = Monitor::new(&s, &a, &inv, PatternKind::All);
        let mut dbx = m.db().clone();
        let d = apply_transaction_delta(&s, &mut dbx, &bulk, &none).unwrap();
        let ctx =
            delta::BatchCtx { schema: &s, alphabet: &a, dfa: inv.dfa(), kind: PatternKind::All };
        let Engine::Delta(state) = &m.engine else { unreachable!() };
        assert!(state.stage_batch(&ctx, 1, &delta::touched_map(&[&d])).is_err());
        assert!(state.stage_bulk_creates(&ctx, d.objects().iter()).is_err());
    }

    #[test]
    fn bulk_threshold_violation_matches_reference() {
        // Above the routing threshold the public path takes the bulk
        // loader end to end; a violating load must report the reference
        // engine's exact Violation and leave the database untouched.
        use migratory_lang::AtomicUpdate;
        use migratory_model::{Atom, Condition};
        let (s, a) = setup();
        let person = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let n = BULK_APPLY_THRESHOLD + 10;
        let updates: Vec<AtomicUpdate> = (0..n)
            .map(|i| AtomicUpdate::Create {
                class: person,
                gamma: Condition::from_atoms([Atom::eq_const(ssn, format!("v{i}"))]),
            })
            .collect();
        let bulk = Transaction::sl("B", &[], updates);
        let none = Assignment::empty();
        // [PERSON] creations against an inventory admitting only
        // [STUDENT] letters: every created object violates; the report
        // must name the first in oid order, exactly as the reference
        // engine does.
        let inv = Inventory::parse_init(&s, &a, "∅* [STUDENT]* ∅*").unwrap();
        let mut md = Monitor::new(&s, &a, &inv, PatternKind::All);
        let mut mr = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        let (ed, er) =
            (md.try_apply(&bulk, &none).unwrap_err(), mr.try_apply(&bulk, &none).unwrap_err());
        match (ed, er) {
            (EnforceError::Violation(vd), EnforceError::Violation(vr)) => assert_eq!(vd, vr),
            other => panic!("expected violations, got {other:?}"),
        }
        assert_eq!(md.db().num_objects(), 0, "violating bulk load must roll back");
        // The same load against a permitting inventory admits through
        // the bulk path and matches the reference database.
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
        let mut md = Monitor::new(&s, &a, &inv, PatternKind::All);
        let mut mr = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        md.try_apply(&bulk, &none).unwrap();
        mr.try_apply(&bulk, &none).unwrap();
        assert_eq!(md.db().num_objects(), n);
        assert_eq!(md.db(), mr.db());
    }

    #[test]
    fn committed_patterns_always_inside_inventory() {
        // Drive a randomized-ish batch; whatever commits must satisfy 𝔏
        // letter by letter (prefix-closedness makes this the invariant).
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(
            &s,
            &a,
            "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]+ [PERSON]* ∅*",
        )
        .unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        let script: Vec<(&str, &str)> = vec![
            ("Mk", "1"),
            ("St", "1"),
            ("Mk", "2"),
            ("Emp", "2"),
            ("Emp", "1"),
            ("UnSt", "1"),
            ("Rm", "2"),
            ("Nm", "1"),
            ("Rm", "1"),
        ];
        let mut committed = 0;
        for (t, v) in script {
            let args = if t == "Nm" {
                Assignment::new(vec![Value::str(v), Value::str("z")])
            } else {
                arg(v)
            };
            if m.try_apply(ts.get(t).unwrap(), &args).is_ok() {
                committed += 1;
            }
        }
        assert!(committed >= 5, "most of the script conforms");
        for o in [Oid(1), Oid(2)] {
            if let Some(p) = m.pattern_of(o) {
                assert!(inv.contains(&p), "committed pattern {p:?} must lie in 𝔏");
            }
        }
    }

    #[test]
    fn never_created_objects_constrain_all_kind() {
        // 𝔏 = Init([PERSON]*): no ∅ anywhere, so even one application
        // violates the never-created objects' pattern ∅ under kind=All…
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "[PERSON]*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        let err = m.try_apply(ts.get("Mk").unwrap(), &arg("1")).unwrap_err();
        assert!(matches!(err, EnforceError::Violation(Violation { oid: None, .. })));
        // …but immediate-start patterns never begin with ∅, so the same
        // application is admitted under kind=ImmediateStart.
        let mut m2 = Monitor::new(&s, &a, &inv, PatternKind::ImmediateStart);
        m2.try_apply(ts.get("Mk").unwrap(), &arg("1")).unwrap();
        assert_eq!(m2.steps(), 1);
    }

    #[test]
    fn proper_kind_exempts_after_noop_step() {
        // 𝔏 = Init(∅*[PERSON][STUDENT]∅*) — persons must study on their
        // second letter. A no-op modify breaks properness first, after
        // which the object is unconstrained under kind=Proper.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON] [STUDENT] ∅*").unwrap();
        let x = arg("1");
        let noop = Assignment::new(vec![Value::str("1"), Value::str("n")]); // Name already "n"

        let mut strict = Monitor::new(&s, &a, &inv, PatternKind::All);
        strict.try_apply(ts.get("Mk").unwrap(), &x).unwrap();
        assert!(
            strict.try_apply(ts.get("Nm").unwrap(), &noop).is_err(),
            "kind=All rejects: [P][P] ∉ 𝔏"
        );

        let mut proper = Monitor::new(&s, &a, &inv, PatternKind::Proper);
        proper.try_apply(ts.get("Mk").unwrap(), &x).unwrap();
        proper.try_apply(ts.get("Nm").unwrap(), &noop).unwrap();
        // o1's pattern [P][P] is not proper — exempt from here on, even
        // for letters far outside 𝔏:
        proper.try_apply(ts.get("Emp").unwrap(), &x).unwrap();
        assert_eq!(proper.pattern_of(Oid(1)).unwrap().len(), 3);
    }

    #[test]
    fn lazy_kind_exempts_on_role_preserving_change() {
        // A *real* rename changes the object but not its role set: the
        // pattern stays proper but stops being lazy.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON] [STUDENT] ∅*").unwrap();
        let x = arg("1");
        let rename = Assignment::new(vec![Value::str("1"), Value::str("other")]);

        let mut lazy = Monitor::new(&s, &a, &inv, PatternKind::Lazy);
        lazy.try_apply(ts.get("Mk").unwrap(), &x).unwrap();
        lazy.try_apply(ts.get("Nm").unwrap(), &rename).unwrap();
        lazy.try_apply(ts.get("Emp").unwrap(), &x).unwrap();

        let mut proper = Monitor::new(&s, &a, &inv, PatternKind::Proper);
        proper.try_apply(ts.get("Mk").unwrap(), &x).unwrap();
        assert!(
            proper.try_apply(ts.get("Nm").unwrap(), &rename).is_err(),
            "the rename is a proper step, so [P][P] is checked and fails"
        );
    }

    #[test]
    fn deleted_objects_trailing_empties_are_enforced() {
        // 𝔏 = Init(∅*[PERSON]∅) allows exactly one trailing ∅ after
        // deletion: a second application afterwards violates kind=All.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON] ∅").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        m.try_apply(ts.get("Mk").unwrap(), &arg("1")).unwrap();
        m.try_apply(ts.get("Rm").unwrap(), &arg("1")).unwrap();
        let err = m.try_apply(ts.get("Mk").unwrap(), &arg("2")).unwrap_err();
        match err {
            EnforceError::Violation(v) => {
                assert_eq!(v.oid, Some(Oid(1)), "o1's pattern would be [P]∅∅");
                assert_eq!(v.letter, a.empty_symbol());
            }
            EnforceError::Lang(e) => panic!("unexpected {e}"),
            EnforceError::Durability(e) => panic!("unexpected {e}"),
            EnforceError::Degraded(e) => panic!("unexpected {e}"),
            EnforceError::Redefine(e) => panic!("unexpected {e}"),
        }
        // Under Proper the second trailing ∅ makes o1's pattern improper
        // (and ∅∅ exempts the never-created class too): admitted.
        let mut pm = Monitor::new(&s, &a, &inv, PatternKind::Proper);
        pm.try_apply(ts.get("Mk").unwrap(), &arg("1")).unwrap();
        pm.try_apply(ts.get("Rm").unwrap(), &arg("1")).unwrap();
        pm.try_apply(ts.get("Mk").unwrap(), &arg("2")).unwrap();
    }

    #[test]
    fn late_created_objects_start_from_pre_state() {
        // 𝔏 = Init(∅[PERSON]*∅*): creation must happen exactly at step 2.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅ [PERSON]* ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        // Step 1 must emit ∅ for (not-yet-created) o1 — Mk at step 1
        // violates o1's pattern [P] (𝔏 requires a leading ∅).
        let err = m.try_apply(ts.get("Mk").unwrap(), &arg("1")).unwrap_err();
        assert!(matches!(err, EnforceError::Violation(Violation { oid: Some(_), .. })));
        // A no-op delete emits the required ∅ first; then Mk is fine.
        m.try_apply(ts.get("Rm").unwrap(), &arg("zzz")).unwrap();
        m.try_apply(ts.get("Mk").unwrap(), &arg("1")).unwrap();
        assert_eq!(m.pattern_of(Oid(1)).unwrap().to_vec(), {
            let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
            vec![a.empty_symbol(), p]
        });
    }

    #[test]
    fn only_changing_policy_skips_null_applications() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅ [PERSON]* ∅*").unwrap();
        let mut m =
            Monitor::new(&s, &a, &inv, PatternKind::All).with_policy(StepPolicy::OnlyChanging);
        // The no-op delete changes nothing: contributes no letter under
        // the CSL semantics, so creation still happens "at step 1" and
        // violates the required leading ∅.
        m.try_apply(ts.get("Rm").unwrap(), &arg("zzz")).unwrap();
        assert_eq!(m.steps(), 0);
        assert!(m.try_apply(ts.get("Mk").unwrap(), &arg("1")).is_err());
    }

    #[test]
    fn certification_fast_path_matches_decide() {
        // Example 3.4's schema characterizes Init(∅*([S]+[G]*)*∅*); a
        // certified monitor admits any run of it without checks.
        let (s, a) = setup();
        let ts = parse_transactions(
            &s,
            r#"
            transaction T1(n, sv, t, mj) {
              create(PERSON, { SSN = sv, Name = n });
              specialize(PERSON, STUDENT, { SSN = sv },
                         { Major = mj, FirstEnroll = t });
            }
            transaction T4(sv) { delete(PERSON, { SSN = sv }); }
        "#,
        )
        .unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [STUDENT]* ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        assert!(m.certify(&ts).unwrap(), "the schema satisfies the inventory");
        assert!(m.is_certified());
        let t1 = ts.get("T1").unwrap();
        let args = Assignment::new(vec![
            Value::str("ann"),
            Value::str("1"),
            Value::int(1990),
            Value::str("CS"),
        ]);
        m.try_apply(t1, &args).unwrap();
        assert_eq!(m.db().num_objects(), 1);
        assert!(m.pattern_of(Oid(1)).is_none(), "certified mode skips tracking");

        // A schema that can violate must fail certification.
        let bad = uni_transactions(&s);
        let mut m2 = Monitor::new(&s, &a, &inv, PatternKind::All);
        assert!(!m2.certify(&bad).unwrap());
        assert!(!m2.is_certified());
    }

    #[test]
    fn mid_run_certification_freezes_patterns_identically() {
        // Certifying after some steps must freeze pattern tracking in
        // both engines at the same horizon — certified steps must not
        // fabricate repeat letters in the RLE reconstruction.
        let (s, a) = setup();
        let ts = parse_transactions(
            &s,
            r#"
            transaction T1(n, sv, t, mj) {
              create(PERSON, { SSN = sv, Name = n });
              specialize(PERSON, STUDENT, { SSN = sv },
                         { Major = mj, FirstEnroll = t });
            }
            transaction T4(sv) { delete(PERSON, { SSN = sv }); }
        "#,
        )
        .unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [STUDENT]* ∅*").unwrap();
        let args = |k: &str| {
            Assignment::new(vec![
                Value::str("ann"),
                Value::str(k),
                Value::int(1990),
                Value::str("CS"),
            ])
        };
        let mut fast = Monitor::new(&s, &a, &inv, PatternKind::All);
        let mut oracle = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        for m in [&mut fast, &mut oracle] {
            m.try_apply(ts.get("T1").unwrap(), &args("1")).unwrap();
            assert!(m.certify(&ts).unwrap());
            m.try_apply(ts.get("T1").unwrap(), &args("2")).unwrap();
            assert_eq!(m.steps(), 2);
        }
        // o1's pattern is frozen at one letter ([STUDENT]); the certified
        // step contributed nothing to tracking. Both engines agree.
        assert_eq!(fast.pattern_of(Oid(1)), oracle.pattern_of(Oid(1)));
        assert_eq!(fast.pattern_of(Oid(1)).unwrap().len(), 1);
        // o2 was created after certification: untracked in both engines.
        assert!(fast.pattern_of(Oid(2)).is_none());
        assert!(oracle.pattern_of(Oid(2)).is_none());
        // Certification is one-way: a later non-certifying schema reports
        // false but does not resurrect checks over stale tracking state.
        let bad = uni_transactions(&s);
        assert!(!fast.certify(&bad).unwrap());
        assert!(fast.is_certified());
    }

    #[test]
    fn certify_rejects_csl() {
        let (s, a) = setup();
        let csl = parse_transactions(
            &s,
            r#"transaction G(x) {
                 when PERSON(SSN = x) -> delete(PERSON, { SSN = x });
               }"#,
        )
        .unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        assert!(matches!(m.certify(&csl), Err(CoreError::NotSl)));
    }

    #[test]
    fn monitor_agrees_with_explorer_families() {
        // Cross-validation against the ground-truth enumerator: every
        // pattern the explorer produces within the inventory must drive
        // the monitor without rejection along its own run — here spot-
        // checked by replaying explorer-admissible scripts.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(
            &s,
            &a,
            "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]* [PERSON]* ∅*",
        )
        .unwrap();
        let sets =
            explore(&s, &a, &ts, &ExploreConfig { max_steps: 3, ..ExploreConfig::default() });
        // All explored patterns inside 𝔏 are admissible: the monitor is
        // not *stricter* than the constraint (completeness per prefix).
        let admissible = sets.all.iter().filter(|w| inv.contains(w)).count();
        assert!(admissible > 0);
        // And every pattern the monitor commits lies in 𝔏 (soundness):
        // exercised by the batch test above; here check the two agree on
        // the empty run.
        assert!(inv.contains(&[]));
    }

    #[test]
    fn try_apply_all_reports_commit_count() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        let x = arg("1");
        let mk = ts.get("Mk").unwrap();
        let st = ts.get("St").unwrap();
        let rm = ts.get("Rm").unwrap();
        let (done, err) = m.try_apply_all([(mk, &x), (st, &x), (rm, &x)]);
        assert_eq!(done, 1, "St violates [PERSON]*");
        assert!(err.is_some());
        assert_eq!(m.db().num_objects(), 1);
    }

    /// Replay a script on both engines, asserting identical commit
    /// prefixes, identical violations, identical databases and identical
    /// recorded patterns.
    fn assert_engines_agree(
        inv_src: &str,
        kind: PatternKind,
        policy: StepPolicy,
        script: &[(&str, Assignment)],
    ) {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, inv_src).unwrap();
        let mut fast = Monitor::new(&s, &a, &inv, kind).with_policy(policy);
        let mut oracle = Monitor::new_reference(&s, &a, &inv, kind).with_policy(policy);
        for (i, (name, args)) in script.iter().enumerate() {
            let t = ts.get(name).unwrap();
            let rf = fast.try_apply(t, args);
            let ro = oracle.try_apply(t, args);
            assert_eq!(rf, ro, "engines disagree at step {i} ({name}) under {kind} / {inv_src}");
            assert_eq!(fast.db(), oracle.db(), "databases diverged at step {i}");
            assert_eq!(fast.steps(), oracle.steps(), "letter counts diverged at step {i}");
        }
        for o in fast.db().objects().chain((1..=script.len() as u64).map(Oid)) {
            assert_eq!(fast.pattern_of(o), oracle.pattern_of(o), "pattern of o{} diverged", o.0);
        }
    }

    #[test]
    fn delta_engine_matches_reference_on_scripted_runs() {
        let one = |n: &'static str| (n, arg("1"));
        let two = |n: &'static str| (n, arg("2"));
        let script: Vec<(&str, Assignment)> = vec![
            one("Mk"),
            one("St"),
            two("Mk"),
            two("Emp"),
            one("Emp"),
            one("UnSt"),
            ("Nm", Assignment::new(vec![Value::str("1"), Value::str("z")])),
            ("Nm", Assignment::new(vec![Value::str("1"), Value::str("z")])), // no-op rename
            two("Rm"),
            one("Rm"),
            ("Mk", arg("3")),
        ];
        for inv in [
            "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]+ [PERSON]* ∅*",
            "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*",
            "∅* [PERSON]+ ∅",
            "∅ [PERSON]* [EMPLOYEE]* ∅*",
        ] {
            for kind in PatternKind::ALL {
                for policy in [StepPolicy::EveryApplication, StepPolicy::OnlyChanging] {
                    assert_engines_agree(inv, kind, policy, &script);
                }
            }
        }
    }

    #[test]
    fn untouched_objects_cost_one_cohort_step() {
        // 50 parallel persons; each application touches exactly one. The
        // cohort map must stay tiny and last_touched must track the
        // delta, not the database.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        for i in 0..50 {
            m.try_apply(ts.get("Mk").unwrap(), &arg(&format!("k{i}"))).unwrap();
        }
        m.try_apply(ts.get("St").unwrap(), &arg("k7")).unwrap();
        assert_eq!(m.last_touched(), Some(1), "only k7 was touched");
        let Engine::Delta(state) = &m.engine else { panic!("delta engine") };
        assert!(
            state.by_key.len() <= 3,
            "50 objects collapse into ≤3 cohorts, got {}",
            state.by_key.len()
        );
        // Histories are run-length encoded: 51 steps, but o1's record
        // holds a single segment ([P] since step 1).
        let rec = &state.records[&Oid(1)];
        assert_eq!(rec.segments.len(), 1, "no per-step history growth");
        assert_eq!(m.pattern_of(Oid(1)).unwrap().len(), 51, "full pattern reconstructs");
        // o8 (= k7) changed role once: two segments.
        let touched = &state.records[&Oid(8)];
        assert_eq!(touched.segments.len(), 2);
    }

    #[test]
    fn violation_diagnostics_identical_to_reference_with_many_objects() {
        // Several objects violate "simultaneously": the delta engine must
        // report the same (first-by-oid) object, pattern and letter the
        // reference scan reports.
        let (s, a) = setup();
        let ts = parse_transactions(
            &s,
            r#"
            transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
            transaction RmAll() { delete(PERSON, { }); }
        "#,
        )
        .unwrap();
        // One trailing ∅ allowed after deletion; a bulk delete then one
        // more application gives every deleted object its second ∅ at
        // the same step.
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]+ ∅").unwrap();
        let mut fast = Monitor::new(&s, &a, &inv, PatternKind::All);
        let mut oracle = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        let none = Assignment::empty();
        for m in [&mut fast, &mut oracle] {
            m.try_apply(ts.get("Mk").unwrap(), &arg("a")).unwrap();
            m.try_apply(ts.get("Mk").unwrap(), &arg("b")).unwrap();
            m.try_apply(ts.get("RmAll").unwrap(), &none).unwrap();
        }
        let ef = fast.try_apply(ts.get("Mk").unwrap(), &arg("c")).unwrap_err();
        let eo = oracle.try_apply(ts.get("Mk").unwrap(), &arg("c")).unwrap_err();
        assert_eq!(ef, eo);
        match ef {
            EnforceError::Violation(v) => {
                assert_eq!(v.oid, Some(Oid(1)), "lowest-oid violator reported");
                assert_eq!(v.pattern.len(), 4);
                assert_eq!(v.letter, a.empty_symbol());
            }
            EnforceError::Lang(e) => panic!("unexpected {e}"),
            EnforceError::Durability(e) => panic!("unexpected {e}"),
            EnforceError::Degraded(e) => panic!("unexpected {e}"),
            EnforceError::Redefine(e) => panic!("unexpected {e}"),
        }
        // Rejection rolled back: both databases agree and can continue.
        assert_eq!(fast.db(), oracle.db());
        assert_eq!(fast.steps(), 3);
    }

    #[test]
    fn proper_kind_folds_untouched_objects_into_exempt_cohort() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON] [STUDENT] ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::Proper);
        for i in 0..10 {
            m.try_apply(ts.get("Mk").unwrap(), &arg(&format!("k{i}"))).unwrap();
        }
        let Engine::Delta(state) = &m.engine else { panic!("delta engine") };
        // After step 2 under Proper, every untouched object is exempt:
        // only the latest creation can still occupy a live cohort.
        assert!(state.by_key.len() <= 1);
        assert!(state.cohorts[EXEMPT as usize].size >= 9);
    }

    #[test]
    fn cyclic_workloads_recycle_cohort_slots() {
        // St/UnSt toggling empties and recreates cohorts every step; the
        // free list must keep the slot table bounded instead of growing
        // one slot per application.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
        // All exercises the re-key path; Proper and Lazy exercise the
        // fold-to-exempt path. Same-object toggling empties and recreates
        // a singleton cohort every step (free-list path); rotating over
        // several objects leaves live forwarders behind each fold
        // (compaction path).
        for kind in [PatternKind::All, PatternKind::Proper, PatternKind::Lazy] {
            for rotate in [false, true] {
                let keys = ["a", "b", "c"];
                let mut m = Monitor::new(&s, &a, &inv, kind);
                for k in keys {
                    m.try_apply(ts.get("Mk").unwrap(), &arg(k)).unwrap();
                }
                for i in 0..300 {
                    let t = if i % 2 == 0 { "St" } else { "UnSt" };
                    let k = if rotate { keys[(i / 2) % keys.len()] } else { "b" };
                    m.try_apply(ts.get(t).unwrap(), &arg(k)).unwrap();
                }
                let Engine::Delta(state) = &m.engine else { panic!("delta engine") };
                assert!(
                    state.cohorts.len() <= 65,
                    "300 toggles (rotate {rotate}) under {kind} must bound the slot \
                     table, got {} cohorts",
                    state.cohorts.len()
                );
            }
        }
    }

    #[test]
    fn reference_engine_reports_itself() {
        let (s, a) = setup();
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
        assert!(Monitor::new(&s, &a, &inv, PatternKind::All).is_incremental());
        let r = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        assert!(!r.is_incremental());
        assert_eq!(r.last_touched(), None);
    }

    #[test]
    fn lang_errors_are_distinguished_from_violations() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
        let mut m = Monitor::new(&s, &a, &inv, PatternKind::All);
        // Wrong arity: a Lang error, not a violation; nothing committed.
        let bad = Assignment::new(vec![]);
        let err = m.try_apply(ts.get("Mk").unwrap(), &bad).unwrap_err();
        assert!(matches!(err, EnforceError::Lang(_)));
        assert!(!format!("{err}").is_empty());
        assert_eq!(m.steps(), 0);
    }
}

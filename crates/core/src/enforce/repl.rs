//! WAL-shipping replication: a primary tees every committed record to
//! N standbys; a standby folds them exactly as crash recovery does.
//!
//! # Wire contract (normative, test-locked in `docs/PROTOCOL.md`)
//!
//! A replica connects to the primary's replication port and sends the
//! 6-byte hello [`HELLO`] (`MGRPL1`). The primary answers with a
//! bootstrap preamble —
//!
//! ```text
//! "MGRPS1" · start_horizon u64-LE · snap_len u64-LE · snapshot bytes
//! ```
//!
//! — where the snapshot is [`Snapshot::encode`] of the primary's state
//! at `start_horizon` (the cumulative count of replication-stream bytes
//! shipped before this connection), followed by a continuous stream of
//! framed WAL records in **exactly the log's framing**
//! (`[len u32-LE][crc u32-LE][payload]`, see `enforce::wal`). The
//! replica writes back cumulative byte horizons (u64-LE) on the same
//! socket: an ack of `h` promises every stream byte before `h` is
//! folded into the replica's monitor **and durable in the replica's own
//! write-ahead log**. There is no per-record handshake — the framing's
//! checksums make any cut a clean whole-record prefix, and the shard
//! clocks carried by every record make re-delivery idempotent
//! ([`ShardedMonitor::replay_record`]), so resync after a tear is
//! always: reconnect, take a fresh snapshot, continue.
//!
//! # Acknowledgement dial
//!
//! [`AckPolicy::LocalFsync`] releases a batch's tickets as soon as the
//! local `fdatasync` returns — replication is asynchronous, a failed
//! primary may have acked ops the survivor never saw.
//! [`AckPolicy::ReplicaK`] withholds the tickets until `k` replicas
//! acked the batch's horizon: an acked op is then durable on at least
//! `k + 1` machines. An exhausted ack wait is an **unknown outcome**:
//! the records are on the primary's disk and are never rolled back; the
//! tickets are refused with the replication reason and the primary
//! degrades until the operator rearms.

use super::ingress::IngressClient;
use super::metrics::AdmissionMetrics;
use super::wal::{self, Snapshot, Wal};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Replica → primary greeting, sent before anything else.
pub const HELLO: &[u8; 6] = b"MGRPL1";
/// Primary → replica bootstrap preamble magic.
pub const PREAMBLE: &[u8; 6] = b"MGRPS1";

/// Per-peer outbox depth (batches, not bytes). A replica that falls
/// this far behind is cut off and re-bootstraps from a fresh snapshot —
/// bounded memory on the primary beats an unbounded shipping queue.
const OUTBOX_DEPTH: usize = 1024;

/// Upper bound accepted for a bootstrap snapshot's length claim.
const MAX_SNAPSHOT: u64 = 1 << 32;

/// Poison-tolerant lock (a peer thread's panic must not wedge the
/// committer).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// When the committer releases a batch's tickets (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Ack once the local `fdatasync` returned; ship asynchronously.
    LocalFsync,
    /// Ack only once `k` replicas confirmed the batch durable.
    ReplicaK(usize),
}

impl AckPolicy {
    /// Parse the CLI spelling: `local-fsync` or `replica-K` (K ≥ 1).
    pub fn parse(s: &str) -> Result<AckPolicy, String> {
        if s == "local-fsync" {
            return Ok(AckPolicy::LocalFsync);
        }
        if let Some(k) = s.strip_prefix("replica-") {
            if let Ok(k @ 1..) = k.parse::<usize>() {
                return Ok(AckPolicy::ReplicaK(k));
            }
        }
        Err(format!("bad ack policy '{s}' (expected local-fsync or replica-K with K >= 1)"))
    }
}

impl std::fmt::Display for AckPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AckPolicy::LocalFsync => write!(f, "local-fsync"),
            AckPolicy::ReplicaK(k) => write!(f, "replica-{k}"),
        }
    }
}

/// An injected fault on the shipping socket (the replication analogue
/// of `IoFaults` on the log): consumed one per send, in order.
#[derive(Clone, Copy, Debug)]
pub enum ShipFault {
    /// Sleep before writing the batch (a stalled peer link).
    Stall(Duration),
    /// Drop the connection instead of writing.
    Disconnect,
    /// Write only half the batch, then drop the connection — a torn
    /// stream the replica must truncate and resync from.
    ShortWrite,
}

/// One attached replica, as the primary sees it.
struct Peer {
    /// Batches queued for this peer's writer thread.
    tx: mpsc::SyncSender<Vec<u8>>,
    /// Highest stream horizon this peer acknowledged.
    acked: Arc<AtomicU64>,
    /// Cleared by the writer/ack threads on any socket failure.
    alive: Arc<AtomicBool>,
    /// Kept to shut the socket down on close / overflow.
    sock: TcpStream,
}

struct ReplState {
    /// Cumulative replication-stream bytes shipped (== the byte offset
    /// the next batch starts at). Every peer's snapshot is taken at the
    /// horizon its connection registered under.
    horizon: u64,
    peers: Vec<Peer>,
    closed: bool,
}

/// The primary's replication tee: owns the replication listener, the
/// attached peers, and the ack bookkeeping the committer waits on.
pub struct Replicator {
    listener: TcpListener,
    local: SocketAddr,
    policy: AckPolicy,
    ack_timeout: Duration,
    state: Mutex<ReplState>,
    /// Signalled on every peer ack (and on peer death / close).
    acks: Condvar,
    faults: Mutex<VecDeque<ShipFault>>,
    metrics: Option<Arc<AdmissionMetrics>>,
}

impl Replicator {
    /// Bind the replication listener (non-blocking: [`acceptor`] polls
    /// it). Defaults: [`AckPolicy::LocalFsync`], 5 s ack timeout.
    pub fn bind(addr: &str) -> std::io::Result<Replicator> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(Replicator {
            listener,
            local,
            policy: AckPolicy::LocalFsync,
            ack_timeout: Duration::from_secs(5),
            state: Mutex::new(ReplState { horizon: 0, peers: Vec::new(), closed: false }),
            acks: Condvar::new(),
            faults: Mutex::new(VecDeque::new()),
            metrics: None,
        })
    }

    /// Set the acknowledgement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: AckPolicy) -> Replicator {
        self.policy = policy;
        self
    }

    /// Set how long [`Replicator::ship_and_wait`] waits for the k-th
    /// replica ack before declaring the batch's outcome unknown.
    #[must_use]
    pub fn with_ack_timeout(mut self, timeout: Duration) -> Replicator {
        self.ack_timeout = timeout;
        self
    }

    /// Stamp shipping counters and ack-wait latencies onto `metrics`.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<AdmissionMetrics>) -> Replicator {
        self.metrics = Some(metrics);
        self
    }

    /// The bound replication address (for the serve banner and tests).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The configured acknowledgement policy.
    #[must_use]
    pub fn policy(&self) -> AckPolicy {
        self.policy
    }

    /// Cumulative replication-stream bytes shipped so far.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        lock(&self.state).horizon
    }

    /// Currently attached (live) peers.
    #[must_use]
    pub fn live_replicas(&self) -> usize {
        let mut st = lock(&self.state);
        st.peers.retain(|p| p.alive.load(Ordering::SeqCst));
        st.peers.len()
    }

    /// Queue a fault for the next send(s) — the replication analogue of
    /// `--inject` on the log path.
    pub fn inject(&self, fault: ShipFault) {
        lock(&self.faults).push_back(fault);
    }

    /// Tee one synced batch's record bytes to every peer and, under
    /// [`AckPolicy::ReplicaK`], wait for `k` acks of the new horizon.
    /// Called by the committer after the local sync, before the batch's
    /// tickets are released. `Err` is the refusal reason: the bytes are
    /// locally durable (never rolled back) but their replica outcome is
    /// unknown.
    pub fn ship_and_wait(&self, bytes: &[u8]) -> Result<(), String> {
        let t0 = Instant::now();
        let mut st = lock(&self.state);
        st.horizon += bytes.len() as u64;
        let target = st.horizon;
        st.peers.retain(|p| p.alive.load(Ordering::SeqCst));
        for p in &st.peers {
            if p.tx.try_send(bytes.to_vec()).is_err() {
                // Outbox full (or writer gone): cut the laggard off; it
                // re-bootstraps from a fresh snapshot on reconnect.
                p.alive.store(false, Ordering::SeqCst);
                let _ = p.sock.shutdown(Shutdown::Both);
            }
        }
        st.peers.retain(|p| p.alive.load(Ordering::SeqCst));
        if let Some(m) = &self.metrics {
            m.repl_shipped_bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
            m.repl_shipped_batches.fetch_add(1, Ordering::Relaxed);
            m.repl_live_replicas.store(st.peers.len() as u64, Ordering::Relaxed);
        }
        let out = match self.policy {
            AckPolicy::LocalFsync => Ok(()),
            AckPolicy::ReplicaK(k) => {
                let deadline = Instant::now() + self.ack_timeout;
                loop {
                    st.peers.retain(|p| p.alive.load(Ordering::SeqCst));
                    let acked = st
                        .peers
                        .iter()
                        .filter(|p| p.acked.load(Ordering::SeqCst) >= target)
                        .count();
                    if acked >= k {
                        break Ok(());
                    }
                    if st.closed {
                        break Err(format!(
                            "replication closed at {acked}/{k} acks for horizon {target}"
                        ));
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break Err(format!(
                            "replication ack timeout: {acked}/{k} replicas reached horizon \
                             {target} within {:?} — outcome unknown on the standbys",
                            self.ack_timeout
                        ));
                    }
                    st = self
                        .acks
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0;
                }
            }
        };
        if let Some(m) = &self.metrics {
            m.repl_ship_wait_us.record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        out
    }

    /// Attach a greeted replica connection: queue its bootstrap
    /// preamble (snapshot at the **current** horizon — call this with
    /// the committer quiescent, i.e. from an admin barrier op) and
    /// spawn its writer and ack-reader threads. `snapshot` is the
    /// [`Snapshot::encode`] bytes of the primary's state at this
    /// horizon.
    pub fn register(self: &Arc<Replicator>, stream: TcpStream, snapshot: Vec<u8>) {
        let _ = stream.set_nodelay(true);
        let (Ok(wsock), Ok(rsock)) = (stream.try_clone(), stream.try_clone()) else {
            return;
        };
        let mut st = lock(&self.state);
        if st.closed {
            return;
        }
        let start = st.horizon;
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(OUTBOX_DEPTH);
        let mut preamble = Vec::with_capacity(PREAMBLE.len() + 16 + snapshot.len());
        preamble.extend_from_slice(PREAMBLE);
        preamble.extend_from_slice(&start.to_le_bytes());
        preamble.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
        preamble.extend_from_slice(&snapshot);
        tx.try_send(preamble).expect("fresh outbox holds the preamble");
        let acked = Arc::new(AtomicU64::new(0));
        let alive = Arc::new(AtomicBool::new(true));
        {
            // Writer: drain the outbox onto the socket, one injected
            // fault consumed per send.
            let (me, alive, mut wsock) = (Arc::clone(self), alive.clone(), wsock);
            std::thread::spawn(move || {
                while let Ok(buf) = rx.recv() {
                    match lock(&me.faults).pop_front() {
                        Some(ShipFault::Stall(d)) => std::thread::sleep(d),
                        Some(ShipFault::Disconnect) => break,
                        Some(ShipFault::ShortWrite) => {
                            let _ = wsock.write_all(&buf[..buf.len() / 2]);
                            break;
                        }
                        None => {}
                    }
                    if wsock.write_all(&buf).is_err() {
                        break;
                    }
                }
                alive.store(false, Ordering::SeqCst);
                let _ = wsock.shutdown(Shutdown::Both);
                let _st = lock(&me.state);
                me.acks.notify_all();
            });
        }
        {
            // Ack reader: each u64-LE is a cumulative acked horizon.
            let (me, alive, acked, mut rsock) =
                (Arc::clone(self), alive.clone(), acked.clone(), rsock);
            std::thread::spawn(move || {
                let mut h = [0u8; 8];
                while rsock.read_exact(&mut h).is_ok() {
                    acked.store(u64::from_le_bytes(h), Ordering::SeqCst);
                    let _st = lock(&me.state);
                    me.acks.notify_all();
                }
                alive.store(false, Ordering::SeqCst);
                let _ = rsock.shutdown(Shutdown::Both);
                let _st = lock(&me.state);
                me.acks.notify_all();
            });
        }
        st.peers.push(Peer { tx, acked, alive, sock: stream });
        if let Some(m) = &self.metrics {
            m.repl_live_replicas.store(st.peers.len() as u64, Ordering::Relaxed);
        }
    }

    /// Shut down every peer connection and refuse new registrations;
    /// wakes any committer parked on an ack wait.
    pub fn close(&self) {
        let mut st = lock(&self.state);
        st.closed = true;
        for p in &st.peers {
            p.alive.store(false, Ordering::SeqCst);
            let _ = p.sock.shutdown(Shutdown::Both);
        }
        st.peers.clear();
        drop(st);
        self.acks.notify_all();
    }
}

/// The primary's replication accept loop: poll the listener, greet each
/// connection ([`HELLO`]), and register it through an admin barrier op —
/// the barrier guarantees the snapshot and the registration horizon
/// agree (the committer is flushed and quiescent while the op runs).
/// Runs until `stop` is set (after the serve driver returns).
pub fn acceptor<'t, 's>(
    repl: &Arc<Replicator>,
    client: &IngressClient<'t, 's, '_>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match repl.listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let mut hello = [0u8; 6];
                if (&stream).read_exact(&mut hello).is_err() || hello != *HELLO {
                    continue; // not a replica: drop silently
                }
                let _ = stream.set_read_timeout(None);
                let me = Arc::clone(repl);
                client.post_admin(Box::new(move |gate| {
                    // A degraded primary refuses bootstraps (the replica
                    // retries); a healthy one snapshots at the barrier.
                    if let Ok(m) = gate {
                        let snap = m.snapshot().encode();
                        me.register(stream, snap);
                    }
                    Box::new(|_durable| {})
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// A replica's runtime switchboard, shared between the puller thread,
/// the wire front end (read-only refusals) and the `promote` verb.
pub struct ReplicaCtl {
    upstream: String,
    /// Refuse write verbs while set (split-brain guard). Cleared only
    /// by a successful `promote`.
    read_only: AtomicBool,
    /// Tells the puller to exit (promote, or server shutdown).
    stop: AtomicBool,
    /// Set **inside** the promote admin op: apply batches queued before
    /// the promote still fold (the tail replays), stragglers after it
    /// are skipped and never acked.
    halted: AtomicBool,
    applied: AtomicU64,
    horizon: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl ReplicaCtl {
    /// A fresh control block: read-only, not stopped, tracking nothing.
    #[must_use]
    pub fn new(upstream: &str) -> ReplicaCtl {
        ReplicaCtl {
            upstream: upstream.to_owned(),
            read_only: AtomicBool::new(true),
            stop: AtomicBool::new(false),
            halted: AtomicBool::new(false),
            applied: AtomicU64::new(0),
            horizon: AtomicU64::new(0),
            last_error: Mutex::new(None),
        }
    }

    /// The primary address this replica follows.
    #[must_use]
    pub fn upstream(&self) -> &str {
        &self.upstream
    }

    /// Whether write verbs must be refused (true until promoted).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Ask the puller to exit at its next check.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether the puller was asked to exit.
    #[must_use]
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Mark the stream halted (call inside the promote admin op).
    pub fn halt(&self) {
        self.halted.store(true, Ordering::SeqCst);
    }

    /// Whether the stream was halted by a promote.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted.load(Ordering::SeqCst)
    }

    /// Flip the replica writable — the last step of a promote.
    pub fn make_writable(&self) {
        self.read_only.store(false, Ordering::SeqCst);
    }

    /// Replication-stream records folded so far.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Highest acked stream horizon.
    #[must_use]
    pub fn stream_horizon(&self) -> u64 {
        self.horizon.load(Ordering::SeqCst)
    }

    /// The last pull failure, if any (surfaced in `stats`).
    #[must_use]
    pub fn last_error(&self) -> Option<String> {
        lock(&self.last_error).clone()
    }

    fn note(&self, e: &str) {
        *lock(&self.last_error) = Some(e.to_owned());
    }
}

/// Append a cumulative ack horizon on the replication socket.
fn send_ack(stream: &mut TcpStream, horizon: u64) -> Result<(), String> {
    stream.write_all(&horizon.to_le_bytes()).map_err(|e| format!("ack write failed: {e}"))
}

/// Whether `buf` starts with a *complete* frame. [`wal::decode_stream`]
/// consumed every complete valid frame, so a complete frame left behind
/// failed its checksum or payload decode — mid-stream corruption, not a
/// tear; the connection must be dropped and resynced.
fn complete_but_invalid(buf: &[u8]) -> bool {
    let Some((head, tail)) = buf.split_at_checked(8) else { return false };
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    len <= wal::MAX_RECORD_LEN && tail.len() >= len
}

/// The replica's pull loop: connect to the primary, bootstrap from its
/// snapshot, then fold the shipped records through the admission
/// worker — each batch via an admin barrier op calling
/// [`ShardedMonitor::replay_record`](super::ShardedMonitor::replay_record),
/// acked only once the replica's own committer made it durable. Any
/// tear, gap or error drops the connection and resyncs from a fresh
/// snapshot (idempotent: the shard clocks skip everything already
/// folded). Runs until [`ReplicaCtl::request_stop`].
pub fn puller<'t, 's>(
    addr: &str,
    ctl: &Arc<ReplicaCtl>,
    wal: &Arc<Mutex<Wal>>,
    client: &IngressClient<'t, 's, '_>,
    metrics: Option<&Arc<AdmissionMetrics>>,
) {
    let mut backoff = Duration::from_millis(50);
    while !ctl.stopped() {
        match pull_once(addr, ctl, wal, client, metrics) {
            Ok(()) => return, // clean stop (promote / shutdown)
            Err(e) => ctl.note(&e),
        }
        if ctl.stopped() {
            return;
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_secs(1));
    }
}

/// One replication session: bootstrap + stream until tear or stop.
fn pull_once<'t, 's>(
    addr: &str,
    ctl: &Arc<ReplicaCtl>,
    wal: &Arc<Mutex<Wal>>,
    client: &IngressClient<'t, 's, '_>,
    metrics: Option<&Arc<AdmissionMetrics>>,
) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream.write_all(HELLO).map_err(|e| format!("hello: {e}"))?;
    // Bootstrap preamble: magic, start horizon, snapshot.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut magic = [0u8; 6];
    stream.read_exact(&mut magic).map_err(|e| format!("preamble: {e}"))?;
    if magic != *PREAMBLE {
        return Err("bad replication preamble magic".to_owned());
    }
    let mut word = [0u8; 8];
    stream.read_exact(&mut word).map_err(|e| format!("preamble: {e}"))?;
    let start = u64::from_le_bytes(word);
    stream.read_exact(&mut word).map_err(|e| format!("preamble: {e}"))?;
    let snap_len = u64::from_le_bytes(word);
    if snap_len > MAX_SNAPSHOT {
        return Err(format!("snapshot length claim {snap_len} over cap"));
    }
    #[allow(clippy::cast_possible_truncation)]
    let mut snap_bytes = vec![0u8; snap_len as usize];
    stream.read_exact(&mut snap_bytes).map_err(|e| format!("snapshot body: {e}"))?;
    let snap = Snapshot::decode(&snap_bytes).map_err(|e| format!("snapshot decode: {e}"))?;

    // Bootstrap barrier: rebuild the monitor at the stream start and
    // write the snapshot through as this replica's own base checkpoint,
    // so the replica's durable image covers exactly what its acks claim.
    let (btx, brx) = mpsc::channel::<Result<(), String>>();
    {
        let (ctl, wal) = (Arc::clone(ctl), Arc::clone(wal));
        client.post_admin(Box::new(move |gate| {
            let res = (move || {
                let m = gate?;
                if ctl.halted() {
                    return Err("replica promoted".to_owned());
                }
                m.resync(Some(snap), std::iter::empty()).map_err(|e| e.to_string())?;
                let full = m.checkpoint_full();
                lock(&wal).write_snapshot(&full).map_err(|e| e.to_string())
            })();
            Box::new(move |_durable| {
                let _ = btx.send(res);
            })
        }));
    }
    brx.recv().map_err(|_| "ingress closed during bootstrap".to_owned())??;
    let mut horizon = start;
    send_ack(&mut stream, horizon)?;
    ctl.horizon.store(horizon, Ordering::SeqCst);

    // Stream: accumulate, fold every complete record, ack the horizon.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 64 * 1024];
    loop {
        if ctl.stopped() {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("upstream closed the replication stream".to_owned()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) => return Err(format!("stream read: {e}")),
        }
        let (records, consumed) =
            wal::decode_stream(&buf).map_err(|e| format!("stream decode: {e}"))?;
        buf.drain(..consumed);
        if complete_but_invalid(&buf) {
            return Err("replication stream corrupt: complete record failed validation".to_owned());
        }
        if records.is_empty() {
            continue; // torn tail carried forward into the next read
        }
        let n_records = records.len() as u64;
        let (dtx, drx) = mpsc::channel::<Result<bool, String>>();
        {
            let ctl = Arc::clone(ctl);
            client.post_admin(Box::new(move |gate| {
                let res = (move || {
                    let m = gate?;
                    if ctl.halted() {
                        return Ok(false); // promoted: never acked
                    }
                    for record in records {
                        m.replay_record(record).map_err(|e| e.to_string())?;
                    }
                    Ok(true)
                })();
                Box::new(move |durable: bool| {
                    let _ = dtx.send(res.map(|applied| applied && durable));
                })
            }));
        }
        match drx.recv().map_err(|_| "ingress closed mid-stream".to_owned())? {
            Ok(true) => {
                horizon += consumed as u64;
                send_ack(&mut stream, horizon)?;
                ctl.horizon.store(horizon, Ordering::SeqCst);
                ctl.applied.fetch_add(n_records, Ordering::SeqCst);
                if let Some(m) = metrics {
                    m.repl_applied_records.fetch_add(n_records, Ordering::Relaxed);
                }
            }
            Ok(false) if ctl.halted() => return Ok(()),
            Ok(false) => return Err("batch not durable on the replica".to_owned()),
            Err(e) => return Err(format!("stream fold: {e}")),
        }
    }
}

//! Per-connection state machine: nonblocking read/write buffers,
//! incremental request extraction (both dialects), and the seq-numbered
//! reply slot queue that keeps replies in request order while admission
//! outcomes arrive asynchronously.
//!
//! A connection owns no thread. The event loop (`super::event`) polls
//! its socket, feeds bytes in with [`Conn::fill_read_buffer`], pulls
//! requests out with [`Conn::extract`], parks at most one parsed-but-
//! unposted invoke in [`Conn::pending`] when its admission lane is full
//! (backpressure as poll-interest suppression: a connection with a
//! pending post stops reading), and flushes the **ready prefix** of the
//! slot queue to the write buffer — so replies never overtake each
//! other within a connection, exactly the old reader/writer pair's
//! FIFO-channel guarantee, without the two threads.

use super::frame;
use super::MAX_LINE;
use crate::enforce::ingress::Completion;
use migratory_lang::{Assignment, Transaction};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Write-buffer high-water mark: a connection whose unsent replies
/// exceed this stops having requests extracted (and its socket read) —
/// a peer that pipelines requests but never reads its replies stalls
/// itself, not the server.
pub(super) const WRITE_HIGH: usize = 256 * 1024;

/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// Reads absorbed per readiness event before yielding to other
/// connections (level-triggered poll re-reports leftover data).
const READ_BUDGET: usize = 4;

/// One reply slot, FIFO per connection.
pub(super) enum Slot {
    /// An `invoke` whose admission outcome has not arrived yet; `binary`
    /// records the request's dialect so the reply matches it.
    Waiting {
        /// Reply in the binary dialect (the request was a frame).
        binary: bool,
    },
    /// Reply bytes ready to flush (text line or encoded frame).
    Ready(Vec<u8>),
    /// A `stats` request: formatted at *flush* time, after every earlier
    /// slot of this connection resolved — so a synchronously driven
    /// connection reads its own counters deterministically.
    Stats {
        /// `stats prom` — reply with the length-prefixed Prometheus
        /// exposition instead of the flat one-line form.
        prom: bool,
    },
}

/// A parsed invoke the admission lane refused (lane full): retried by
/// the event loop after an ingress space wakeup.
pub(super) struct Pending<'t> {
    /// The transaction to post.
    pub t: &'t Transaction,
    /// Its argument assignment.
    pub args: Assignment,
    /// The completion callback handed back by the refused post.
    pub done: Completion<'t>,
}

/// One request extracted from the read buffer.
pub(super) enum Request {
    /// A complete text line (raw, newline stripped, not yet trimmed).
    Line(String),
    /// A complete binary frame: kind and payload.
    Frame(u8, Vec<u8>),
}

/// Result of one [`Conn::extract`] call.
pub(super) enum Extracted {
    /// No complete request buffered; read more.
    None,
    /// One request, and the wire bytes it consumed (for byte quotas).
    Some(Request, u64),
    /// A text line crossed [`MAX_LINE`] without a newline — refused
    /// during accumulation, not after a full read.
    LineTooLong,
    /// A frame header declared a payload beyond the cap — refused as
    /// soon as the header parsed, before any payload accumulated.
    FrameOversized(u32),
    /// A complete text line was not valid UTF-8: silent teardown (the
    /// old reader's behaviour for undecodable bytes).
    BadUtf8,
}

/// Result of one socket read burst.
pub(super) enum ReadOutcome {
    /// Bytes may have arrived; the socket is still open.
    Progress,
    /// Orderly EOF from the peer.
    Eof,
    /// The socket is dead (reset, I/O error).
    Dead,
}

/// Per-connection state owned by exactly one event thread.
pub(super) struct Conn<'t> {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Server-wide connection id (routes completions back here).
    pub id: u64,
    /// Auth handshake passed (or no token configured).
    pub authed: bool,
    /// Still extracting requests; cleared by `quit`, teardown and
    /// drain.
    pub read_open: bool,
    /// The peer half-closed (orderly FIN): no further bytes will ever
    /// arrive, but requests already buffered still extract — a client
    /// that pipelines and then `shutdown(SHUT_WR)`s is owed every
    /// reply. Set by [`Conn::fill_read_buffer`]; the pump tears the
    /// connection down once the read buffer can yield nothing more.
    pub eof: bool,
    /// Dialect of the most recent request (text until the first one):
    /// server-initiated errors with no request to answer — the
    /// idle-timeout reap — are encoded in it, so a binary client
    /// blocked in `read_frame` gets a decodable frame, not bytes that
    /// fail its magic check.
    pub last_binary: bool,
    /// Close the socket once every slot resolved and flushed.
    pub close_after_flush: bool,
    /// The socket failed: drop the connection without further I/O.
    pub dead: bool,
    /// Last moment traffic moved in either direction (idle-timeout
    /// clock): bytes received, or replies accepted by the peer.
    pub last_rx: Instant,
    /// Set while unsent reply bytes exist: the moment the current write
    /// stall began (write-stall reaping clock).
    pub write_stalled_since: Option<Instant>,
    /// Force-close deadline once draining.
    pub drain_deadline: Option<Instant>,
    /// Cumulative request wire bytes (quota clock).
    pub bytes: u64,
    /// Cumulative parsed requests (quota clock).
    pub ops: u64,
    /// At most one lane-refused invoke awaiting ingress space.
    pub pending: Option<Pending<'t>>,
    /// Something happened to this connection since its last pump (bytes
    /// read, a completion filled a slot, a space signal arrived while an
    /// op was parked, the socket became writable): the event loop pumps
    /// only dirty connections, so a quiescent one costs nothing per
    /// iteration.
    pub dirty: bool,
    /// The readiness interest this socket is currently registered for
    /// with the event thread's epoll instance. The loop reconciles it
    /// against the connection's wants after every pump, so `epoll_ctl`
    /// is called only when interest actually changes — a connection that
    /// stays in steady-state read mode costs no syscalls per iteration.
    pub interest: u32,
    /// Reply slots in request order; front is the next reply to write.
    pub slots: VecDeque<Slot>,
    /// Sequence number of the front slot (completions address slots by
    /// the sequence assigned at request parse).
    pub seq_base: u64,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
}

impl<'t> Conn<'t> {
    pub(super) fn new(stream: TcpStream, id: u64, authed: bool) -> Conn<'t> {
        let now = Instant::now();
        Conn {
            stream,
            id,
            authed,
            read_open: true,
            eof: false,
            last_binary: false,
            close_after_flush: false,
            dead: false,
            last_rx: now,
            write_stalled_since: None,
            drain_deadline: None,
            bytes: 0,
            ops: 0,
            pending: None,
            dirty: true,
            interest: 0,
            slots: VecDeque::new(),
            seq_base: 0,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
        }
    }

    /// Absorb readable socket bytes into the read buffer (bounded burst;
    /// level-triggered poll re-reports any leftover).
    ///
    /// EOF sets [`Conn::eof`] rather than discarding anything: bytes
    /// buffered by earlier reads of the same burst (a pipeline that is
    /// an exact multiple of the chunk size, followed by FIN) are still
    /// there for extraction.
    pub(super) fn fill_read_buffer(&mut self) -> ReadOutcome {
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..READ_BUDGET {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return ReadOutcome::Eof;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_rx = Instant::now();
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Dead,
            }
        }
        ReadOutcome::Progress
    }

    /// Pull the next complete request off the read buffer. The dialect
    /// is decided per request by its first byte: [`frame::MAGIC`] (a
    /// UTF-8 continuation byte no text line can start with) selects the
    /// binary dialect, anything else the text dialect.
    pub(super) fn extract(&mut self) -> Extracted {
        let buf = &self.rbuf[self.rpos..];
        let Some(&first) = buf.first() else { return Extracted::None };
        if first == frame::MAGIC {
            return match frame::scan(buf) {
                frame::Scan::Incomplete => Extracted::None,
                frame::Scan::Oversized(len) => Extracted::FrameOversized(len),
                frame::Scan::Frame { kind, payload_len } => {
                    let start = self.rpos + frame::HEADER_LEN;
                    let payload = self.rbuf[start..start + payload_len].to_vec();
                    let wire = (frame::HEADER_LEN + payload_len) as u64;
                    self.rpos += wire as usize;
                    Extracted::Some(Request::Frame(kind, payload), wire)
                }
            };
        }
        // Text: one newline-terminated line, capped *during*
        // accumulation — a cap's worth of bytes without a newline is
        // refused now, not after the line completes.
        let horizon = buf.len().min(MAX_LINE as usize);
        match buf[..horizon].iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let raw = &buf[..nl];
                let wire = (nl + 1) as u64;
                let Ok(text) = std::str::from_utf8(raw) else {
                    return Extracted::BadUtf8;
                };
                let line = text.strip_suffix('\r').unwrap_or(text).to_owned();
                self.rpos += wire as usize;
                Extracted::Some(Request::Line(line), wire)
            }
            None if buf.len() >= MAX_LINE as usize => Extracted::LineTooLong,
            None => Extracted::None,
        }
    }

    /// Reclaim consumed read-buffer bytes (called once per event-loop
    /// iteration, not per request, to keep extraction O(request)).
    pub(super) fn compact(&mut self) {
        if self.rpos == 0 {
            return;
        }
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
        } else {
            self.rbuf.drain(..self.rpos);
        }
        self.rpos = 0;
    }

    /// Append a slot; returns the sequence number completions use to
    /// address it.
    pub(super) fn push_slot(&mut self, slot: Slot) -> u64 {
        let seq = self.seq_base + self.slots.len() as u64;
        self.slots.push_back(slot);
        seq
    }

    /// Resolve a waiting slot with its reply bytes. Whether the slot's
    /// request was binary is returned so the caller can encode; the
    /// caller then calls [`Conn::fill_slot`].
    pub(super) fn waiting_dialect(&self, seq: u64) -> Option<bool> {
        let idx = usize::try_from(seq.checked_sub(self.seq_base)?).ok()?;
        match self.slots.get(idx) {
            Some(Slot::Waiting { binary }) => Some(*binary),
            _ => None,
        }
    }

    /// Replace the waiting slot `seq` with ready reply bytes.
    pub(super) fn fill_slot(&mut self, seq: u64, bytes: Vec<u8>) {
        let idx = (seq - self.seq_base) as usize;
        debug_assert!(matches!(self.slots[idx], Slot::Waiting { .. }));
        self.slots[idx] = Slot::Ready(bytes);
    }

    /// Move the ready prefix of the slot queue into the write buffer;
    /// `stats_reply` formats a `stats` reply (flat or Prometheus, per
    /// the slot's `prom` flag) at its flush moment. The returned bytes
    /// are written verbatim — the formatter owns the framing.
    pub(super) fn flush_slots(&mut self, stats_reply: impl Fn(bool) -> Vec<u8>) {
        while let Some(front) = self.slots.front() {
            match front {
                Slot::Waiting { .. } => break,
                Slot::Ready(_) => {
                    let Some(Slot::Ready(bytes)) = self.slots.pop_front() else { unreachable!() };
                    self.wbuf.extend_from_slice(&bytes);
                }
                Slot::Stats { prom } => {
                    let prom = *prom;
                    self.slots.pop_front();
                    self.wbuf.extend_from_slice(&stats_reply(prom));
                }
            }
            self.seq_base += 1;
        }
    }

    /// Unsent reply bytes.
    pub(super) fn unsent(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Nonblocking write of buffered replies; tracks write-stall time
    /// and marks the connection dead on socket error.
    pub(super) fn try_write(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.write_stalled_since = None;
                    self.last_rx = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            self.write_stalled_since = None;
        } else if self.write_stalled_since.is_none() {
            self.write_stalled_since = Some(Instant::now());
        }
    }

    /// Whether the event loop should poll this socket for readability:
    /// suppressed while a pending post awaits lane space, while the
    /// reply pipeline is at depth, and while the write buffer is above
    /// its high-water mark — composed backpressure as poll-interest
    /// suppression — and permanently once the peer half-closed (a
    /// FIN'd socket stays level-triggered readable forever).
    pub(super) fn wants_read(&self, pipeline: usize) -> bool {
        !self.eof && self.may_extract(pipeline)
    }

    /// Whether buffered replies await a writable socket.
    pub(super) fn wants_write(&self) -> bool {
        self.unsent() > 0
    }

    /// Whether request extraction may proceed: the same backpressure
    /// gates as [`Conn::wants_read`], except that EOF does **not**
    /// close the gate — requests fully buffered before the peer's FIN
    /// still extract and get their replies.
    pub(super) fn may_extract(&self, pipeline: usize) -> bool {
        self.read_open
            && self.pending.is_none()
            && self.slots.len() < pipeline
            && self.unsent() < WRITE_HIGH
    }

    /// Answer-and-close: append a final reply (when given), stop
    /// extracting, and close once everything in flight has flushed.
    pub(super) fn teardown(&mut self, reply: Option<Vec<u8>>) {
        if let Some(bytes) = reply {
            self.push_slot(Slot::Ready(bytes));
        }
        self.read_open = false;
        self.close_after_flush = true;
    }

    /// Enter graceful drain: no more requests, answer what is in
    /// flight, force-close at `deadline` if the peer will not read.
    pub(super) fn begin_drain(&mut self, deadline: Instant) {
        self.read_open = false;
        self.close_after_flush = true;
        self.drain_deadline = Some(deadline);
    }

    /// Whether everything in flight has been answered and flushed, so a
    /// close-marked connection can actually close.
    pub(super) fn finished(&self) -> bool {
        self.close_after_flush
            && self.pending.is_none()
            && self.slots.is_empty()
            && self.unsent() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn test_conn() -> (Conn<'static>, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        (Conn::new(stream, 0, true), peer)
    }

    /// Feed bytes directly into the read buffer (unit tests bypass the
    /// socket).
    fn feed(conn: &mut Conn<'_>, bytes: &[u8]) {
        conn.rbuf.extend_from_slice(bytes);
    }

    #[test]
    fn lines_and_frames_extract_across_arbitrary_split_boundaries() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"invoke Mk(1)\r\n");
        frame::encode_invoke_frame(&mut wire, "Mk", &[migratory_model::Value::int(2)]);
        wire.extend_from_slice(b"stats\n");
        for cut in 0..=wire.len() {
            let (mut conn, _peer) = test_conn();
            feed(&mut conn, &wire[..cut]);
            let mut got = Vec::new();
            loop {
                match conn.extract() {
                    Extracted::Some(Request::Line(l), _) => got.push(format!("line:{l}")),
                    Extracted::Some(Request::Frame(k, p), _) => {
                        got.push(format!("frame:{k}:{}", p.len()));
                    }
                    Extracted::None => break,
                    _ => panic!("clean wire bytes never error"),
                }
            }
            feed(&mut conn, &wire[cut..]);
            loop {
                match conn.extract() {
                    Extracted::Some(Request::Line(l), _) => got.push(format!("line:{l}")),
                    Extracted::Some(Request::Frame(k, p), _) => {
                        got.push(format!("frame:{k}:{}", p.len()));
                    }
                    Extracted::None => break,
                    _ => panic!("clean wire bytes never error"),
                }
            }
            conn.compact();
            assert_eq!(got.len(), 3, "split at {cut}: {got:?}");
            assert_eq!(got[0], "line:invoke Mk(1)");
            assert!(got[1].starts_with(&format!("frame:{}:", frame::REQ_INVOKE)));
            assert_eq!(got[2], "line:stats");
        }
    }

    #[test]
    fn overlong_line_is_refused_during_accumulation() {
        let (mut conn, _peer) = test_conn();
        // Exactly the cap, no newline yet: refused immediately — the
        // peer could stream forever otherwise.
        feed(&mut conn, &vec![b'x'; MAX_LINE as usize]);
        assert!(matches!(conn.extract(), Extracted::LineTooLong));
        // One byte under the cap is still awaiting its newline…
        let (mut conn, _peer) = test_conn();
        feed(&mut conn, &vec![b'x'; MAX_LINE as usize - 1]);
        assert!(matches!(conn.extract(), Extracted::None));
        // …and the newline completes it: a line of cap-1 bytes + `\n`
        // totals MAX_LINE wire bytes, the longest accepted request.
        feed(&mut conn, b"\n");
        match conn.extract() {
            Extracted::Some(Request::Line(l), wire) => {
                assert_eq!(wire, MAX_LINE);
                assert_eq!(l.len(), MAX_LINE as usize - 1);
            }
            _ => panic!("a cap-sized line is accepted"),
        }
    }

    #[test]
    fn oversized_frame_header_refused_before_payload_arrives() {
        let (mut conn, _peer) = test_conn();
        let mut header = vec![frame::MAGIC, frame::REQ_INVOKE];
        header.extend_from_slice(&(frame::MAX_PAYLOAD + 1).to_le_bytes());
        feed(&mut conn, &header);
        // Six header bytes and not one payload byte: already refused.
        assert!(matches!(conn.extract(), Extracted::FrameOversized(_)));
    }

    #[test]
    fn non_utf8_line_reports_bad_utf8() {
        let (mut conn, _peer) = test_conn();
        feed(&mut conn, &[0xc3, 0x28, 0xff, 0xfe, b'\n']);
        assert!(matches!(conn.extract(), Extracted::BadUtf8));
    }

    #[test]
    fn eof_preserves_buffered_requests_for_extraction() {
        use std::io::Write as _;
        let (mut conn, peer) = test_conn();
        // A pipeline that is an exact multiple of READ_CHUNK — one
        // 16 KiB comment line — followed by a ping and an immediate
        // half-close: the FIN can land in the same read burst as the
        // final bytes.
        let mut wire = vec![b'#'; 16 * 1024 - 1];
        *wire.last_mut().unwrap() = b'\n';
        wire.extend_from_slice(b"ping\n");
        (&peer).write_all(&wire).unwrap();
        peer.shutdown(std::net::Shutdown::Write).unwrap();
        while !conn.eof {
            assert!(!matches!(conn.fill_read_buffer(), ReadOutcome::Dead));
        }
        // EOF closes the socket's read interest, not the extraction
        // gate: everything buffered before the FIN still comes out.
        assert!(conn.may_extract(8));
        assert!(!conn.wants_read(8));
        let mut lines = Vec::new();
        while let Extracted::Some(Request::Line(l), _) = conn.extract() {
            lines.push(l);
        }
        assert_eq!(lines.len(), 2, "both pre-FIN requests extract");
        assert_eq!(lines[1], "ping");
        assert!(matches!(conn.extract(), Extracted::None));
    }

    #[test]
    fn reply_slots_flush_in_request_order_only() {
        let (mut conn, _peer) = test_conn();
        let s0 = conn.push_slot(Slot::Waiting { binary: false });
        let s1 = conn.push_slot(Slot::Waiting { binary: true });
        conn.push_slot(Slot::Stats { prom: false });
        // Out-of-order completion: slot 1 resolves first, but nothing
        // flushes past the still-waiting slot 0.
        assert_eq!(conn.waiting_dialect(s1), Some(true));
        conn.fill_slot(s1, b"second".to_vec());
        conn.flush_slots(|_| unreachable!("stats cannot flush yet"));
        assert_eq!(conn.unsent(), 0);
        conn.fill_slot(s0, b"first|".to_vec());
        conn.flush_slots(|prom| {
            assert!(!prom);
            b"ok stats\n".to_vec()
        });
        assert_eq!(conn.unsent(), b"first|secondok stats\n".len());
        assert_eq!(conn.seq_base, 3);
        assert!(conn.slots.is_empty());
    }
}

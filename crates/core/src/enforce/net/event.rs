//! The poll-based event core: a fixed handful of I/O threads multiplex
//! every client socket.
//!
//! Each event thread owns a disjoint set of connections (assigned round
//! robin at accept) plus an **inbox** — a mutex-protected mailbox paired
//! with a self-pipe [`Waker`] that makes `poll(2)` return when something
//! lands in it. Three kinds of mail arrive:
//!
//! * **Connection handoffs** from thread 0's accept handling.
//! * **Admission completions**: the ingress worker runs each `invoke`'s
//!   [`Completion`] callback, which counts the outcome and mails it to
//!   the owning thread (`conn`, `seq`) so the reply lands in the right
//!   slot of the right connection.
//! * **Space signals**: the worker drained a block, so a connection
//!   parked on a full admission lane may retry its post.
//!
//! The loop per thread: drain the inbox, apply completions, pump the
//! **dirty** connections (retry parked posts, extract + dispatch
//! requests, flush ready replies, write), reap expired deadlines, then
//! `poll` the sockets whose interest survives the backpressure gates
//! ([`Conn::wants_read`]). Per-iteration work is proportional to what
//! actually happened: a connection nothing happened to is neither
//! pumped nor polled (one parked on admission mail leaves the poll set
//! entirely), and a burst of completions coalesces into one wakeup.
//! Thread count is O(`io_threads` + shards) — independent of the number
//! of connections, which is the point.

use super::conn::{Conn, Extracted, Pending, ReadOutcome, Request, Slot};
use super::frame;
use super::{parse_invocation, stats_reply, ServerConfig, ServerShared, MAX_LINE};
use crate::alphabet::RoleAlphabet;
use crate::enforce::ingress::{Completion, IngressClient};
use crate::enforce::{EnforceError, ResiduePolicy};
use crate::Inventory;
use migratory_lang::{Assignment, Transaction, TransactionSchema};
use polling::{Epoll, EpollEvent, Waker, EPOLLIN, EPOLLOUT};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long a connection's unsent replies may sit without the peer
/// accepting a byte before the connection is declared dead — the
/// nonblocking replacement for the old per-socket write timeout.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a draining connection gets to read its final replies before
/// it is force-closed.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// What fills a waiting reply slot when its mail arrives.
pub(super) enum Reply {
    /// An `invoke` admission outcome: rendered in the slot's dialect at
    /// delivery (the violation diagnostic needs the alphabet).
    Outcome(Result<(), EnforceError>),
    /// Pre-rendered reply bytes (admin ops — `redefine` — render on the
    /// admission worker, where the dialect is already captured).
    Bytes(Vec<u8>),
}

/// A completed admission outcome on its way back to the owning event
/// thread.
pub(super) struct Done {
    conn: u64,
    seq: u64,
    reply: Reply,
}

#[derive(Default)]
struct InboxQ {
    dones: Vec<Done>,
    conns: Vec<(u64, TcpStream)>,
    space: bool,
    /// A waker byte is already owed for this mail: further pushes before
    /// the owner's next `take` skip the pipe write, so a burst of
    /// completions costs one wakeup, not one syscall each.
    signaled: bool,
}

/// One event thread's mailbox: cross-thread deliveries plus the waker
/// that interrupts its `poll`.
pub(super) struct Inbox {
    q: Mutex<InboxQ>,
    waker: Waker,
}

/// Poison-tolerant mailbox lock: a panicking sibling must not take the
/// other event threads (and the graceful drain) down with it.
fn lock_q(inbox: &Inbox) -> std::sync::MutexGuard<'_, InboxQ> {
    inbox.q.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Inbox {
    /// Deliver mail under the lock and wake the owner unless a wake is
    /// already owed (coalesced wakeups).
    fn push(&self, deliver: impl FnOnce(&mut InboxQ)) {
        let mut q = lock_q(self);
        deliver(&mut q);
        let wake = !std::mem::replace(&mut q.signaled, true);
        drop(q);
        if wake {
            self.waker.wake();
        }
    }

    fn push_done(&self, d: Done) {
        self.push(|q| q.dones.push(d));
    }

    fn push_conn(&self, id: u64, stream: TcpStream) {
        self.push(|q| q.conns.push((id, stream)));
    }

    fn signal_space(&self) {
        self.push(|q| q.space = true);
    }

    fn take(&self) -> InboxQ {
        // Drain the pipe *before* taking the queue: a producer racing in
        // between leaves at worst a spurious wake byte behind, never a
        // push without one. `mem::take` resets `signaled`, re-arming the
        // next producer's wake.
        self.waker.drain();
        std::mem::take(&mut *lock_q(self))
    }
}

/// State shared by every event thread and (via `Arc` clones inside
/// completion callbacks) the admission worker. `'static` on purpose:
/// completions may outlive the event threads — a force-closed
/// connection's outcomes still count, they just have nowhere to go.
pub(super) struct EventShared {
    pub(super) inboxes: Vec<Inbox>,
    /// Set by the `shutdown` verb (or a fatal listener error): stop
    /// accepting, drain every connection, exit.
    pub(super) shutdown: AtomicBool,
    /// Set by thread 0 at its drain transition: no further connection
    /// handoffs will ever be mailed, so sibling threads may exit once
    /// their own connections and inbox are empty.
    accept_done: AtomicBool,
    /// Currently open connections (the accept-time capacity gate).
    live: AtomicUsize,
    pub(super) connections: AtomicUsize,
    pub(super) requests: AtomicUsize,
    pub(super) admitted: AtomicUsize,
    pub(super) rejected: AtomicUsize,
    pub(super) errors: AtomicUsize,
    next_conn_id: AtomicU64,
}

impl EventShared {
    pub(super) fn new(threads: usize) -> std::io::Result<Arc<EventShared>> {
        let mut inboxes = Vec::with_capacity(threads);
        for _ in 0..threads {
            inboxes.push(Inbox { q: Mutex::new(InboxQ::default()), waker: Waker::new()? });
        }
        Ok(Arc::new(EventShared {
            inboxes,
            shutdown: AtomicBool::new(false),
            accept_done: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            requests: AtomicUsize::new(0),
            admitted: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
        }))
    }

    fn wake_all(&self) {
        for inbox in &self.inboxes {
            inbox.waker.wake();
        }
    }
}

/// Constant-time shared-secret comparison: fold both sides through
/// fixed-width multi-lane FNV-1a digests and compare every lane
/// unconditionally. A plain `==` returns at the first mismatching
/// byte, so a network attacker can binary-search the token one prefix
/// byte at a time from reply latency; digesting first makes the work
/// depend only on the *lengths* (the attacker already knows their own,
/// and the secret's contributes a constant offset that per-guess
/// timing cannot probe incrementally).
fn token_eq(expected: &str, got: &str) -> bool {
    fn digest(s: &str) -> [u64; 4] {
        let mut lanes = [0xcbf2_9ce4_8422_2325u64; 4];
        for (i, b) in s.bytes().enumerate() {
            lanes[i & 3] ^= u64::from(b);
            lanes[i & 3] = lanes[i & 3].wrapping_mul(0x100_0000_01b3);
        }
        // Fold the length in so per-lane byte streams alone cannot
        // collide two strings of different lengths.
        for lane in &mut lanes {
            *lane ^= s.len() as u64;
            *lane = lane.wrapping_mul(0x100_0000_01b3);
        }
        lanes
    }
    let (a, b) = (digest(expected), digest(got));
    (0..4).fold(0u64, |acc, i| acc | (a[i] ^ b[i])) == 0
}

/// Count an error reply (uniformly, at slot creation) and encode it in
/// the request's dialect: `error <msg>\n` or a [`frame::REP_ERROR`]
/// frame carrying `<msg>`.
fn error_reply(ev: &EventShared, binary: bool, msg: &str) -> Vec<u8> {
    ev.errors.fetch_add(1, Ordering::SeqCst);
    if binary {
        let mut out = Vec::new();
        frame::encode(&mut out, frame::REP_ERROR, msg.as_bytes());
        out
    } else {
        format!("error {msg}\n").into_bytes()
    }
}

/// Encode an admission outcome in the request's dialect. Counting
/// already happened in the completion callback — this only formats.
fn outcome_reply(
    outcome: &Result<(), EnforceError>,
    binary: bool,
    alphabet: &RoleAlphabet,
) -> Vec<u8> {
    let mut out = Vec::new();
    match outcome {
        Ok(()) => {
            if binary {
                frame::encode(&mut out, frame::REP_OK, b"");
            } else {
                out.extend_from_slice(b"ok\n");
            }
        }
        Err(EnforceError::Violation(v)) => {
            let diag = v.display(alphabet).to_string();
            if binary {
                frame::encode(&mut out, frame::REP_VIOLATION, diag.as_bytes());
            } else {
                out.extend_from_slice(format!("violation {diag}\n").as_bytes());
            }
        }
        Err(e) => {
            let msg = e.to_string();
            if binary {
                frame::encode(&mut out, frame::REP_ERROR, msg.as_bytes());
            } else {
                out.extend_from_slice(format!("error {msg}\n").as_bytes());
            }
        }
    }
    out
}

/// Build an `invoke`'s completion callback: count the outcome (here, on
/// the admission worker, so the counters stay truthful even if the
/// connection died meanwhile) and mail it to the owning event thread.
fn completion<'t>(ev: &Arc<EventShared>, owner: usize, conn: u64, seq: u64) -> Completion<'t> {
    let ev = Arc::clone(ev);
    Box::new(move |outcome| {
        match &outcome {
            Ok(()) => ev.admitted.fetch_add(1, Ordering::SeqCst),
            Err(EnforceError::Violation(_)) => ev.rejected.fetch_add(1, Ordering::SeqCst),
            Err(_) => ev.errors.fetch_add(1, Ordering::SeqCst),
        };
        ev.inboxes[owner].push_done(Done { conn, seq, reply: Reply::Outcome(outcome) });
    })
}

/// Run the event core: the calling thread becomes event thread 0 (which
/// also owns the listener); threads `1..io_threads` are spawned for the
/// duration. Returns once every thread drained — i.e. after `shutdown`
/// (or a fatal listener error, which is returned after the drain).
pub(super) fn run<'t>(
    listener: &TcpListener,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    alphabet: &RoleAlphabet,
    shared: &ServerShared<'_>,
    config: &ServerConfig,
    ev: &Arc<EventShared>,
) -> std::io::Result<()> {
    for i in 0..ev.inboxes.len() {
        let ev = Arc::clone(ev);
        client.on_space(move || ev.inboxes[i].signal_space());
    }
    std::thread::scope(|scope| {
        for me in 1..ev.inboxes.len() {
            let ev = Arc::clone(ev);
            scope.spawn(move || event_thread(me, &ev, None, client, ts, alphabet, shared, config));
        }
        event_thread(0, ev, Some(listener), client, ts, alphabet, shared, config)
    })
}

/// The readiness interest a connection wants right now: readable while
/// it can absorb more requests, writable while replies are queued. The
/// same derivation is used at registration and at every reconcile, so
/// the kernel's view never drifts from the connection's.
fn interest_of(c: &Conn<'_>, pipeline: usize) -> u32 {
    let mut want = 0;
    if c.wants_read(pipeline) {
        want |= EPOLLIN;
    }
    if c.wants_write() {
        want |= EPOLLOUT;
    }
    want
}

/// Register a connection's socket with the event thread's epoll
/// instance under its connection id. A connection whose interest is
/// currently empty stays registered with zero events — parked on inbox
/// mail, invisible to `epoll_wait` — and closing the socket later
/// deregisters it implicitly.
fn register(ep: &Epoll, c: &mut Conn<'_>, pipeline: usize) -> std::io::Result<()> {
    let want = interest_of(c, pipeline);
    ep.add(c.stream.as_raw_fd(), want, c.id)?;
    c.interest = want;
    Ok(())
}

/// Accept until the listener runs dry; returns the listener's fatal
/// error, if any (per-connection failures only skip that socket).
#[allow(clippy::too_many_arguments)]
fn accept_burst<'t>(
    listener: &TcpListener,
    me: usize,
    conns: &mut HashMap<u64, Conn<'t>>,
    ep: &Epoll,
    pipeline: usize,
    ev: &Arc<EventShared>,
    config: &ServerConfig,
) -> std::io::Result<()> {
    let threads = ev.inboxes.len();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if config.max_connections > 0
                    && ev.live.load(Ordering::SeqCst) >= config.max_connections
                {
                    // Over the cap: one error line, then close. `live`
                    // counts exactly the open connections, so the cap
                    // frees up as peers disconnect. (Refusals are not
                    // counted anywhere — the socket never becomes a
                    // connection.)
                    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                    let mut s = &stream;
                    let _ = writeln!(
                        s,
                        "error server at connection capacity ({})",
                        config.max_connections
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                ev.live.fetch_add(1, Ordering::SeqCst);
                ev.connections.fetch_add(1, Ordering::SeqCst);
                let id = ev.next_conn_id.fetch_add(1, Ordering::SeqCst);
                let target = (id as usize) % threads;
                if target == me {
                    let mut c = Conn::new(stream, id, config.auth.is_none());
                    if register(ep, &mut c, pipeline).is_err() {
                        // Registration failure (fd table churn): the
                        // socket can never be polled, so drop it as if
                        // the accept had failed.
                        ev.live.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    conns.insert(id, c);
                } else {
                    ev.inboxes[target].push_conn(id, stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Post an `invoke` (or park it as the connection's pending op when its
/// lane is full — which suppresses the connection's read interest until
/// a space signal lets the retry through).
fn post_invoke<'t>(
    c: &mut Conn<'t>,
    t: &'t Transaction,
    args: Assignment,
    binary: bool,
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
) {
    let seq = c.push_slot(Slot::Waiting { binary });
    let done = completion(ev, me, c.id, seq);
    if let Err((args, done)) = client.try_post_done(t, args, done) {
        c.pending = Some(Pending { t, args, done });
    }
}

/// Post a `redefine` as an admin barrier op. The new-inventory source
/// is parsed here on the event thread (a hostile payload is refused
/// before it ever touches the admission worker); the op itself runs on
/// the worker with exclusive monitor access, and the reply — rendered
/// in the request's dialect — is mailed back only once the verdict is
/// known *and* the write-ahead record is durable (or the attempt was
/// refused/rolled back).
#[allow(clippy::too_many_arguments)]
fn post_redefine<'t>(
    c: &mut Conn<'t>,
    policy: ResiduePolicy,
    source: &str,
    binary: bool,
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
    shared: &ServerShared<'_>,
) {
    let inv = match Inventory::parse_init(shared.schema, shared.alphabet, source) {
        Ok(inv) => inv,
        Err(e) => {
            let r = error_reply(ev, binary, &format!("redefine refused: {e}"));
            c.push_slot(Slot::Ready(r));
            return;
        }
    };
    let seq = c.push_slot(Slot::Waiting { binary });
    let (conn, owner) = (c.id, me);
    let ev = Arc::clone(ev);
    let evo = Arc::clone(&shared.evo);
    let metrics = shared.metrics.clone();
    client.post_admin(Box::new(move |gate| {
        // Phase 1, on the admission worker between blocks: apply (or
        // learn why not). Totals are read while the monitor is still
        // exclusively ours — the durable flag arrives later.
        let attempt = match gate {
            Ok(m) => {
                let result = m.redefine(&inv, policy);
                let totals = (m.epoch(), m.redefine_total(), m.quarantined_total());
                Ok((result, totals))
            }
            Err(reason) => Err(reason),
        };
        Box::new(move |durable: bool| {
            let bytes = match attempt {
                Ok((Ok(out), totals)) if durable => {
                    evo.epoch.store(totals.0, Ordering::SeqCst);
                    evo.redefines.store(totals.1, Ordering::SeqCst);
                    evo.quarantined.store(totals.2, Ordering::SeqCst);
                    if let Some(m) = metrics.as_deref() {
                        m.epoch.store(totals.0, Ordering::Relaxed);
                        m.redefine_total.store(totals.1, Ordering::Relaxed);
                        m.quarantined_objects.store(totals.2, Ordering::Relaxed);
                    }
                    let msg = format!("epoch={} residue={}", out.epoch, out.residue);
                    if binary {
                        let mut rep = Vec::new();
                        frame::encode(&mut rep, frame::REP_OK, msg.as_bytes());
                        rep
                    } else {
                        format!("ok {msg}\n").into_bytes()
                    }
                }
                // The record never became durable: the worker winds the
                // monitor back to the durable image before admitting
                // anything else, so the epoch this op minted is gone.
                Ok((Ok(_), _)) => error_reply(
                    &ev,
                    binary,
                    "redefinition rolled back: write-ahead log degraded before it became durable",
                ),
                Ok((Err(e), _)) => error_reply(&ev, binary, &e.to_string()),
                Err(reason) => {
                    error_reply(&ev, binary, &EnforceError::Degraded(reason).to_string())
                }
            };
            ev.inboxes[owner].push_done(Done { conn, seq, reply: Reply::Bytes(bytes) });
        })
    }));
}

/// Post an indexed `query` as a **read-only** admin op: the
/// class/condition pair was parsed on the event thread, the scan runs
/// on the admission worker between blocks (no flush barrier — replicas
/// and degraded primaries still serve it), and the pre-rendered reply
/// is mailed back immediately.
fn post_query<'t>(
    c: &mut Conn<'t>,
    class: migratory_model::ClassId,
    cond: migratory_model::Condition,
    binary: bool,
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
) {
    let seq = c.push_slot(Slot::Waiting { binary });
    let (conn, owner) = (c.id, me);
    let ev = Arc::clone(ev);
    client.post_admin_read(Box::new(move |gate| {
        let attempt = match gate {
            Ok(m) => {
                let oids = m.db().sat(class, &cond);
                let mut shown = String::new();
                for (i, oid) in oids.iter().take(32).enumerate() {
                    if i > 0 {
                        shown.push(',');
                    }
                    shown.push_str(&oid.to_string());
                }
                Ok(format!("query count={} oids={shown}", oids.len()))
            }
            Err(reason) => Err(reason),
        };
        Box::new(move |_durable: bool| {
            let bytes = match attempt {
                Ok(msg) => {
                    if binary {
                        let mut rep = Vec::new();
                        frame::encode(&mut rep, frame::REP_OK, msg.as_bytes());
                        rep
                    } else {
                        format!("ok {msg}\n").into_bytes()
                    }
                }
                Err(reason) => {
                    error_reply(&ev, binary, &EnforceError::Degraded(reason).to_string())
                }
            };
            ev.inboxes[owner].push_done(Done { conn, seq, reply: Reply::Bytes(bytes) });
        })
    }));
}

/// Promote a replica to a writable primary. The pull loop is told to
/// stop first; the flip itself rides a write-flavored admin op so it
/// queues **behind** every apply batch the puller already posted — the
/// shipped tail folds before the halt lands, and nothing of the acked
/// stream is dropped. Phase 1 halts further applies and lifts the
/// read-only refusal while the monitor is exclusively ours.
#[allow(clippy::too_many_arguments)]
fn post_promote<'t>(
    c: &mut Conn<'t>,
    ctl: &Arc<crate::enforce::repl::ReplicaCtl>,
    binary: bool,
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
    shared: &ServerShared<'_>,
) {
    let seq = c.push_slot(Slot::Waiting { binary });
    let (conn, owner) = (c.id, me);
    let ev = Arc::clone(ev);
    let ctl = Arc::clone(ctl);
    let evo = Arc::clone(&shared.evo);
    let metrics = shared.metrics.clone();
    ctl.request_stop();
    client.post_admin(Box::new(move |gate| {
        let attempt = match gate {
            Ok(m) => {
                ctl.halt();
                ctl.make_writable();
                // The shipped history may carry redefinitions this
                // server folded without going through its own
                // `redefine` verb: refresh the evolution gauges so the
                // promoted primary's `stats` tells the truth.
                evo.epoch.store(m.epoch(), Ordering::SeqCst);
                evo.redefines.store(m.redefine_total(), Ordering::SeqCst);
                evo.quarantined.store(m.quarantined_total(), Ordering::SeqCst);
                if let Some(mx) = metrics.as_deref() {
                    mx.epoch.store(m.epoch(), Ordering::Relaxed);
                    mx.redefine_total.store(m.redefine_total(), Ordering::Relaxed);
                    mx.quarantined_objects.store(m.quarantined_total(), Ordering::Relaxed);
                }
                Ok((m.epoch(), ctl.applied()))
            }
            Err(reason) => Err(reason),
        };
        Box::new(move |_durable: bool| {
            let bytes = match attempt {
                Ok((epoch, applied)) => {
                    let msg = format!("promoted epoch={epoch} applied={applied}");
                    if binary {
                        let mut rep = Vec::new();
                        frame::encode(&mut rep, frame::REP_OK, msg.as_bytes());
                        rep
                    } else {
                        format!("ok {msg}\n").into_bytes()
                    }
                }
                Err(reason) => {
                    error_reply(&ev, binary, &EnforceError::Degraded(reason).to_string())
                }
            };
            ev.inboxes[owner].push_done(Done { conn, seq, reply: Reply::Bytes(bytes) });
        })
    }));
}

/// The split-brain guard: a replica refuses data writes until promoted
/// — two writable heads of the same chain must never coexist. Returns
/// the refusal message when `verb` must be bounced.
fn replica_refusal(shared: &ServerShared<'_>, verb: &str) -> Option<String> {
    shared.replica.as_ref().filter(|ctl| ctl.is_read_only()).map(|ctl| {
        format!(
            "replica is read-only: {verb} refused (following {}; `promote` to accept writes)",
            ctl.upstream()
        )
    })
}

/// Dispatch one extracted request. Returns `false` when extraction on
/// this connection must stop (quit, shutdown, teardown).
#[allow(clippy::too_many_arguments)]
fn dispatch<'t>(
    c: &mut Conn<'t>,
    req: Request,
    wire: u64,
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    shared: &ServerShared<'_>,
    config: &ServerConfig,
) -> bool {
    let binary = matches!(req, Request::Frame(..));
    c.last_binary = binary;
    c.bytes += wire;
    if config.max_conn_bytes > 0 && c.bytes > config.max_conn_bytes {
        let msg =
            format!("connection byte quota exceeded ({} bytes); closing", config.max_conn_bytes);
        c.teardown(Some(error_reply(ev, binary, &msg)));
        return false;
    }
    // Blank lines and comments get no reply (text dialect only — every
    // frame is a request).
    if let Request::Line(ref l) = req {
        let t = l.trim();
        if t.is_empty() || t.starts_with('#') {
            return true;
        }
    }
    ev.requests.fetch_add(1, Ordering::SeqCst);
    c.ops += 1;
    if config.max_conn_ops > 0 && c.ops > config.max_conn_ops {
        let msg = format!(
            "connection request quota exceeded ({} requests); closing",
            config.max_conn_ops
        );
        c.teardown(Some(error_reply(ev, binary, &msg)));
        return false;
    }
    if !c.authed {
        // Nothing but the correct (text) handshake is served before
        // auth — not even error details that would confirm verb names,
        // and no binary traffic at all.
        if let Request::Line(ref l) = req {
            let line = l.trim();
            let (verb, rest) = match line.split_once(char::is_whitespace) {
                Some((v, r)) => (v, r.trim()),
                None => (line, ""),
            };
            if verb == "auth" && config.auth.as_deref().is_some_and(|tok| token_eq(tok, rest)) {
                c.authed = true;
                c.push_slot(Slot::Ready(b"ok authed\n".to_vec()));
                return true;
            }
        }
        c.teardown(Some(error_reply(
            ev,
            binary,
            "authentication required (send `auth <token>` first)",
        )));
        return false;
    }
    match req {
        Request::Line(line) => dispatch_verb(c, line.trim(), me, ev, client, ts, shared),
        Request::Frame(kind, payload) => {
            dispatch_frame(c, kind, &payload, me, ev, client, ts, shared);
            true
        }
    }
}

fn dispatch_verb<'t>(
    c: &mut Conn<'t>,
    line: &str,
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    shared: &ServerShared<'_>,
) -> bool {
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb {
        "invoke" => match replica_refusal(shared, "invoke") {
            Some(msg) => {
                let r = error_reply(ev, false, &msg);
                c.push_slot(Slot::Ready(r));
            }
            None => match parse_invocation(rest) {
                Ok((name, args)) => match ts.get(name) {
                    Some(t) => post_invoke(c, t, Assignment::new(args), false, me, ev, client),
                    None => {
                        let r = error_reply(ev, false, &format!("unknown transaction `{name}`"));
                        c.push_slot(Slot::Ready(r));
                    }
                },
                Err(e) => {
                    let r = error_reply(ev, false, &e);
                    c.push_slot(Slot::Ready(r));
                }
            },
        },
        "query" => {
            if rest.is_empty() {
                let r = error_reply(ev, false, "usage: query <Class>[(Attr=value,...)]");
                c.push_slot(Slot::Ready(r));
            } else {
                match super::parse_query(shared.schema, rest) {
                    Ok((class, cond)) => post_query(c, class, cond, false, me, ev, client),
                    Err(e) => {
                        let r = error_reply(ev, false, &e);
                        c.push_slot(Slot::Ready(r));
                    }
                }
            }
        }
        "schema" => {
            c.push_slot(Slot::Ready(format!("{}\n", shared.schema_line).into_bytes()));
        }
        "stats" => {
            // `stats` is the flat test-locked line; `stats prom` is the
            // Prometheus exposition, length-prefixed. Anything else
            // after the verb is an error rather than silently flat.
            let slot = match rest {
                "" => Slot::Stats { prom: false },
                "prom" => Slot::Stats { prom: true },
                other => {
                    Slot::Ready(error_reply(ev, false, &format!("unknown stats form `{other}`")))
                }
            };
            c.push_slot(slot);
        }
        "ping" => {
            c.push_slot(Slot::Ready(b"ok pong\n".to_vec()));
        }
        // Re-authenticating (or authing with no token configured) is a
        // harmless no-op, so scripts can always send it first.
        "auth" => {
            c.push_slot(Slot::Ready(b"ok authed\n".to_vec()));
        }
        "redefine" => {
            // `redefine <quarantine|certify-and-reset> <inventory src>`:
            // policy token first, the rest of the line is the source.
            let (policy, src) = match rest.split_once(char::is_whitespace) {
                Some((p, s)) => (p, s.trim()),
                None => (rest, ""),
            };
            if let Some(msg) = replica_refusal(shared, "redefine") {
                let r = error_reply(ev, false, &msg);
                c.push_slot(Slot::Ready(r));
            } else if policy.is_empty() || src.is_empty() {
                let r = error_reply(
                    ev,
                    false,
                    "usage: redefine <quarantine|certify-and-reset> <inventory source>",
                );
                c.push_slot(Slot::Ready(r));
            } else {
                match ResiduePolicy::parse(policy) {
                    Ok(p) => post_redefine(c, p, src, false, me, ev, client, shared),
                    Err(e) => {
                        let r = error_reply(ev, false, &format!("redefine refused: {e}"));
                        c.push_slot(Slot::Ready(r));
                    }
                }
            }
        }
        "rearm" => {
            // Operator action: leave degraded read-only mode. If the
            // fault persists, the next failing append re-degrades.
            shared.health.rearm();
            c.push_slot(Slot::Ready(b"ok armed\n".to_vec()));
        }
        "promote" => match &shared.replica {
            None => {
                let r = error_reply(
                    ev,
                    false,
                    "not a replica (promote targets a server started with --replica-of)",
                );
                c.push_slot(Slot::Ready(r));
            }
            Some(ctl) => post_promote(c, ctl, false, me, ev, client, shared),
        },
        "quit" => {
            c.teardown(Some(b"ok bye\n".to_vec()));
            return false;
        }
        "shutdown" => {
            c.push_slot(Slot::Ready(b"ok draining\n".to_vec()));
            c.read_open = false;
            ev.shutdown.store(true, Ordering::SeqCst);
            ev.wake_all();
            return false;
        }
        other => {
            let r = error_reply(
                ev,
                false,
                &format!(
                    "unknown verb `{other}` \
                     (invoke|query|schema|stats|ping|auth|redefine|promote|rearm|quit|shutdown)"
                ),
            );
            c.push_slot(Slot::Ready(r));
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn dispatch_frame<'t>(
    c: &mut Conn<'t>,
    kind: u8,
    payload: &[u8],
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    shared: &ServerShared<'_>,
) {
    match kind {
        frame::REQ_INVOKE => {
            if let Some(msg) = replica_refusal(shared, "invoke") {
                let rep = error_reply(ev, true, &msg);
                c.push_slot(Slot::Ready(rep));
                return;
            }
            let mut r = migratory_model::codec::Reader::new(payload);
            match migratory_lang::codec::decode_invoke(&mut r) {
                Ok((name, args)) if r.is_exhausted() => match ts.get(&name) {
                    Some(t) => post_invoke(c, t, Assignment::new(args), true, me, ev, client),
                    None => {
                        let rep = error_reply(ev, true, &format!("unknown transaction `{name}`"));
                        c.push_slot(Slot::Ready(rep));
                    }
                },
                Ok(_) => {
                    let rep = error_reply(ev, true, "trailing bytes after invoke payload");
                    c.push_slot(Slot::Ready(rep));
                }
                Err(e) => {
                    let rep = error_reply(ev, true, &e.to_string());
                    c.push_slot(Slot::Ready(rep));
                }
            }
        }
        frame::REQ_REDEFINE if replica_refusal(shared, "redefine").is_some() => {
            let msg = replica_refusal(shared, "redefine").expect("guard matched");
            let rep = error_reply(ev, true, &msg);
            c.push_slot(Slot::Ready(rep));
        }
        frame::REQ_REDEFINE => match payload.split_first() {
            None => {
                let rep = error_reply(ev, true, "empty redefine payload");
                c.push_slot(Slot::Ready(rep));
            }
            Some((pb, src)) => match (ResiduePolicy::from_byte(*pb), std::str::from_utf8(src)) {
                (Err(e), _) => {
                    let rep = error_reply(ev, true, &format!("redefine refused: {e}"));
                    c.push_slot(Slot::Ready(rep));
                }
                (Ok(_), Err(_)) => {
                    let rep = error_reply(ev, true, "redefine payload is not UTF-8");
                    c.push_slot(Slot::Ready(rep));
                }
                (Ok(p), Ok(src)) => post_redefine(c, p, src, true, me, ev, client, shared),
            },
        },
        frame::REQ_QUERY => match std::str::from_utf8(payload) {
            Err(_) => {
                let rep = error_reply(ev, true, "query payload is not UTF-8");
                c.push_slot(Slot::Ready(rep));
            }
            Ok(q) => match super::parse_query(shared.schema, q) {
                Ok((class, cond)) => post_query(c, class, cond, true, me, ev, client),
                Err(e) => {
                    let rep = error_reply(ev, true, &e);
                    c.push_slot(Slot::Ready(rep));
                }
            },
        },
        other => {
            let rep = error_reply(
                ev,
                true,
                &format!(
                    "unknown frame kind {other:#04x} (expected invoke {:#04x}, \
                     redefine {:#04x}, or query {:#04x})",
                    frame::REQ_INVOKE,
                    frame::REQ_REDEFINE,
                    frame::REQ_QUERY
                ),
            );
            c.push_slot(Slot::Ready(rep));
        }
    }
}

/// Drive one connection as far as it will go: retry a parked post,
/// extract and dispatch buffered requests, flush resolved replies,
/// write. Loops while progress is made, because writing can re-open the
/// extraction gate (write-buffer high-water mark) for bytes that are
/// already buffered and would otherwise never see a poll event.
#[allow(clippy::too_many_arguments)]
fn pump<'t>(
    c: &mut Conn<'t>,
    me: usize,
    ev: &Arc<EventShared>,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    shared: &ServerShared<'_>,
    config: &ServerConfig,
    pipeline: usize,
) {
    loop {
        if c.dead {
            return;
        }
        if let Some(p) = c.pending.take() {
            if let Err((args, done)) = client.try_post_done(p.t, p.args, p.done) {
                c.pending = Some(Pending { t: p.t, args, done });
            }
        }
        let mut dispatched = false;
        let mut drained = false;
        while c.may_extract(pipeline) {
            match c.extract() {
                Extracted::None => {
                    drained = true;
                    break;
                }
                Extracted::Some(req, wire) => {
                    dispatched = true;
                    if !dispatch(c, req, wire, me, ev, client, ts, shared, config) {
                        break;
                    }
                }
                Extracted::LineTooLong => {
                    let r =
                        error_reply(ev, false, &format!("request line exceeds {MAX_LINE} bytes"));
                    c.teardown(Some(r));
                    break;
                }
                Extracted::FrameOversized(len) => {
                    let msg = format!("frame length {len} exceeds {} bytes", frame::MAX_PAYLOAD);
                    let r = error_reply(ev, true, &msg);
                    c.teardown(Some(r));
                    break;
                }
                Extracted::BadUtf8 => {
                    // Undecodable text bytes: drain in-flight replies,
                    // then close, with no reply for the garbage — the
                    // old reader's silent-teardown behaviour.
                    c.teardown(None);
                    break;
                }
            }
        }
        // Peer half-closed and the buffer is extracted dry (a trailing
        // fragment can never complete): answer what is in flight, then
        // close — the drain-and-close the old reader did on EOF, but
        // only after every fully buffered request got its reply. When
        // the extraction loop stopped at a backpressure gate instead,
        // the buffer may still yield requests once the gate reopens, so
        // the teardown waits for a later pump.
        if drained && c.eof && c.read_open {
            c.teardown(None);
        }
        c.compact();
        c.flush_slots(|prom| stats_reply(ev, shared, prom));
        let unsent_before = c.unsent();
        if c.wants_write() {
            c.try_write();
        }
        let wrote = c.unsent() < unsent_before;
        if !dispatched && !wrote {
            return;
        }
    }
}

/// One event thread. `listener` is `Some` only for thread 0. The
/// `Result` carries a fatal listener error (reported after the drain).
#[allow(clippy::too_many_arguments)]
fn event_thread<'t>(
    me: usize,
    ev: &Arc<EventShared>,
    listener: Option<&TcpListener>,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    alphabet: &RoleAlphabet,
    shared: &ServerShared<'_>,
    config: &ServerConfig,
) -> std::io::Result<()> {
    let pipeline = config.pipeline.max(1);
    let mut conns: HashMap<u64, Conn<'t>> = HashMap::new();
    let mut draining = false;
    let mut fatal: Option<std::io::Error> = None;
    let mut gone: Vec<u64> = Vec::new();
    // Nearest deadline seen by the previous pre-wait scan: the reaping
    // scan runs only when it can actually have expired, so a loop woken
    // by mail does no per-connection deadline work at all.
    let mut nearest: Option<Instant> = None;
    // The epoll instance holding this thread's whole interest set. The
    // waker and (on thread 0) the listener are registered once under
    // sentinel tokens above the connection-id space; connections are
    // added at accept/handoff and drop out when their socket closes.
    // `epoll_wait` then costs O(ready), not O(connections) — the poll(2)
    // loop this replaces re-scanned every registered fd per call, which
    // dominated the server's time at four-digit connection counts.
    let ep = Epoll::new().expect("epoll_create1 failed");
    const TOK_WAKER: u64 = u64::MAX;
    const TOK_LISTEN: u64 = u64::MAX - 1;
    ep.add(ev.inboxes[me].waker.fd(), EPOLLIN, TOK_WAKER).expect("epoll: register waker");
    let mut listening = false;
    if let Some(l) = listener {
        ep.add(l.as_raw_fd(), EPOLLIN, TOK_LISTEN).expect("epoll: register listener");
        listening = true;
    }
    let mut events = vec![EpollEvent::zeroed(); 1024];
    loop {
        let mail = ev.inboxes[me].take();
        // Drain transition: first iteration after `shutdown` was set.
        // Thread 0 reaches it only after its last accept burst, so its
        // `accept_done` store means no further handoffs will ever be
        // mailed (and SeqCst makes the ones already sent visible to any
        // sibling's inbox take that follows an `accept_done` load).
        if ev.shutdown.load(Ordering::SeqCst) && !draining {
            draining = true;
            let deadline = Instant::now() + DRAIN_TIMEOUT;
            for c in conns.values_mut() {
                c.begin_drain(deadline);
                c.dirty = true;
            }
            if listening {
                if let Some(l) = listener {
                    let _ = ep.delete(l.as_raw_fd());
                }
                listening = false;
            }
            if me == 0 {
                // Siblings that reached their own drain transition
                // before this store are parked in poll waiting for it:
                // wake them so they re-run their exit check.
                ev.accept_done.store(true, Ordering::SeqCst);
                ev.wake_all();
            }
        }
        for (id, stream) in mail.conns {
            let mut c = Conn::new(stream, id, config.auth.is_none());
            if draining {
                c.begin_drain(Instant::now() + DRAIN_TIMEOUT);
            }
            if register(&ep, &mut c, pipeline).is_err() {
                ev.live.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            conns.insert(id, c);
        }
        for d in mail.dones {
            // A completion for a connection that died meanwhile was
            // already counted by the callback; nothing else to do.
            if let Some(c) = conns.get_mut(&d.conn) {
                if let Some(binary) = c.waiting_dialect(d.seq) {
                    let bytes = match d.reply {
                        Reply::Outcome(o) => outcome_reply(&o, binary, alphabet),
                        Reply::Bytes(b) => b,
                    };
                    c.fill_slot(d.seq, bytes);
                    c.dirty = true;
                }
            }
        }
        if mail.space {
            // The worker drained a block: parked posts may retry.
            for c in conns.values_mut() {
                if c.pending.is_some() {
                    c.dirty = true;
                }
            }
        }
        // Deadline reaping before the pump, so a freshly created idle
        // reply flushes in the same iteration. Skipped entirely unless
        // the nearest deadline the last poll-set build saw has expired.
        if nearest.is_some_and(|d| Instant::now() >= d) {
            let now = Instant::now();
            for c in conns.values_mut() {
                if !draining && c.read_open {
                    if let Some(t) = config.idle_timeout {
                        if now >= c.last_rx + t {
                            let secs = t.as_secs_f64();
                            let msg =
                                format!("idle timeout after {secs}s without a request; closing");
                            // Unsolicited (no request to answer): use
                            // the connection's last-seen dialect so a
                            // binary client parked in `read_frame`
                            // receives a decodable frame.
                            let r = error_reply(ev, c.last_binary, &msg);
                            c.teardown(Some(r));
                            c.dirty = true;
                        }
                    }
                }
                if let Some(since) = c.write_stalled_since {
                    if now >= since + WRITE_TIMEOUT {
                        c.dead = true;
                        c.dirty = true;
                    }
                }
                if let Some(d) = c.drain_deadline {
                    if now >= d {
                        c.dead = true;
                        c.dirty = true;
                    }
                }
            }
        }
        // Pump only the connections something happened to; collect the
        // ones that ended so the pass stays O(dirty), not O(all).
        gone.clear();
        for (id, c) in conns.iter_mut() {
            if !c.dirty {
                continue;
            }
            c.dirty = false;
            pump(c, me, ev, client, ts, shared, config, pipeline);
            if c.dead || c.finished() {
                gone.push(*id);
                continue;
            }
            // Reconcile the kernel's interest with the connection's.
            // Only pumped connections can have changed their wants
            // (every want-changing event marks the connection dirty),
            // so this is the single point where `epoll_ctl` happens —
            // and only when the interest actually moved.
            let want = interest_of(c, pipeline);
            if want != c.interest {
                if ep.modify(c.stream.as_raw_fd(), want, *id).is_err() {
                    c.dead = true;
                    gone.push(*id);
                } else {
                    c.interest = want;
                }
            }
        }
        for id in gone.drain(..) {
            if let Some(mut c) = conns.remove(&id) {
                ev.live.fetch_sub(1, Ordering::SeqCst);
                // A parsed-but-unposted invoke still gets one posting
                // attempt so its outcome is counted like the old
                // writer's drained tickets; if the lane is still full
                // the op is dropped with the connection.
                if let Some(p) = c.pending.take() {
                    let _ = client.try_post_done(p.t, p.args, p.done);
                }
            }
        }
        if draining && conns.is_empty() && ev.accept_done.load(Ordering::SeqCst) {
            // One final take after observing `accept_done`: a handoff
            // mailed before thread 0's transition may still be parked
            // here. Completions need no processing (already counted).
            let last = ev.inboxes[me].take();
            if last.conns.is_empty() {
                break;
            }
            for (id, stream) in last.conns {
                let mut c = Conn::new(stream, id, config.auth.is_none());
                c.begin_drain(Instant::now() + DRAIN_TIMEOUT);
                if register(&ep, &mut c, pipeline).is_err() {
                    ev.live.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                conns.insert(id, c);
            }
            continue;
        }
        // Pre-wait scan: track the nearest deadline, which both bounds
        // the wait and gates the next iteration's reaping scan. (The
        // interest set itself lives in the kernel now — registered at
        // accept, reconciled after each pump — so unlike the poll(2)
        // incarnation of this loop, nothing per-connection is rebuilt
        // here.) A connection with empty interest is parked on inbox
        // mail (a completion or a space signal) and invisible to
        // `epoll_wait` — its socket errors surface on the write attempt
        // its next pump makes — so a thousand quiescent connections add
        // nothing to the wait.
        nearest = None;
        let consider = |nearest: &mut Option<Instant>, d: Instant| {
            *nearest = Some(match *nearest {
                Some(cur) => cur.min(d),
                None => d,
            });
        };
        for c in conns.values() {
            if !draining && c.read_open {
                if let Some(t) = config.idle_timeout {
                    consider(&mut nearest, c.last_rx + t);
                }
            }
            if let Some(s) = c.write_stalled_since {
                consider(&mut nearest, s + WRITE_TIMEOUT);
            }
            if let Some(d) = c.drain_deadline {
                consider(&mut nearest, d);
            }
        }
        let timeout_ms = match nearest {
            None => -1,
            Some(d) => {
                let ms = d.saturating_duration_since(Instant::now()).as_millis().min(60_000);
                i32::try_from(ms).unwrap_or(60_000) + 1
            }
        };
        let n = ep.wait(&mut events, timeout_ms).expect("epoll_wait failed");
        if n == 0 {
            continue;
        }
        for &e in &events[..n] {
            match e.token() {
                // Waker bytes are drained by the `take` at the loop
                // top; the event only needed to end the wait.
                TOK_WAKER => {}
                TOK_LISTEN => {
                    if !listening {
                        continue;
                    }
                    let Some(l) = listener else { continue };
                    if let Err(e) = accept_burst(l, me, &mut conns, &ep, pipeline, ev, config) {
                        // Fatal listener error: stop accepting, drain
                        // what was accepted, report after.
                        fatal = Some(e);
                        let _ = ep.delete(l.as_raw_fd());
                        listening = false;
                        ev.shutdown.store(true, Ordering::SeqCst);
                        ev.wake_all();
                    }
                }
                id => {
                    let Some(c) = conns.get_mut(&id) else { continue };
                    if e.failed() {
                        // Error or hangup on both directions; any
                        // unflushed reply is undeliverable.
                        c.dead = true;
                        c.dirty = true;
                        continue;
                    }
                    if e.ready(EPOLLIN) && c.read_open && !c.eof {
                        c.dirty = true;
                        match c.fill_read_buffer() {
                            ReadOutcome::Progress => {}
                            // Orderly EOF: `fill_read_buffer` set the
                            // eof flag; the pump keeps extracting what
                            // is already buffered and closes once the
                            // buffer runs dry — a half-closing
                            // pipeliner is owed every reply.
                            ReadOutcome::Eof => {}
                            ReadOutcome::Dead => c.dead = true,
                        }
                    }
                    if e.ready(EPOLLOUT) {
                        // The socket drained: the next iteration's
                        // pump writes.
                        c.dirty = true;
                    }
                }
            }
        }
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::token_eq;

    #[test]
    fn token_eq_agrees_with_equality() {
        assert!(token_eq("secret", "secret"));
        assert!(token_eq("", ""));
        assert!(!token_eq("secret", ""));
        assert!(!token_eq("secret", "secre"));
        assert!(!token_eq("secret", "secrets"));
        assert!(!token_eq("secret", "tercse"));
        assert!(!token_eq("aaaa", "aaab"));
        // Exhaustive one-byte space: no digest collisions among the
        // shortest tokens.
        for a in 0u8..=255 {
            for b in 0u8..=255 {
                let (sa, sb) = ([a], [b]);
                let (sa, sb) = (String::from_utf8_lossy(&sa), String::from_utf8_lossy(&sb));
                assert_eq!(token_eq(&sa, &sb), sa == sb);
            }
        }
    }
}

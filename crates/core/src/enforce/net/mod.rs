//! A wire front end for durable concurrent admission: a TCP server that
//! maps every connection onto an [`ingress`] producer.
//!
//! The paper's monitors guard migration histories inside one process;
//! this module is the step that makes "network-shaped concurrent
//! callers" literal. Clients share nothing with the server but the
//! protocol — two interleavable dialects on one port, dispatched per
//! request by the first byte (see `docs/PROTOCOL.md` at the repository
//! root for the normative specification, kept in lockstep with this
//! module by a conformance test):
//!
//! * **Text**: newline-framed UTF-8 requests, one reply line per
//!   request — the debug and interop dialect.
//! * **Binary** ([`frame`]): length-prefixed frames whose `invoke`
//!   payloads are [`migratory_lang::codec`] encodings — the hot-path
//!   dialect, no per-request parsing or quoting.
//!
//! # Shape
//!
//! [`serve`] wraps [`ingress::serve_guarded`]: the admission worker owns
//! the [`ShardedMonitor`]; the driver is a **poll-based event core**
//! ([`ServerConfig::io_threads`] threads) that multiplexes every client
//! socket with nonblocking I/O — thread count is O(io_threads + shards),
//! independent of the connection count. Each connection keeps
//! per-connection read/write buffers, extracts requests incrementally,
//! and queues one reply **slot** per request; `invoke` outcomes arrive
//! asynchronously (completion callbacks mailed back to the owning event
//! thread through a self-pipe waker) and fill their slot, and only the
//! resolved prefix of the slot queue is ever written — so replies never
//! overtake each other within a connection. A connection is exactly one
//! ingress producer: per-connection FIFO is the ingress's per-producer
//! FIFO, and pipelined requests from one connection batch into admission
//! blocks just like an in-process pipelining producer's.
//!
//! # Invariants
//!
//! * **One reply per request, in order, in the request's dialect.**
//!   Every parsed request is answered on the wire, and replies never
//!   overtake each other within a connection (the slot queue flushes
//!   its resolved prefix only).
//! * **Acknowledgement implies durability.** An `ok` (or empty
//!   [`frame::REP_OK`] frame) is written only after the op's block
//!   committed — and, when a [`CommitSink`](super::CommitSink) is
//!   attached, after the block's write-ahead append succeeded. A client
//!   that saw `ok` will see the op again after a crash and recovery.
//! * **Graceful drain.** A `shutdown` request stops the accept path and
//!   closes every connection's *read* side; the admission worker keeps
//!   answering until every lane is empty (close-and-answer,
//!   [`ingress::serve`]'s contract) — so every in-flight request is
//!   answered on the wire before its socket closes and [`serve`]
//!   returns.
//! * **Backpressure end to end, without blocked threads.** A full
//!   admission lane parks the connection's parsed-but-unposted invoke
//!   and suppresses its read interest; a deep reply pipeline or a
//!   write buffer past its high-water mark does the same. Suppressed
//!   read interest fills the client's TCP window: producers can never
//!   outrun the monitor, no matter how fast they write — and no server
//!   thread ever blocks on one connection's behalf.
//!
//! # Supervision and degraded mode
//!
//! Connections are supervised ([`ServerConfig`]): an optional idle
//! timeout reaps silent peers, per-connection byte/op quotas bound what
//! one peer can consume (uniformly across both dialects), a
//! max-connections cap refuses excess sockets at accept, a write-stall
//! timeout reaps peers that stop reading their replies, and an optional
//! shared-secret token gates every verb behind an `auth` handshake.
//! Request size is bounded *during accumulation*: a text line crossing
//! [`MAX_LINE`] without a newline, or a frame header declaring a payload
//! beyond it, is refused the moment the excess is visible — per-
//! connection memory stays bounded no matter what arrives. Durability
//! failures degrade service instead of lying: when the write-ahead
//! append keeps failing past the [`DurabilityPolicy`] budget, the shared
//! [`Health`] flips the server into degraded read-only mode — `invoke`
//! answers `error degraded (read-only): …`, `stats` reports
//! `degraded=yes` plus the background-checkpoint status, and an operator
//! re-arms with the `rearm` verb once the fault is fixed (see
//! `docs/PROTOCOL.md` § Limits, timeouts, and degraded mode).
//!
//! # Durability behind the server
//!
//! The caller attaches the WAL before serving
//! ([`ShardedMonitor::with_sink`](super::ShardedMonitor::with_sink))
//! and passes a maintenance hook; every
//! [`ServerConfig::checkpoint_every`] blocks the admission worker calls
//! it with exclusive access to the monitor — the `migctl serve`
//! front end uses this to capture O(dirty) incremental checkpoints and
//! hand them to a background [`Snapshotter`](super::Snapshotter) while
//! traffic keeps flowing.
//!
//! ```
//! use migratory_core::enforce::net::{self, ServerConfig};
//! use migratory_core::enforce::ShardedMonitor;
//! use migratory_core::{Inventory, PatternKind, RoleAlphabet};
//! use migratory_lang::parse_transactions;
//! use migratory_model::schema::university_schema;
//! use std::io::{BufRead, BufReader, Write};
//!
//! let s = university_schema();
//! let a = RoleAlphabet::new(&s, 0).unwrap();
//! let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
//! let ts = parse_transactions(&s, r#"
//!     transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
//! "#).unwrap();
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let stats = std::thread::scope(|scope| {
//!     let server = scope.spawn(|| {
//!         let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
//!         net::serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
//!     });
//!     let mut conn = std::net::TcpStream::connect(addr).unwrap();
//!     conn.write_all(b"invoke Mk(1)\nshutdown\n").unwrap();
//!     let mut replies = BufReader::new(conn).lines();
//!     assert_eq!(replies.next().unwrap().unwrap(), "ok");
//!     assert_eq!(replies.next().unwrap().unwrap(), "ok draining");
//!     server.join().unwrap()
//! });
//! assert_eq!(stats.admitted, 1);
//! ```

mod conn;
mod event;
pub mod frame;

use super::health::Health;
use super::ingress::{self, DurabilityPolicy, IngressConfig, IngressStats};
use super::metrics::AdmissionMetrics;
use super::sharded::ShardedMonitor;
use super::wal::Wal;
use crate::alphabet::RoleAlphabet;
use migratory_lang::TransactionSchema;
use migratory_model::{Schema, Value};
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs of [`serve`].
#[derive(Clone)]
pub struct ServerConfig {
    /// The admission-lane configuration behind the socket front end.
    pub ingress: IngressConfig,
    /// Admitted blocks between maintenance-hook calls (incremental
    /// checkpoints, when the caller wires one); 0 = never.
    pub checkpoint_every: usize,
    /// Event threads multiplexing the client sockets (thread 0 also
    /// owns the listener). Clamped to at least 1.
    pub io_threads: usize,
    /// Per-connection reply pipeline depth: how many requests may be in
    /// flight (unanswered) before the connection's socket reads stall.
    pub pipeline: usize,
    /// Idle timeout: a connection with no traffic for this long is
    /// answered `error idle timeout …` and closed. `None` waits
    /// forever (the pre-supervision behaviour).
    pub idle_timeout: Option<Duration>,
    /// Per-connection byte quota over all request bytes, both dialects
    /// (0 = unlimited); exceeding it tears the connection down after
    /// one error reply.
    pub max_conn_bytes: u64,
    /// Per-connection request quota (0 = unlimited); exceeding it tears
    /// the connection down after one error reply.
    pub max_conn_ops: u64,
    /// Live-connection cap (0 = unlimited): excess sockets are answered
    /// `error server at connection capacity …` and closed at accept.
    pub max_connections: usize,
    /// Shared-secret token: when set, a connection's first request must
    /// be `auth <token>` — anything else is refused and disconnects.
    pub auth: Option<String>,
    /// How the admission worker treats failing write-ahead appends
    /// (retry budget, then degraded read-only mode).
    pub durability: DurabilityPolicy,
    /// Write-ahead log handle for the pipelined committer. When set,
    /// the server runs the two-stage admission pipeline
    /// ([`ingress::serve_pipelined`]): the admission worker stages
    /// records and a dedicated committer thread appends, issues one
    /// fsync per batch (per [`Wal::fsync_policy`]), and only then
    /// releases the acks. When `None`, the monitor's own
    /// [`CommitSink`](super::CommitSink) (if any) runs synchronously on
    /// the admission worker, as before.
    pub wal: Option<Arc<Mutex<Wal>>>,
    /// Admission-latency histograms, shared with the `stats prom` verb.
    pub metrics: Option<Arc<AdmissionMetrics>>,
    /// Replication tee: when set (primary role; requires `wal`), the
    /// server accepts replica connections on the replicator's listener
    /// and every committed batch is shipped under its
    /// [`AckPolicy`](super::repl::AckPolicy).
    pub repl: Option<Arc<super::repl::Replicator>>,
    /// Follow a primary (replica role; requires `wal`, exclusive with
    /// `repl`): the server bootstraps from the primary's snapshot at
    /// this address, continuously folds its shipped records, serves
    /// read verbs from slightly-stale state, and refuses writes until
    /// `promote`.
    pub replica_of: Option<String>,
}

impl std::fmt::Debug for ServerConfig {
    // Manual impl: `Wal` owns raw file handles and has no `Debug`;
    // show presence only.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("ingress", &self.ingress)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("io_threads", &self.io_threads)
            .field("pipeline", &self.pipeline)
            .field("idle_timeout", &self.idle_timeout)
            .field("max_conn_bytes", &self.max_conn_bytes)
            .field("max_conn_ops", &self.max_conn_ops)
            .field("max_connections", &self.max_connections)
            .field("auth", &self.auth.as_ref().map(|_| "<redacted>"))
            .field("durability", &self.durability)
            .field("wal", &self.wal.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("repl", &self.repl.is_some())
            .field("replica_of", &self.replica_of)
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ingress: IngressConfig::default(),
            checkpoint_every: 0,
            io_threads: 2,
            pipeline: 512,
            idle_timeout: None,
            max_conn_bytes: 0,
            max_conn_ops: 0,
            max_connections: 0,
            auth: None,
            durability: DurabilityPolicy::default(),
            wal: None,
            metrics: None,
            repl: None,
            replica_of: None,
        }
    }
}

/// Counters reported by [`serve`] after the drain completes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections: usize,
    /// Requests parsed (all verbs and frames, malformed ones included).
    pub requests: usize,
    /// `invoke` requests answered `ok`.
    pub admitted: usize,
    /// `invoke` requests answered `violation …`.
    pub rejected: usize,
    /// Requests answered `error …` (parse errors, unknown verbs,
    /// unknown transactions, durability failures).
    pub errors: usize,
    /// The admission-side counters of the ingress behind the server.
    pub ingress: IngressStats,
}

/// Longest accepted request: a text line (newline included) or a binary
/// frame payload. A peer that streams more is answered with an error
/// and disconnected — the cap is enforced *while* the request
/// accumulates, so per-connection memory stays bounded no matter what
/// arrives on the socket.
pub const MAX_LINE: u64 = 64 * 1024;

/// Parse one transaction invocation `Name(arg, …)`: a bare `Name()`
/// call with comma-separated arguments — `"double-quoted"` strings,
/// decimal integers, anything else a bare string. This is the argument
/// grammar of both the `invoke` wire verb and `migctl enforce`'s script
/// lines (the CLI delegates here), so scripts replay over the wire
/// unchanged.
pub fn parse_invocation(line: &str) -> Result<(&str, Vec<Value>), String> {
    let line = line.trim();
    let err = |msg: &str| format!("{msg}: `{line}`");
    let open = line.find('(').ok_or_else(|| err("expected `Name(args…)`"))?;
    let close = line.rfind(')').ok_or_else(|| err("missing `)`"))?;
    if close < open {
        return Err(err("missing `)`"));
    }
    let name = line[..open].trim();
    if name.is_empty() {
        return Err(err("empty transaction name"));
    }
    let inner = &line[open + 1..close];
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        for part in inner.split(',') {
            let part = part.trim();
            let v = if let Some(stripped) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"'))
            {
                Value::str(stripped)
            } else if let Ok(i) = part.parse::<i64>() {
                Value::int(i)
            } else {
                Value::str(part)
            };
            args.push(v);
        }
    }
    Ok((name, args))
}

/// Parse one `query` request body: `Class` (every current member) or
/// `Class(Attr=value, …)` (members satisfying the conjunction). Values
/// follow [`parse_invocation`]'s grammar: `"quoted"` strings, decimal
/// integers, anything else a bare string. Returns the class and the
/// compiled [`Condition`](migratory_model::Condition) — evaluation
/// itself runs on the admission worker via a read-only admin op, so a
/// query observes a block-consistent state.
pub fn parse_query(
    schema: &Schema,
    body: &str,
) -> Result<(migratory_model::ClassId, migratory_model::Condition), String> {
    use migratory_model::{Atom, Condition};
    let body = body.trim();
    let err = |msg: &str| format!("{msg}: `{body}`");
    let (name, inner) = match body.find('(') {
        None => {
            if body.is_empty() {
                return Err(err("expected `query Class` or `query Class(Attr=value, …)`"));
            }
            (body, "")
        }
        Some(open) => {
            let close = body.rfind(')').ok_or_else(|| err("missing `)`"))?;
            if close < open {
                return Err(err("missing `)`"));
            }
            (body[..open].trim(), &body[open + 1..close])
        }
    };
    let class = schema.class_id(name).ok_or_else(|| format!("unknown class `{name}`"))?;
    let mut atoms = Vec::new();
    if !inner.trim().is_empty() {
        for part in inner.split(',') {
            let (attr, value) = part.split_once('=').ok_or_else(|| err("expected `Attr=value`"))?;
            let attr = attr.trim();
            let attr = schema.attr_id(attr).ok_or_else(|| format!("unknown attribute `{attr}`"))?;
            let value = value.trim();
            let v = if let Some(s) = value.strip_prefix('"').and_then(|p| p.strip_suffix('"')) {
                Value::str(s)
            } else if let Ok(i) = value.parse::<i64>() {
                Value::int(i)
            } else {
                Value::str(value)
            };
            atoms.push(Atom::eq_const(attr, v));
        }
    }
    Ok((class, Condition::from_atoms(atoms)))
}

/// Constraint-evolution gauges: read by the `stats` verb on the event
/// threads, stored by the `redefine` admin op on the admission worker
/// once its record is durable, and mirrored into the Prometheus
/// metrics when those are configured. Seeded from the monitor at serve
/// time, so a recovered server reports its recovered epoch.
pub(super) struct EvolutionGauges {
    /// Current inventory epoch.
    pub(super) epoch: AtomicU64,
    /// Redefinitions applied over the monitor's history.
    pub(super) redefines: AtomicU64,
    /// Objects quarantined across every redefinition.
    pub(super) quarantined: AtomicU64,
}

/// Per-server state shared by every event thread.
struct ServerShared<'h> {
    /// Precomputed `schema` reply (the schema is immutable).
    schema_line: String,
    /// Admission lanes behind the server (for the `stats` reply).
    lanes: usize,
    /// Degraded-mode flag and checkpoint status, shared with the
    /// admission worker and (via the caller) the snapshotter.
    health: &'h Health,
    /// Admission histograms for the `stats prom` verb (absent when the
    /// server was configured without them — `stats prom` then returns
    /// an empty payload).
    metrics: Option<Arc<AdmissionMetrics>>,
    /// The schema behind the monitor: the `redefine` verb parses its
    /// new-inventory source against it on the event thread.
    schema: &'h Schema,
    /// The role alphabet the inventory source is parsed over.
    alphabet: &'h RoleAlphabet,
    /// Evolution gauges for the `stats` line (`Arc`: the redefine admin
    /// op's completion outlives the event threads' borrows).
    evo: Arc<EvolutionGauges>,
    /// Replica switchboard, present only when serving `--replica-of`:
    /// write verbs are refused while it is read-only, and the `promote`
    /// verb flips it.
    replica: Option<Arc<super::repl::ReplicaCtl>>,
    /// Replication tee, present only when serving `--repl-addr`: the
    /// `stats` line reports its attached-peer count and shipped horizon
    /// (the signal an operator waits on before opening `replica-K`
    /// traffic).
    repl: Option<Arc<super::repl::Replicator>>,
}

/// The `stats` verb's reply, formatted at the requesting connection's
/// flush moment.
fn stats_line(ev: &event::EventShared, shared: &ServerShared<'_>) -> String {
    let mut line = format!(
        "ok stats requests={} admitted={} rejected={} errors={} connections={} lanes={} \
         degraded={} last_checkpoint={} epoch={} redefines={} quarantined={}",
        ev.requests.load(Ordering::SeqCst),
        ev.admitted.load(Ordering::SeqCst),
        ev.rejected.load(Ordering::SeqCst),
        ev.errors.load(Ordering::SeqCst),
        ev.connections.load(Ordering::SeqCst),
        shared.lanes,
        if shared.health.is_degraded() { "yes" } else { "no" },
        shared.health.checkpoint_token(),
        shared.evo.epoch.load(Ordering::SeqCst),
        shared.evo.redefines.load(Ordering::SeqCst),
        shared.evo.quarantined.load(Ordering::SeqCst),
    );
    // Replication fields trail the stable flat line and appear only on
    // replicating servers, so the line is byte-identical to the
    // standalone form everywhere else.
    if let Some(repl) = &shared.repl {
        use std::fmt::Write as _;
        let _ = write!(
            line,
            " repl=primary replicas={} shipped={}",
            repl.live_replicas(),
            repl.horizon()
        );
    }
    if let Some(ctl) = &shared.replica {
        use std::fmt::Write as _;
        let role = if ctl.is_read_only() { "replica" } else { "promoted" };
        let _ =
            write!(line, " repl={role} applied={} horizon={}", ctl.applied(), ctl.stream_horizon());
    }
    line
}

/// The complete reply bytes of a `stats` request, formatted at the
/// requesting connection's flush moment. `prom` selects the Prometheus
/// text exposition (framed `ok prom <len>\n<payload>` so the reader
/// knows where the multi-line payload ends); plain `stats` keeps its
/// flat single-line form byte-for-byte.
fn stats_reply(ev: &event::EventShared, shared: &ServerShared<'_>, prom: bool) -> Vec<u8> {
    if prom {
        let body =
            shared.metrics.as_deref().map(AdmissionMetrics::render_prometheus).unwrap_or_default();
        let mut out = format!("ok prom {}\n", body.len()).into_bytes();
        out.extend_from_slice(body.as_bytes());
        out
    } else {
        let mut line = stats_line(ev, shared).into_bytes();
        line.push(b'\n');
        line
    }
}

/// Serve the wire protocol on `listener` until a client sends
/// `shutdown` (or the process dies): accept concurrent connections,
/// map each onto an ingress producer, answer every request in order on
/// its own socket, then drain gracefully — every in-flight `invoke` is
/// answered before its socket closes and the call returns.
///
/// Attach policy and [`CommitSink`](super::CommitSink) to the monitor
/// *before* serving; `maintenance` runs on the admission worker every
/// [`ServerConfig::checkpoint_every`] blocks with exclusive access to
/// the monitor (see [`ingress::serve_with`]).
///
/// # Errors
/// Propagates the listener's fatal I/O errors (per-connection I/O
/// errors only end that connection).
pub fn serve<'a, 't>(
    listener: TcpListener,
    monitor: &mut ShardedMonitor<'a>,
    ts: &'t TransactionSchema,
    config: &ServerConfig,
    maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
) -> std::io::Result<NetStats> {
    let health = Health::new();
    serve_guarded(listener, monitor, ts, config, &health, maintenance)
}

/// [`serve`] with a caller-owned [`Health`]: the admission worker
/// degrades it on persistent write-ahead failure, the `stats` verb and
/// `rearm` verb read and clear it, and the caller can share the same
/// handle with a [`Snapshotter`](super::Snapshotter) (via
/// [`Snapshotter::spawn_with`](super::Snapshotter::spawn_with)) so
/// checkpoint failures surface in the same place — this is what
/// `migctl serve` does.
///
/// # Errors
/// Propagates the listener's fatal I/O errors (per-connection I/O
/// errors only end that connection).
pub fn serve_guarded<'a, 't>(
    listener: TcpListener,
    monitor: &mut ShardedMonitor<'a>,
    ts: &'t TransactionSchema,
    config: &ServerConfig,
    health: &Health,
    maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
) -> std::io::Result<NetStats> {
    listener.set_nonblocking(true)?;
    // Re-arm the accept backlog: std's bind hardcodes 128, which makes
    // any >128-client connect burst sit out SYN retransmit timeouts.
    // Best-effort — the kernel caps it at `somaxconn`, and a listener
    // that somehow refuses stays at std's default.
    let _ = polling::set_backlog(listener.as_raw_fd(), 4096);
    let alphabet = monitor.alphabet();
    let mut schema_line = format!(
        "ok schema components={} shards={} transactions",
        monitor.schema().num_components(),
        monitor.num_shards()
    );
    for t in ts.transactions() {
        schema_line.push_str(&format!(" {}/{}", t.name, t.params.len()));
    }
    let evo = Arc::new(EvolutionGauges {
        epoch: AtomicU64::new(monitor.epoch()),
        redefines: AtomicU64::new(monitor.redefine_total()),
        quarantined: AtomicU64::new(monitor.quarantined_total()),
    });
    if let Some(m) = config.metrics.as_deref() {
        m.epoch.store(monitor.epoch(), Ordering::SeqCst);
        m.redefine_total.store(monitor.redefine_total(), Ordering::SeqCst);
        m.quarantined_objects.store(monitor.quarantined_total(), Ordering::SeqCst);
    }
    if (config.repl.is_some() || config.replica_of.is_some()) && config.wal.is_none() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "replication requires the durable pipeline (serve with a wal handle)",
        ));
    }
    if config.repl.is_some() && config.replica_of.is_some() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a server is a primary (repl) or a replica (replica_of), not both",
        ));
    }
    let replica = config.replica_of.as_deref().map(|a| Arc::new(super::repl::ReplicaCtl::new(a)));
    let shared = ServerShared {
        schema_line,
        lanes: if monitor.routes_by_component() { monitor.num_shards() } else { 1 },
        health,
        metrics: config.metrics.clone(),
        schema: monitor.schema(),
        alphabet,
        evo,
        replica: replica.clone(),
        repl: config.repl.clone(),
    };
    let ev = event::EventShared::new(config.io_threads.max(1))?;
    // Flags the replication side threads (acceptor / puller) to exit
    // once the event core returned; they are joined before the ingress
    // drains, so admin ops they posted are always answered.
    let repl_stop = std::sync::atomic::AtomicBool::new(false);
    let (run_result, ingress_stats) = match config.wal.clone() {
        Some(wal) => {
            let puller_wal = wal.clone();
            let out = ingress::serve_pipelined_repl(
                monitor,
                &config.ingress,
                &config.durability,
                health,
                wal,
                config.metrics.as_deref(),
                config.repl.clone(),
                config.checkpoint_every,
                maintenance,
                |client| {
                    std::thread::scope(|rs| {
                        if let Some(repl) = &config.repl {
                            rs.spawn(|| super::repl::acceptor(repl, client, &repl_stop));
                        }
                        if let Some(ctl) = &replica {
                            let (wal, metrics) = (&puller_wal, config.metrics.as_ref());
                            rs.spawn(move || {
                                super::repl::puller(ctl.upstream(), ctl, wal, client, metrics);
                            });
                        }
                        let out = event::run(&listener, client, ts, alphabet, &shared, config, &ev);
                        repl_stop.store(true, Ordering::SeqCst);
                        if let Some(ctl) = &replica {
                            ctl.request_stop();
                        }
                        out
                    })
                },
            );
            // Close the tee only after the pipeline returned: the
            // worker drains and ships the tail *after* the event core
            // stops accepting traffic.
            if let Some(repl) = &config.repl {
                repl.close();
            }
            out
        }
        None => ingress::serve_guarded(
            monitor,
            &config.ingress,
            &config.durability,
            health,
            config.checkpoint_every,
            maintenance,
            |client| event::run(&listener, client, ts, alphabet, &shared, config, &ev),
        ),
    };
    run_result?;
    Ok(NetStats {
        connections: ev.connections.load(Ordering::SeqCst),
        requests: ev.requests.load(Ordering::SeqCst),
        admitted: ev.admitted.load(Ordering::SeqCst),
        rejected: ev.rejected.load(Ordering::SeqCst),
        errors: ev.errors.load(Ordering::SeqCst),
        ingress: ingress_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::RoleAlphabet;
    use crate::enforce::StepPolicy;
    use crate::{Inventory, PatternKind};
    use migratory_lang::parse_transactions;
    use migratory_model::SchemaBuilder;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn multi_schema() -> migratory_model::Schema {
        let mut b = SchemaBuilder::new();
        for r in 0..2 {
            let root = b.class(&format!("R{r}"), &[&format!("K{r}")]).unwrap();
            b.subclass(&format!("S{r}"), &[root], &[]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn invocation_parsing_matches_script_grammar() {
        let (name, args) = parse_invocation("Mk(1, \"two words\", bare)").unwrap();
        assert_eq!(name, "Mk");
        assert_eq!(args, vec![Value::int(1), Value::str("two words"), Value::str("bare")]);
        let (name, args) = parse_invocation("  Noop()  ").unwrap();
        assert_eq!((name, args.len()), ("Noop", 0));
        assert!(parse_invocation("Mk 1").is_err());
        assert!(parse_invocation("(1)").is_err());
        assert!(parse_invocation("Mk)1(").is_err());
    }

    /// End to end over a real socket: verbs, per-connection reply
    /// order, violation diagnostics, drain on `shutdown`.
    #[test]
    fn serves_verbs_and_drains_on_shutdown() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
            transaction Mk1(x) { create(R1, { K1 = x }); }
        ",
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2)
                    .with_policy(StepPolicy::EveryApplication);
                serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
            });
            let conn = TcpStream::connect(addr).unwrap();
            let mut w = conn.try_clone().unwrap();
            let mut replies = BufReader::new(conn).lines().map(|l| l.unwrap());
            let mut ask = |req: &str| {
                writeln!(w, "{req}").unwrap();
                replies.next().expect("one reply per request")
            };
            assert_eq!(ask("ping"), "ok pong");
            assert!(ask("schema").contains("transactions Mk0/1 Up0/1 Mk1/1"));
            assert_eq!(ask("invoke Mk0(a)"), "ok");
            assert_eq!(ask("invoke Mk1(b)"), "ok");
            let v = ask("invoke Up0(a)");
            assert!(v.starts_with("violation "), "specialization is forbidden: {v}");
            assert!(v.contains("[S0]"), "diagnostic names the offending role set: {v}");
            assert!(ask("invoke Nope(1)").starts_with("error unknown transaction"));
            assert!(ask("invoke Mk0").starts_with("error "));
            assert!(ask("bogus").starts_with("error unknown verb"));
            let st = ask("stats");
            assert!(st.contains("admitted=2 rejected=1"), "{st}");
            assert_eq!(ask("shutdown"), "ok draining");
            server.join().unwrap()
        });
        assert_eq!(stats.connections, 1);
        assert_eq!((stats.admitted, stats.rejected), (2, 1));
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.ingress.admitted, 2);
    }

    /// `quit` ends one connection without touching the server; the
    /// socket reads EOF after `ok bye`.
    #[test]
    fn quit_closes_one_connection_only() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(&s, "transaction Mk0(x) { create(R0, { K0 = x }); }").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
                serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
            });
            let mut first = TcpStream::connect(addr).unwrap();
            first.write_all(b"invoke Mk0(x)\nquit\n").unwrap();
            let mut lines = Vec::new();
            BufReader::new(&first).read_to_end_lines(&mut lines);
            assert_eq!(lines, vec!["ok".to_owned(), "ok bye".to_owned()]);
            // The server is still alive for a second connection.
            let mut second = TcpStream::connect(addr).unwrap();
            second.write_all(b"invoke Mk0(y)\nshutdown\n").unwrap();
            let mut lines = Vec::new();
            BufReader::new(&second).read_to_end_lines(&mut lines);
            assert_eq!(lines, vec!["ok".to_owned(), "ok draining".to_owned()]);
            server.join().unwrap()
        });
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.admitted, 2);
    }

    /// A request line longer than [`MAX_LINE`] is answered with one
    /// error reply and the connection is closed — per-connection memory
    /// is bounded, the server survives.
    #[test]
    fn oversized_request_line_is_refused() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(&s, "transaction Mk0(x) { create(R0, { K0 = x }); }").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
                serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
            });
            let mut flood = TcpStream::connect(addr).unwrap();
            let junk = vec![b'x'; MAX_LINE as usize + 4096];
            // The server may reset mid-flood (it stops reading and
            // closes with bytes still in flight), so the write and the
            // reply read may both fail — what matters is that the
            // connection dies promptly and the server survives.
            let _ = flood.write_all(&junk);
            let mut lines = Vec::new();
            for line in BufReader::new(&flood).lines() {
                let Ok(line) = line else { break }; // reset mid-read is fine
                lines.push(line);
            }
            assert!(lines.len() <= 1, "at most the one error reply: {lines:?}");
            if let Some(reply) = lines.first() {
                assert!(reply.starts_with("error request line exceeds"), "{reply}");
            }
            // The server is unharmed: a well-behaved client still works.
            let mut ok = TcpStream::connect(addr).unwrap();
            ok.write_all(b"invoke Mk0(fine)\nshutdown\n").unwrap();
            let mut lines = Vec::new();
            BufReader::new(&ok).read_to_end_lines(&mut lines);
            assert_eq!(lines, vec!["ok".to_owned(), "ok draining".to_owned()]);
            server.join().unwrap()
        });
        assert_eq!(stats.admitted, 1);
    }

    /// Binary frames and text lines interleave on one connection, each
    /// answered in its own dialect, and `invoke` frames admit exactly
    /// like their text twins.
    #[test]
    fn binary_frames_interleave_with_text_on_one_connection() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
        ",
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2)
                    .with_policy(StepPolicy::EveryApplication);
                serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
            });
            let mut conn = TcpStream::connect(addr).unwrap();
            // Text, then frame, then text again — one write.
            let mut wire = Vec::new();
            wire.extend_from_slice(b"invoke Mk0(t1)\n");
            frame::encode_invoke_frame(&mut wire, "Mk0", &[Value::str("b1")]);
            frame::encode_invoke_frame(&mut wire, "Up0", &[Value::str("t1")]);
            frame::encode_invoke_frame(&mut wire, "Nope", &[]);
            wire.extend_from_slice(b"ping\n");
            conn.write_all(&wire).unwrap();
            let mut r = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert_eq!(line, "ok\n");
            let (kind, payload) = frame::read_frame(&mut r).unwrap();
            assert_eq!((kind, payload.len()), (frame::REP_OK, 0));
            let (kind, payload) = frame::read_frame(&mut r).unwrap();
            assert_eq!(kind, frame::REP_VIOLATION);
            assert!(String::from_utf8(payload).unwrap().contains("[S0]"));
            let (kind, payload) = frame::read_frame(&mut r).unwrap();
            assert_eq!(kind, frame::REP_ERROR);
            assert!(String::from_utf8(payload).unwrap().contains("unknown transaction"));
            line.clear();
            r.read_line(&mut line).unwrap();
            assert_eq!(line, "ok pong\n");
            conn.write_all(b"shutdown\n").unwrap();
            line.clear();
            r.read_line(&mut line).unwrap();
            assert_eq!(line, "ok draining\n");
            server.join().unwrap()
        });
        assert_eq!((stats.admitted, stats.rejected, stats.errors), (2, 1, 1));
        assert_eq!(stats.requests, 6);
    }

    /// The durable pipeline behind the socket front end: acks arrive
    /// only after the committer synced, `stats prom` exposes the
    /// admission histograms length-prefixed, the flat `stats` line is
    /// untouched, and the log alone recovers every acked op.
    #[test]
    fn durable_pipeline_serves_and_answers_stats_prom() {
        use crate::enforce::{FsyncPolicy, Wal};
        use std::io::Read;
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(&s, "transaction Mk0(x) { create(R0, { K0 = x }); }").unwrap();
        let dir = std::env::temp_dir().join(format!("migratory-net-prom-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap().with_fsync(FsyncPolicy::Batch)));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let metrics = Arc::new(AdmissionMetrics::new(2));
        let config = ServerConfig {
            wal: Some(wal.clone()),
            metrics: Some(metrics.clone()),
            ..ServerConfig::default()
        };
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
                serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
            });
            let conn = TcpStream::connect(addr).unwrap();
            let mut w = conn.try_clone().unwrap();
            let mut r = BufReader::new(conn);
            let mut line = String::new();
            w.write_all(b"invoke Mk0(a)\ninvoke Mk0(b)\nstats prom\n").unwrap();
            for _ in 0..2 {
                line.clear();
                r.read_line(&mut line).unwrap();
                assert_eq!(line, "ok\n");
            }
            line.clear();
            r.read_line(&mut line).unwrap();
            let len: usize = line.strip_prefix("ok prom ").expect(&line).trim().parse().unwrap();
            let mut payload = vec![0u8; len];
            r.read_exact(&mut payload).unwrap();
            let text = String::from_utf8(payload).unwrap();
            assert!(text.contains("# TYPE migratory_commit_latency_us histogram"), "{text}");
            assert!(text.contains("migratory_fsync_batch_count"), "{text}");
            // The flat form is byte-compatible with the pre-pipeline
            // server (scripts and tests parse it).
            w.write_all(b"stats\nshutdown\n").unwrap();
            line.clear();
            r.read_line(&mut line).unwrap();
            assert!(line.starts_with("ok stats requests="), "{line}");
            line.clear();
            r.read_line(&mut line).unwrap();
            assert_eq!(line, "ok draining\n");
            server.join().unwrap()
        });
        assert_eq!(stats.admitted, 2);
        assert!(metrics.fsync_batch.count() >= 1, "committer stamped its batches");
        assert!(metrics.commit_latency_us.iter().map(|h| h.count()).sum::<u64>() >= 1);
        // Acked ⇒ durable: the log alone rebuilds both objects.
        let (snap, tail) = Wal::load(&dir).unwrap();
        let m = ShardedMonitor::recover(&s, &a, &inv, PatternKind::All, 2, snap, tail).unwrap();
        assert_eq!(m.db().num_objects(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Read every remaining line until EOF (test helper).
    trait ReadLines {
        fn read_to_end_lines(self, out: &mut Vec<String>);
    }
    impl<R: std::io::Read> ReadLines for BufReader<R> {
        fn read_to_end_lines(self, out: &mut Vec<String>) {
            for line in self.lines() {
                out.push(line.unwrap());
            }
        }
    }
}

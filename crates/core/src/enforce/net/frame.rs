//! Length-prefixed binary framing — the wire protocol's hot-path
//! dialect (see `docs/PROTOCOL.md` § Binary framing, the normative
//! specification kept in lockstep with these constants by a conformance
//! test).
//!
//! A frame is a 6-byte header followed by `len` payload bytes:
//!
//! ```text
//! offset  size  field
//! 0       1     MAGIC (0xB5)
//! 1       1     kind
//! 2       4     len — payload length, u32 little-endian
//! 6       len   payload
//! ```
//!
//! [`MAGIC`] is a UTF-8 *continuation* byte: no valid UTF-8 text line
//! can begin with it, so the server decides the dialect per request
//! from the first byte alone — text and binary frames interleave freely
//! on one connection, and each request is answered in its own dialect.
//!
//! Request payloads are [`migratory_lang::codec`] encodings
//! ([`encode_invoke_frame`]); reply payloads are UTF-8 diagnostics
//! (empty for [`REP_OK`]), carrying the same text a `violation …` /
//! `error …` line would after its first token. The payload length is
//! bounded by [`MAX_PAYLOAD`] — the same 64 KiB request cap as the text
//! dialect — and an oversized length prefix is refused as soon as the
//! header parses, before any payload accumulates.

use migratory_model::Value;
use std::io::Read;

/// First byte of every frame. A UTF-8 continuation byte, so it can
/// never start a valid text request — dialect dispatch needs one byte.
pub const MAGIC: u8 = 0xB5;

/// Request frame: one transaction invocation; payload is
/// [`migratory_lang::codec::encode_invoke`] bytes.
pub const REQ_INVOKE: u8 = 0x01;

/// Request frame: redefine the constraint inventory online. Payload is
/// one residue-policy byte
/// ([`ResiduePolicy::as_byte`](crate::enforce::ResiduePolicy::as_byte))
/// followed by the new inventory in migratory-lang source form (UTF-8,
/// the rest of the payload). Answered [`REP_OK`] with payload
/// `epoch=<N> residue=<K>`, or [`REP_ERROR`] with the refusal.
pub const REQ_REDEFINE: u8 = 0x02;

/// Request frame: indexed query against the current database image.
/// Payload is the UTF-8 query text `Class` or `Class(Attr=value,...)` —
/// the text dialect's `query` verb body. Answered [`REP_OK`] with
/// payload `query count=<N> oids=<o1,o2,...>` (first 32 oids), or
/// [`REP_ERROR`] with the refusal. Served by replicas.
pub const REQ_QUERY: u8 = 0x03;

/// Reply frame: the invocation was admitted (durably, when a sink is
/// attached). Empty payload.
pub const REP_OK: u8 = 0x81;

/// Reply frame: the invocation was rejected; payload is the UTF-8
/// violation diagnostic (the text dialect's `violation ` line body).
pub const REP_VIOLATION: u8 = 0x82;

/// Reply frame: the request failed; payload is the UTF-8 error message
/// (the text dialect's `error ` line body).
pub const REP_ERROR: u8 = 0x83;

/// Header bytes before the payload: magic, kind, u32-LE length.
pub const HEADER_LEN: usize = 6;

/// Longest accepted frame payload — the binary dialect's request cap,
/// equal to the text dialect's [`MAX_LINE`](super::MAX_LINE).
pub const MAX_PAYLOAD: u32 = super::MAX_LINE as u32;

/// Result of [`scan`]ning a buffer that starts with [`MAGIC`].
#[derive(Debug, PartialEq, Eq)]
pub enum Scan {
    /// The buffer holds a frame prefix; more bytes are needed.
    Incomplete,
    /// The header declares a payload beyond [`MAX_PAYLOAD`]: refuse and
    /// tear the connection down *now*, without buffering the payload.
    Oversized(u32),
    /// A complete frame: `kind`, and `payload_len` bytes starting at
    /// [`HEADER_LEN`]. The frame occupies `HEADER_LEN + payload_len`
    /// buffer bytes.
    Frame {
        /// The frame's kind byte.
        kind: u8,
        /// Length of the payload following the header.
        payload_len: usize,
    },
}

/// Incrementally scan `buf` (which must start at a frame boundary with
/// [`MAGIC`]) for one complete frame. Total: any byte soup yields
/// [`Scan::Incomplete`], [`Scan::Oversized`] or a bounded frame.
#[must_use]
pub fn scan(buf: &[u8]) -> Scan {
    debug_assert_eq!(buf.first(), Some(&MAGIC), "scan starts at a frame boundary");
    if buf.len() < HEADER_LEN {
        return Scan::Incomplete;
    }
    let kind = buf[1];
    let len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]);
    if len > MAX_PAYLOAD {
        return Scan::Oversized(len);
    }
    let payload_len = len as usize;
    if buf.len() < HEADER_LEN + payload_len {
        return Scan::Incomplete;
    }
    Scan::Frame { kind, payload_len }
}

/// Append one frame (header + payload) to `out`.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — replies are bounded by
/// construction and request encoders must respect the request cap.
pub fn encode(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("payload fits a u32");
    assert!(len <= MAX_PAYLOAD, "frame payload exceeds the request cap");
    out.push(MAGIC);
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Append one [`REQ_INVOKE`] frame for `name(args…)` to `out` — the
/// client-side encoder used by `migctl client --binary` and the bench
/// driver.
pub fn encode_invoke_frame(out: &mut Vec<u8>, name: &str, args: &[Value]) {
    let mut payload = Vec::new();
    migratory_lang::codec::encode_invoke(&mut payload, name, args);
    encode(out, REQ_INVOKE, &payload);
}

/// Append one [`REQ_REDEFINE`] frame to `out` — the client-side encoder
/// used by `migctl client --binary` script lines and the fuzz suite.
pub fn encode_redefine_frame(
    out: &mut Vec<u8>,
    policy: crate::enforce::ResiduePolicy,
    source: &str,
) {
    let mut payload = Vec::with_capacity(1 + source.len());
    payload.push(policy.as_byte());
    payload.extend_from_slice(source.as_bytes());
    encode(out, REQ_REDEFINE, &payload);
}

/// Append one [`REQ_QUERY`] frame to `out` — the client-side encoder
/// used by `migctl client --binary` script lines and the replica tests.
pub fn encode_query_frame(out: &mut Vec<u8>, query: &str) {
    encode(out, REQ_QUERY, query.as_bytes());
}

/// Blocking client-side helper: read exactly one frame off `r`.
/// Refuses a bad magic byte or an oversized length prefix with
/// `InvalidData` — a client must never mirror the server's buffers.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<(u8, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0] != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("expected frame magic {MAGIC:#04x}, got {:#04x}", header[0]),
        ));
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if len > MAX_PAYLOAD {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_PAYLOAD} bytes"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((header[1], payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_walks_partial_prefixes_to_a_frame() {
        let mut bytes = Vec::new();
        encode_invoke_frame(&mut bytes, "Mk", &[Value::int(7), Value::str("x")]);
        for cut in 1..bytes.len() {
            assert_eq!(scan(&bytes[..cut]), Scan::Incomplete, "prefix of {cut} bytes");
        }
        let Scan::Frame { kind, payload_len } = scan(&bytes) else {
            panic!("complete frame must scan");
        };
        assert_eq!(kind, REQ_INVOKE);
        assert_eq!(HEADER_LEN + payload_len, bytes.len());
        let mut r = migratory_model::codec::Reader::new(&bytes[HEADER_LEN..]);
        let (name, args) = migratory_lang::codec::decode_invoke(&mut r).unwrap();
        assert_eq!(name, "Mk");
        assert_eq!(args, vec![Value::int(7), Value::str("x")]);
    }

    #[test]
    fn oversized_length_prefix_is_refused_at_header_parse() {
        // The header alone is enough: no payload bytes are present, yet
        // the scan already refuses — the accumulation-cap bugfix.
        let mut buf = vec![MAGIC, REQ_INVOKE];
        buf.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(scan(&buf), Scan::Oversized(MAX_PAYLOAD + 1));
        assert_eq!(scan(&[MAGIC, REQ_INVOKE, 0xff, 0xff, 0xff, 0xff]), Scan::Oversized(u32::MAX));
    }

    #[test]
    fn read_frame_round_trips_and_rejects_garbage() {
        let mut bytes = Vec::new();
        encode(&mut bytes, REP_VIOLATION, "diag".as_bytes());
        let (kind, payload) = read_frame(&mut &bytes[..]).unwrap();
        assert_eq!((kind, payload.as_slice()), (REP_VIOLATION, "diag".as_bytes()));
        // Bad magic.
        assert!(read_frame(&mut &b"not a frame"[..]).is_err());
        // Truncated payload.
        let mut cut = Vec::new();
        encode(&mut cut, REP_ERROR, b"boom");
        cut.truncate(cut.len() - 1);
        assert!(read_frame(&mut &cut[..]).is_err());
        // Oversized length prefix.
        let mut big = vec![MAGIC, REP_OK];
        big.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_frame(&mut &big[..]).is_err());
    }
}

//! Shared state machinery of the delta/cohort admission engines.
//!
//! A [`DeltaState`] tracks one *partition* of the object population —
//! the whole database for the single [`Monitor`](super::Monitor), one
//! shard of it for the [`ShardedMonitor`](super::ShardedMonitor). It
//! owns the run-length-encoded per-object records and the cohort table
//! (objects grouped by indistinguishable (DFA state, role symbol)
//! pairs), **and its own letter clock**: `steps` counts the letters
//! this partition has read, and the never-created class's DFA walk
//! (`pre_state`, `pre_exempt`) advances in the same shard-local time.
//! Every step index stored in a record — creation steps, RLE segment
//! starts — is a position on the owning partition's clock, so disjoint
//! partitions share *no* mutable state at all (Lemma 3.5: objects
//! evolve independently; under a component alphabet, objects of
//! different components never read each other's letters). The single
//! [`Monitor`](super::Monitor) is the one-partition case, where the
//! shard-local clock *is* the paper's global step counter.
//!
//! Admission runs through one staged, read-only pass
//! ([`DeltaState::stage_batch`]) and one write-back
//! ([`DeltaState::commit_batch`]): `k` letters are validated against
//! **one** cohort sweep, advancing each untouched cohort `k` DFA steps
//! in a single pass and replaying touched objects' interleaved
//! touch/untouched chains individually. The single-step engines are the
//! `k = 1` case of the same code path.
//!
//! Batch validation leans on the inventory being prefix-closed
//! (Definition 3.3): in any DFA of a prefix-closed language every
//! *reachable* non-accepting state is a trap, so checking the endpoint
//! of a run of identical letters is equivalent to checking every
//! intermediate step. Staging is read-only (`&self`), which is what lets
//! the sharded monitor stage all shards concurrently; commits are only
//! applied once every shard has accepted.
//!
//! For incremental checkpoints (`enforce::wal`), the state also keeps a
//! **dirty set**: the oids whose record or database state may have
//! changed since the last checkpoint capture. [`DeltaState::compact`]
//! rewrites every record's cohort slot, so it flips `all_dirty` and the
//! next capture carries the full record table.
//!
//! [`diagnose_step`] reproduces the reference engine's whole-database,
//! ascending-oid rejection scan over any record iterator, so single and
//! sharded monitors report byte-identical [`Violation`]s.

use super::Violation;
use crate::alphabet::RoleAlphabet;
use crate::pattern::{MigrationPattern, PatternKind};
use migratory_automata::Dfa;
use migratory_lang::{Delta, ObjectDelta};
use migratory_model::{ClassSet, Oid, RoleSet, Schema};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// The always-present cohort of exempt objects (never stepped, never
/// checked).
pub(crate) const EXEMPT: u32 = 0;

/// Run-length-encoded tracking record of one object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct ObjRecord {
    /// 1-based step at which the object was created.
    pub(crate) creation_step: usize,
    /// `(letter, from_step)` segments; a new segment is appended only
    /// when the role symbol changes, so length is the number of role
    /// *changes*, not the run length. The last segment extends to the
    /// current step.
    pub(crate) segments: Vec<(u32, usize)>,
    /// Cohort the object currently belongs to (follow `parent` links).
    pub(crate) cohort: u32,
}

impl ObjRecord {
    pub(crate) fn current_role(&self) -> u32 {
        self.segments.last().expect("non-empty").0
    }

    /// Reconstruct the full pattern through global step `upto`.
    pub(crate) fn pattern_through(&self, empty: u32, upto: usize) -> MigrationPattern {
        let mut p = Vec::with_capacity(upto);
        p.resize(self.creation_step - 1, empty);
        for (i, &(letter, from)) in self.segments.iter().enumerate() {
            let end = match self.segments.get(i + 1) {
                Some(&(_, next_from)) => next_from - 1,
                None => upto,
            };
            p.resize(p.len() + (end + 1 - from), letter);
        }
        p
    }
}

/// A group of objects indistinguishable to the DFA: same state, same
/// current role symbol, same exemption status. Untouched cohorts advance
/// with **one** `dfa.step` regardless of how many objects they hold.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Cohort {
    pub(crate) state: u32,
    pub(crate) last_role: u32,
    pub(crate) size: usize,
    /// Union-find forwarding after merges; a root has `parent == id`.
    pub(crate) parent: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Target {
    Exempt,
    Key(u32, u32),
}

#[derive(Clone, PartialEq, Eq, Default)]
pub(crate) struct DeltaState {
    pub(crate) records: BTreeMap<Oid, ObjRecord>,
    pub(crate) cohorts: Vec<Cohort>,
    /// Root non-exempt cohorts, by (DFA state, last role symbol). A
    /// `BTreeMap` on purpose: cohort sweeps iterate this table, and
    /// iteration order decides slot allocation and merge-survivor choice
    /// — ordered iteration makes the whole engine **deterministic**,
    /// which is what lets WAL recovery reproduce tracking state
    /// byte-identically (see `enforce::wal`).
    pub(crate) by_key: BTreeMap<(u32, u32), u32>,
    /// Cohort slots emptied by a step, reused before growing `cohorts`.
    /// Forwarding slots (merge / exemption-fold survivors with members
    /// still routed through them) cannot be freed eagerly; when they
    /// outgrow the record count, [`DeltaState::compact`] rebuilds the
    /// table — amortized O(1) per application, keeping resident state at
    /// O(live cohorts + records).
    pub(crate) free: Vec<u32>,
    /// Touched-object count of the last admitted application.
    pub(crate) last_touched: usize,
    /// **The letter clock**: effective letters this partition has read.
    /// Shard-local time — every step index in the records above is a
    /// position on this clock.
    pub(crate) steps: usize,
    /// DFA state of the never-created objects of this partition (their
    /// pattern is ∅^steps in shard-local time).
    pub(crate) pre_state: u32,
    /// The never-created pattern has already left the enforced family.
    pub(crate) pre_exempt: bool,
    /// Oids whose record and/or database state may have changed since
    /// the last checkpoint capture (drained by
    /// `checkpoint_delta`). Not part of the durable, byte-compared
    /// state.
    pub(crate) dirty: BTreeSet<Oid>,
    /// Every record is dirty: set by [`DeltaState::compact`], which
    /// rewrites cohort slots of records the batch never touched.
    pub(crate) all_dirty: bool,
}

impl DeltaState {
    /// A fresh partition at letter clock 0, with the never-created walk
    /// starting from the inventory DFA's start state.
    pub(crate) fn new(pre_state: u32, pre_exempt: bool) -> DeltaState {
        DeltaState {
            // Slot 0 is the exempt sink.
            cohorts: vec![Cohort { state: 0, last_role: 0, size: 0, parent: EXEMPT }],
            pre_state,
            pre_exempt,
            ..DeltaState::default()
        }
    }

    pub(crate) fn find(&mut self, mut id: u32) -> u32 {
        while self.cohorts[id as usize].parent != id {
            let p = self.cohorts[id as usize].parent;
            self.cohorts[id as usize].parent = self.cohorts[p as usize].parent;
            id = p;
        }
        id
    }

    pub(crate) fn find_ro(&self, mut id: u32) -> u32 {
        while self.cohorts[id as usize].parent != id {
            id = self.cohorts[id as usize].parent;
        }
        id
    }

    /// Root cohort for `target` post-step, creating (or reusing a freed
    /// slot for) it if new.
    pub(crate) fn cohort_for(&mut self, target: Target) -> u32 {
        match target {
            Target::Exempt => EXEMPT,
            Target::Key(state, role) => *self.by_key.entry((state, role)).or_insert_with(|| {
                if let Some(id) = self.free.pop() {
                    self.cohorts[id as usize] =
                        Cohort { state, last_role: role, size: 0, parent: id };
                    id
                } else {
                    let id = self.cohorts.len() as u32;
                    self.cohorts.push(Cohort { state, last_role: role, size: 0, parent: id });
                    id
                }
            }),
        }
    }

    /// Whether dead slots (freed + unreachable forwarders) dominate the
    /// table: live slots are bounded by the record count plus the sink.
    pub(crate) fn needs_compaction(&self) -> bool {
        self.cohorts.len() > 64 && self.cohorts.len() > 2 * (self.records.len() + 1)
    }

    /// Rebuild the cohort table with only live cohorts: every record is
    /// redirected to its root, forwarding chains disappear, and dead
    /// slots are dropped. O(records) — run only when the table has
    /// outgrown the record count, so the cost amortizes to O(1) per
    /// application.
    pub(crate) fn compact(&mut self) {
        let mut records = std::mem::take(&mut self.records);
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut table: Vec<Cohort> = vec![self.cohorts[EXEMPT as usize].clone()];
        for rec in records.values_mut() {
            let root = self.find(rec.cohort);
            rec.cohort = if root == EXEMPT {
                EXEMPT
            } else {
                *remap.entry(root).or_insert_with(|| {
                    let nid = table.len() as u32;
                    let old = &self.cohorts[root as usize];
                    table.push(Cohort {
                        state: old.state,
                        last_role: old.last_role,
                        size: old.size,
                        parent: nid,
                    });
                    nid
                })
            };
        }
        self.records = records;
        // Every populated by_key root has members, so it was remapped;
        // anything else is dead and dropped with its key.
        self.by_key =
            self.by_key.iter().filter_map(|(&k, root)| Some((k, *remap.get(root)?))).collect();
        self.cohorts = table;
        self.free.clear();
        // Every record's cohort slot was rewritten: the next incremental
        // checkpoint must carry the whole table.
        self.all_dirty = true;
    }

    // -----------------------------------------------------------------
    // Batch staging
    // -----------------------------------------------------------------

    /// Validate `k` effective letters over this partition's objects in
    /// one pass, **in shard-local time**: the never-created class's walk
    /// starts from this partition's own clock, each touched object's
    /// interleaved touch/untouched chain is replayed exactly, and each
    /// untouched cohort is advanced `k` DFA steps once. `touched` maps
    /// each touched object to its `(local letter index, change)` pairs,
    /// where local indices are 1-based positions among the `k` letters
    /// *this partition* reads. Read-only; returns `Err(())` on the first
    /// violation (callers fall back to sequential admission for exact
    /// diagnostics) and the staged changes to
    /// [`commit_batch`](Self::commit_batch) otherwise.
    pub(crate) fn stage_batch(
        &self,
        ctx: &BatchCtx<'_>,
        k: usize,
        touched: &BTreeMap<Oid, Vec<(usize, &ObjectDelta)>>,
    ) -> Result<BatchStage, ()> {
        let dfa = ctx.dfa;
        let empty = ctx.alphabet.empty_symbol();
        // The never-created objects of this partition read one ∅ per
        // letter, on this partition's own clock.
        let pre = never_created_walk(
            dfa,
            empty,
            ctx.kind,
            self.pre_state,
            self.pre_exempt,
            self.steps,
            k,
        );
        if pre.violation_at.is_some() {
            return Err(());
        }
        let steps0 = self.steps;
        // Untouched objects under Proper/Lazy leave the enforced family
        // at their first untouched step; any record predating the batch
        // has global step index ≥ 2 for every batch step (records imply
        // at least one committed letter), so the whole table folds.
        let fold_all = matches!(ctx.kind, PatternKind::Proper | PatternKind::Lazy);
        let mut moves: Vec<BatchMove> = Vec::with_capacity(touched.len());
        let mut leaving: HashMap<u32, usize> = HashMap::new();

        for (&oid, touches) in touched {
            // Chain state of this object across the batch.
            let mut chain: Option<ChainState> = self.records.get(&oid).map(|rec| {
                let root = self.find_ro(rec.cohort);
                ChainState {
                    state: self.cohorts[root as usize].state,
                    role: rec.current_role(),
                    exempt: root == EXEMPT,
                    synced: 0,
                    segments: Vec::new(),
                    existing: true,
                    creation_step: 0,
                    start_root: root,
                }
            });
            if let Some(ch) = &chain {
                *leaving.entry(ch.start_root).or_insert(0) += 1;
            }
            for &(j, od) in touches {
                let idx = steps0 + j;
                let after_sym = match od.after_classes() {
                    Some(cs) => classes_symbol(ctx.schema, ctx.alphabet, cs),
                    None => empty,
                };
                match &mut chain {
                    None => {
                        // Created at effective step j: starts from the
                        // never-created class's state before that step.
                        debug_assert!(od.created(), "untracked touched object must be a creation");
                        let (pre_state, pre_exempt) = pre.trace[j - 1];
                        let exempt = match ctx.kind {
                            PatternKind::All => false,
                            PatternKind::ImmediateStart => idx > 1,
                            PatternKind::Proper | PatternKind::Lazy => pre_exempt,
                        };
                        let state = dfa.step(pre_state, after_sym);
                        if !exempt && !dfa.is_accepting(state) {
                            return Err(());
                        }
                        chain = Some(ChainState {
                            state,
                            role: after_sym,
                            exempt,
                            synced: j,
                            segments: vec![(after_sym, idx)],
                            existing: false,
                            creation_step: idx,
                            start_root: EXEMPT,
                        });
                    }
                    Some(ch) => {
                        // Untouched gap since the last sync point. Gap
                        // steps always have global index ≥ 2 (something
                        // was tracked before them), so Proper/Lazy
                        // exempt; otherwise advance by the gap — the
                        // trap property makes the endpoint check
                        // equivalent to per-step checks.
                        let gap = j - 1 - ch.synced;
                        if gap > 0 && !ch.exempt {
                            if fold_all {
                                ch.exempt = true;
                            } else {
                                ch.state = advance_many(dfa, ch.state, ch.role, gap);
                                if !dfa.is_accepting(ch.state) {
                                    return Err(());
                                }
                            }
                        }
                        // The touch itself.
                        let role_changed = after_sym != ch.role;
                        let object_changed = role_changed || od.tuple_changed;
                        if !ch.exempt && idx >= 2 {
                            ch.exempt = match ctx.kind {
                                PatternKind::All | PatternKind::ImmediateStart => false,
                                PatternKind::Proper => !object_changed,
                                PatternKind::Lazy => !role_changed,
                            };
                        }
                        if !ch.exempt {
                            ch.state = dfa.step(ch.state, after_sym);
                            if !dfa.is_accepting(ch.state) {
                                return Err(());
                            }
                        }
                        if role_changed {
                            ch.segments.push((after_sym, idx));
                        }
                        ch.role = after_sym;
                        ch.synced = j;
                    }
                }
            }
            let ch = chain.as_mut().expect("first touch created or found the object");
            // Trailing untouched steps through the end of the batch.
            let tail = k - ch.synced;
            if tail > 0 && !ch.exempt {
                if fold_all {
                    ch.exempt = true;
                } else {
                    ch.state = advance_many(dfa, ch.state, ch.role, tail);
                    if !dfa.is_accepting(ch.state) {
                        return Err(());
                    }
                }
            }
            let target = if ch.exempt { Target::Exempt } else { Target::Key(ch.state, ch.role) };
            moves.push(if ch.existing {
                BatchMove::Move { oid, segments: std::mem::take(&mut ch.segments), target }
            } else {
                BatchMove::Insert {
                    oid,
                    record: ObjRecord {
                        creation_step: ch.creation_step,
                        segments: std::mem::take(&mut ch.segments),
                        cohort: EXEMPT, // assigned on commit
                    },
                    target,
                }
            });
        }

        // One sweep over the untouched cohort remainders.
        let mut advanced: Vec<(u32, u32)> = Vec::new();
        let mut emptied: Vec<u32> = Vec::new();
        for (&(cstate, role), &root) in &self.by_key {
            let remaining =
                self.cohorts[root as usize].size - leaving.get(&root).copied().unwrap_or(0);
            if remaining == 0 {
                if !fold_all {
                    emptied.push(root);
                }
                continue;
            }
            if fold_all {
                continue;
            }
            let st = advance_many(dfa, cstate, role, k);
            if !dfa.is_accepting(st) {
                return Err(());
            }
            advanced.push((root, st));
        }

        Ok(BatchStage {
            moves,
            leaving,
            advanced,
            emptied,
            fold_all,
            touched: touched.len(),
            k,
            pre_state: pre.state,
            pre_exempt: pre.exempt,
        })
    }

    /// Write a staged batch: debit leavers, advance or fold the untouched
    /// cohorts, place every touched object, and advance this partition's
    /// letter clock by the staged `k`. Mirrors the single-step commit,
    /// generalized to `k` letters.
    pub(crate) fn commit_batch(&mut self, stage: BatchStage) {
        let BatchStage {
            moves,
            mut leaving,
            advanced,
            emptied,
            fold_all,
            touched,
            k,
            pre_state,
            pre_exempt,
        } = stage;
        self.last_touched = touched;
        self.steps += k;
        self.pre_state = pre_state;
        self.pre_exempt = pre_exempt;
        if fold_all {
            // Every untouched object becomes exempt: fold all non-exempt
            // cohorts into the sink, recycling slots nobody routes
            // through.
            for (_, root) in std::mem::take(&mut self.by_key) {
                let leave = leaving.remove(&root).unwrap_or(0);
                let untouched = self.cohorts[root as usize].size - leave;
                self.cohorts[root as usize].size = 0;
                if untouched == 0 {
                    self.free.push(root);
                } else {
                    self.cohorts[root as usize].parent = EXEMPT;
                    self.cohorts[EXEMPT as usize].size += untouched;
                }
            }
            // Leftover entries are touched members leaving the sink
            // itself; their moves below re-target them, so debit now.
            for (root, n) in leaving.drain() {
                debug_assert_eq!(root, EXEMPT);
                self.cohorts[EXEMPT as usize].size -= n;
            }
        } else {
            for (root, n) in leaving.drain() {
                self.cohorts[root as usize].size -= n;
            }
            let mut new_keys: BTreeMap<(u32, u32), u32> = BTreeMap::new();
            for &(root, new_state) in &advanced {
                let role = self.cohorts[root as usize].last_role;
                self.cohorts[root as usize].state = new_state;
                match new_keys.entry((new_state, role)) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(root);
                    }
                    std::collections::btree_map::Entry::Occupied(e) => {
                        // Two cohorts converged on one DFA state: merge.
                        let survivor = *e.get();
                        let sz = self.cohorts[root as usize].size;
                        self.cohorts[root as usize].parent = survivor;
                        self.cohorts[root as usize].size = 0;
                        self.cohorts[survivor as usize].size += sz;
                    }
                }
            }
            self.by_key = new_keys;
            for &root in &emptied {
                debug_assert_eq!(self.cohorts[root as usize].size, 0);
                self.free.push(root);
            }
        }
        for mv in moves {
            match mv {
                BatchMove::Insert { oid, mut record, target } => {
                    let c = self.cohort_for(target);
                    self.cohorts[c as usize].size += 1;
                    record.cohort = c;
                    self.records.insert(oid, record);
                    self.dirty.insert(oid);
                }
                BatchMove::Move { oid, segments, target } => {
                    let c = self.cohort_for(target);
                    self.cohorts[c as usize].size += 1;
                    let rec = self.records.get_mut(&oid).expect("tracked");
                    rec.cohort = c;
                    rec.segments.extend(segments);
                    self.dirty.insert(oid);
                }
            }
        }
        if self.needs_compaction() {
            self.compact();
        }
    }

    /// Stage **one** letter consisting purely of creations — the bulk-load
    /// fast path. Semantically the `k = 1` [`stage_batch`](Self::stage_batch)
    /// over a touched map of `Insert`-only chains, but without building the
    /// per-object map: every creation in one letter shares the same
    /// never-created context, so exemption is uniform and the DFA step is
    /// computed once per *distinct role symbol* instead of once per object.
    /// Must produce a state byte-identical to the generic path — WAL
    /// replay goes through [`stage_batch`](Self::stage_batch), and the
    /// recovery oracles compare snapshot encodings.
    pub(crate) fn stage_bulk_creates<'d>(
        &self,
        ctx: &BatchCtx<'_>,
        objects: impl Iterator<Item = &'d ObjectDelta>,
    ) -> Result<BulkCreateStage, ()> {
        let dfa = ctx.dfa;
        let empty = ctx.alphabet.empty_symbol();
        let pre = never_created_walk(
            dfa,
            empty,
            ctx.kind,
            self.pre_state,
            self.pre_exempt,
            self.steps,
            1,
        );
        if pre.violation_at.is_some() {
            return Err(());
        }
        let (pre_state0, pre_exempt0) = pre.trace[0];
        let idx = self.steps + 1;
        // One letter, one creation context: exemption is the same for
        // every object of the batch (the created-chain arm of
        // `stage_batch`, hoisted out of the loop).
        let exempt = match ctx.kind {
            PatternKind::All => false,
            PatternKind::ImmediateStart => idx > 1,
            PatternKind::Proper | PatternKind::Lazy => pre_exempt0,
        };
        // Bulk loads repeat a handful of class sets over millions of
        // objects: cache symbol + target per distinct set (linear scan —
        // the cache stays tiny) so `RoleSet::new` and `dfa.step` run once
        // per distinct set. Targets keep first-occurrence order, which is
        // the order the generic per-move commit allocates cohort slots in.
        let mut by_classes: Vec<(ClassSet, u32, u32)> = Vec::new();
        let mut targets: Vec<(Target, usize)> = Vec::new();
        let mut inserts: Vec<(Oid, ObjRecord, u32)> = Vec::new();
        for od in objects {
            debug_assert!(od.created(), "bulk staging admits only creations");
            let cs = od.after_classes().expect("created objects occur after the step");
            let (sym, ti) = match by_classes.iter().find(|&&(c, _, _)| c == cs) {
                Some(&(_, sym, ti)) => (sym, ti),
                None => {
                    let sym = classes_symbol(ctx.schema, ctx.alphabet, cs);
                    let state = dfa.step(pre_state0, sym);
                    if !exempt && !dfa.is_accepting(state) {
                        return Err(());
                    }
                    let target = if exempt { Target::Exempt } else { Target::Key(state, sym) };
                    // Distinct class sets can share a role symbol; reuse
                    // the target slot so allocation order still matches
                    // the generic path.
                    let ti = match targets.iter().position(|&(t, _)| t == target) {
                        Some(i) => i as u32,
                        None => {
                            targets.push((target, 0));
                            (targets.len() - 1) as u32
                        }
                    };
                    by_classes.push((cs, sym, ti));
                    (sym, ti)
                }
            };
            targets[ti as usize].1 += 1;
            inserts.push((
                od.oid,
                ObjRecord {
                    creation_step: idx,
                    segments: vec![(sym, idx)],
                    cohort: EXEMPT, // assigned on commit
                },
                ti,
            ));
        }

        // Untouched cohort sweep — `stage_batch`'s, with no leavers.
        let fold_all = matches!(ctx.kind, PatternKind::Proper | PatternKind::Lazy);
        let mut advanced: Vec<(u32, u32)> = Vec::new();
        let mut emptied: Vec<u32> = Vec::new();
        for (&(cstate, role), &root) in &self.by_key {
            let remaining = self.cohorts[root as usize].size;
            if remaining == 0 {
                if !fold_all {
                    emptied.push(root);
                }
                continue;
            }
            if fold_all {
                continue;
            }
            let st = advance_many(dfa, cstate, role, 1);
            if !dfa.is_accepting(st) {
                return Err(());
            }
            advanced.push((root, st));
        }

        Ok(BulkCreateStage {
            targets,
            inserts,
            advanced,
            emptied,
            fold_all,
            pre_state: pre.state,
            pre_exempt: pre.exempt,
        })
    }

    /// Write back a staged bulk-creation letter. Mirrors
    /// [`commit_batch`](Self::commit_batch) with no leavers and
    /// insert-only moves, replacing the per-move loop with one cohort
    /// allocation per distinct target and a sorted append of the new
    /// records — created oids are minted above every tracked oid, so the
    /// `BTreeMap` append degenerates to concatenation.
    pub(crate) fn commit_bulk_creates(&mut self, stage: BulkCreateStage) {
        let BulkCreateStage {
            targets,
            inserts,
            advanced,
            emptied,
            fold_all,
            pre_state,
            pre_exempt,
        } = stage;
        self.last_touched = inserts.len();
        self.steps += 1;
        self.pre_state = pre_state;
        self.pre_exempt = pre_exempt;
        if fold_all {
            for (_, root) in std::mem::take(&mut self.by_key) {
                let untouched = self.cohorts[root as usize].size;
                self.cohorts[root as usize].size = 0;
                if untouched == 0 {
                    self.free.push(root);
                } else {
                    self.cohorts[root as usize].parent = EXEMPT;
                    self.cohorts[EXEMPT as usize].size += untouched;
                }
            }
        } else {
            let mut new_keys: BTreeMap<(u32, u32), u32> = BTreeMap::new();
            for &(root, new_state) in &advanced {
                let role = self.cohorts[root as usize].last_role;
                self.cohorts[root as usize].state = new_state;
                match new_keys.entry((new_state, role)) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(root);
                    }
                    std::collections::btree_map::Entry::Occupied(e) => {
                        let survivor = *e.get();
                        let sz = self.cohorts[root as usize].size;
                        self.cohorts[root as usize].parent = survivor;
                        self.cohorts[root as usize].size = 0;
                        self.cohorts[survivor as usize].size += sz;
                    }
                }
            }
            self.by_key = new_keys;
            for &root in &emptied {
                debug_assert_eq!(self.cohorts[root as usize].size, 0);
                self.free.push(root);
            }
        }
        // Allocate each distinct target once, in first-occurrence
        // (ascending-oid) order — the slots the generic per-move commit
        // would pick.
        let slots: Vec<u32> = targets
            .iter()
            .map(|&(target, members)| {
                let c = self.cohort_for(target);
                self.cohorts[c as usize].size += members;
                c
            })
            .collect();
        debug_assert!(
            match (self.records.last_key_value(), inserts.first()) {
                (Some((&last, _)), Some(&(first, _, _))) => last < first,
                _ => true,
            },
            "created oids must follow every tracked oid"
        );
        let mut fresh: BTreeMap<Oid, ObjRecord> = inserts
            .into_iter()
            .map(|(oid, mut record, ti)| {
                record.cohort = slots[ti as usize];
                (oid, record)
            })
            .collect();
        let mut fresh_dirty: BTreeSet<Oid> = fresh.keys().copied().collect();
        self.records.append(&mut fresh);
        self.dirty.append(&mut fresh_dirty);
        if self.needs_compaction() {
            self.compact();
        }
    }
}

// ---------------------------------------------------------------------
// Constraint evolution (redefine)
// ---------------------------------------------------------------------

/// Fate of the enforced histories ending at one old-DFA state under a
/// redefinition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CohortFate {
    /// Every enforced history ending at this old state lands at exactly
    /// this accepting new-DFA state — the cohort migrates wholesale.
    Viable(u32),
    /// Histories ending here either diverge under the new DFA or all
    /// leave it: the cohort is residue, handled per policy.
    Residue,
}

/// The product-construction viability analysis behind `redefine`: walk
/// the product of the old DFA with the new one over every path the old
/// DFA certifies (enforced histories visit only accepting old states —
/// the inventory is prefix-closed), recording per old state the set of
/// new-DFA states such histories could be in (`None` = already outside
/// the new language, a trap). A cohort keyed on old state `q` is viable
/// iff that set is a single accepting new state: then *every* history
/// the cohort compresses provably remaps there, without reading one
/// object record. O(|Q_old| × |Q_new| × |Σ|), independent of the
/// database size.
pub(crate) fn viability_map(old: &Dfa, new: &Dfa) -> Vec<CohortFate> {
    let ns = old.num_symbols();
    let nq_old = old.num_states();
    let dead = new.num_states() as u32; // sentinel for "left the new language"
    let width = dead as usize + 1;
    let mut seen = vec![false; nq_old * width];
    let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nq_old];
    let start_new = if new.is_accepting(new.start()) { new.start() } else { dead };
    let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
    seen[old.start() as usize * width + start_new as usize] = true;
    sets[old.start() as usize].insert(start_new);
    queue.push_back((old.start(), start_new));
    while let Some((qo, qn)) = queue.pop_front() {
        for s in 0..ns {
            let qo2 = old.step(qo, s);
            if !old.is_accepting(qo2) {
                // No enforced history ever reaches a non-accepting old
                // state: admission checks every step.
                continue;
            }
            let qn2 = if qn == dead {
                dead
            } else {
                let t = new.step(qn, s);
                if new.is_accepting(t) {
                    t
                } else {
                    dead
                }
            };
            let idx = qo2 as usize * width + qn2 as usize;
            if !seen[idx] {
                seen[idx] = true;
                sets[qo2 as usize].insert(qn2);
                queue.push_back((qo2, qn2));
            }
        }
    }
    sets.into_iter()
        .map(|s| match (s.len(), s.first().copied()) {
            (1, Some(q)) if q != dead => CohortFate::Viable(q),
            _ => CohortFate::Residue,
        })
        .collect()
}

impl DeltaState {
    /// Read-only redefinition viability of this partition's never-created
    /// class: its pattern is ∅^steps in shard-local time, so re-derive the
    /// walk on the new DFA. `Err(steps)` when the walk leaves the new
    /// language while still enforced — the whole redefinition must be
    /// refused (future creations derive from this walk; it cannot be
    /// quarantined). O(min(steps, |Q_new|)) via the cycle cut.
    pub(crate) fn redefine_pre_walk(&self, new_dfa: &Dfa, empty: u32) -> Result<u32, usize> {
        let st = advance_many(new_dfa, new_dfa.start(), empty, self.steps);
        // Endpoint check ≡ per-step checks: reachable non-accepting
        // states of a prefix-closed language's DFA are traps.
        if !self.pre_exempt && !new_dfa.is_accepting(st) {
            return Err(self.steps);
        }
        Ok(st)
    }

    /// Apply a checked redefinition to this partition in O(|cohorts|):
    /// rewrite each root cohort's DFA state per its [`CohortFate`],
    /// re-key the table (merging cohorts that converge on one new
    /// state), fold residue into the exempt sink — or, under
    /// `certify-and-reset` (`reset`), grandfather the residue's old
    /// history and restart its walk at `δ_new(start, role)` when that
    /// state is accepting. Object records are **never** touched; their
    /// cohort slots keep forwarding through the same roots. Returns
    /// `(residue, quarantined)` object counts.
    pub(crate) fn apply_redefine(
        &mut self,
        fates: &[CohortFate],
        new_dfa: &Dfa,
        new_pre: u32,
        reset: bool,
    ) -> (usize, usize) {
        self.pre_state = new_pre;
        let (mut residue, mut quarantined) = (0usize, 0usize);
        let mut new_keys: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for ((old_state, role), root) in std::mem::take(&mut self.by_key) {
            let size = self.cohorts[root as usize].size;
            if size == 0 {
                self.free.push(root);
                continue;
            }
            let fate = fates.get(old_state as usize).copied().unwrap_or(CohortFate::Residue);
            let target = match fate {
                CohortFate::Viable(q) => Some(q),
                CohortFate::Residue => {
                    residue += size;
                    if reset {
                        let q = new_dfa.step(new_dfa.start(), role);
                        new_dfa.is_accepting(q).then_some(q)
                    } else {
                        None
                    }
                }
            };
            match target {
                None => {
                    quarantined += size;
                    self.cohorts[root as usize].parent = EXEMPT;
                    self.cohorts[root as usize].size = 0;
                    self.cohorts[EXEMPT as usize].size += size;
                }
                Some(q) => {
                    self.cohorts[root as usize].state = q;
                    match new_keys.entry((q, role)) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(root);
                        }
                        std::collections::btree_map::Entry::Occupied(e) => {
                            let survivor = *e.get();
                            self.cohorts[root as usize].parent = survivor;
                            self.cohorts[root as usize].size = 0;
                            self.cohorts[survivor as usize].size += size;
                        }
                    }
                }
            }
        }
        self.by_key = new_keys;
        if self.needs_compaction() {
            self.compact();
        }
        (residue, quarantined)
    }
}

/// Advance `state` by `m` repetitions of `letter` in O(min(m, |Q|)):
/// repeating one letter must enter a cycle within |Q| steps, so the walk
/// is cut short with modular arithmetic once a state repeats (detected
/// through a position map, keeping the walk linear). Checking acceptance
/// of the *returned* state is equivalent to checking every intermediate
/// one, because reachable non-accepting states of a prefix-closed
/// language's DFA are traps.
fn advance_many(dfa: &Dfa, mut state: u32, letter: u32, m: usize) -> u32 {
    // Small advances — the per-application k = 1 staging chief among
    // them — step directly: cycle bookkeeping costs two allocations and
    // only pays off once the walk could exceed the DFA size.
    if m <= 8 {
        for _ in 0..m {
            state = dfa.step(state, letter);
        }
        return state;
    }
    let mut seen: Vec<u32> = vec![state];
    let mut pos_of: HashMap<u32, usize> = HashMap::from([(state, 0)]);
    for step in 1..=m {
        state = dfa.step(state, letter);
        if let Some(&pos) = pos_of.get(&state) {
            let cycle = seen.len() - pos;
            return seen[pos + (m - step) % cycle];
        }
        pos_of.insert(state, seen.len());
        seen.push(state);
    }
    state
}

/// Per-object chain state while staging a batch.
struct ChainState {
    state: u32,
    role: u32,
    exempt: bool,
    /// Effective batch step the chain is synced through.
    synced: usize,
    /// `(letter, global step)` segments to append on commit.
    segments: Vec<(u32, usize)>,
    existing: bool,
    creation_step: usize,
    start_root: u32,
}

/// Whether a change-set entry is visible to pattern tracking: an object
/// that occurs before or after the step. Objects minted and deleted
/// within one application are never observable (patterns read
/// post-states only) and stay covered by the never-created class.
pub(crate) fn tracked(od: &ObjectDelta) -> bool {
    od.before.is_some() || od.after.is_some()
}

/// The never-created class's walk through `k` ∅ letters — the **single**
/// implementation behind per-application admission, batched admission
/// and WAL replay, which must agree exactly (recovery is byte-identical
/// only if replay re-derives the same trace admission used).
pub(crate) struct PreWalk {
    /// `(state, exempt)` *before* each batch step `1..=k`, indexed by
    /// the partition-local letter.
    pub(crate) trace: Vec<(u32, bool)>,
    /// DFA state after the walk.
    pub(crate) state: u32,
    /// Exemption after the walk.
    pub(crate) exempt: bool,
    /// First 1-based step whose ∅ letter escapes the inventory, if any
    /// (the walk stops there).
    pub(crate) violation_at: Option<usize>,
}

pub(crate) fn never_created_walk(
    dfa: &Dfa,
    empty: u32,
    kind: PatternKind,
    state0: u32,
    exempt0: bool,
    steps0: usize,
    k: usize,
) -> PreWalk {
    let mut trace = Vec::with_capacity(k);
    let (mut state, mut exempt) = (state0, exempt0);
    for j in 1..=k {
        let idx = steps0 + j;
        trace.push((state, exempt));
        if !exempt && idx >= 2 && matches!(kind, PatternKind::Proper | PatternKind::Lazy) {
            // A second ∅ neither changes the object nor its role set.
            exempt = true;
        }
        state = dfa.step(state, empty);
        if !exempt && !dfa.is_accepting(state) {
            return PreWalk { trace, state, exempt, violation_at: Some(j) };
        }
    }
    PreWalk { trace, state, exempt, violation_at: None }
}

/// Group a block's tracked change-set entries by object, each with its
/// 1-based effective step — the [`DeltaState::stage_batch`] input
/// (unrouted; the sharded monitor partitions per shard itself).
pub(crate) fn touched_map<'d>(
    deltas: &[&'d Delta],
) -> BTreeMap<Oid, Vec<(usize, &'d ObjectDelta)>> {
    let mut touched: BTreeMap<Oid, Vec<(usize, &'d ObjectDelta)>> = BTreeMap::new();
    for (j, d) in deltas.iter().enumerate() {
        for od in d.objects() {
            if tracked(od) {
                touched.entry(od.oid).or_default().push((j + 1, od));
            }
        }
    }
    touched
}

/// Immutable context of one staged batch, shared by every shard (and
/// every staging thread). Clock state is *not* here: each partition
/// stages from its own letter clock.
pub(crate) struct BatchCtx<'a> {
    pub(crate) schema: &'a Schema,
    pub(crate) alphabet: &'a RoleAlphabet,
    pub(crate) dfa: &'a Dfa,
    pub(crate) kind: PatternKind,
}

/// The staged outcome of [`DeltaState::stage_batch`].
pub(crate) struct BatchStage {
    moves: Vec<BatchMove>,
    leaving: HashMap<u32, usize>,
    /// `(root, state after k untouched letters)` for surviving cohorts.
    advanced: Vec<(u32, u32)>,
    emptied: Vec<u32>,
    fold_all: bool,
    touched: usize,
    /// Letters the partition read — its clock advance on commit.
    k: usize,
    /// Never-created walk endpoint, written back on commit.
    pre_state: u32,
    pre_exempt: bool,
}

/// Final placement of one touched object after a staged batch.
enum BatchMove {
    Insert { oid: Oid, record: ObjRecord, target: Target },
    Move { oid: Oid, segments: Vec<(u32, usize)>, target: Target },
}

/// The staged outcome of [`DeltaState::stage_bulk_creates`]: one letter
/// of pure creations, grouped by placement target.
pub(crate) struct BulkCreateStage {
    /// `(target, member count)` in first-occurrence (ascending-oid)
    /// order — the cohort allocation order of the generic commit.
    targets: Vec<(Target, usize)>,
    /// `(oid, record, index into targets)`, ascending by oid; cohort
    /// slots are assigned on commit.
    inserts: Vec<(Oid, ObjRecord, u32)>,
    /// `(root, state after one untouched letter)` for surviving cohorts.
    advanced: Vec<(u32, u32)>,
    emptied: Vec<u32>,
    fold_all: bool,
    /// Never-created walk endpoint, written back on commit.
    pre_state: u32,
    pre_exempt: bool,
}

/// The role-set symbol of a raw class set (∅ when absent or outside the
/// alphabet's component) — free function so the admit paths (which hold
/// mutable engine borrows) and the diagnostics path share one
/// implementation.
pub(crate) fn classes_symbol(schema: &Schema, alphabet: &RoleAlphabet, cs: ClassSet) -> u32 {
    RoleSet::new(schema, cs)
        .ok()
        .and_then(|rs| alphabet.symbol_of(rs))
        .unwrap_or_else(|| alphabet.empty_symbol())
}

/// Immutable inputs of a rejection-diagnostics scan. Clock state is
/// per record / per created object now that partitions carry their own
/// letter clocks.
pub(crate) struct DiagParams<'a> {
    pub(crate) schema: &'a Schema,
    pub(crate) alphabet: &'a RoleAlphabet,
    pub(crate) dfa: &'a Dfa,
    pub(crate) kind: PatternKind,
    /// Constraint epoch the rejection is produced under — stamped into
    /// every [`Violation`] so operators can tell pre- from
    /// post-redefinition rejections.
    pub(crate) epoch: u64,
}

/// Rejection diagnostics: replay one step over **all** letter-reading
/// objects in ascending oid order — exactly the reference engine's scan
/// over each partition's sub-run — and return the first violation.
/// `records` yields every tracked object of every participating
/// partition (in ascending oid order, merged across shards if need be)
/// as `(oid, record, exempt, cohort state, shard-local step index of
/// this letter)`; `created_ctx` returns the owning partition's
/// `(pre_state, pre_exempt, step index)` for an object created by this
/// step. The database already holds the post-state and `delta` maps
/// touched objects to their changes. O(objects), paid only on
/// rejection.
pub(crate) fn diagnose_step<'r>(
    p: &DiagParams<'_>,
    records: impl Iterator<Item = (Oid, &'r ObjRecord, bool, u32, usize)>,
    created_ctx: impl Fn(&ObjectDelta) -> (u32, bool, usize),
    delta: &Delta,
) -> Violation {
    let empty = p.alphabet.empty_symbol();
    let touched: BTreeMap<Oid, &ObjectDelta> =
        delta.objects().iter().map(|od| (od.oid, od)).collect();

    // Existing objects (every record predates this step).
    for (o, rec, cohort_exempt, cohort_state, step_idx) in records {
        let (after_sym, role_changed, object_changed) = match touched.get(&o) {
            Some(od) => {
                let after_sym = match od.after_classes() {
                    Some(cs) => classes_symbol(p.schema, p.alphabet, cs),
                    None => empty,
                };
                let role_changed = after_sym != rec.current_role();
                (after_sym, role_changed, role_changed || od.tuple_changed)
            }
            None => (rec.current_role(), false, false),
        };
        let mut exempt = cohort_exempt;
        if !exempt && step_idx >= 2 {
            exempt = match p.kind {
                PatternKind::All | PatternKind::ImmediateStart => false,
                PatternKind::Proper => !object_changed,
                PatternKind::Lazy => !role_changed,
            };
        }
        if exempt {
            continue;
        }
        let new_state = p.dfa.step(cohort_state, after_sym);
        if !p.dfa.is_accepting(new_state) {
            let mut pattern = rec.pattern_through(empty, step_idx - 1);
            pattern.push(after_sym);
            return Violation { oid: Some(o), pattern, letter: after_sym, epoch: p.epoch };
        }
    }

    // Objects created by this step (their oids are larger than every
    // tracked one, so this continues the ascending-oid scan).
    for od in delta.objects() {
        if !od.created() {
            continue;
        }
        let (pre_state, pre_exempt, step_idx) = created_ctx(od);
        let after_sym = match od.after_classes() {
            Some(cs) => classes_symbol(p.schema, p.alphabet, cs),
            None => empty,
        };
        let exempt = match p.kind {
            PatternKind::All => false,
            PatternKind::ImmediateStart => step_idx > 1,
            PatternKind::Proper | PatternKind::Lazy => pre_exempt,
        };
        let new_state = p.dfa.step(pre_state, after_sym);
        if !exempt && !p.dfa.is_accepting(new_state) {
            let mut pattern = vec![empty; step_idx - 1];
            pattern.push(after_sym);
            return Violation { oid: Some(od.oid), pattern, letter: after_sym, epoch: p.epoch };
        }
    }
    unreachable!("diagnose_step called without a violating object")
}

//! A wire front end for durable concurrent admission: a TCP
//! line-protocol server that maps every connection onto an
//! [`ingress`] producer.
//!
//! The paper's monitors guard migration histories inside one process;
//! this module is the step that makes "network-shaped concurrent
//! callers" literal. Clients share nothing with the server but the
//! protocol: newline-framed UTF-8 requests, one reply line per request,
//! in request order per connection (see `docs/PROTOCOL.md` at the
//! repository root for the normative specification, kept in lockstep
//! with this module by a conformance test).
//!
//! # Shape
//!
//! [`serve`] wraps [`ingress::serve_guarded`]: the admission worker owns
//! the [`ShardedMonitor`]; the driver is an
//! accept loop that spawns a **reader** and a **writer** thread per
//! connection. The reader parses requests and, for `invoke`, posts the
//! application into the connection's admission lane and forwards the
//! pipelined [`Ticket`] to the writer; the
//! writer answers tickets **in request order** on the socket (`ok`,
//! `violation <diagnostic>` or `error <message>`). A connection is
//! therefore exactly one ingress producer: per-connection FIFO is the
//! ingress's per-producer FIFO, and pipelined requests from one
//! connection batch into admission blocks just like an in-process
//! pipelining producer's.
//!
//! # Invariants
//!
//! * **One reply per request, in order.** Every parsed request line is
//!   answered on the wire, and replies never overtake each other within
//!   a connection (the reader→writer channel is FIFO and the writer
//!   resolves tickets in forwarding order).
//! * **Acknowledgement implies durability.** An `ok` is written only
//!   after [`Ticket::wait`](super::ingress::Ticket::wait) returned,
//!   which happens only after the op's block committed — and, when a
//!   [`CommitSink`](super::CommitSink) is attached, after the block's
//!   write-ahead append succeeded. A client that saw `ok` will see the
//!   op again after a crash and recovery.
//! * **Graceful drain.** A `shutdown` request stops the accept loop and
//!   closes every connection's *read* half; writers then drain their
//!   pending tickets — the admission worker keeps answering until every
//!   lane is empty (close-and-answer, [`ingress::serve`]'s contract) —
//!   so every in-flight request is answered on the wire before its
//!   socket closes and [`serve`] returns.
//! * **Backpressure end to end.** A full admission lane blocks the
//!   reader's `post`, which stops the connection's socket reads, which
//!   fills the client's TCP window: producers can never outrun the
//!   monitor, no matter how fast they write.
//!
//! # Supervision and degraded mode
//!
//! Connections are supervised ([`ServerConfig`]): an optional idle read
//! timeout reaps silent peers, per-connection byte/op quotas bound what
//! one peer can consume, a max-connections cap refuses excess sockets
//! at accept, and an optional shared-secret token gates every verb
//! behind an `auth` handshake. Durability failures degrade service
//! instead of lying: when the write-ahead append keeps failing past the
//! [`DurabilityPolicy`] budget, the shared [`Health`] flips the server
//! into degraded read-only mode — `invoke` answers
//! `error degraded (read-only): …`, `stats` reports `degraded=yes` plus
//! the background-checkpoint status, and an operator re-arms with the
//! `rearm` verb once the fault is fixed (see
//! `docs/PROTOCOL.md` § Limits, timeouts, and degraded mode).
//!
//! # Durability behind the server
//!
//! The caller attaches the WAL before serving
//! ([`ShardedMonitor::with_sink`](super::ShardedMonitor::with_sink))
//! and passes a maintenance hook; every
//! [`ServerConfig::checkpoint_every`] blocks the admission worker calls
//! it with exclusive access to the monitor — the `migctl serve`
//! front end uses this to capture O(dirty) incremental checkpoints and
//! hand them to a background [`Snapshotter`](super::Snapshotter) while
//! traffic keeps flowing.
//!
//! ```
//! use migratory_core::enforce::net::{self, ServerConfig};
//! use migratory_core::enforce::ShardedMonitor;
//! use migratory_core::{Inventory, PatternKind, RoleAlphabet};
//! use migratory_lang::parse_transactions;
//! use migratory_model::schema::university_schema;
//! use std::io::{BufRead, BufReader, Write};
//!
//! let s = university_schema();
//! let a = RoleAlphabet::new(&s, 0).unwrap();
//! let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
//! let ts = parse_transactions(&s, r#"
//!     transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
//! "#).unwrap();
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let stats = std::thread::scope(|scope| {
//!     let server = scope.spawn(|| {
//!         let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
//!         net::serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
//!     });
//!     let mut conn = std::net::TcpStream::connect(addr).unwrap();
//!     conn.write_all(b"invoke Mk(1)\nshutdown\n").unwrap();
//!     let mut replies = BufReader::new(conn).lines();
//!     assert_eq!(replies.next().unwrap().unwrap(), "ok");
//!     assert_eq!(replies.next().unwrap().unwrap(), "ok draining");
//!     server.join().unwrap()
//! });
//! assert_eq!(stats.admitted, 1);
//! ```

use super::health::Health;
use super::ingress::{self, DurabilityPolicy, IngressClient, IngressConfig, IngressStats, Ticket};
use super::sharded::ShardedMonitor;
use super::EnforceError;
use crate::alphabet::RoleAlphabet;
use migratory_lang::{Assignment, TransactionSchema};
use migratory_model::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};
use std::time::Duration;

/// Tuning knobs of [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The admission-lane configuration behind the socket front end.
    pub ingress: IngressConfig,
    /// Admitted blocks between maintenance-hook calls (incremental
    /// checkpoints, when the caller wires one); 0 = never.
    pub checkpoint_every: usize,
    /// Per-connection reply pipeline depth: how many requests a reader
    /// may run ahead of its writer before socket reads stall.
    pub pipeline: usize,
    /// Idle read timeout: a connection that sends nothing for this long
    /// is answered `error idle timeout …` and closed. `None` waits
    /// forever (the pre-supervision behaviour).
    pub idle_timeout: Option<Duration>,
    /// Per-connection byte quota over all request lines (0 = unlimited);
    /// exceeding it tears the connection down after one error reply.
    pub max_conn_bytes: u64,
    /// Per-connection request quota (0 = unlimited); exceeding it tears
    /// the connection down after one error reply.
    pub max_conn_ops: u64,
    /// Live-connection cap (0 = unlimited): excess sockets are answered
    /// `error server at connection capacity …` and closed at accept.
    pub max_connections: usize,
    /// Shared-secret token: when set, a connection's first request must
    /// be `auth <token>` — anything else is refused and disconnects.
    pub auth: Option<String>,
    /// How the admission worker treats failing write-ahead appends
    /// (retry budget, then degraded read-only mode).
    pub durability: DurabilityPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ingress: IngressConfig::default(),
            checkpoint_every: 0,
            pipeline: 512,
            idle_timeout: None,
            max_conn_bytes: 0,
            max_conn_ops: 0,
            max_connections: 0,
            auth: None,
            durability: DurabilityPolicy::default(),
        }
    }
}

/// Counters reported by [`serve`] after the drain completes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted over the server's lifetime.
    pub connections: usize,
    /// Request lines parsed (all verbs, malformed lines included).
    pub requests: usize,
    /// `invoke` requests answered `ok`.
    pub admitted: usize,
    /// `invoke` requests answered `violation …`.
    pub rejected: usize,
    /// Requests answered `error …` (parse errors, unknown verbs,
    /// unknown transactions, durability failures).
    pub errors: usize,
    /// The admission-side counters of the ingress behind the server.
    pub ingress: IngressStats,
}

/// Parse one transaction invocation `Name(arg, …)`: a bare `Name()`
/// call with comma-separated arguments — `"double-quoted"` strings,
/// decimal integers, anything else a bare string. This is the argument
/// grammar of both the `invoke` wire verb and `migctl enforce`'s script
/// lines (the CLI delegates here), so scripts replay over the wire
/// unchanged.
pub fn parse_invocation(line: &str) -> Result<(&str, Vec<Value>), String> {
    let line = line.trim();
    let err = |msg: &str| format!("{msg}: `{line}`");
    let open = line.find('(').ok_or_else(|| err("expected `Name(args…)`"))?;
    let close = line.rfind(')').ok_or_else(|| err("missing `)`"))?;
    if close < open {
        return Err(err("missing `)`"));
    }
    let name = line[..open].trim();
    if name.is_empty() {
        return Err(err("empty transaction name"));
    }
    let inner = &line[open + 1..close];
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        for part in inner.split(',') {
            let part = part.trim();
            let v = if let Some(stripped) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"'))
            {
                Value::str(stripped)
            } else if let Ok(i) = part.parse::<i64>() {
                Value::int(i)
            } else {
                Value::str(part)
            };
            args.push(v);
        }
    }
    Ok((name, args))
}

/// What the reader hands the writer — one entry per request line, FIFO.
enum Reply {
    /// A reply computed at read time (`schema`, `ping`, errors, …).
    Ready(String),
    /// An `invoke`'s pending admission outcome; the writer resolves it
    /// in order, so replies never overtake each other.
    Pending(Ticket),
    /// A `stats` request: formatted at *write* time, after every
    /// earlier ticket of this connection was resolved — so a
    /// synchronously driven connection reads its own counters
    /// deterministically.
    Stats,
}

/// State shared by the accept loop and every connection thread.
struct ServerShared<'h> {
    /// Set by the `shutdown` verb: stop accepting, drain, exit.
    shutdown: AtomicBool,
    /// One clone per **live** connection (keyed by connection id), so
    /// shutdown can close the read halves and unblock every reader. A
    /// connection's writer removes its entry on exit — the clone held
    /// here would otherwise keep the socket (and its fd) open until
    /// server shutdown.
    conns: Mutex<std::collections::HashMap<usize, TcpStream>>,
    connections: AtomicUsize,
    requests: AtomicUsize,
    admitted: AtomicUsize,
    rejected: AtomicUsize,
    errors: AtomicUsize,
    /// Precomputed `schema` reply (the schema is immutable).
    schema_line: String,
    /// Admission lanes behind the server (for the `stats` reply).
    lanes: usize,
    /// Degraded-mode flag and checkpoint status, shared with the
    /// admission worker and (via the caller) the snapshotter.
    health: &'h Health,
}

impl ServerShared<'_> {
    fn stats_line(&self) -> String {
        format!(
            "ok stats requests={} admitted={} rejected={} errors={} connections={} lanes={} \
             degraded={} last_checkpoint={}",
            self.requests.load(Ordering::SeqCst),
            self.admitted.load(Ordering::SeqCst),
            self.rejected.load(Ordering::SeqCst),
            self.errors.load(Ordering::SeqCst),
            self.connections.load(Ordering::SeqCst),
            self.lanes,
            if self.health.is_degraded() { "yes" } else { "no" },
            self.health.checkpoint_token(),
        )
    }
}

/// Poison-tolerant lock on the connection registry: a panicking sibling
/// thread must not take every other connection's teardown path (or the
/// graceful drain) down with it.
fn lock_conns<'a>(
    shared: &'a ServerShared<'_>,
) -> std::sync::MutexGuard<'a, std::collections::HashMap<usize, TcpStream>> {
    shared.conns.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serve the wire protocol on `listener` until a client sends
/// `shutdown` (or the process dies): accept concurrent connections,
/// map each onto an ingress producer, answer every request in order on
/// its own socket, then drain gracefully — every in-flight `invoke` is
/// answered before its socket closes and the call returns.
///
/// Attach policy and [`CommitSink`](super::CommitSink) to the monitor
/// *before* serving; `maintenance` runs on the admission worker every
/// [`ServerConfig::checkpoint_every`] blocks with exclusive access to
/// the monitor (see [`ingress::serve_with`]).
///
/// # Errors
/// Propagates the listener's fatal I/O errors (per-connection I/O
/// errors only end that connection).
pub fn serve<'a, 't>(
    listener: TcpListener,
    monitor: &mut ShardedMonitor<'a>,
    ts: &'t TransactionSchema,
    config: &ServerConfig,
    maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
) -> std::io::Result<NetStats> {
    let health = Health::new();
    serve_guarded(listener, monitor, ts, config, &health, maintenance)
}

/// [`serve`] with a caller-owned [`Health`]: the admission worker
/// degrades it on persistent write-ahead failure, the `stats` verb and
/// `rearm` verb read and clear it, and the caller can share the same
/// handle with a [`Snapshotter`](super::Snapshotter) (via
/// [`Snapshotter::spawn_with`](super::Snapshotter::spawn_with)) so
/// checkpoint failures surface in the same place — this is what
/// `migctl serve` does.
///
/// # Errors
/// Propagates the listener's fatal I/O errors (per-connection I/O
/// errors only end that connection).
pub fn serve_guarded<'a, 't>(
    listener: TcpListener,
    monitor: &mut ShardedMonitor<'a>,
    ts: &'t TransactionSchema,
    config: &ServerConfig,
    health: &Health,
    maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
) -> std::io::Result<NetStats> {
    listener.set_nonblocking(true)?;
    let alphabet = monitor.alphabet();
    let mut schema_line = format!(
        "ok schema components={} shards={} transactions",
        monitor.schema().num_components(),
        monitor.num_shards()
    );
    for t in ts.transactions() {
        schema_line.push_str(&format!(" {}/{}", t.name, t.params.len()));
    }
    let shared = ServerShared {
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(std::collections::HashMap::new()),
        connections: AtomicUsize::new(0),
        requests: AtomicUsize::new(0),
        admitted: AtomicUsize::new(0),
        rejected: AtomicUsize::new(0),
        errors: AtomicUsize::new(0),
        schema_line,
        lanes: if monitor.routes_by_component() { monitor.num_shards() } else { 1 },
        health,
    };
    let (accept_result, ingress_stats) = ingress::serve_guarded(
        monitor,
        &config.ingress,
        &config.durability,
        health,
        config.checkpoint_every,
        maintenance,
        |client| accept_loop(&listener, client, ts, alphabet, &shared, config),
    );
    accept_result?;
    Ok(NetStats {
        connections: shared.connections.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::SeqCst),
        admitted: shared.admitted.load(Ordering::SeqCst),
        rejected: shared.rejected.load(Ordering::SeqCst),
        errors: shared.errors.load(Ordering::SeqCst),
        ingress: ingress_stats,
    })
}

/// How often the (non-blocking) accept loop checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Reply-write timeout per connection. A peer that pipelines requests
/// but never reads its replies eventually fills its socket buffer; the
/// timeout turns that into a dead connection (its remaining tickets are
/// still resolved, uncounted work never leaks) instead of a writer
/// stalled forever — which would otherwise also stall graceful drain.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

fn accept_loop<'t>(
    listener: &TcpListener,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    alphabet: &RoleAlphabet,
    shared: &ServerShared<'_>,
    config: &ServerConfig,
) -> std::io::Result<()> {
    let pipeline = config.pipeline.max(1);
    let mut result = Ok(());
    std::thread::scope(|scope| {
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
                    if config.max_connections > 0
                        && lock_conns(shared).len() >= config.max_connections
                    {
                        // Over the cap: one error line, then close. The
                        // registry holds exactly the live connections
                        // (writers remove their entry on exit), so the
                        // cap frees up as peers disconnect.
                        let mut s = &stream;
                        let _ = writeln!(
                            s,
                            "error server at connection capacity ({})",
                            config.max_connections
                        );
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    let id = shared.connections.fetch_add(1, Ordering::SeqCst);
                    let Ok(read_half) = stream.try_clone() else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        lock_conns(shared).insert(id, clone);
                    }
                    let (tx, rx) = mpsc::sync_channel::<Reply>(pipeline);
                    scope.spawn(move || writer_loop(&rx, stream, alphabet, shared, id));
                    scope.spawn(move || reader_loop(read_half, &tx, client, ts, shared, config));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    // Fatal listener error: report it, but still drain
                    // the connections already accepted.
                    result = Err(e);
                    break;
                }
            }
        }
        // Graceful drain: closing the read halves sends every reader to
        // EOF; the writers then flush whatever tickets are still in
        // flight (the admission worker answers every posted op before
        // the ingress closes), and the scope joins them all.
        for (_, conn) in lock_conns(shared).drain() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    });
    result
}

/// Longest accepted request line. A peer that streams more without a
/// newline is answered with an error and disconnected — per-connection
/// memory stays bounded no matter what arrives on the socket.
pub const MAX_LINE: u64 = 64 * 1024;

fn reader_loop<'t>(
    stream: TcpStream,
    tx: &mpsc::SyncSender<Reply>,
    client: &IngressClient<'t, '_, '_>,
    ts: &'t TransactionSchema,
    shared: &ServerShared<'_>,
    config: &ServerConfig,
) {
    // Supervision state: the idle timeout turns a blocked read into a
    // `WouldBlock`/`TimedOut` error; byte and op counters are cumulative
    // over the connection's lifetime.
    if config.idle_timeout.is_some() {
        let _ = stream.set_read_timeout(config.idle_timeout);
    }
    let mut authed = config.auth.is_none();
    let mut bytes: u64 = 0;
    let mut ops: u64 = 0;
    let mut reader = std::io::Read::take(BufReader::new(stream), MAX_LINE);
    let mut buf = String::new();
    loop {
        buf.clear();
        reader.set_limit(MAX_LINE);
        match reader.read_line(&mut buf) {
            Ok(0) => break, // EOF: drain and close
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The idle timeout fired: reap the silent peer with one
                // error reply. In-flight tickets drain as usual.
                let secs = config.idle_timeout.unwrap_or_default().as_secs_f64();
                let _ = tx.send(Reply::Ready(format!(
                    "error idle timeout after {secs}s without a request; closing"
                )));
                break;
            }
            Err(_) => break, // dead socket or non-UTF-8 bytes: drain and close
            Ok(_) if !buf.ends_with('\n') && reader.limit() == 0 => {
                // The cap was hit mid-line: a protocol error (or abuse),
                // not a request. Answer once and close the connection.
                let _ =
                    tx.send(Reply::Ready(format!("error request line exceeds {MAX_LINE} bytes")));
                break;
            }
            Ok(_) => {}
        }
        bytes += buf.len() as u64;
        if config.max_conn_bytes > 0 && bytes > config.max_conn_bytes {
            let _ = tx.send(Reply::Ready(format!(
                "error connection byte quota exceeded ({} bytes); closing",
                config.max_conn_bytes
            )));
            break;
        }
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue; // blank lines and comments get no reply
        }
        shared.requests.fetch_add(1, Ordering::SeqCst);
        ops += 1;
        if config.max_conn_ops > 0 && ops > config.max_conn_ops {
            let _ = tx.send(Reply::Ready(format!(
                "error connection request quota exceeded ({} requests); closing",
                config.max_conn_ops
            )));
            break;
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        if !authed {
            // Nothing but the correct handshake is served before auth —
            // not even error details that would confirm verb names.
            if verb == "auth" && config.auth.as_deref() == Some(rest) {
                authed = true;
                if tx.send(Reply::Ready("ok authed".to_owned())).is_err() {
                    break;
                }
                continue;
            }
            let _ = tx.send(Reply::Ready(
                "error authentication required (send `auth <token>` first)".to_owned(),
            ));
            break;
        }
        let reply = match verb {
            "invoke" => match parse_invocation(rest) {
                Ok((name, args)) => match ts.get(name) {
                    Some(t) => Reply::Pending(client.post(t, Assignment::new(args))),
                    None => Reply::Ready(format!("error unknown transaction `{name}`")),
                },
                Err(e) => Reply::Ready(format!("error {e}")),
            },
            "schema" => Reply::Ready(shared.schema_line.clone()),
            "stats" => Reply::Stats,
            "ping" => Reply::Ready("ok pong".to_owned()),
            // Re-authenticating (or authing with no token configured) is
            // a harmless no-op, so scripts can always send it first.
            "auth" => Reply::Ready("ok authed".to_owned()),
            "rearm" => {
                // Operator action: leave degraded read-only mode. If the
                // fault persists, the next failing append re-degrades.
                shared.health.rearm();
                Reply::Ready("ok armed".to_owned())
            }
            "quit" => {
                let _ = tx.send(Reply::Ready("ok bye".to_owned()));
                break;
            }
            "shutdown" => {
                shared.shutdown.store(true, Ordering::SeqCst);
                Reply::Ready("ok draining".to_owned())
            }
            other => Reply::Ready(format!(
                "error unknown verb `{other}` (invoke|schema|stats|ping|auth|rearm|quit|shutdown)"
            )),
        };
        if tx.send(reply).is_err() {
            break; // writer died (socket error): stop reading
        }
    }
}

fn writer_loop(
    rx: &mpsc::Receiver<Reply>,
    stream: TcpStream,
    alphabet: &RoleAlphabet,
    shared: &ServerShared<'_>,
    id: usize,
) {
    let mut w = BufWriter::new(stream);
    // Answer replies as they come, but only flush when the channel runs
    // dry: a pipelining client's replies batch into few syscalls, a
    // synchronous client still sees every reply immediately.
    'serve: while let Ok(mut reply) = rx.recv() {
        loop {
            if write_reply(&mut w, reply, alphabet, shared).is_err() {
                break 'serve; // client is gone; tickets keep resolving below
            }
            match rx.try_recv() {
                Ok(next) => reply = next,
                Err(_) => break,
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
    // The connection is over (quit, EOF or socket error): drop the
    // registry clone so the socket actually closes and the client
    // reads EOF — the server itself keeps running.
    lock_conns(shared).remove(&id);
    // If the socket died early, still resolve every remaining ticket so
    // the admission counters stay truthful and nothing is left pending.
    while let Ok(reply) = rx.recv() {
        if let Reply::Pending(ticket) = reply {
            let _ = count(ticket.wait(), shared);
        }
    }
}

/// Resolve an admission outcome into counters and the reply's first
/// token + body.
fn count(outcome: Result<(), EnforceError>, shared: &ServerShared<'_>) -> Result<(), EnforceError> {
    match &outcome {
        Ok(()) => shared.admitted.fetch_add(1, Ordering::SeqCst),
        Err(EnforceError::Violation(_)) => shared.rejected.fetch_add(1, Ordering::SeqCst),
        Err(_) => shared.errors.fetch_add(1, Ordering::SeqCst),
    };
    outcome
}

fn write_reply(
    w: &mut BufWriter<TcpStream>,
    reply: Reply,
    alphabet: &RoleAlphabet,
    shared: &ServerShared<'_>,
) -> std::io::Result<()> {
    match reply {
        Reply::Ready(line) => {
            if line.starts_with("error") {
                shared.errors.fetch_add(1, Ordering::SeqCst);
            }
            writeln!(w, "{line}")
        }
        Reply::Stats => writeln!(w, "{}", shared.stats_line()),
        Reply::Pending(ticket) => match count(ticket.wait(), shared) {
            Ok(()) => writeln!(w, "ok"),
            Err(EnforceError::Violation(v)) => writeln!(w, "violation {}", v.display(alphabet)),
            Err(e) => writeln!(w, "error {e}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforce::StepPolicy;
    use crate::{Inventory, PatternKind};
    use migratory_lang::parse_transactions;
    use migratory_model::SchemaBuilder;
    use std::io::BufRead;

    fn multi_schema() -> migratory_model::Schema {
        let mut b = SchemaBuilder::new();
        for r in 0..2 {
            let root = b.class(&format!("R{r}"), &[&format!("K{r}")]).unwrap();
            b.subclass(&format!("S{r}"), &[root], &[]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn invocation_parsing_matches_script_grammar() {
        let (name, args) = parse_invocation("Mk(1, \"two words\", bare)").unwrap();
        assert_eq!(name, "Mk");
        assert_eq!(args, vec![Value::int(1), Value::str("two words"), Value::str("bare")]);
        let (name, args) = parse_invocation("  Noop()  ").unwrap();
        assert_eq!((name, args.len()), ("Noop", 0));
        assert!(parse_invocation("Mk 1").is_err());
        assert!(parse_invocation("(1)").is_err());
        assert!(parse_invocation("Mk)1(").is_err());
    }

    /// End to end over a real socket: verbs, per-connection reply
    /// order, violation diagnostics, drain on `shutdown`.
    #[test]
    fn serves_verbs_and_drains_on_shutdown() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
            transaction Mk1(x) { create(R1, { K1 = x }); }
        ",
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2)
                    .with_policy(StepPolicy::EveryApplication);
                serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
            });
            let conn = TcpStream::connect(addr).unwrap();
            let mut w = conn.try_clone().unwrap();
            let mut replies = BufReader::new(conn).lines().map(|l| l.unwrap());
            let mut ask = |req: &str| {
                writeln!(w, "{req}").unwrap();
                replies.next().expect("one reply per request")
            };
            assert_eq!(ask("ping"), "ok pong");
            assert!(ask("schema").contains("transactions Mk0/1 Up0/1 Mk1/1"));
            assert_eq!(ask("invoke Mk0(a)"), "ok");
            assert_eq!(ask("invoke Mk1(b)"), "ok");
            let v = ask("invoke Up0(a)");
            assert!(v.starts_with("violation "), "specialization is forbidden: {v}");
            assert!(v.contains("[S0]"), "diagnostic names the offending role set: {v}");
            assert!(ask("invoke Nope(1)").starts_with("error unknown transaction"));
            assert!(ask("invoke Mk0").starts_with("error "));
            assert!(ask("bogus").starts_with("error unknown verb"));
            let st = ask("stats");
            assert!(st.contains("admitted=2 rejected=1"), "{st}");
            assert_eq!(ask("shutdown"), "ok draining");
            server.join().unwrap()
        });
        assert_eq!(stats.connections, 1);
        assert_eq!((stats.admitted, stats.rejected), (2, 1));
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.ingress.admitted, 2);
    }

    /// `quit` ends one connection without touching the server; the
    /// socket reads EOF after `ok bye`.
    #[test]
    fn quit_closes_one_connection_only() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(&s, "transaction Mk0(x) { create(R0, { K0 = x }); }").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
                serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
            });
            let mut first = TcpStream::connect(addr).unwrap();
            first.write_all(b"invoke Mk0(x)\nquit\n").unwrap();
            let mut lines = Vec::new();
            BufReader::new(&first).read_to_end_lines(&mut lines);
            assert_eq!(lines, vec!["ok".to_owned(), "ok bye".to_owned()]);
            // The server is still alive for a second connection.
            let mut second = TcpStream::connect(addr).unwrap();
            second.write_all(b"invoke Mk0(y)\nshutdown\n").unwrap();
            let mut lines = Vec::new();
            BufReader::new(&second).read_to_end_lines(&mut lines);
            assert_eq!(lines, vec!["ok".to_owned(), "ok draining".to_owned()]);
            server.join().unwrap()
        });
        assert_eq!(stats.connections, 2);
        assert_eq!(stats.admitted, 2);
    }

    /// A request line longer than [`MAX_LINE`] is answered with one
    /// error reply and the connection is closed — per-connection memory
    /// is bounded, the server survives.
    #[test]
    fn oversized_request_line_is_refused() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(&s, "transaction Mk0(x) { create(R0, { K0 = x }); }").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
                serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
            });
            let mut flood = TcpStream::connect(addr).unwrap();
            let junk = vec![b'x'; MAX_LINE as usize + 4096];
            // The server may reset mid-flood (it stops reading and
            // closes with bytes still in flight), so the write and the
            // reply read may both fail — what matters is that the
            // connection dies promptly and the server survives.
            let _ = flood.write_all(&junk);
            let mut lines = Vec::new();
            for line in BufReader::new(&flood).lines() {
                let Ok(line) = line else { break }; // reset mid-read is fine
                lines.push(line);
            }
            assert!(lines.len() <= 1, "at most the one error reply: {lines:?}");
            if let Some(reply) = lines.first() {
                assert!(reply.starts_with("error request line exceeds"), "{reply}");
            }
            // The server is unharmed: a well-behaved client still works.
            let mut ok = TcpStream::connect(addr).unwrap();
            ok.write_all(b"invoke Mk0(fine)\nshutdown\n").unwrap();
            let mut lines = Vec::new();
            BufReader::new(&ok).read_to_end_lines(&mut lines);
            assert_eq!(lines, vec!["ok".to_owned(), "ok draining".to_owned()]);
            server.join().unwrap()
        });
        assert_eq!(stats.admitted, 1);
    }

    /// Read every remaining line until EOF (test helper).
    trait ReadLines {
        fn read_to_end_lines(self, out: &mut Vec<String>);
    }
    impl<R: std::io::Read> ReadLines for BufReader<R> {
        fn read_to_end_lines(self, out: &mut Vec<String>) {
            for line in self.lines() {
                out.push(line.unwrap());
            }
        }
    }
}

//! Sharded, batched concurrent admission with **per-shard letter
//! clocks**.
//!
//! Lemma 3.5 is the paper's parallelism theorem: SL transactions commute
//! with database restriction (`⟦T⟧(d|I) = (⟦T⟧(d))|I`), i.e. objects
//! evolve **independently** — one object's migration pattern never
//! depends on another object's state. Under a component alphabet the
//! independence is total: an object of one weakly-connected role
//! component never reads another component's letters, so there is
//! nothing left for disjoint components to coordinate through — not
//! even a step counter.
//!
//! A [`ShardedMonitor`] exploits exactly that. It keeps one
//! `DeltaState` tracking partition per shard, routed
//!
//! * by the schema's **weakly-connected role components** when it has
//!   more than one — an object's classes stay inside a single component
//!   for its whole life (Definition 2.2), so the route is stable; or
//! * by **oid stripe** (`oid mod shards`) as the fallback for
//!   single-component schemas — equally stable, since identifiers are
//!   minted once and never reused.
//!
//! # Shard-local time
//!
//! Each shard carries its **own letter clock** (`enforce::delta`): a
//! committed block advances only the clocks of the shards whose objects
//! it touches (every shard, under oid striping — stripes split one
//! component, whose objects all read every letter). A shard's run is
//! therefore the subsequence of effective deltas routed to it, in
//! shard-local time, and each shard is observationally identical to a
//! single [`Monitor`](super::Monitor) fed exactly that subsequence —
//! same accept/reject decisions, byte-identical
//! [`Violation`]s, same recorded patterns (the randomized
//! per-component-oracle suite in `tests/delta_monitor.rs` checks
//! this). Disjoint components stage, commit, checkpoint and recover
//! fully independently; there is no global step counter left to
//! contend on, only a derived [`ShardedMonitor::clocks`] view.
//!
//! Admission stages every participating shard *read-only* —
//! concurrently on [`std::thread::scope`] threads when the host has
//! more than one processor — and commits only after all shards accept,
//! so a rejected application never leaks tracking state.
//!
//! # Batch admission
//!
//! [`ShardedMonitor::try_apply_batch`] validates a whole block of
//! transactions against **one cohort sweep per participating shard**:
//! untouched cohorts are advanced `k_s` DFA letters in a single pass
//! (sound because inventories are prefix-closed, so reachable
//! non-accepting states are traps and endpoint checks subsume
//! intermediate ones), while touched objects replay their exact
//! interleaving of touch and gap steps. On a violation the batch rolls
//! back and replays sequentially, which keeps the
//! longest-conforming-prefix semantics and the per-shard-reference
//! [`Violation`] diagnostics.

use super::delta::{
    diagnose_step, BatchCtx, BatchStage, BulkCreateStage, DeltaState, DiagParams, EXEMPT,
};
use super::wal::{self, BlockRef, CheckpointDelta, ShardLetters, Snapshot, WalError, WalRecord};
use super::{EnforceError, RedefineOutcome, ResiduePolicy, SharedSink, StepPolicy, Violation};
use crate::alphabet::RoleAlphabet;
use crate::inventory::Inventory;
use crate::pattern::{MigrationPattern, PatternKind};
use migratory_lang::{Assignment, Delta, LangError, ObjectDelta, Transaction};
use migratory_model::{Instance, Oid, Schema};
use std::collections::BTreeMap;

/// Why an admission block did not commit.
enum AdmitFail {
    /// Some letter violates the inventory (diagnose + roll back).
    Violation,
    /// The commit sink refused the block (roll back, nothing logged or
    /// tracked).
    Sink(WalError),
}

/// How objects are assigned to shards.
#[derive(Clone, Debug)]
enum Router {
    /// One stable shard per weakly-connected role component (components
    /// beyond the shard count wrap around round-robin).
    Component { shard_of: Vec<usize> },
    /// `oid mod n` striping — the fallback when the schema has a single
    /// component.
    OidStripe { n: u64 },
}

/// Point-in-time statistics of one shard (see
/// [`ShardedMonitor::shard_stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The shard's letter clock (letters its objects have read).
    pub clock: usize,
    /// Objects tracked by this shard (live and deleted).
    pub tracked_objects: usize,
    /// Live non-exempt cohorts (distinct (DFA state, role) pairs).
    pub live_cohorts: usize,
    /// Objects folded into the exempt sink.
    pub exempt_objects: usize,
    /// Touched objects of the last admitted application or batch.
    pub last_touched: usize,
}

/// A database guarded by a migration inventory, with admission tracking
/// sharded across independent object partitions — each on its own
/// letter clock — and a batch API.
///
/// Each shard is observationally identical to a single
/// [`Monitor`](super::Monitor) fed the subsequence of effective
/// applications routed to it (same accept/reject decisions,
/// byte-identical [`Violation`]s, same patterns in shard-local time).
///
/// ```
/// use migratory_core::enforce::ShardedMonitor;
/// use migratory_core::{Inventory, PatternKind, RoleAlphabet};
/// use migratory_lang::{parse_transactions, Assignment};
/// use migratory_model::{schema::university_schema, Value};
///
/// let s = university_schema();
/// let a = RoleAlphabet::new(&s, 0).unwrap();
/// let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* ∅*").unwrap();
/// let ts = parse_transactions(&s, r#"
///     transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
///     transaction St(x) {
///       specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
///     }
/// "#).unwrap();
/// let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 4);
/// let script: Vec<_> = (0..8)
///     .map(|i| (ts.get("Mk").unwrap(), Assignment::new(vec![Value::str(&format!("{i}"))])))
///     .collect();
/// let batch: Vec<_> = script.iter().map(|(t, a)| (*t, a)).collect();
/// let (committed, err) = m.try_apply_batch(batch);
/// assert_eq!((committed, err), (8, None));
/// assert_eq!(m.db().num_objects(), 8);
/// ```
#[derive(Clone)]
pub struct ShardedMonitor<'a> {
    schema: &'a Schema,
    alphabet: &'a RoleAlphabet,
    /// Owned: [`ShardedMonitor::redefine`] swaps it under a live
    /// monitor.
    inventory: Inventory,
    /// The constructor's (epoch-0) inventory — what a from-scratch
    /// replay of the durable image starts from
    /// ([`ShardedMonitor::resync`]).
    base_inventory: Inventory,
    kind: PatternKind,
    policy: StepPolicy,
    /// Constraint-evolution epoch: 0 until the first redefinition, +1
    /// per admitted [`ShardedMonitor::redefine`].
    epoch: u64,
    /// Admitted redefinitions, cumulative.
    redefine_total: u64,
    /// Objects quarantined by redefinitions, cumulative.
    quarantined_total: u64,
    db: Instance,
    /// The tracking partitions — each with its **own letter clock**;
    /// no shared counter exists.
    shards: Vec<DeltaState>,
    router: Router,
    /// Where committed blocks are logged before tracking state is
    /// written (`None`: volatile monitor).
    sink: Option<SharedSink>,
    /// Stage shards on scoped threads (off when the host has one
    /// processor — the batch amortization still applies, the thread
    /// hand-off cost does not).
    parallel: bool,
}

impl<'a> ShardedMonitor<'a> {
    /// A sharded monitor over the empty database. `shards` is the
    /// requested partition count: schemas with several weakly-connected
    /// components are routed by component (capped at the component
    /// count); single-component schemas fall back to oid striping with
    /// exactly `shards` stripes.
    #[must_use]
    pub fn new(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &Inventory,
        kind: PatternKind,
        shards: usize,
    ) -> ShardedMonitor<'a> {
        let requested = shards.max(1);
        let components = schema.num_components();
        let (router, n) = if components > 1 {
            let n = requested.min(components);
            (Router::Component { shard_of: (0..components).map(|c| c % n).collect() }, n)
        } else {
            (Router::OidStripe { n: requested as u64 }, requested)
        };
        let start = inventory.dfa().start();
        // ∅ⁿ never starts with a non-∅ letter.
        let pre_exempt = kind == PatternKind::ImmediateStart;
        ShardedMonitor {
            schema,
            alphabet,
            inventory: inventory.clone(),
            base_inventory: inventory.clone(),
            kind,
            policy: StepPolicy::default(),
            epoch: 0,
            redefine_total: 0,
            quarantined_total: 0,
            db: Instance::empty(),
            shards: (0..n).map(|_| DeltaState::new(start, pre_exempt)).collect(),
            router,
            sink: None,
            parallel: n > 1
                && std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1,
        }
    }

    /// Choose when applications contribute letters (default:
    /// [`StepPolicy::EveryApplication`]).
    #[must_use]
    pub fn with_policy(mut self, policy: StepPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Force staging on scoped threads on or off (defaults to on exactly
    /// when the host has more than one processor and there is more than
    /// one shard).
    #[must_use]
    pub fn with_parallel_staging(mut self, parallel: bool) -> Self {
        self.parallel = parallel && self.shards.len() > 1;
        self
    }

    /// Attach a [`CommitSink`](super::CommitSink): every admitted block
    /// is appended *before* any shard's tracking state commits
    /// (write-ahead, one record per block — group commit), and a sink
    /// failure rolls the whole block back
    /// ([`EnforceError::Durability`]).
    #[must_use]
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Swap the commit sink in place, returning the previous one. The
    /// pipelined ingress ([`super::ingress::serve_pipelined`]) installs
    /// its staging sink for the duration of a serve and restores the
    /// caller's sink on exit.
    pub(crate) fn set_sink(&mut self, sink: Option<SharedSink>) -> Option<SharedSink> {
        std::mem::replace(&mut self.sink, sink)
    }

    /// The current database.
    #[must_use]
    pub fn db(&self) -> &Instance {
        &self.db
    }

    /// One shard's letter clock: the number of effective letters its
    /// objects have read, in shard-local time.
    ///
    /// # Panics
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn clock(&self, shard: usize) -> usize {
        self.shards[shard].steps
    }

    /// Every shard's letter clock. Under oid striping the stripes
    /// advance in lockstep (they split one component, whose objects all
    /// read every letter); under component routing the clocks are fully
    /// independent.
    #[must_use]
    pub fn clocks(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.steps).collect()
    }

    /// Sum of the per-shard letter clocks — a monotone progress
    /// measure. (A delta spanning several components counts once per
    /// participating shard; disjoint-component workloads have none.)
    #[must_use]
    pub fn letters_read(&self) -> usize {
        self.shards.iter().map(|s| s.steps).sum()
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard tracking statistics.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardStats {
                shard,
                clock: s.steps,
                tracked_objects: s.records.len(),
                live_cohorts: s.by_key.len(),
                exempt_objects: s.cohorts[EXEMPT as usize].size,
                last_touched: s.last_touched,
            })
            .collect()
    }

    /// The recorded pattern of an object (present once it has occurred
    /// in the database), reconstructed from its shard's run-length
    /// encoding through that shard's **own** clock.
    #[must_use]
    pub fn pattern_of(&self, o: Oid) -> Option<MigrationPattern> {
        self.shards.iter().find_map(|s| {
            s.records.get(&o).map(|r| r.pattern_through(self.alphabet.empty_symbol(), s.steps))
        })
    }

    /// The shard an object is routed to. Stable across the object's
    /// lifetime: components never change (Definition 2.2) and oids are
    /// never reused.
    fn route(&self, od: &ObjectDelta) -> usize {
        match &self.router {
            Router::Component { shard_of } => {
                let cs = match &od.before {
                    Some((cs, _)) => *cs,
                    None => od.after_classes().expect("routed objects occur before or after"),
                };
                let c = cs.first().expect("memberships are non-empty");
                shard_of[self.schema.component_of(c) as usize]
            }
            Router::OidStripe { n } => (od.oid.0 % n) as usize,
        }
    }

    /// The shard a transaction's letter lands on when its delta touches
    /// no tracked object (an empty-selection or blip-only application
    /// under [`StepPolicy::EveryApplication`]): the shard of the first
    /// class the transaction names — the same rule
    /// `enforce::ingress` uses to pick a lane.
    fn fallback_shard(&self, t: &Transaction) -> usize {
        let Router::Component { shard_of } = &self.router else { return 0 };
        match t.first_named_class() {
            Some(c) => shard_of[self.schema.component_of(c) as usize],
            None => 0,
        }
    }

    /// Apply `t[args]`, committing only if no enforced pattern leaves
    /// the inventory. On violation the database is unchanged and the
    /// first offending object (in the shard-reference ascending-oid
    /// order) is reported.
    pub fn try_apply(&mut self, t: &Transaction, args: &Assignment) -> Result<(), EnforceError> {
        let delta = self.apply_delta(t, args)?;
        if self.policy == StepPolicy::OnlyChanging && delta.is_identity() {
            // Null application (Definition 4.6): no letter, nothing to
            // undo.
            return Ok(());
        }
        let fallback = self.fallback_shard(t);
        match self.admit_effective(&[(fallback, &delta)]) {
            Ok(()) => Ok(()),
            Err(AdmitFail::Violation) => {
                let v = self.diagnose_violation(&delta, fallback);
                delta.undo(&mut self.db);
                Err(EnforceError::Violation(v))
            }
            Err(AdmitFail::Sink(e)) => {
                delta.undo(&mut self.db);
                Err(EnforceError::Durability(e))
            }
        }
    }

    /// Apply `t[args]` to the database and return its exact change-set,
    /// routing transactions above [`super::BULK_APPLY_THRESHOLD`]
    /// create-only steps through the bulk loader (see
    /// [`super::apply_delta_bulk`]). The delta — and everything
    /// downstream of it (tracking, WAL encoding, rollback) — is
    /// identical either way.
    fn apply_delta(&mut self, t: &Transaction, args: &Assignment) -> Result<Delta, LangError> {
        super::apply_delta_bulk(self.schema, &mut self.db, t, args)
    }

    /// Apply a whole sequence one by one, stopping at the first
    /// rejection; returns how many applications committed.
    pub fn try_apply_all<'t>(
        &mut self,
        steps: impl IntoIterator<Item = (&'t Transaction, &'t Assignment)>,
    ) -> (usize, Option<EnforceError>) {
        let mut done = 0;
        for (t, args) in steps {
            match self.try_apply(t, args) {
                Ok(()) => done += 1,
                Err(e) => return (done, Some(e)),
            }
        }
        (done, None)
    }

    /// Admit a block of transactions against **one cohort sweep per
    /// participating shard**. Semantics are identical to
    /// [`Self::try_apply_all`] — the longest conforming prefix commits,
    /// and the return value is the committed count plus the error that
    /// stopped the batch (if any) — but the conforming fast path
    /// validates each shard's letters in a single staged pass. On a
    /// violation the whole block rolls back and is replayed
    /// sequentially for exact prefix semantics and byte-identical
    /// diagnostics; rejecting batches therefore cost one extra staged
    /// pass over the conforming prefix.
    pub fn try_apply_batch<'t>(
        &mut self,
        batch: impl IntoIterator<Item = (&'t Transaction, &'t Assignment)>,
    ) -> (usize, Option<EnforceError>) {
        let items: Vec<(&Transaction, &Assignment)> = batch.into_iter().collect();
        // Optimistic in-place application; a failing transaction leaves
        // the database untouched, so the applied prefix stays validatable.
        let mut deltas: Vec<Delta> = Vec::with_capacity(items.len());
        let mut lang_err: Option<EnforceError> = None;
        for (t, args) in &items {
            match self.apply_delta(t, args) {
                Ok(d) => deltas.push(d),
                Err(e) => {
                    lang_err = Some(e.into());
                    break;
                }
            }
        }
        let applied = deltas.len();
        let effective: Vec<(usize, &Delta)> = deltas
            .iter()
            .zip(&items)
            .filter(|(d, _)| !(self.policy == StepPolicy::OnlyChanging && d.is_identity()))
            .map(|(d, (t, _))| (self.fallback_shard(t), d))
            .collect();
        if effective.is_empty() {
            return (applied, lang_err);
        }
        match self.admit_effective(&effective) {
            Ok(()) => (applied, lang_err),
            Err(AdmitFail::Violation) => {
                // Some letter in the block violates: roll the whole
                // block back and fall back to sequential admission of
                // the applied prefix.
                for d in deltas.iter().rev() {
                    d.undo(&mut self.db);
                }
                let (done, err) = self.try_apply_all(items[..applied].iter().copied());
                (done, err.or(lang_err))
            }
            Err(AdmitFail::Sink(e)) => {
                // The log refused the block: nothing commits — with a
                // failing sink a sequential replay could not make any
                // application durable either.
                for d in deltas.iter().rev() {
                    d.undo(&mut self.db);
                }
                (0, Some(EnforceError::Durability(e)))
            }
        }
    }

    /// Redefine the inventory online: swap in `new_inventory`
    /// atomically across **every** shard (the automaton is global —
    /// each partition's cohorts are re-keyed under the new DFA), at
    /// whatever point each shard's own letter clock has reached. The
    /// viability split is the same product construction as
    /// [`Monitor::redefine`](super::Monitor::redefine), computed once
    /// and applied per shard in O(|cohorts|) — never O(|db|). Every
    /// shard's never-created walk is checked *before* any shard
    /// mutates, and the [`WalRecord::Redefined`] record (carrying every
    /// shard's clock) is written **ahead** of the swap; a refusal or
    /// sink failure leaves the old inventory in force on all shards.
    pub fn redefine(
        &mut self,
        new_inventory: &Inventory,
        policy: ResiduePolicy,
    ) -> Result<RedefineOutcome, EnforceError> {
        let new_dfa = new_inventory.dfa();
        if new_dfa.num_symbols() != self.alphabet.num_symbols() {
            return Err(EnforceError::Redefine(format!(
                "inventory alphabet has {} symbols, monitor's has {}",
                new_dfa.num_symbols(),
                self.alphabet.num_symbols()
            )));
        }
        let empty = self.alphabet.empty_symbol();
        let fates = super::delta::viability_map(self.inventory.dfa(), new_dfa);
        // All-shards-or-nothing: every shard's ∅ walk must survive the
        // new automaton before any shard is touched.
        let mut pre_walks = Vec::with_capacity(self.shards.len());
        for (i, state) in self.shards.iter().enumerate() {
            let pre = state.redefine_pre_walk(new_dfa, empty).map_err(|steps| {
                EnforceError::Redefine(format!(
                    "shard {i}: the never-created class's pattern ∅^{steps} \
                     leaves the new inventory"
                ))
            })?;
            pre_walks.push(pre);
        }
        // Write-ahead: one record with every shard's clock at the swap
        // instant reaches the log before any tracking state moves.
        if let Some(sink) = &self.sink {
            let clocks: Vec<(u32, usize)> =
                self.shards.iter().enumerate().map(|(i, s)| (i as u32, s.steps)).collect();
            sink.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .redefined(self.epoch + 1, policy, &clocks, &new_inventory.encode())
                .map_err(EnforceError::Durability)?;
        }
        let reset = policy == ResiduePolicy::CertifyAndReset;
        let (mut residue, mut quarantined) = (0usize, 0usize);
        for (state, new_pre) in self.shards.iter_mut().zip(pre_walks) {
            let (r, q) = state.apply_redefine(&fates, new_dfa, new_pre, reset);
            residue += r;
            quarantined += q;
        }
        self.inventory = new_inventory.clone();
        self.epoch += 1;
        self.redefine_total += 1;
        self.quarantined_total += quarantined as u64;
        Ok(RedefineOutcome { epoch: self.epoch, residue, quarantined })
    }

    /// Per-shard letter assignment of an effective block: which shards
    /// participate in each delta, and each touched object's
    /// **shard-local** letter index. A delta is a letter for the shards
    /// of the tracked objects it touches (its fallback shard when it
    /// touches none); under oid striping every stripe reads every
    /// letter — the stripes split one component.
    #[allow(clippy::type_complexity)]
    fn assign_letters<'d>(
        &self,
        effective: &[(usize, &'d Delta)],
    ) -> (Vec<Vec<u32>>, Vec<BTreeMap<Oid, Vec<(usize, &'d ObjectDelta)>>>) {
        let n = self.shards.len();
        let mut letters: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut touched: Vec<BTreeMap<Oid, Vec<(usize, &ObjectDelta)>>> = vec![BTreeMap::new(); n];
        let stripe = matches!(self.router, Router::OidStripe { .. });
        let mut participating: Vec<usize> = Vec::new();
        for (j, (fallback, d)) in effective.iter().enumerate() {
            participating.clear();
            if stripe {
                participating.extend(0..n);
            } else {
                for od in d.objects() {
                    if super::delta::tracked(od) {
                        let s = self.route(od);
                        if !participating.contains(&s) {
                            participating.push(s);
                        }
                    }
                }
                if participating.is_empty() {
                    participating.push(*fallback);
                }
            }
            for &s in &participating {
                letters[s].push(j as u32);
            }
            for od in d.objects() {
                if super::delta::tracked(od) {
                    let s = self.route(od);
                    touched[s].entry(od.oid).or_default().push((letters[s].len(), od));
                }
            }
        }
        (letters, touched)
    }

    /// Validate an effective block across its participating shards —
    /// each from its **own letter clock** — append the block to the
    /// sink (if any), and commit if every enforced pattern stays inside
    /// the inventory. `Err` leaves monitor state (but not the database)
    /// untouched.
    fn admit_effective(&mut self, effective: &[(usize, &Delta)]) -> Result<(), AdmitFail> {
        // A lone all-creations letter above the bulk threshold takes the
        // bulk-staging path: same participation rule, same WAL record,
        // byte-identical tracking state, no per-object touched map.
        if let [(fallback, d)] = *effective {
            if d.objects().len() >= super::BULK_APPLY_THRESHOLD
                && d.objects().iter().all(ObjectDelta::created)
            {
                return self.admit_bulk_creates(fallback, d);
            }
        }
        let (letters, touched) = self.assign_letters(effective);
        let ctx = BatchCtx {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa: self.inventory.dfa(),
            kind: self.kind,
        };
        // Stage every participating shard read-only (the staged pass
        // includes the shard's never-created ∅ walk); concurrently when
        // it pays. Non-participating shards stay untouched — their
        // clocks do not move.
        let mut staged: Vec<Result<Option<BatchStage>, ()>> =
            self.shards.iter().map(|_| Ok(None)).collect();
        if self.parallel {
            std::thread::scope(|scope| {
                for (((state, touched), letters), slot) in
                    self.shards.iter().zip(&touched).zip(&letters).zip(staged.iter_mut())
                {
                    if letters.is_empty() {
                        continue;
                    }
                    let (ctx, k) = (&ctx, letters.len());
                    scope.spawn(move || *slot = state.stage_batch(ctx, k, touched).map(Some));
                }
            });
        } else {
            for (((state, touched), letters), slot) in
                self.shards.iter().zip(&touched).zip(&letters).zip(staged.iter_mut())
            {
                if !letters.is_empty() {
                    *slot = state.stage_batch(&ctx, letters.len(), touched).map(Some);
                }
            }
        }
        let stages: Vec<Option<BatchStage>> =
            staged.into_iter().collect::<Result<_, _>>().map_err(|()| AdmitFail::Violation)?;

        // Write-ahead: every shard staged the block as admissible, so it
        // may be logged — one record for the whole block (group commit),
        // carrying each participating shard's clock and letters —
        // before any tracking state is written.
        if let Some(sink) = &self.sink {
            let shard_letters: Vec<ShardLetters> = letters
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.is_empty())
                .map(|(s, l)| ShardLetters {
                    shard: s as u32,
                    steps0: self.shards[s].steps,
                    letters: l.clone(),
                })
                .collect();
            let deltas: Vec<&Delta> = effective.iter().map(|&(_, d)| d).collect();
            // Poison tolerance: a sink panic on another thread must read
            // as a durability failure (rollback, retry/degrade policy),
            // not cascade into an admission-worker panic.
            sink.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .committed(&BlockRef { deltas: &deltas, shards: &shard_letters })
                .map_err(AdmitFail::Sink)?;
        }

        // Commit: every shard accepted, write the staged moves (each
        // commit advances its shard's clock).
        for (state, stage) in self.shards.iter_mut().zip(stages) {
            if let Some(stage) = stage {
                state.commit_batch(stage);
            }
        }
        Ok(())
    }

    /// Bulk-creation admission of one all-creations letter: partition
    /// the created objects per shard (ascending oid order is preserved),
    /// stage each participating shard through
    /// [`DeltaState::stage_bulk_creates`] — concurrently when it pays —
    /// log the block, and commit. Produces the same WAL record and the
    /// same per-shard tracking state as the generic
    /// [`Self::admit_effective`] path, byte for byte.
    fn admit_bulk_creates(&mut self, fallback: usize, d: &Delta) -> Result<(), AdmitFail> {
        let n = self.shards.len();
        let mut routed: Vec<Vec<&ObjectDelta>> = vec![Vec::new(); n];
        for od in d.objects() {
            routed[self.route(od)].push(od);
        }
        // Under oid striping every stripe reads every letter; under
        // component routing only the shards of the touched objects do
        // (the fallback shard when the delta somehow touches none).
        let participating: Vec<bool> = match &self.router {
            Router::OidStripe { .. } => vec![true; n],
            Router::Component { .. } => {
                let mut p: Vec<bool> = routed.iter().map(|r| !r.is_empty()).collect();
                if !p.contains(&true) {
                    p[fallback] = true;
                }
                p
            }
        };
        let ctx = BatchCtx {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa: self.inventory.dfa(),
            kind: self.kind,
        };
        let mut staged: Vec<Result<Option<BulkCreateStage>, ()>> =
            self.shards.iter().map(|_| Ok(None)).collect();
        if self.parallel {
            std::thread::scope(|scope| {
                for (((state, routed), &part), slot) in
                    self.shards.iter().zip(&routed).zip(&participating).zip(staged.iter_mut())
                {
                    if !part {
                        continue;
                    }
                    let ctx = &ctx;
                    scope.spawn(move || {
                        *slot = state.stage_bulk_creates(ctx, routed.iter().copied()).map(Some);
                    });
                }
            });
        } else {
            for (((state, routed), &part), slot) in
                self.shards.iter().zip(&routed).zip(&participating).zip(staged.iter_mut())
            {
                if part {
                    *slot = state.stage_bulk_creates(&ctx, routed.iter().copied()).map(Some);
                }
            }
        }
        let stages: Vec<Option<BulkCreateStage>> =
            staged.into_iter().collect::<Result<_, _>>().map_err(|()| AdmitFail::Violation)?;

        if let Some(sink) = &self.sink {
            let shard_letters: Vec<ShardLetters> = participating
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p)
                .map(|(s, _)| ShardLetters {
                    shard: s as u32,
                    steps0: self.shards[s].steps,
                    letters: vec![0],
                })
                .collect();
            sink.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .committed(&BlockRef { deltas: &[d], shards: &shard_letters })
                .map_err(AdmitFail::Sink)?;
        }

        for (state, stage) in self.shards.iter_mut().zip(stages) {
            if let Some(stage) = stage {
                state.commit_bulk_creates(stage);
            }
        }
        Ok(())
    }

    /// Rejection diagnostics for a single application: for each
    /// participating shard (ascending), check its never-created class
    /// first, then replay the letter over the participating shards'
    /// records merged in ascending oid order — exactly the scan a
    /// reference monitor fed this shard's sub-run would make, so the
    /// reported [`Violation`] is byte-identical to it.
    fn diagnose_violation(&self, delta: &Delta, fallback: usize) -> Violation {
        let dfa = self.inventory.dfa();
        let empty = self.alphabet.empty_symbol();
        let (letters, _) = self.assign_letters(&[(fallback, delta)]);
        for (s, l) in letters.iter().enumerate() {
            if l.is_empty() {
                continue;
            }
            let st = &self.shards[s];
            let pre = super::delta::never_created_walk(
                dfa,
                empty,
                self.kind,
                st.pre_state,
                st.pre_exempt,
                st.steps,
                1,
            );
            if pre.violation_at.is_some() {
                return Violation {
                    oid: None,
                    pattern: vec![empty; st.steps + 1],
                    letter: empty,
                    epoch: self.epoch,
                };
            }
        }
        let mut merged: BTreeMap<Oid, (usize, &super::delta::ObjRecord)> = BTreeMap::new();
        for (i, state) in self.shards.iter().enumerate() {
            if letters[i].is_empty() {
                continue; // shard reads no letter: its objects are not checked
            }
            for (&o, rec) in &state.records {
                merged.insert(o, (i, rec));
            }
        }
        let params = DiagParams {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa,
            kind: self.kind,
            epoch: self.epoch,
        };
        diagnose_step(
            &params,
            merged.iter().map(|(&o, &(i, rec))| {
                let state = &self.shards[i];
                let root = state.find_ro(rec.cohort);
                (o, rec, root == EXEMPT, state.cohorts[root as usize].state, state.steps + 1)
            }),
            |od| {
                let st = &self.shards[self.route(od)];
                (st.pre_state, st.pre_exempt, st.steps + 1)
            },
            delta,
        )
    }

    /// Whether this monitor routes objects by weakly-connected role
    /// component (as opposed to the oid-stripe fallback).
    #[must_use]
    pub fn routes_by_component(&self) -> bool {
        matches!(self.router, Router::Component { .. })
    }

    /// The schema this monitor enforces over.
    #[must_use]
    pub fn schema(&self) -> &'a Schema {
        self.schema
    }

    /// The role alphabet patterns are spelled in (what renders a
    /// [`Violation`] via [`Violation::display`]).
    #[must_use]
    pub fn alphabet(&self) -> &'a RoleAlphabet {
        self.alphabet
    }

    /// The enforced inventory (the current epoch's automaton).
    #[must_use]
    pub fn inventory(&self) -> &Inventory {
        &self.inventory
    }

    /// The constraint-evolution epoch: 0 until the first redefinition.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Admitted redefinitions, cumulative.
    #[must_use]
    pub fn redefine_total(&self) -> u64 {
        self.redefine_total
    }

    /// Objects quarantined by redefinitions, cumulative.
    #[must_use]
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined_total
    }

    /// The enforced pattern family.
    #[must_use]
    pub fn kind(&self) -> PatternKind {
        self.kind
    }

    /// The letter-contribution policy.
    #[must_use]
    pub fn policy(&self) -> StepPolicy {
        self.policy
    }

    /// The component → shard table of a component-routed monitor
    /// (`None` under oid striping). The ingress front end aligns its
    /// admission lanes with this.
    pub(crate) fn component_lanes(&self) -> Option<&[usize]> {
        match &self.router {
            Router::Component { shard_of } => Some(shard_of),
            Router::OidStripe { .. } => None,
        }
    }

    // -----------------------------------------------------------------
    // Durability: snapshot + recovery (see [`wal`](super::wal))
    // -----------------------------------------------------------------

    /// Checkpoint the database heap and every shard's tracking state
    /// (each with its own letter clock). Canonical: equal monitor
    /// states yield equal [`Snapshot::encode`] bytes.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            policy: self.policy,
            certified: false,
            certified_at: None,
            evolution: self.evolution(),
            db: self.db.clone(),
            shards: self.shards.clone(),
        }
    }

    /// The constraint-evolution state a checkpoint carries.
    fn evolution(&self) -> wal::Evolution {
        wal::Evolution {
            epoch: self.epoch,
            redefine_total: self.redefine_total,
            quarantined_total: self.quarantined_total,
            inventory: Some(self.inventory.encode()),
        }
    }

    /// Capture a **full checkpoint** and reset the incremental dirty
    /// tracking: the returned snapshot covers everything, so the next
    /// [`ShardedMonitor::checkpoint_delta`] captures only changes made
    /// from here on. Prefer this over [`ShardedMonitor::snapshot`] (a
    /// pure observation that leaves the dirty sets alone) when the
    /// snapshot will be written as a base checkpoint.
    pub fn checkpoint_full(&mut self) -> Snapshot {
        let snap = self.snapshot();
        for s in &mut self.shards {
            s.dirty.clear();
            s.all_dirty = false;
        }
        snap
    }

    /// Capture an **incremental checkpoint**: the objects and tracking
    /// records dirtied since the last capture (or recovery), each
    /// shard's cohort tables and letter clock — O(dirty), never O(db).
    /// Drains the dirty sets: the caller must make the returned
    /// increment durable (or fall back to a full
    /// [`ShardedMonitor::checkpoint_full`]) before capturing again, or
    /// the chain loses these changes.
    pub fn checkpoint_delta(&mut self) -> CheckpointDelta {
        let evolution = self.evolution();
        wal::capture_delta(&self.db, &mut self.shards, self.policy, false, None, evolution)
    }

    /// Undo a [`ShardedMonitor::checkpoint_delta`] whose increment could
    /// **not** be made durable (checkpoint staging failed): re-mark the
    /// increment's oids (from [`CheckpointDelta::oids`], captured before
    /// staging — tombstones included) and flip every shard fully dirty,
    /// so the next capture re-covers everything the lost delta held.
    /// Without this, a later successful checkpoint would prune WAL
    /// segments whose effects live in no delta — silent data loss on
    /// recovery. One full-record capture is the price of a failed
    /// staging, not of the steady state.
    pub fn restore_dirty(&mut self, oids: &[Oid]) {
        // Any shard's dirty set works for the object table: captures
        // read the (global) database by oid; per-shard records ride on
        // `all_dirty` below.
        if let Some(s) = self.shards.first_mut() {
            s.dirty.extend(oids.iter().copied());
        }
        for s in &mut self.shards {
            s.all_dirty = true;
        }
    }

    /// Rebuild a sharded monitor from a checkpoint (the folded chain —
    /// see [`wal::Wal::load`]) plus the WAL tail written after it,
    /// without replaying history. `shards` must request the same
    /// partitioning the snapshot was taken under (the router is
    /// re-derived from the schema; the snapshot carries one tracking
    /// state per shard). Each tail block folds **per shard at
    /// shard-local granularity**: a shard whose clock (from the
    /// checkpoint) is already past the block skips it, a shard at
    /// exactly the block's offset replays its letters with one cohort
    /// sweep — so the recovered tracking state is byte-identical to the
    /// uncrashed monitor's, and a crash between a checkpoint and its
    /// log pruning can never double-apply a record. The recovered
    /// monitor has no sink attached.
    pub fn recover(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &Inventory,
        kind: PatternKind,
        shards: usize,
        snapshot: Option<Snapshot>,
        tail: impl IntoIterator<Item = WalRecord>,
    ) -> Result<ShardedMonitor<'a>, WalError> {
        let mut m = Self::new(schema, alphabet, inventory, kind, shards);
        if let Some(snap) = snapshot {
            let Snapshot { policy, certified, certified_at: _, evolution, db, shards: states } =
                snap;
            if certified {
                return Err(WalError::Mismatch(
                    "snapshot is certified — only the single Monitor certifies".into(),
                ));
            }
            if states.len() != m.shards.len() {
                return Err(WalError::Mismatch(format!(
                    "snapshot has {} shards, this monitor partitions into {}",
                    states.len(),
                    m.shards.len()
                )));
            }
            m.db = db;
            m.shards = states;
            m.policy = policy;
            // Pre-v3 snapshots carry no inventory: the constructor's
            // inventory (epoch 0) stays in force.
            if let Some(bytes) = &evolution.inventory {
                m.inventory = Inventory::decode(alphabet, bytes).map_err(|e| {
                    WalError::Mismatch(format!("snapshot inventory does not decode: {e}"))
                })?;
            }
            m.epoch = evolution.epoch;
            m.redefine_total = evolution.redefine_total;
            m.quarantined_total = evolution.quarantined_total;
        }
        for record in tail {
            m.replay_record(record)?;
        }
        Ok(m)
    }

    /// Fold **one** logged (or shipped) record into this monitor: the
    /// per-record semantics of [`ShardedMonitor::recover`], exposed as a
    /// method so a streaming consumer — the replication puller folding a
    /// primary's shipped records into a hot standby — shares the exact
    /// crash-recovery fold. Returns `Ok(true)` when the record applied,
    /// `Ok(false)` when it was already covered (a shard clock or epoch
    /// behind this monitor's — re-delivery after a reconnect is
    /// idempotent, nothing double-applies), and `Err` on a clock **gap**
    /// (the stream skipped a record this monitor never saw) or a record
    /// that cannot belong to this history.
    ///
    /// When a sink is attached (a standby writing its own write-ahead
    /// log), an applied block is written through it ahead of tracking —
    /// the standby's log carries the same records as the primary's — and
    /// an applied redefinition writes through inside
    /// [`ShardedMonitor::redefine`] itself.
    pub fn replay_record(&mut self, record: WalRecord) -> Result<bool, WalError> {
        let block = match record {
            WalRecord::Block(b) => b,
            WalRecord::Certified { .. } => {
                return Err(WalError::Mismatch(
                    "log carries a certification marker — only the single Monitor certifies".into(),
                ))
            }
            WalRecord::Redefined { epoch, policy, shards, inventory } => {
                if epoch <= self.epoch {
                    return Ok(false); // covered by the checkpoint chain
                }
                if epoch != self.epoch + 1 {
                    return Err(WalError::Mismatch(format!(
                        "wal gap: redefinition to epoch {epoch}, monitor is at {}",
                        self.epoch
                    )));
                }
                if shards.len() != self.shards.len() {
                    return Err(WalError::Mismatch(format!(
                        "redefinition names {} shards, this monitor partitions into {}",
                        shards.len(),
                        self.shards.len()
                    )));
                }
                for &(sh, at) in &shards {
                    let Some(state) = self.shards.get(sh as usize) else {
                        return Err(WalError::Mismatch(format!(
                            "redefinition names shard {sh} of {}",
                            self.shards.len()
                        )));
                    };
                    if at != state.steps {
                        return Err(WalError::Mismatch(format!(
                            "wal gap: redefinition at shard {sh} letter {at}, \
                                 shard is at {}",
                            state.steps
                        )));
                    }
                }
                let new_inv = Inventory::decode(self.alphabet, &inventory)
                    .map_err(|e| WalError::Mismatch(format!("redefine record inventory: {e}")))?;
                // Deterministic replay: same viability map, same
                // per-shard split. With a sink attached the marker is
                // re-logged write-ahead (the standby's own log);
                // without one — recovery — nothing is re-logged.
                self.redefine(&new_inv, policy).map_err(|e| {
                    WalError::Mismatch(format!("logged redefinition does not admit: {e}"))
                })?;
                return Ok(true);
            }
        };
        if block.deltas.is_empty() || block.shards.is_empty() {
            return Ok(false);
        }
        // Per-shard fold: compare each participating shard's logged
        // clock offset against its recovered clock.
        let (mut skips, mut replays) = (0usize, 0usize);
        for sl in &block.shards {
            let Some(state) = self.shards.get(sl.shard as usize) else {
                return Err(WalError::Mismatch(format!(
                    "logged block names shard {} of {}",
                    sl.shard,
                    self.shards.len()
                )));
            };
            match sl.steps0.cmp(&state.steps) {
                std::cmp::Ordering::Less => skips += 1,
                std::cmp::Ordering::Equal => replays += 1,
                std::cmp::Ordering::Greater => {
                    return Err(WalError::Mismatch(format!(
                        "wal gap: shard {} block starts at letter {}, shard is at {}",
                        sl.shard, sl.steps0, state.steps
                    )))
                }
            }
        }
        if skips > 0 && replays > 0 {
            // Checkpoints capture all shards at one commit boundary,
            // so a block is folded for all its shards or none.
            return Err(WalError::Mismatch(
                "logged block is half-folded into the checkpoint".into(),
            ));
        }
        if replays == 0 {
            return Ok(false); // fully covered by the checkpoint chain
        }
        // Write-ahead on the standby: the shipped record reaches this
        // monitor's own log before tracking state moves, so the
        // standby's durable image replays byte-identically.
        if let Some(sink) = &self.sink {
            let deltas: Vec<&Delta> = block.deltas.iter().collect();
            sink.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .committed(&BlockRef { deltas: &deltas, shards: &block.shards })?;
        }
        for d in &block.deltas {
            d.redo(&mut self.db);
        }
        self.replay_block(&block)?;
        Ok(true)
    }

    /// Rebuild **this** monitor's database and tracking state from a
    /// durable image ([`Wal::load`](super::Wal::load) output), in
    /// place — [`ShardedMonitor::recover`] as a method, preserving the
    /// router, staging mode and attached sink. The pipelined ingress
    /// calls this after a durability failure dropped appended-but-
    /// unsynced blocks: tracking state that ran ahead of the truncated
    /// log must be wound back to exactly the durable prefix, or the
    /// next logged block would leave an unrecoverable per-shard clock
    /// gap. On `Err` the monitor is unchanged.
    pub fn resync(
        &mut self,
        snapshot: Option<Snapshot>,
        tail: impl IntoIterator<Item = WalRecord>,
    ) -> Result<(), WalError> {
        let had_snapshot = snapshot.is_some();
        let fresh = Self::recover(
            self.schema,
            self.alphabet,
            &self.base_inventory,
            self.kind,
            self.shards.len(),
            snapshot,
            tail,
        )?;
        self.db = fresh.db;
        self.shards = fresh.shards;
        self.inventory = fresh.inventory;
        self.epoch = fresh.epoch;
        self.redefine_total = fresh.redefine_total;
        self.quarantined_total = fresh.quarantined_total;
        if had_snapshot {
            // No checkpoint yet: keep the configured policy (recovery
            // from the empty monitor cannot know it).
            self.policy = fresh.policy;
        }
        Ok(())
    }

    /// Replay one logged block's tracking work: rebuild each
    /// participating shard's touched map in shard-local letter indices
    /// from the record's letter assignment, stage, and commit.
    /// Admission already proved the block admissible, so a failing
    /// stage (or a letter assignment that disagrees with routing) means
    /// the log and snapshot do not belong together.
    fn replay_block(&mut self, block: &wal::WalBlock) -> Result<(), WalError> {
        // (delta index → shard-local letter index) per shard.
        let mut local: Vec<BTreeMap<u32, usize>> = vec![BTreeMap::new(); self.shards.len()];
        for sl in &block.shards {
            for (pos, &j) in sl.letters.iter().enumerate() {
                if j as usize >= block.deltas.len() {
                    return Err(WalError::Mismatch("letter index out of range".into()));
                }
                local[sl.shard as usize].insert(j, pos + 1);
            }
        }
        let mut touched: Vec<BTreeMap<Oid, Vec<(usize, &ObjectDelta)>>> =
            vec![BTreeMap::new(); self.shards.len()];
        for (j, d) in block.deltas.iter().enumerate() {
            for od in d.objects() {
                if !super::delta::tracked(od) {
                    continue;
                }
                let s = self.route(od);
                let Some(&lj) = local[s].get(&(j as u32)) else {
                    return Err(WalError::Mismatch(
                        "logged letter assignment disagrees with object routing".into(),
                    ));
                };
                touched[s].entry(od.oid).or_default().push((lj, od));
            }
        }
        let ctx = BatchCtx {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa: self.inventory.dfa(),
            kind: self.kind,
        };
        let mut stages: Vec<(usize, BatchStage)> = Vec::with_capacity(block.shards.len());
        for sl in &block.shards {
            let s = sl.shard as usize;
            let stage = self.shards[s]
                .stage_batch(&ctx, sl.letters.len(), &touched[s])
                .map_err(|()| WalError::Mismatch("logged block does not admit".into()))?;
            stages.push((s, stage));
        }
        for (s, stage) in stages {
            self.shards[s].commit_batch(stage);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::Monitor;
    use super::*;
    use migratory_lang::{parse_transactions, TransactionSchema};
    use migratory_model::schema::university_schema;
    use migratory_model::{SchemaBuilder, Value};

    fn setup() -> (Schema, RoleAlphabet) {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        (s, a)
    }

    fn uni_transactions(s: &Schema) -> TransactionSchema {
        parse_transactions(
            s,
            r#"
            transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
            transaction St(x) {
              specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
            }
            transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
            transaction Rm(x) { delete(PERSON, { SSN = x }); }
        "#,
        )
        .unwrap()
    }

    fn arg(v: &str) -> Assignment {
        Assignment::new(vec![Value::str(v)])
    }

    #[test]
    fn sharded_matches_single_engine_on_scripted_run() {
        // Single-component schema: oid striping, every stripe reads
        // every letter — the stripes advance in lockstep with the
        // single engine's global clock.
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv =
            crate::Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
        let script: Vec<(&str, &str)> = vec![
            ("Mk", "1"),
            ("Mk", "2"),
            ("St", "1"),
            ("St", "2"),
            ("UnSt", "1"),
            ("St", "1"), // violates: [P][S][P][S]
            ("Rm", "2"),
        ];
        for shards in [1usize, 2, 3, 5] {
            for parallel in [false, true] {
                let mut sharded = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, shards)
                    .with_parallel_staging(parallel);
                let mut single = Monitor::new(&s, &a, &inv, PatternKind::All);
                for (name, key) in &script {
                    let t = ts.get(name).unwrap();
                    let args = arg(key);
                    assert_eq!(
                        sharded.try_apply(t, &args),
                        single.try_apply(t, &args),
                        "decision diverged at {name}({key}), {shards} shards"
                    );
                    assert_eq!(sharded.db(), single.db());
                    for c in sharded.clocks() {
                        assert_eq!(c, single.steps(), "stripes advance in lockstep");
                    }
                }
                for o in 1..=3u64 {
                    assert_eq!(sharded.pattern_of(Oid(o)), single.pattern_of(Oid(o)));
                }
                assert_eq!(sharded.num_shards(), shards);
                assert!(!sharded.routes_by_component(), "university is one component");
            }
        }
    }

    #[test]
    fn batch_commits_longest_prefix_with_reference_violation() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv =
            crate::Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
        let script = [("Mk", "1"), ("St", "1"), ("UnSt", "1"), ("St", "1"), ("Mk", "2")];
        let assigns: Vec<Assignment> = script.iter().map(|(_, k)| arg(k)).collect();
        let batch: Vec<(&Transaction, &Assignment)> = script
            .iter()
            .zip(&assigns)
            .map(|((name, _), args)| (ts.get(name).unwrap(), args))
            .collect();

        let mut sharded = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
        let (done, err) = sharded.try_apply_batch(batch.clone());
        let mut oracle = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        let (odone, oerr) = oracle.try_apply_all(batch);
        assert_eq!(done, odone);
        assert_eq!(done, 3, "the re-specialize violates; Mk(2) is never attempted");
        assert_eq!(err, oerr, "byte-identical violation");
        assert_eq!(sharded.db(), oracle.db());
        assert_eq!(sharded.clocks(), vec![3, 3]);
        assert!(!sharded.db().occurs(Oid(2)), "Mk(2) was not attempted after the rejection");

        // The conforming remainder still admits as a batch afterwards.
        let more = [("Rm", "1"), ("Mk", "9")];
        let massigns: Vec<Assignment> = more.iter().map(|(_, k)| arg(k)).collect();
        let mbatch: Vec<(&Transaction, &Assignment)> = more
            .iter()
            .zip(&massigns)
            .map(|((name, _), args)| (ts.get(name).unwrap(), args))
            .collect();
        let (done2, err2) = sharded.try_apply_batch(mbatch);
        assert_eq!((done2, err2), (2, None));
        assert_eq!(sharded.clocks(), vec![5, 5]);
    }

    #[test]
    fn batch_of_noops_under_only_changing_emits_no_letter() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = crate::Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2)
            .with_policy(StepPolicy::OnlyChanging);
        let mk = ts.get("Mk").unwrap();
        let rm = ts.get("Rm").unwrap();
        let a1 = arg("1");
        let miss = arg("zzz");
        let batch: Vec<(&Transaction, &Assignment)> =
            vec![(rm, &miss), (mk, &a1), (rm, &miss), (rm, &miss)];
        let (done, err) = m.try_apply_batch(batch);
        assert_eq!((done, err), (4, None));
        assert_eq!(m.clocks(), vec![1, 1], "three null applications contributed no letter");
    }

    #[test]
    fn multi_component_schema_routes_by_component_with_independent_clocks() {
        // Four independent hierarchies → four shards, one per
        // component, each on its own letter clock: a shard behaves
        // exactly like a single monitor fed only its component's
        // applications.
        let mut b = SchemaBuilder::new();
        for r in 0..4 {
            let root = b.class(&format!("R{r}"), &[&format!("K{r}")]).unwrap();
            b.subclass(&format!("S{r}"), &[root], &[]).unwrap();
        }
        let s = b.build().unwrap();
        assert_eq!(s.num_components(), 4);
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = crate::Inventory::parse_init(&s, &a, "∅* ([R0] ∪ [S0])* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Mk1(x) { create(R1, { K1 = x }); }
            transaction Mk2(x) { create(R2, { K2 = x }); }
            transaction Mk3(x) { create(R3, { K3 = x }); }
        ",
        )
        .unwrap();
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 8);
        assert!(m.routes_by_component());
        assert_eq!(m.num_shards(), 4, "capped at the component count");
        // One per-component oracle, each fed only its component's
        // applications — the sub-run a shard's clock counts.
        let mut oracles: Vec<Monitor<'_>> =
            (0..4).map(|_| Monitor::new_reference(&s, &a, &inv, PatternKind::All)).collect();
        for i in 0..12 {
            let c = i % 4;
            let t = ts.get(&format!("Mk{c}")).unwrap();
            let args = arg(&format!("k{i}"));
            assert_eq!(m.try_apply(t, &args), oracles[c].try_apply(t, &args));
        }
        assert_eq!(m.clocks(), vec![3, 3, 3, 3], "each component read only its own letters");
        let stats = m.shard_stats();
        assert_eq!(stats.len(), 4);
        for st in &stats {
            assert_eq!(
                st.tracked_objects, 3,
                "objects spread evenly across component shards: {stats:?}"
            );
        }
        for o in 1..=12u64 {
            // Lemma 3.5's restriction bijection: the sharded run minted
            // o as the ((o−1)/4 + 1)-th object of component (o−1) % 4,
            // which is that oracle's local oid.
            let c = ((o - 1) % 4) as usize;
            let local = (o - 1) / 4 + 1;
            assert_eq!(
                m.pattern_of(Oid(o)),
                oracles[c].pattern_of(Oid(local)),
                "o{o}'s shard-local pattern must match component {c}'s oracle o{local}"
            );
        }
    }
}

//! Sharded, batched concurrent admission.
//!
//! Lemma 3.5 is the paper's parallelism theorem: SL transactions commute
//! with database restriction (`⟦T⟧(d|I) = (⟦T⟧(d))|I`), i.e. objects
//! evolve **independently** — one object's migration pattern never
//! depends on another object's state. Admission checking therefore
//! parallelizes perfectly over any partition of the object population:
//! the only cross-partition coordination the model requires is the
//! shared step counter (every object reads a letter at every step).
//!
//! A [`ShardedMonitor`] exploits exactly that. It keeps one
//! `DeltaState` tracking partition per shard, routed
//!
//! * by the schema's **weakly-connected role components** when it has
//!   more than one — an object's classes stay inside a single component
//!   for its whole life (Definition 2.2), so the route is stable; or
//! * by **oid stripe** (`oid mod shards`) as the fallback for
//!   single-component schemas — equally stable, since identifiers are
//!   minted once and never reused.
//!
//! Admission stages every shard *read-only* — concurrently on
//! [`std::thread::scope`] threads when the host has more than one
//! processor — and commits only after all shards accept, so a rejected
//! application never leaks tracking state.
//!
//! # Batch admission
//!
//! [`ShardedMonitor::try_apply_batch`] validates a whole block of
//! transactions against **one cohort sweep per shard**: untouched
//! cohorts are advanced `k` DFA letters in a single pass (sound because
//! inventories are prefix-closed, so reachable non-accepting states are
//! traps and endpoint checks subsume intermediate ones), while touched
//! objects replay their exact interleaving of touch and gap steps. The
//! per-application sweep/re-key/alloc overhead of the single-step engine
//! is paid once per batch instead of once per transaction. On a
//! violation the batch rolls back and replays sequentially, which keeps
//! the longest-conforming-prefix semantics and the byte-identical
//! [`Violation`] diagnostics of [`Monitor`](super::Monitor) /
//! [`Monitor::new_reference`](super::Monitor::new_reference).

use super::delta::{diagnose_step, BatchCtx, BatchStage, DeltaState, DiagParams, EXEMPT};
use super::wal::{Snapshot, WalError, WalRecord};
use super::{EnforceError, SharedSink, StepPolicy, Violation};
use crate::alphabet::RoleAlphabet;
use crate::inventory::Inventory;
use crate::pattern::{MigrationPattern, PatternKind};
use migratory_lang::{apply_transaction_delta, Assignment, Delta, ObjectDelta, Transaction};
use migratory_model::{Instance, Oid, Schema};
use std::collections::BTreeMap;

/// Why an admission block did not commit.
enum AdmitFail {
    /// Some letter violates the inventory (diagnose + roll back).
    Violation,
    /// The commit sink refused the block (roll back, nothing logged or
    /// tracked).
    Sink(WalError),
}

/// How objects are assigned to shards.
#[derive(Clone, Debug)]
enum Router {
    /// One stable shard per weakly-connected role component (components
    /// beyond the shard count wrap around round-robin).
    Component { shard_of: Vec<usize> },
    /// `oid mod n` striping — the fallback when the schema has a single
    /// component.
    OidStripe { n: u64 },
}

/// Point-in-time statistics of one shard (see
/// [`ShardedMonitor::shard_stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Objects tracked by this shard (live and deleted).
    pub tracked_objects: usize,
    /// Live non-exempt cohorts (distinct (DFA state, role) pairs).
    pub live_cohorts: usize,
    /// Objects folded into the exempt sink.
    pub exempt_objects: usize,
    /// Touched objects of the last admitted application or batch.
    pub last_touched: usize,
}

/// A database guarded by a migration inventory, with admission tracking
/// sharded across independent object partitions and a batch API.
///
/// Observationally identical to [`Monitor`](super::Monitor) (same
/// accept/reject decisions, byte-identical [`Violation`]s, same
/// database), with the tracking work partitioned per shard.
///
/// ```
/// use migratory_core::enforce::ShardedMonitor;
/// use migratory_core::{Inventory, PatternKind, RoleAlphabet};
/// use migratory_lang::{parse_transactions, Assignment};
/// use migratory_model::{schema::university_schema, Value};
///
/// let s = university_schema();
/// let a = RoleAlphabet::new(&s, 0).unwrap();
/// let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* ∅*").unwrap();
/// let ts = parse_transactions(&s, r#"
///     transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
///     transaction St(x) {
///       specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
///     }
/// "#).unwrap();
/// let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 4);
/// let script: Vec<_> = (0..8)
///     .map(|i| (ts.get("Mk").unwrap(), Assignment::new(vec![Value::str(&format!("{i}"))])))
///     .collect();
/// let batch: Vec<_> = script.iter().map(|(t, a)| (*t, a)).collect();
/// let (committed, err) = m.try_apply_batch(batch);
/// assert_eq!((committed, err), (8, None));
/// assert_eq!(m.db().num_objects(), 8);
/// ```
#[derive(Clone)]
pub struct ShardedMonitor<'a> {
    schema: &'a Schema,
    alphabet: &'a RoleAlphabet,
    inventory: &'a Inventory,
    kind: PatternKind,
    policy: StepPolicy,
    db: Instance,
    shards: Vec<DeltaState>,
    router: Router,
    /// Where committed blocks are logged before tracking state is
    /// written (`None`: volatile monitor).
    sink: Option<SharedSink>,
    /// Stage shards on scoped threads (off when the host has one
    /// processor — the batch amortization still applies, the thread
    /// hand-off cost does not).
    parallel: bool,
    /// DFA state shared by all never-created objects (pattern ∅ⁿ).
    pre_state: u32,
    /// The never-created pattern has already left the enforced family.
    pre_exempt: bool,
    /// Number of letters emitted so far — **the** shared step counter,
    /// the only state the shards coordinate through.
    steps: usize,
}

impl<'a> ShardedMonitor<'a> {
    /// A sharded monitor over the empty database. `shards` is the
    /// requested partition count: schemas with several weakly-connected
    /// components are routed by component (capped at the component
    /// count); single-component schemas fall back to oid striping with
    /// exactly `shards` stripes.
    #[must_use]
    pub fn new(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &'a Inventory,
        kind: PatternKind,
        shards: usize,
    ) -> ShardedMonitor<'a> {
        let requested = shards.max(1);
        let components = schema.num_components();
        let (router, n) = if components > 1 {
            let n = requested.min(components);
            (Router::Component { shard_of: (0..components).map(|c| c % n).collect() }, n)
        } else {
            (Router::OidStripe { n: requested as u64 }, requested)
        };
        ShardedMonitor {
            schema,
            alphabet,
            inventory,
            kind,
            policy: StepPolicy::default(),
            db: Instance::empty(),
            shards: (0..n).map(|_| DeltaState::new()).collect(),
            router,
            sink: None,
            parallel: n > 1
                && std::thread::available_parallelism().map_or(1, std::num::NonZero::get) > 1,
            pre_state: inventory.dfa().start(),
            // ∅ⁿ never starts with a non-∅ letter.
            pre_exempt: kind == PatternKind::ImmediateStart,
            steps: 0,
        }
    }

    /// Choose when applications contribute letters (default:
    /// [`StepPolicy::EveryApplication`]).
    #[must_use]
    pub fn with_policy(mut self, policy: StepPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Force staging on scoped threads on or off (defaults to on exactly
    /// when the host has more than one processor and there is more than
    /// one shard).
    #[must_use]
    pub fn with_parallel_staging(mut self, parallel: bool) -> Self {
        self.parallel = parallel && self.shards.len() > 1;
        self
    }

    /// Attach a [`CommitSink`](super::CommitSink): every admitted block
    /// is appended *before* any shard's tracking state commits
    /// (write-ahead, one record per block — group commit), and a sink
    /// failure rolls the whole block back
    /// ([`EnforceError::Durability`]).
    #[must_use]
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The current database.
    #[must_use]
    pub fn db(&self) -> &Instance {
        &self.db
    }

    /// Number of pattern letters emitted so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard tracking statistics.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardStats {
                shard,
                tracked_objects: s.records.len(),
                live_cohorts: s.by_key.len(),
                exempt_objects: s.cohorts[EXEMPT as usize].size,
                last_touched: s.last_touched,
            })
            .collect()
    }

    /// The recorded pattern of an object (present once it has occurred
    /// in the database), reconstructed from its shard's run-length
    /// encoding.
    #[must_use]
    pub fn pattern_of(&self, o: Oid) -> Option<MigrationPattern> {
        self.shards
            .iter()
            .find_map(|s| s.records.get(&o))
            .map(|r| r.pattern_through(self.alphabet.empty_symbol(), self.steps))
    }

    /// The shard an object is routed to. Stable across the object's
    /// lifetime: components never change (Definition 2.2) and oids are
    /// never reused.
    fn route(&self, od: &ObjectDelta) -> usize {
        match &self.router {
            Router::Component { shard_of } => {
                let cs = match &od.before {
                    Some((cs, _)) => *cs,
                    None => od.after_classes().expect("routed objects occur before or after"),
                };
                let c = cs.first().expect("memberships are non-empty");
                shard_of[self.schema.component_of(c) as usize]
            }
            Router::OidStripe { n } => (od.oid.0 % n) as usize,
        }
    }

    /// Apply `t[args]`, committing only if no enforced pattern leaves
    /// the inventory. On violation the database is unchanged and the
    /// first offending object (in the reference engine's ascending-oid
    /// order) is reported.
    pub fn try_apply(&mut self, t: &Transaction, args: &Assignment) -> Result<(), EnforceError> {
        let delta = apply_transaction_delta(self.schema, &mut self.db, t, args)?;
        if self.policy == StepPolicy::OnlyChanging && delta.is_identity() {
            // Null application (Definition 4.6): no letter, nothing to
            // undo.
            return Ok(());
        }
        match self.admit_effective(&[&delta]) {
            Ok(()) => Ok(()),
            Err(AdmitFail::Violation) => {
                let v = self.diagnose_violation(&delta);
                delta.undo(&mut self.db);
                Err(EnforceError::Violation(v))
            }
            Err(AdmitFail::Sink(e)) => {
                delta.undo(&mut self.db);
                Err(EnforceError::Durability(e))
            }
        }
    }

    /// Apply a whole sequence one by one, stopping at the first
    /// rejection; returns how many applications committed.
    pub fn try_apply_all<'t>(
        &mut self,
        steps: impl IntoIterator<Item = (&'t Transaction, &'t Assignment)>,
    ) -> (usize, Option<EnforceError>) {
        let mut done = 0;
        for (t, args) in steps {
            match self.try_apply(t, args) {
                Ok(()) => done += 1,
                Err(e) => return (done, Some(e)),
            }
        }
        (done, None)
    }

    /// Admit a block of transactions against **one cohort sweep per
    /// shard**. Semantics are identical to [`Self::try_apply_all`] — the
    /// longest conforming prefix commits, and the return value is the
    /// committed count plus the error that stopped the batch (if any) —
    /// but the conforming fast path validates all `k` letters in a
    /// single staged pass. On a violation the whole block rolls back and
    /// is replayed sequentially for exact prefix semantics and
    /// byte-identical diagnostics; rejecting batches therefore cost one
    /// extra staged pass over the conforming prefix.
    pub fn try_apply_batch<'t>(
        &mut self,
        batch: impl IntoIterator<Item = (&'t Transaction, &'t Assignment)>,
    ) -> (usize, Option<EnforceError>) {
        let items: Vec<(&Transaction, &Assignment)> = batch.into_iter().collect();
        // Optimistic in-place application; a failing transaction leaves
        // the database untouched, so the applied prefix stays validatable.
        let mut deltas: Vec<Delta> = Vec::with_capacity(items.len());
        let mut lang_err: Option<EnforceError> = None;
        for (t, args) in &items {
            match apply_transaction_delta(self.schema, &mut self.db, t, args) {
                Ok(d) => deltas.push(d),
                Err(e) => {
                    lang_err = Some(e.into());
                    break;
                }
            }
        }
        let applied = deltas.len();
        let effective: Vec<&Delta> = deltas
            .iter()
            .filter(|d| !(self.policy == StepPolicy::OnlyChanging && d.is_identity()))
            .collect();
        if effective.is_empty() {
            return (applied, lang_err);
        }
        match self.admit_effective(&effective) {
            Ok(()) => (applied, lang_err),
            Err(AdmitFail::Violation) => {
                // Some letter in the block violates: roll the whole
                // block back and fall back to sequential admission of
                // the applied prefix.
                for d in deltas.iter().rev() {
                    d.undo(&mut self.db);
                }
                let (done, err) = self.try_apply_all(items[..applied].iter().copied());
                (done, err.or(lang_err))
            }
            Err(AdmitFail::Sink(e)) => {
                // The log refused the block: nothing commits — with a
                // failing sink a sequential replay could not make any
                // application durable either.
                for d in deltas.iter().rev() {
                    d.undo(&mut self.db);
                }
                (0, Some(EnforceError::Durability(e)))
            }
        }
    }

    /// Validate `k` effective letters across all shards, append the
    /// block to the sink (if any), and commit if every enforced pattern
    /// stays inside the inventory. `Err` leaves monitor state (but not
    /// the database) untouched.
    fn admit_effective(&mut self, effective: &[&Delta]) -> Result<(), AdmitFail> {
        let k = effective.len();
        let dfa = self.inventory.dfa();
        let empty = self.alphabet.empty_symbol();

        // The never-created objects read one more ∅ per letter (O(k)) —
        // the shared walk, exactly as the per-step engine and WAL replay
        // run it.
        let pre = super::delta::never_created_walk(
            dfa,
            empty,
            self.kind,
            self.pre_state,
            self.pre_exempt,
            self.steps,
            k,
        );
        if pre.violation_at.is_some() {
            return Err(AdmitFail::Violation);
        }

        // Partition touched objects by shard, keeping each object's
        // touches in effective-step order (the sharded variant of
        // `delta::touched_map`, same visibility filter).
        let mut touched: Vec<BTreeMap<Oid, Vec<(usize, &ObjectDelta)>>> =
            (0..self.shards.len()).map(|_| BTreeMap::new()).collect();
        for (j, d) in effective.iter().enumerate() {
            for od in d.objects() {
                if !super::delta::tracked(od) {
                    continue;
                }
                let s = self.route(od);
                touched[s].entry(od.oid).or_default().push((j + 1, od));
            }
        }

        let ctx = BatchCtx {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa,
            kind: self.kind,
            steps0: self.steps,
            k,
            pre_trace: &pre.trace,
        };
        // Stage every shard read-only; concurrently when it pays. The
        // slots are pre-filled and every task writes its own slot, so
        // the placeholder never survives the scope.
        let mut staged: Vec<Result<BatchStage, ()>> = self.shards.iter().map(|_| Err(())).collect();
        if self.parallel {
            std::thread::scope(|scope| {
                for ((state, touched), slot) in
                    self.shards.iter().zip(&touched).zip(staged.iter_mut())
                {
                    scope.spawn(|| *slot = state.stage_batch(&ctx, touched));
                }
            });
        } else {
            for ((state, touched), slot) in self.shards.iter().zip(&touched).zip(staged.iter_mut())
            {
                *slot = state.stage_batch(&ctx, touched);
            }
        }
        let stages: Vec<BatchStage> =
            staged.into_iter().collect::<Result<_, _>>().map_err(|()| AdmitFail::Violation)?;

        // Write-ahead: every shard staged the block as admissible, so it
        // may be logged — one record for all `k` letters (group commit)
        // — before any tracking state is written.
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("sink poisoned")
                .committed(self.steps, effective)
                .map_err(AdmitFail::Sink)?;
        }

        // Commit: every shard accepted, write the staged moves.
        for (state, stage) in self.shards.iter_mut().zip(stages) {
            state.commit_batch(stage);
        }
        self.steps += k;
        self.pre_state = pre.state;
        self.pre_exempt = pre.exempt;
        Ok(())
    }

    /// Rejection diagnostics for a single application: check the
    /// never-created class first, then replay the step over all shards'
    /// records merged in ascending oid order — exactly the reference
    /// engine's scan, so the reported [`Violation`] is byte-identical.
    fn diagnose_violation(&self, delta: &Delta) -> Violation {
        let dfa = self.inventory.dfa();
        let empty = self.alphabet.empty_symbol();
        let step_idx = self.steps + 1;
        let mut pre_exempt_new = self.pre_exempt;
        if !pre_exempt_new
            && step_idx >= 2
            && matches!(self.kind, PatternKind::Proper | PatternKind::Lazy)
        {
            pre_exempt_new = true;
        }
        if !pre_exempt_new && !dfa.is_accepting(dfa.step(self.pre_state, empty)) {
            return Violation { oid: None, pattern: vec![empty; step_idx], letter: empty };
        }
        let mut merged: BTreeMap<Oid, (usize, &super::delta::ObjRecord)> = BTreeMap::new();
        for (i, state) in self.shards.iter().enumerate() {
            for (&o, rec) in &state.records {
                merged.insert(o, (i, rec));
            }
        }
        let params = DiagParams {
            schema: self.schema,
            alphabet: self.alphabet,
            dfa,
            kind: self.kind,
            step_idx,
            pre_state_old: self.pre_state,
            pre_exempt: self.pre_exempt,
        };
        diagnose_step(
            &params,
            merged.iter().map(|(&o, &(i, rec))| {
                let state = &self.shards[i];
                let root = state.find_ro(rec.cohort);
                (o, rec, root == EXEMPT, state.cohorts[root as usize].state)
            }),
            delta,
        )
    }

    /// Whether this monitor routes objects by weakly-connected role
    /// component (as opposed to the oid-stripe fallback).
    #[must_use]
    pub fn routes_by_component(&self) -> bool {
        matches!(self.router, Router::Component { .. })
    }

    /// The schema this monitor enforces over.
    pub(crate) fn schema(&self) -> &'a Schema {
        self.schema
    }

    /// The component → shard table of a component-routed monitor
    /// (`None` under oid striping). The ingress front end aligns its
    /// admission lanes with this.
    pub(crate) fn component_lanes(&self) -> Option<&[usize]> {
        match &self.router {
            Router::Component { shard_of } => Some(shard_of),
            Router::OidStripe { .. } => None,
        }
    }

    // -----------------------------------------------------------------
    // Durability: snapshot + recovery (see [`wal`](super::wal))
    // -----------------------------------------------------------------

    /// Checkpoint the database heap, every shard's tracking state and
    /// the shared counters. Canonical: equal monitor states yield equal
    /// [`Snapshot::encode`] bytes.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            steps: self.steps,
            pre_state: self.pre_state,
            pre_exempt: self.pre_exempt,
            policy: self.policy,
            certified: false,
            certified_at: None,
            db: self.db.clone(),
            shards: self.shards.clone(),
        }
    }

    /// Rebuild a sharded monitor from a checkpoint plus the WAL tail
    /// written after it, without replaying history. `shards` must
    /// request the same partitioning the snapshot was taken under (the
    /// router is re-derived from the schema; the snapshot carries one
    /// tracking state per shard). Each tail block replays at its
    /// original commit granularity — one cohort sweep per shard per
    /// block — so the recovered tracking state is byte-identical to the
    /// uncrashed monitor's. The recovered monitor has no sink attached.
    pub fn recover(
        schema: &'a Schema,
        alphabet: &'a RoleAlphabet,
        inventory: &'a Inventory,
        kind: PatternKind,
        shards: usize,
        snapshot: Option<Snapshot>,
        tail: impl IntoIterator<Item = WalRecord>,
    ) -> Result<ShardedMonitor<'a>, WalError> {
        let mut m = Self::new(schema, alphabet, inventory, kind, shards);
        if let Some(snap) = snapshot {
            let Snapshot {
                steps,
                pre_state,
                pre_exempt,
                policy,
                certified,
                certified_at: _,
                db,
                shards: states,
            } = snap;
            if certified {
                return Err(WalError::Mismatch(
                    "snapshot is certified — only the single Monitor certifies".into(),
                ));
            }
            if states.len() != m.shards.len() {
                return Err(WalError::Mismatch(format!(
                    "snapshot has {} shards, this monitor partitions into {}",
                    states.len(),
                    m.shards.len()
                )));
            }
            m.db = db;
            m.shards = states;
            m.steps = steps;
            m.pre_state = pre_state;
            m.pre_exempt = pre_exempt;
            m.policy = policy;
        }
        for record in tail {
            let block =
                match record {
                    WalRecord::Block(b) => b,
                    WalRecord::Certified { .. } => return Err(WalError::Mismatch(
                        "log carries a certification marker — only the single Monitor certifies"
                            .into(),
                    )),
                };
            if block.steps0 < m.steps {
                continue; // already folded into the snapshot
            }
            if block.steps0 > m.steps {
                return Err(WalError::Mismatch(format!(
                    "wal gap: next block starts at letter {}, monitor is at {}",
                    block.steps0, m.steps
                )));
            }
            if block.deltas.is_empty() {
                continue;
            }
            for d in &block.deltas {
                d.redo(&mut m.db);
            }
            let refs: Vec<&Delta> = block.deltas.iter().collect();
            match m.admit_effective(&refs) {
                Ok(()) => {}
                Err(AdmitFail::Violation) => {
                    return Err(WalError::Mismatch("logged block does not admit".into()))
                }
                Err(AdmitFail::Sink(e)) => return Err(e),
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::super::Monitor;
    use super::*;
    use migratory_lang::{parse_transactions, TransactionSchema};
    use migratory_model::schema::university_schema;
    use migratory_model::{SchemaBuilder, Value};

    fn setup() -> (Schema, RoleAlphabet) {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        (s, a)
    }

    fn uni_transactions(s: &Schema) -> TransactionSchema {
        parse_transactions(
            s,
            r#"
            transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
            transaction St(x) {
              specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
            }
            transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
            transaction Rm(x) { delete(PERSON, { SSN = x }); }
        "#,
        )
        .unwrap()
    }

    fn arg(v: &str) -> Assignment {
        Assignment::new(vec![Value::str(v)])
    }

    #[test]
    fn sharded_matches_single_engine_on_scripted_run() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv =
            crate::Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
        let script: Vec<(&str, &str)> = vec![
            ("Mk", "1"),
            ("Mk", "2"),
            ("St", "1"),
            ("St", "2"),
            ("UnSt", "1"),
            ("St", "1"), // violates: [P][S][P][S]
            ("Rm", "2"),
        ];
        for shards in [1usize, 2, 3, 5] {
            for parallel in [false, true] {
                let mut sharded = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, shards)
                    .with_parallel_staging(parallel);
                let mut single = Monitor::new(&s, &a, &inv, PatternKind::All);
                for (name, key) in &script {
                    let t = ts.get(name).unwrap();
                    let args = arg(key);
                    assert_eq!(
                        sharded.try_apply(t, &args),
                        single.try_apply(t, &args),
                        "decision diverged at {name}({key}), {shards} shards"
                    );
                    assert_eq!(sharded.db(), single.db());
                    assert_eq!(sharded.steps(), single.steps());
                }
                for o in 1..=3u64 {
                    assert_eq!(sharded.pattern_of(Oid(o)), single.pattern_of(Oid(o)));
                }
                assert_eq!(sharded.num_shards(), shards);
                assert!(!sharded.routes_by_component(), "university is one component");
            }
        }
    }

    #[test]
    fn batch_commits_longest_prefix_with_reference_violation() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv =
            crate::Inventory::parse_init(&s, &a, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
        let script = [("Mk", "1"), ("St", "1"), ("UnSt", "1"), ("St", "1"), ("Mk", "2")];
        let assigns: Vec<Assignment> = script.iter().map(|(_, k)| arg(k)).collect();
        let batch: Vec<(&Transaction, &Assignment)> = script
            .iter()
            .zip(&assigns)
            .map(|((name, _), args)| (ts.get(name).unwrap(), args))
            .collect();

        let mut sharded = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
        let (done, err) = sharded.try_apply_batch(batch.clone());
        let mut oracle = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        let (odone, oerr) = oracle.try_apply_all(batch);
        assert_eq!(done, odone);
        assert_eq!(done, 3, "the re-specialize violates; Mk(2) is never attempted");
        assert_eq!(err, oerr, "byte-identical violation");
        assert_eq!(sharded.db(), oracle.db());
        assert_eq!(sharded.steps(), 3);
        assert!(!sharded.db().occurs(Oid(2)), "Mk(2) was not attempted after the rejection");

        // The conforming remainder still admits as a batch afterwards.
        let more = [("Rm", "1"), ("Mk", "9")];
        let massigns: Vec<Assignment> = more.iter().map(|(_, k)| arg(k)).collect();
        let mbatch: Vec<(&Transaction, &Assignment)> = more
            .iter()
            .zip(&massigns)
            .map(|((name, _), args)| (ts.get(name).unwrap(), args))
            .collect();
        let (done2, err2) = sharded.try_apply_batch(mbatch);
        assert_eq!((done2, err2), (2, None));
        assert_eq!(sharded.steps(), 5);
    }

    #[test]
    fn batch_of_noops_under_only_changing_emits_no_letter() {
        let (s, a) = setup();
        let ts = uni_transactions(&s);
        let inv = crate::Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2)
            .with_policy(StepPolicy::OnlyChanging);
        let mk = ts.get("Mk").unwrap();
        let rm = ts.get("Rm").unwrap();
        let a1 = arg("1");
        let miss = arg("zzz");
        let batch: Vec<(&Transaction, &Assignment)> =
            vec![(rm, &miss), (mk, &a1), (rm, &miss), (rm, &miss)];
        let (done, err) = m.try_apply_batch(batch);
        assert_eq!((done, err), (4, None));
        assert_eq!(m.steps(), 1, "three null applications contributed no letter");
    }

    #[test]
    fn multi_component_schema_routes_by_component() {
        // Four independent hierarchies → four shards, one per component.
        let mut b = SchemaBuilder::new();
        for r in 0..4 {
            let root = b.class(&format!("R{r}"), &[&format!("K{r}")]).unwrap();
            b.subclass(&format!("S{r}"), &[root], &[]).unwrap();
        }
        let s = b.build().unwrap();
        assert_eq!(s.num_components(), 4);
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = crate::Inventory::parse_init(&s, &a, "∅* ([R0] ∪ [S0])* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Mk1(x) { create(R1, { K1 = x }); }
            transaction Mk2(x) { create(R2, { K2 = x }); }
            transaction Mk3(x) { create(R3, { K3 = x }); }
        ",
        )
        .unwrap();
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 8);
        assert!(m.routes_by_component());
        assert_eq!(m.num_shards(), 4, "capped at the component count");
        let mut oracle = Monitor::new_reference(&s, &a, &inv, PatternKind::All);
        for i in 0..12 {
            let t = ts.get(&format!("Mk{}", i % 4)).unwrap();
            let args = arg(&format!("k{i}"));
            assert_eq!(m.try_apply(t, &args), oracle.try_apply(t, &args));
            assert_eq!(m.db(), oracle.db());
        }
        let stats = m.shard_stats();
        assert_eq!(stats.len(), 4);
        for st in &stats {
            assert_eq!(
                st.tracked_objects, 3,
                "objects spread evenly across component shards: {stats:?}"
            );
        }
        for o in 1..=12u64 {
            assert_eq!(m.pattern_of(Oid(o)), oracle.pattern_of(Oid(o)));
        }
    }
}

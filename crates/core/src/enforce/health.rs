//! Operator-visible server health: the degraded read-only switch and
//! the background-checkpoint status.
//!
//! One [`Health`] is shared (by reference, or `Arc` for detached
//! threads) between the three parties that learn about durability
//! failures first:
//!
//! * the **admission worker** (`enforce::ingress`) flips
//!   [`Health::degrade`] when WAL appends keep failing past the retry
//!   budget, and refuses new writes while [`Health::is_degraded`];
//! * the **snapshotter** (`enforce::wal`) records every durable
//!   checkpoint and the failure it eventually gave up on — so a stopped
//!   checkpoint pipeline is visible, not silent;
//! * the **wire front end** (`enforce::net`) renders both into the
//!   `stats` reply and lets an operator clear the degraded flag with
//!   the `rearm` verb once the fault is fixed.
//!
//! All methods take `&self` and tolerate lock poisoning: health
//! reporting must keep working exactly when other threads are dying.

use super::wal::WalError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Status of the background checkpoint pipeline (see
/// [`Health::checkpoint`]).
#[derive(Clone, Debug, Default)]
pub struct CheckpointHealth {
    /// Checkpoints made durable since startup.
    pub completed: usize,
    /// Sequence number and completion instant of the newest durable
    /// checkpoint.
    pub last_ok: Option<(u64, Instant)>,
    /// The failure a checkpoint job gave up on (retries exhausted, or a
    /// staging error) — sticky until a full snapshot re-establishes the
    /// chain, because recovery replays the uncovered log until then.
    pub failed: Option<String>,
}

/// Live health state of one serving process (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct Health {
    degraded: AtomicBool,
    reason: Mutex<String>,
    checkpoint: Mutex<CheckpointHealth>,
}

impl Health {
    /// Fresh, healthy state.
    #[must_use]
    pub fn new() -> Health {
        Health::default()
    }

    /// Whether the server is in degraded read-only mode: invokes are
    /// refused, read verbs still answer.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Enter degraded read-only mode, recording why. Idempotent; the
    /// latest reason wins.
    pub fn degrade(&self, reason: &str) {
        reason.clone_into(&mut lock(&self.reason));
        self.degraded.store(true, Ordering::SeqCst);
    }

    /// Operator action: leave degraded mode and admit writes again (the
    /// wire `rearm` verb). Returns whether the server *was* degraded.
    /// If the underlying fault persists, the next failing append
    /// degrades the server again — re-arming is an assertion about the
    /// hardware, not a bypass of the durability contract.
    pub fn rearm(&self) -> bool {
        self.degraded.swap(false, Ordering::SeqCst)
    }

    /// The reason recorded by the last [`Health::degrade`] (empty if
    /// never degraded).
    #[must_use]
    pub fn reason(&self) -> String {
        lock(&self.reason).clone()
    }

    /// Record a durable checkpoint.
    pub fn checkpoint_ok(&self, seq: u64) {
        let mut c = lock(&self.checkpoint);
        c.completed += 1;
        c.last_ok = Some((seq, Instant::now()));
    }

    /// Record a checkpoint failure the pipeline gave up on.
    pub fn checkpoint_failed(&self, what: &WalError) {
        lock(&self.checkpoint).failed = Some(what.to_string());
    }

    /// Snapshot of the checkpoint status.
    #[must_use]
    pub fn checkpoint(&self) -> CheckpointHealth {
        lock(&self.checkpoint).clone()
    }

    /// The `last_checkpoint=` token of the wire `stats` reply: `none`
    /// (no checkpoint finished yet), `ok:seq=N:age=Ss`, or `failed`
    /// (deterministic spelling, so smoke tests can grep it).
    #[must_use]
    pub fn checkpoint_token(&self) -> String {
        let c = lock(&self.checkpoint);
        match (&c.failed, &c.last_ok) {
            (Some(_), _) => "failed".to_owned(),
            (None, Some((seq, at))) => format!("ok:seq={seq}:age={}s", at.elapsed().as_secs()),
            (None, None) => "none".to_owned(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_rearm_cycle() {
        let h = Health::new();
        assert!(!h.is_degraded());
        assert!(!h.rearm(), "re-arming a healthy server is a no-op");
        h.degrade("disk on fire");
        assert!(h.is_degraded());
        assert_eq!(h.reason(), "disk on fire");
        assert!(h.rearm());
        assert!(!h.is_degraded());
        assert_eq!(h.reason(), "disk on fire", "the last reason stays readable");
    }

    #[test]
    fn checkpoint_status_tokens() {
        let h = Health::new();
        assert_eq!(h.checkpoint_token(), "none");
        h.checkpoint_ok(3);
        assert!(h.checkpoint_token().starts_with("ok:seq=3:age="), "{}", h.checkpoint_token());
        assert_eq!(h.checkpoint().completed, 1);
        h.checkpoint_failed(&WalError::Io("sync failed".into()));
        assert_eq!(h.checkpoint_token(), "failed");
        assert!(h.checkpoint().failed.unwrap().contains("sync failed"));
    }
}

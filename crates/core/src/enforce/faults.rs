//! Deterministic I/O fault injection for the durability layer.
//!
//! Every storage-touching operation of the write-ahead pipeline —
//! appending a block, the group-commit fsync, sealing the live log,
//! writing/syncing/renaming/pruning a checkpoint — consults an
//! [`IoFaults`] handle *before* performing the real I/O. A plan built
//! with [`IoFaults::fail`] (or parsed from the `migctl serve --inject`
//! syntax by [`IoFaults::parse`]) makes any of those sites fail at an
//! exact call ordinal, transiently or persistently, so every durability
//! failure window is a deterministic unit test instead of a hope.
//!
//! The default handle ([`IoFaults::default`]) carries no rules and its
//! check compiles down to one uncontended mutex lock per I/O site call —
//! the production path pays essentially nothing for the seam.
//!
//! ```
//! use migratory_core::enforce::{FaultKind, FaultSite, IoFaults};
//!
//! // Fail the 3rd and 4th WAL appends, then recover.
//! let faults = IoFaults::new().fail(FaultSite::AppendWrite, 3, FaultKind::Transient(2));
//! assert!(faults.check(FaultSite::AppendWrite).is_ok()); // call #1
//! assert!(faults.check(FaultSite::AppendWrite).is_ok()); // call #2
//! assert!(faults.check(FaultSite::AppendWrite).is_err()); // call #3: injected
//! assert!(faults.check(FaultSite::AppendWrite).is_err()); // call #4: injected
//! assert!(faults.check(FaultSite::AppendWrite).is_ok()); // call #5: recovered
//! ```

use super::wal::WalError;
use std::sync::{Arc, Mutex, PoisonError};

/// An instrumented I/O site of the durability pipeline. Each site has
/// its own call counter, so a plan can target "the 3rd append" without
/// caring how many checkpoints ran in between.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// Writing a framed record into the live log
    /// ([`Wal`](super::Wal) append, one call per group commit).
    AppendWrite,
    /// The group-commit `fdatasync` after an append (only reached when
    /// the log runs [`Wal::with_sync`](super::Wal::with_sync)).
    AppendSync,
    /// Renaming the live log into a sealed segment when a checkpoint is
    /// staged ([`Wal::begin_checkpoint`](super::Wal::begin_checkpoint)).
    SealRename,
    /// Creating + writing a checkpoint's temp file
    /// ([`CheckpointJob::run`](super::CheckpointJob::run)).
    CheckpointWrite,
    /// `fsync` of the checkpoint temp file.
    CheckpointSync,
    /// Renaming the checkpoint temp file into place (the atomic-publish
    /// step).
    CheckpointRename,
    /// Pruning log segments and increments the checkpoint covers.
    CheckpointPrune,
}

impl FaultSite {
    /// Every site, for exhaustive fault matrices.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::AppendWrite,
        FaultSite::AppendSync,
        FaultSite::SealRename,
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointSync,
        FaultSite::CheckpointRename,
        FaultSite::CheckpointPrune,
    ];

    /// The site's spelling in the [`IoFaults::parse`] plan syntax.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            FaultSite::AppendWrite => "append",
            FaultSite::AppendSync => "sync",
            FaultSite::SealRename => "seal",
            FaultSite::CheckpointWrite => "ckpt-write",
            FaultSite::CheckpointSync => "ckpt-sync",
            FaultSite::CheckpointRename => "ckpt-rename",
            FaultSite::CheckpointPrune => "ckpt-prune",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::AppendWrite => 0,
            FaultSite::AppendSync => 1,
            FaultSite::SealRename => 2,
            FaultSite::CheckpointWrite => 3,
            FaultSite::CheckpointSync => 4,
            FaultSite::CheckpointRename => 5,
            FaultSite::CheckpointPrune => 6,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// How long an injected failure lasts once its site reaches the
/// triggering call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The next `n` calls at the site fail, then the site recovers —
    /// the shape a retry-with-backoff policy must absorb.
    Transient(u32),
    /// Every call from the trigger on fails — the shape that must flip
    /// the server into degraded read-only mode.
    Persistent,
}

struct Rule {
    site: FaultSite,
    /// 1-based call ordinal at which the rule arms.
    from_nth: u64,
    kind: FaultKind,
    /// Transient failures still owed (ignored for `Persistent`).
    remaining: u32,
}

#[derive(Default)]
struct Inner {
    rules: Vec<Rule>,
    counts: [u64; 7],
}

/// A cheap, cloneable error schedule shared by every instrumented I/O
/// site of one durability pipeline (see the [module docs](self)).
/// Clones share state: the counters a [`Wal`](super::Wal) advances are
/// the counters a test observes through its own handle.
#[derive(Clone, Default)]
pub struct IoFaults(Arc<Mutex<Inner>>);

impl IoFaults {
    /// An empty plan: every check passes.
    #[must_use]
    pub fn new() -> IoFaults {
        IoFaults::default()
    }

    /// Add a rule: starting with call number `from_nth` (1-based) at
    /// `site`, fail per `kind`. Chainable.
    #[must_use]
    pub fn fail(self, site: FaultSite, from_nth: u64, kind: FaultKind) -> IoFaults {
        let remaining = match kind {
            FaultKind::Transient(n) => n,
            FaultKind::Persistent => 0,
        };
        self.lock().rules.push(Rule { site, from_nth: from_nth.max(1), kind, remaining });
        self
    }

    /// Consult the plan at `site`: advance the site's call counter and
    /// fail if an armed rule says so. Instrumented I/O sites call this
    /// immediately before the real operation, so an injected failure
    /// never leaves partial bytes behind.
    ///
    /// # Errors
    /// [`WalError::Io`] naming the site and call ordinal when a rule
    /// fires.
    pub fn check(&self, site: FaultSite) -> Result<(), WalError> {
        let mut inner = self.lock();
        inner.counts[site.index()] += 1;
        let n = inner.counts[site.index()];
        for rule in &mut inner.rules {
            if rule.site != site || n < rule.from_nth {
                continue;
            }
            match rule.kind {
                FaultKind::Persistent => {
                    return Err(WalError::Io(format!("injected {site} failure (call #{n})")));
                }
                FaultKind::Transient(_) if rule.remaining > 0 => {
                    rule.remaining -= 1;
                    return Err(WalError::Io(format!("injected {site} failure (call #{n})")));
                }
                FaultKind::Transient(_) => {}
            }
        }
        Ok(())
    }

    /// Calls observed at `site` so far (failed and passed alike).
    #[must_use]
    pub fn count(&self, site: FaultSite) -> u64 {
        self.lock().counts[site.index()]
    }

    /// Drop every rule — the "operator replaced the disk" event. Call
    /// counters keep running.
    pub fn clear(&self) {
        self.lock().rules.clear();
    }

    /// Parse the `migctl serve --inject` plan syntax: comma-separated
    /// clauses `site@N`, `site@N:K` or `site@N:persistent`, where
    /// `site` is a [`FaultSite::token`], `N` the 1-based call ordinal
    /// the failure starts at, and `K` how many consecutive calls fail
    /// (default 1; `persistent` = every call from `N` on).
    ///
    /// `append@3:persistent` — every WAL append from the 3rd on fails.
    /// `ckpt-sync@1:2,seal@2` — the first two checkpoint fsyncs fail,
    /// and the 2nd log seal fails once.
    ///
    /// # Errors
    /// A message naming the malformed clause and the accepted grammar.
    pub fn parse(plan: &str) -> Result<IoFaults, String> {
        let mut faults = IoFaults::new();
        for clause in plan.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (site_tok, rest) = clause.split_once('@').ok_or_else(|| {
                format!("fault clause `{clause}`: expected `site@N[:K|:persistent]`")
            })?;
            let site = FaultSite::ALL
                .into_iter()
                .find(|s| s.token() == site_tok.trim())
                .ok_or_else(|| {
                    format!(
                        "fault clause `{clause}`: unknown site `{site_tok}` (one of {})",
                        FaultSite::ALL.map(FaultSite::token).join("|")
                    )
                })?;
            let (nth, kind) = match rest.split_once(':') {
                None => (rest, FaultKind::Transient(1)),
                Some((n, "persistent" | "p")) => (n, FaultKind::Persistent),
                Some((n, k)) => {
                    let count: u32 = k.trim().parse().map_err(|_| {
                        format!(
                            "fault clause `{clause}`: `{k}` is neither a count nor `persistent`"
                        )
                    })?;
                    (n, FaultKind::Transient(count))
                }
            };
            let from_nth: u64 = nth
                .trim()
                .parse()
                .map_err(|_| format!("fault clause `{clause}`: `{nth}` is not a call ordinal"))?;
            faults = faults.fail(site, from_nth, kind);
        }
        Ok(faults)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl std::fmt::Debug for IoFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("IoFaults")
            .field("rules", &inner.rules.len())
            .field("counts", &inner.counts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_rule_fails_exactly_its_window() {
        let f = IoFaults::new().fail(FaultSite::AppendWrite, 2, FaultKind::Transient(2));
        assert!(f.check(FaultSite::AppendWrite).is_ok());
        assert!(f.check(FaultSite::AppendWrite).is_err());
        assert!(f.check(FaultSite::AppendWrite).is_err());
        assert!(f.check(FaultSite::AppendWrite).is_ok());
        assert_eq!(f.count(FaultSite::AppendWrite), 4);
        // Other sites are untouched.
        assert!(f.check(FaultSite::CheckpointSync).is_ok());
    }

    #[test]
    fn persistent_rule_fails_forever_until_cleared() {
        let f = IoFaults::new().fail(FaultSite::CheckpointRename, 1, FaultKind::Persistent);
        for _ in 0..5 {
            assert!(f.check(FaultSite::CheckpointRename).is_err());
        }
        f.clear();
        assert!(f.check(FaultSite::CheckpointRename).is_ok());
    }

    #[test]
    fn clones_share_counters_and_rules() {
        let f = IoFaults::new().fail(FaultSite::SealRename, 2, FaultKind::Transient(1));
        let g = f.clone();
        assert!(f.check(FaultSite::SealRename).is_ok());
        assert!(g.check(FaultSite::SealRename).is_err(), "clone sees call #2");
        assert_eq!(f.count(FaultSite::SealRename), 2);
    }

    #[test]
    fn plan_syntax_round_trips() {
        let f = IoFaults::parse("append@3:persistent, ckpt-sync@1:2 ,seal@2").unwrap();
        assert!(f.check(FaultSite::CheckpointSync).is_err());
        assert!(f.check(FaultSite::CheckpointSync).is_err());
        assert!(f.check(FaultSite::CheckpointSync).is_ok());
        assert!(f.check(FaultSite::SealRename).is_ok());
        assert!(f.check(FaultSite::SealRename).is_err());
        assert!(f.check(FaultSite::SealRename).is_ok(), "default transient count is 1");
        assert!(f.check(FaultSite::AppendWrite).is_ok());
        assert!(f.check(FaultSite::AppendWrite).is_ok());
        for _ in 0..4 {
            assert!(f.check(FaultSite::AppendWrite).is_err(), "persistent from #3");
        }
        assert!(IoFaults::parse("").unwrap().check(FaultSite::AppendWrite).is_ok());
        for bad in ["append", "nope@1", "append@x", "append@1:sometimes"] {
            assert!(IoFaults::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn injected_error_names_site_and_ordinal() {
        let f = IoFaults::new().fail(FaultSite::AppendSync, 1, FaultKind::Persistent);
        let e = f.check(FaultSite::AppendSync).unwrap_err();
        assert_eq!(e, WalError::Io("injected sync failure (call #1)".into()));
    }
}

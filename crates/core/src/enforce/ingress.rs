//! Pipelined admission ingress: bounded per-shard queues in front of the
//! sharded monitor, so concurrent callers stop serializing on it.
//!
//! # Shape
//!
//! [`serve`] stands up one **admission worker** (a scoped thread owning
//! the [`ShardedMonitor`]) behind a set of bounded FIFO **lanes** — one
//! per shard when the monitor routes by weakly-connected component (an
//! object's component never changes, so a transaction's traffic has a
//! stable home lane), a single lane under oid striping. Callers get an
//! [`IngressClient`] (`Sync` — share it across as many producer threads
//! as you like) and either [`IngressClient::submit`] synchronously or
//! pipeline with [`IngressClient::post`] / [`Ticket::wait`].
//!
//! The worker drains one lane at a time (round-robin over non-empty
//! lanes), admits the drained ops as **one block** through
//! [`ShardedMonitor::try_apply_batch`], and answers each op's ticket.
//! Batching is therefore emergent: the deeper the queues, the larger
//! the blocks, and the per-block cohort sweep and (when a
//! [`CommitSink`](super::CommitSink) is attached) the per-block WAL
//! append amortize over more letters — a block is a **group commit**,
//! one record and one flush for all its letters. Draining whole lanes
//! keeps a block inside one shard's traffic, and with per-shard letter
//! clocks each lane's blocks advance **only its own shard** — disjoint
//! components admit, log and checkpoint with no cross-lane coupling at
//! all (their objects never interact — Lemma 3.5 — and no shared step
//! counter exists any more).
//!
//! # Backpressure
//!
//! Two forms, both deliberate:
//!
//! * **Capacity** — a lane holds at most
//!   [`IngressConfig::queue_capacity`] ops; `post` blocks until space
//!   frees. Producers can never outrun the monitor unboundedly.
//! * **Violations** — a rejected op answers its ticket with the
//!   [`Violation`](super::Violation) and *does not* consume a letter;
//!   ops queued behind it in the same drained block are re-queued at
//!   the front of their lane and re-admitted in the next block, so one
//!   caller's violation never discards a neighbour's pending work.
//!   (Inside a block the monitor already falls back to sequential
//!   admission on violation, keeping byte-identical diagnostics.)
//!
//! Ordering: each producer's ops are admitted in its own program order
//! (`submit` is synchronous; `post` tickets enqueue in call order into
//! one lane). No order is promised *between* producers — they are
//! network-shaped concurrent callers. The violation re-queue preserves
//! this: survivors of a rejected block go back to the **front** of
//! their lane, in their original order, so they stay ahead of every op
//! posted *after* the block was drained — including ops a producer
//! pipelines in the window between the violator's ticket being
//! answered and the survivors landing back in the lane. Per-producer
//! FIFO order is therefore never inverted by a mid-block violation
//! (regression-tested below by a pipelined chain whose every reorder
//! is observable).
//!
//! ```
//! use migratory_core::enforce::{ingress, IngressConfig, ShardedMonitor};
//! use migratory_core::{Inventory, PatternKind, RoleAlphabet};
//! use migratory_lang::{parse_transactions, Assignment};
//! use migratory_model::{schema::university_schema, Value};
//!
//! let s = university_schema();
//! let a = RoleAlphabet::new(&s, 0).unwrap();
//! let inv = Inventory::parse_init(&s, &a, "∅* [PERSON]* ∅*").unwrap();
//! let ts = parse_transactions(&s, r#"
//!     transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
//! "#).unwrap();
//! let mk = ts.get("Mk").unwrap();
//! let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 2);
//! // Four concurrent producers, each pipelining eight creations.
//! let ((), stats) = ingress::serve(&mut m, &IngressConfig::default(), |client| {
//!     std::thread::scope(|scope| {
//!         for p in 0..4 {
//!             scope.spawn(move || {
//!                 for i in 0..8 {
//!                     let args = Assignment::new(vec![Value::str(&format!("{p}-{i}"))]);
//!                     client.submit(mk, args).expect("creation conforms");
//!                 }
//!             });
//!         }
//!     });
//! });
//! assert_eq!((stats.admitted, stats.rejected), (32, 0));
//! assert_eq!(m.db().num_objects(), 32);
//! ```

use super::health::Health;
use super::metrics::AdmissionMetrics;
use super::sharded::ShardedMonitor;
use super::wal::{self, Wal, WalError};
use super::{EnforceError, ResiduePolicy};
use migratory_lang::{Assignment, Transaction};
use migratory_model::Schema;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct IngressConfig {
    /// Per-lane queue bound; [`IngressClient::post`] blocks when its
    /// lane is full.
    pub queue_capacity: usize,
    /// Largest block drained into one
    /// [`ShardedMonitor::try_apply_batch`] call.
    pub max_block: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig { queue_capacity: 1024, max_block: 256 }
    }
}

/// How the admission worker treats a failing write-ahead append (see
/// [`serve_guarded`]): transient errors are retried with bounded linear
/// backoff; exhausting the budget flips the server into degraded
/// read-only mode ([`Health::degrade`]) instead of erroring op after op
/// against a dead disk — or worse, acking non-durable work.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityPolicy {
    /// Retries per block after a failed append before degrading.
    pub retries: u32,
    /// Base backoff: the n-th retry sleeps `n × backoff` first.
    pub backoff: Duration,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy { retries: 4, backoff: Duration::from_millis(20) }
    }
}

/// Counters reported by [`serve`] after the ingress drains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Ops accepted into a lane.
    pub submitted: usize,
    /// Ops admitted (committed a letter, or a null application under
    /// `OnlyChanging`).
    pub admitted: usize,
    /// Ops rejected (violation or language error).
    pub rejected: usize,
    /// Blocks fed to `try_apply_batch`.
    pub blocks: usize,
    /// Ops re-queued behind a violating neighbour.
    pub requeued: usize,
    /// Admission lanes.
    pub lanes: usize,
    /// High-water queue depth across lanes.
    pub max_queue_depth: usize,
    /// Ops refused because the server was in degraded read-only mode.
    pub refused: usize,
    /// Write-ahead append retries (transient durability faults absorbed
    /// by the [`DurabilityPolicy`]).
    pub retries: usize,
}

/// A boxed one-shot completion callback: how an event-driven caller
/// (the `enforce::net` poll loop) receives an op's outcome without
/// parking a thread on a channel. Invoked exactly once, on the
/// admission worker, after the op's block committed (durably, when a
/// sink is attached) or was rejected — so keep it cheap: stash the
/// outcome and wake the owning event thread.
pub type Completion<'t> = Box<dyn FnOnce(Result<(), EnforceError>) + Send + 't>;

/// How an op's outcome travels back to its producer.
enum Answer<'t> {
    /// A synchronous caller parked on a [`Ticket`].
    Chan(mpsc::Sender<Result<(), EnforceError>>),
    /// An event-driven caller's completion callback.
    Done(Completion<'t>),
}

impl<'t> Answer<'t> {
    fn answer(self, outcome: Result<(), EnforceError>) {
        match self {
            // A producer that dropped its ticket simply doesn't care.
            Answer::Chan(tx) => drop(tx.send(outcome)),
            Answer::Done(f) => f(outcome),
        }
    }
}

struct Op<'t> {
    t: &'t Transaction,
    args: Assignment,
    reply: Answer<'t>,
}

/// An administrative **barrier operation** (see
/// [`IngressClient::post_admin`]): runs on the admission worker with
/// exclusive access to the monitor, strictly between admitted blocks —
/// every op admitted before it has had its ticket answered (and, under
/// the pipelined committer, made durable) first. `Err(reason)` hands
/// over a degraded or broken pipeline instead of the monitor: answer
/// your caller with the refusal, touch nothing. Return the second-half
/// completion that releases the caller's reply.
pub type AdminOp<'t, 's> =
    Box<dyn FnOnce(Result<&mut ShardedMonitor<'s>, String>) -> AdminDone + Send + 't>;

/// Second half of an [`AdminOp`]: invoked by the worker once whatever
/// the op staged through the monitor's sink is durable (`true`), or
/// after the pipeline broke before it could be (`false` — tracking will
/// be wound back to the durable log, so the caller must be told the op
/// did not take). Release the caller's reply here, never earlier.
pub type AdminDone = Box<dyn FnOnce(bool) + Send>;

struct State<'t, 's> {
    lanes: Vec<VecDeque<Op<'t>>>,
    /// Administrative barrier ops, drained ahead of the lanes. The flag
    /// marks **read-only** ops ([`IngressClient::post_admin_read`]):
    /// served without a flush barrier and even in degraded mode.
    admin: VecDeque<(AdminOp<'t, 's>, bool)>,
    /// Set once the driver returns: drain what is queued, then exit.
    closed: bool,
    submitted: usize,
    max_queue_depth: usize,
}

/// One unit of work pulled by the admission worker.
enum Work<'t, 's> {
    /// An administrative barrier op (runs before any queued block);
    /// `true` marks a read-only op.
    Admin(AdminOp<'t, 's>, bool),
    /// A drained block from one lane.
    Block(usize, Vec<Op<'t>>),
    /// Closed and empty: exit.
    Drained,
}

struct Shared<'t, 's> {
    state: Mutex<State<'t, 's>>,
    /// Worker wake-up: an op arrived or the ingress closed.
    ready: Condvar,
    /// Producer wake-up: a lane was drained below capacity.
    space: Condvar,
    /// Non-parking producers ([`IngressClient::on_space`]): invoked by
    /// the worker whenever `space` is signalled, so an event loop whose
    /// [`IngressClient::try_post_done`] was refused learns that a retry
    /// may now succeed without dedicating a thread to the wait.
    space_listeners: Mutex<Vec<Box<dyn Fn() + Send + Sync + 't>>>,
    capacity: usize,
    schema: &'s Schema,
    /// Component → lane (empty: everything to lane 0).
    lane_of_component: Vec<usize>,
}

impl<'t, 's> Shared<'t, 's> {
    fn new(monitor: &ShardedMonitor<'s>, config: &IngressConfig) -> Shared<'t, 's> {
        let lanes = match monitor.component_lanes() {
            Some(_) => monitor.num_shards(),
            None => 1,
        };
        Shared {
            state: Mutex::new(State {
                lanes: (0..lanes).map(|_| VecDeque::new()).collect(),
                admin: VecDeque::new(),
                closed: false,
                submitted: 0,
                max_queue_depth: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            space_listeners: Mutex::new(Vec::new()),
            capacity: config.queue_capacity.max(1),
            schema: monitor.schema(),
            lane_of_component: monitor.component_lanes().map(<[usize]>::to_vec).unwrap_or_default(),
        }
    }

    fn lane_of(&self, t: &Transaction) -> usize {
        if self.lane_of_component.is_empty() {
            return 0;
        }
        // An SL/CSL transaction names concrete classes; route by the
        // first one — the same anchor the sharded monitor's fallback
        // routing uses ([`Transaction::first_named_class`]), so a
        // lane's blocks advance exactly that lane's shard.
        // (Transactions spanning several components admit correctly
        // from any lane — routing is a locality hint, the monitor
        // checks every touched shard per block regardless.)
        match t.first_named_class() {
            Some(c) => self.lane_of_component[self.schema.component_of(c) as usize],
            None => 0,
        }
    }

    fn enqueue(&self, op: Op<'t>) {
        let lane = self.lane_of(op.t);
        let mut st = self.state.lock().expect("ingress poisoned");
        while st.lanes[lane].len() >= self.capacity {
            st = self.space.wait(st).expect("ingress poisoned");
        }
        st.lanes[lane].push_back(op);
        st.submitted += 1;
        st.max_queue_depth = st.max_queue_depth.max(st.lanes[lane].len());
        self.ready.notify_one();
    }

    /// Non-blocking [`Shared::enqueue`]: `Err` hands the op back when
    /// its lane is at capacity.
    fn try_enqueue(&self, op: Op<'t>) -> Result<(), Op<'t>> {
        let lane = self.lane_of(op.t);
        let mut st = self.state.lock().expect("ingress poisoned");
        if st.lanes[lane].len() >= self.capacity {
            return Err(op);
        }
        st.lanes[lane].push_back(op);
        st.submitted += 1;
        st.max_queue_depth = st.max_queue_depth.max(st.lanes[lane].len());
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Wake parked producers and fire the registered space listeners:
    /// called by the worker each time it drains a block out of a lane.
    fn notify_space(&self) {
        self.space.notify_all();
        let listeners = self.space_listeners.lock().expect("ingress poisoned");
        for f in listeners.iter() {
            f();
        }
    }

    /// Pull the admission worker's next unit of work: a pending admin
    /// op (a barrier — served ahead of the lanes), else one block
    /// round-robin over non-empty lanes, else park until either
    /// arrives. `Drained` fills the final stats fields on the way out.
    fn next_work(
        &self,
        cursor: usize,
        max_block: usize,
        stats: &mut IngressStats,
        metrics: Option<&AdmissionMetrics>,
    ) -> Work<'t, 's> {
        let mut st = self.state.lock().expect("ingress poisoned");
        loop {
            if let Some((op, read_only)) = st.admin.pop_front() {
                return Work::Admin(op, read_only);
            }
            let n = st.lanes.len();
            match (0..n).map(|i| (cursor + i) % n).find(|&l| !st.lanes[l].is_empty()) {
                Some(lane) => {
                    if let Some(h) = metrics.and_then(|m| m.queue_depth.get(lane)) {
                        h.record(st.lanes[lane].len() as u64);
                    }
                    let take = st.lanes[lane].len().min(max_block);
                    let block: Vec<Op<'t>> = st.lanes[lane].drain(..take).collect();
                    return Work::Block(lane, block);
                }
                None if st.closed => {
                    stats.lanes = st.lanes.len();
                    stats.submitted = st.submitted;
                    stats.max_queue_depth = st.max_queue_depth;
                    return Work::Drained;
                }
                None => st = self.ready.wait(st).expect("ingress poisoned"),
            }
        }
    }
}

/// A handle for feeding the ingress. `Sync`: share one reference across
/// any number of producer threads.
pub struct IngressClient<'t, 's, 'sh> {
    shared: &'sh Shared<'t, 's>,
}

/// A pending admission outcome (see [`IngressClient::post`]).
pub struct Ticket {
    rx: mpsc::Receiver<Result<(), EnforceError>>,
}

impl Ticket {
    /// Block until the op's block was admitted (durably, when a sink is
    /// attached) or rejected.
    pub fn wait(self) -> Result<(), EnforceError> {
        self.rx.recv().expect("admission worker answers every ticket")
    }
}

impl<'t> IngressClient<'t, '_, '_> {
    /// Enqueue an application and return a [`Ticket`] for its outcome.
    /// Blocks only for lane capacity (backpressure), so one producer
    /// can pipeline many ops into a single admitted block.
    pub fn post(&self, t: &'t Transaction, args: Assignment) -> Ticket {
        let (tx, rx) = mpsc::channel();
        self.shared.enqueue(Op { t, args, reply: Answer::Chan(tx) });
        Ticket { rx }
    }

    /// Non-blocking [`IngressClient::post`] for event-driven callers: on
    /// success the op is queued and `done` will be invoked exactly once
    /// (on the admission worker) with its outcome; when the op's lane is
    /// at capacity the pieces are handed back unqueued so the caller can
    /// park them and retry after an [`IngressClient::on_space`] wakeup —
    /// backpressure without a blocked thread.
    pub fn try_post_done(
        &self,
        t: &'t Transaction,
        args: Assignment,
        done: Completion<'t>,
    ) -> Result<(), (Assignment, Completion<'t>)> {
        self.shared.try_enqueue(Op { t, args, reply: Answer::Done(done) }).map_err(|op| {
            match op.reply {
                Answer::Done(done) => (op.args, done),
                Answer::Chan(_) => unreachable!("constructed with Answer::Done above"),
            }
        })
    }

    /// Register a persistent lane-space listener, fired by the admission
    /// worker each time it drains a block (i.e. whenever a refused
    /// [`IngressClient::try_post_done`] may now succeed). Listeners run
    /// on the worker thread: keep them to a wakeup signal.
    pub fn on_space(&self, f: impl Fn() + Send + Sync + 't) {
        self.shared.space_listeners.lock().expect("ingress poisoned").push(Box::new(f));
    }

    /// Enqueue an application and wait for its outcome: `Ok` once the
    /// op's block committed (and, with a sink attached, was logged).
    pub fn submit(&self, t: &'t Transaction, args: Assignment) -> Result<(), EnforceError> {
        self.post(t, args).wait()
    }
}

impl<'t, 's> IngressClient<'t, 's, '_> {
    /// Post an administrative **barrier op** — the seam the `redefine`
    /// verb (online constraint evolution) runs through. The op jumps
    /// ahead of the lanes: the worker serves it between blocks, with
    /// exclusive monitor access, after every previously admitted op's
    /// ticket was answered — and under the pipelined committer, after
    /// everything previously forwarded is durable (a flush barrier runs
    /// first, and whatever the op stages through the monitor's sink is
    /// flushed again before its [`AdminDone`] is invoked). Never blocks:
    /// admin ops are rare and unbounded by lane capacity.
    pub fn post_admin(&self, op: AdminOp<'t, 's>) {
        let mut st = self.shared.state.lock().expect("ingress poisoned");
        st.admin.push_back((op, false));
        drop(st);
        self.shared.ready.notify_one();
    }

    /// [`IngressClient::post_admin`] for **read-only** ops — the seam
    /// the `query` verb (and a replica's every read) runs through. The
    /// op still jumps the lanes and runs on the worker with exclusive
    /// monitor access, but it skips the flush barrier (it stages
    /// nothing, so there is nothing to make durable: its [`AdminDone`]
    /// is invoked immediately with `true`) and it is served even in
    /// degraded read-only mode — reads stay up when writes refuse.
    /// The op must not mutate the monitor.
    pub fn post_admin_read(&self, op: AdminOp<'t, 's>) {
        let mut st = self.shared.state.lock().expect("ingress poisoned");
        st.admin.push_back((op, true));
        drop(st);
        self.shared.ready.notify_one();
    }
}

/// Run an ingress around `monitor`: spawn the admission worker, hand
/// the driver an [`IngressClient`], and when the driver returns, drain
/// the remaining queue and return the driver's result plus
/// [`IngressStats`]. The monitor is borrowed for the duration — attach
/// policy and [`CommitSink`](super::CommitSink) before serving; every
/// admitted block then group-commits through it.
///
/// Close-and-answer: once the driver returns, no new work can arrive
/// (every producer borrowed the client, which is gone), and the worker
/// keeps draining until every lane is empty — so **every posted op is
/// answered** before `serve` returns. That is the graceful-drain
/// primitive the network front end (`enforce::net`) builds on.
pub fn serve<'t, 'a, R>(
    monitor: &mut ShardedMonitor<'a>,
    config: &IngressConfig,
    drive: impl FnOnce(&IngressClient<'t, '_, '_>) -> R,
) -> (R, IngressStats) {
    serve_with(monitor, config, 0, |_| {}, drive)
}

/// [`serve`] with a periodic **maintenance hook**: every
/// `maintenance_every` admitted blocks (0 = never) the admission worker
/// calls `maintenance` with exclusive access to the monitor — after the
/// block's tickets were answered, so the hook never adds latency to the
/// ops that triggered it. This is how a long-running server runs
/// incremental checkpoints *behind* live traffic: the hook captures an
/// O(dirty) [`CheckpointDelta`](super::CheckpointDelta) and hands it to
/// a background [`Snapshotter`](super::Snapshotter) while producers
/// keep posting (their ops queue in the lanes for the duration of the
/// capture).
pub fn serve_with<'t, 'a, R>(
    monitor: &mut ShardedMonitor<'a>,
    config: &IngressConfig,
    maintenance_every: usize,
    maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
    drive: impl FnOnce(&IngressClient<'t, '_, '_>) -> R,
) -> (R, IngressStats) {
    let health = Health::new();
    serve_guarded(
        monitor,
        config,
        &DurabilityPolicy::default(),
        &health,
        maintenance_every,
        maintenance,
        drive,
    )
}

/// The full-fat ingress: [`serve_with`] plus an explicit
/// [`DurabilityPolicy`] and a shared [`Health`]. The admission worker
/// retries a block whose write-ahead append failed (nothing past the
/// committed prefix reached the log — the rollback contract of
/// [`ShardedMonitor::try_apply_batch`] makes the retry safe), and when
/// the budget is exhausted it degrades the server: every queued and
/// future op is answered [`EnforceError::Degraded`] without touching
/// the engine, until [`Health::rearm`] — reads stay up, writes refuse
/// fast, and nothing is ever acked that is not on disk.
pub fn serve_guarded<'t, 'a, R>(
    monitor: &mut ShardedMonitor<'a>,
    config: &IngressConfig,
    policy: &DurabilityPolicy,
    health: &Health,
    maintenance_every: usize,
    mut maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
    drive: impl FnOnce(&IngressClient<'t, '_, '_>) -> R,
) -> (R, IngressStats) {
    let shared = Shared::new(monitor, config);
    let max_block = config.max_block.max(1);
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            admission_loop(
                monitor,
                &shared,
                max_block,
                policy,
                health,
                maintenance_every,
                &mut maintenance,
            )
        });
        // Close on unwind too: if the driver panics, the scope joins the
        // worker before propagating, and a worker parked on `ready` with
        // `closed` unset would deadlock the join forever.
        let guard = CloseGuard(&shared);
        let out = drive(&IngressClient { shared: &shared });
        drop(guard);
        let stats = worker.join().expect("admission worker panicked");
        (out, stats)
    })
}

/// Marks the ingress closed (and wakes everyone) when dropped — on the
/// driver's normal return *and* on its unwind.
struct CloseGuard<'g, 't, 's>(&'g Shared<'t, 's>);

impl Drop for CloseGuard<'_, '_, '_> {
    fn drop(&mut self) {
        let mut st = match self.0.state.lock() {
            Ok(st) => st,
            Err(poisoned) => poisoned.into_inner(),
        };
        st.closed = true;
        drop(st);
        self.0.ready.notify_all();
        self.0.space.notify_all();
    }
}

fn admission_loop<'t, 'a>(
    monitor: &mut ShardedMonitor<'a>,
    shared: &Shared<'t, 'a>,
    max_block: usize,
    policy: &DurabilityPolicy,
    health: &Health,
    maintenance_every: usize,
    maintenance: &mut (impl FnMut(&mut ShardedMonitor<'a>) + Send),
) -> IngressStats {
    let mut stats = IngressStats::default();
    let mut cursor = 0usize;
    loop {
        let (lane, block) = match shared.next_work(cursor, max_block, &mut stats, None) {
            Work::Drained => return stats,
            Work::Admin(op, read_only) => {
                // Barrier op between blocks: the previous block's
                // tickets were answered (synchronously — the sink, if
                // any, appended and synced inside `try_apply_batch`), so
                // the op sees a quiescent, durable-consistent monitor.
                // Read-only ops see it even degraded: reads stay up.
                let done = if health.is_degraded() && !read_only {
                    op(Err(health.reason()))
                } else {
                    op(Ok(monitor))
                };
                done(true);
                continue;
            }
            Work::Block(lane, block) => (lane, block),
        };
        shared.notify_space();
        cursor = lane + 1;

        // Admit the block; longest conforming prefix commits.
        stats.blocks += 1;
        if health.is_degraded() {
            // Degraded read-only mode: refuse before touching the
            // engine. Lanes keep draining so every producer is answered
            // promptly instead of backing up against a dead disk.
            let reason = health.reason();
            stats.refused += block.len();
            for op in block {
                op.reply.answer(Err(EnforceError::Degraded(reason.clone())));
            }
            continue;
        }
        let mut ops = block;
        let mut attempts = 0u32;
        loop {
            let (done, err) = monitor.try_apply_batch(ops.iter().map(|op| (op.t, &op.args)));
            stats.admitted += done;
            let mut rest = ops.into_iter();
            for op in rest.by_ref().take(done) {
                op.reply.answer(Ok(()));
            }
            match err {
                None => {
                    debug_assert_eq!(rest.len(), 0, "without an error every op commits");
                    break;
                }
                // The write-ahead append refused the block: nothing past
                // `done` reached the log and every survivor was rolled
                // back, so re-admitting them is safe. Retry with bounded
                // backoff; an exhausted budget degrades the server.
                Some(EnforceError::Durability(e)) => {
                    let rest: Vec<Op<'t>> = rest.collect();
                    if attempts < policy.retries {
                        attempts += 1;
                        stats.retries += 1;
                        std::thread::sleep(policy.backoff.saturating_mul(attempts));
                        ops = rest;
                        continue;
                    }
                    let reason = format!("write-ahead append failed after {attempts} retries: {e}");
                    health.degrade(&reason);
                    stats.refused += rest.len();
                    for op in rest {
                        op.reply.answer(Err(EnforceError::Degraded(reason.clone())));
                    }
                    break;
                }
                Some(e) => {
                    stats.rejected += 1;
                    if let Some(op) = rest.next() {
                        op.reply.answer(Err(e));
                    }
                    // Ops behind the violator were rolled back
                    // unattempted: back to the front of their lane,
                    // order preserved.
                    let rest: Vec<Op<'t>> = rest.collect();
                    if !rest.is_empty() {
                        stats.requeued += rest.len();
                        let mut st = shared.state.lock().expect("ingress poisoned");
                        for op in rest.into_iter().rev() {
                            st.lanes[lane].push_front(op);
                        }
                    }
                    break;
                }
            }
        }
        // Maintenance rides the block cadence, after the tickets were
        // answered: a checkpoint capture stalls future admissions (new
        // ops queue in the lanes meanwhile), never the replies of the
        // block that triggered it.
        if maintenance_every > 0 && stats.blocks.is_multiple_of(maintenance_every) {
            maintenance(monitor);
        }
    }
}

// ---------------------------------------------------------------------
// Pipelined group commit (two-stage admission)
// ---------------------------------------------------------------------

/// Poison-tolerant lock: a panic on the other side of the pipeline must
/// surface as that thread's join error, not cascade into a second
/// panic here.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The pipelined ingress's commit sink: instead of appending (and
/// syncing) on the admission worker, each admitted block's framed
/// record bytes are accumulated here — synchronously, inside
/// `try_apply_batch` — and the worker hands the buffer to the
/// committer thread after tracking commits. Encoding is the only
/// fallible step (a block past the record cap), so the admission path
/// itself can no longer block on the disk.
struct StagedSink {
    staged: Arc<Mutex<Vec<u8>>>,
}

impl wal::CommitSink for StagedSink {
    fn committed(&mut self, block: &wal::BlockRef<'_>) -> Result<(), WalError> {
        // `encode_record` leaves the buffer untouched on `Err`, so a
        // refused oversized block never poisons neighbouring records.
        wal::encode_record(&mut lock(&self.staged), block)
    }

    fn certified(&mut self, steps: usize) -> Result<(), WalError> {
        wal::encode_certify_record(&mut lock(&self.staged), steps);
        Ok(())
    }

    fn redefined(
        &mut self,
        epoch: u64,
        policy: ResiduePolicy,
        shards: &[(u32, usize)],
        inventory: &[u8],
    ) -> Result<(), WalError> {
        wal::encode_redefine_record(&mut lock(&self.staged), epoch, policy, shards, inventory)
    }
}

/// Worker → committer hand-off. One channel with one producer (the
/// admission worker), so message order **is** commit order.
enum Msg<'t> {
    /// An admitted block: its framed record bytes (several records when
    /// a violation replay split the block) and the tickets to release
    /// once the bytes are durable.
    Commit { bytes: Vec<u8>, answers: Vec<Answer<'t>>, lane: usize, t0: Instant },
    /// Barrier: reply once everything before it was appended and synced
    /// (or refused). `false` means a durability failure broke the
    /// pipeline and the worker must not checkpoint the monitor's
    /// tracking state as-is.
    Flush(mpsc::Sender<bool>),
    /// The worker resynchronized the monitor against the durable log:
    /// resume committing.
    Reset,
}

/// State shared between the pipelined admission worker, its committer
/// thread and the staging sink.
struct Pipeline<'w> {
    wal: Arc<Mutex<Wal>>,
    health: &'w Health,
    policy: DurabilityPolicy,
    metrics: Option<&'w AdmissionMetrics>,
    /// When attached, every batch's record bytes are teed to the
    /// replicas after the local sync; under
    /// [`AckPolicy::ReplicaK`](super::repl::AckPolicy::ReplicaK) the
    /// batch's tickets are withheld until enough replicas acked.
    repl: Option<Arc<super::repl::Replicator>>,
    /// The [`StagedSink`] buffer the worker drains after each
    /// `try_apply_batch`.
    staged: Arc<Mutex<Vec<u8>>>,
    /// Set by the committer when a failure dropped appended-but-unsynced
    /// records: monitor tracking ran ahead of the durable log and must
    /// be wound back before the next commit.
    needs_resync: AtomicBool,
    /// Ops refused on the committer (merged into
    /// [`IngressStats::refused`] on exit).
    refused: AtomicUsize,
    /// Append/sync retries absorbed on the committer (merged into
    /// [`IngressStats::retries`]).
    retries: AtomicUsize,
}

impl Pipeline<'_> {
    /// Run a WAL operation under the retry budget: transient faults are
    /// absorbed with bounded linear backoff. The lock is released
    /// across each backoff sleep — the worker may need it meanwhile.
    fn retry(&self, mut op: impl FnMut(&mut Wal) -> Result<(), WalError>) -> Result<(), WalError> {
        let mut attempts = 0u32;
        loop {
            match op(&mut lock(&self.wal)) {
                Ok(()) => return Ok(()),
                Err(_) if attempts < self.policy.retries => {
                    attempts += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.policy.backoff.saturating_mul(attempts));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Answer every ticket `Degraded` and count the refusals.
    fn refuse(&self, answers: Vec<Answer<'_>>, reason: &str) {
        self.refused.fetch_add(answers.len(), Ordering::Relaxed);
        for a in answers {
            a.answer(Err(EnforceError::Degraded(reason.to_owned())));
        }
    }

    /// A durability failure on the committer: truncate the unsynced log
    /// suffix (acks for those records were never released, so a reopen
    /// must not replay them), degrade, flag the worker to resync — the
    /// monitor committed tracking for every forwarded block, so it now
    /// runs ahead of the durable log — and answer every affected
    /// ticket.
    fn fail_batch<'t>(
        &self,
        e: &WalError,
        site: &str,
        appended: &mut Vec<(Vec<Answer<'t>>, usize, Instant)>,
        also: Vec<Answer<'t>>,
    ) {
        let reason =
            format!("write-ahead {site} failed after {} retries: {e}", self.policy.retries);
        lock(&self.wal).rollback_unsynced();
        self.needs_resync.store(true, Ordering::SeqCst);
        self.health.degrade(&reason);
        for (answers, _, _) in appended.drain(..) {
            self.refuse(answers, &reason);
        }
        self.refuse(also, &reason);
    }
}

/// The committer thread: drain the channel greedily, append every
/// pending block, issue **one** `fdatasync` for the whole batch (under
/// [`FsyncPolicy::Batch`](super::FsyncPolicy::Batch); per record under
/// `Always`, never under `Off`), and only then release the batch's
/// tickets — group commit, with the sync latency overlapping the
/// worker's staging of the next blocks. The degraded-mode retry
/// semantics live here now: an exhausted append or sync rolls the
/// unsynced suffix back, degrades the server, and answers every
/// affected ticket `Degraded`.
fn committer_loop<'t>(pipe: &Pipeline<'_>, rx: &mpsc::Receiver<Msg<'t>>) {
    let mut broken = pipe.health.is_degraded();
    while let Ok(first) = rx.recv() {
        let mut msgs = vec![first];
        while let Ok(m) = rx.try_recv() {
            msgs.push(m);
        }
        // Blocks appended this round, awaiting the batch sync.
        let mut appended: Vec<(Vec<Answer<'t>>, usize, Instant)> = Vec::new();
        let mut flushes: Vec<mpsc::Sender<bool>> = Vec::new();
        // Record bytes appended this round, in commit order: the
        // replication tee ships exactly what the log carries.
        let mut shipped: Vec<u8> = Vec::new();
        for msg in msgs {
            match msg {
                Msg::Reset => broken = false,
                Msg::Flush(reply) => flushes.push(reply),
                Msg::Commit { bytes, answers, lane, t0 } => {
                    if broken {
                        pipe.refuse(answers, &pipe.health.reason());
                    } else {
                        match pipe.retry(|w| w.append_bytes(&bytes)) {
                            Ok(()) => {
                                if pipe.repl.is_some() {
                                    shipped.extend_from_slice(&bytes);
                                }
                                appended.push((answers, lane, t0));
                            }
                            Err(e) => {
                                broken = true;
                                pipe.fail_batch(&e, "append", &mut appended, answers);
                            }
                        }
                    }
                }
            }
        }
        if !appended.is_empty() {
            match pipe.retry(Wal::sync) {
                Ok(()) => {
                    // Local durability first, then the tee: under
                    // ack-on-replica-k the batch's acks are withheld
                    // until enough standbys confirmed the bytes. An
                    // exhausted wait is an **unknown outcome** — the
                    // records are on the local disk and must NOT be
                    // rolled back; the tickets are refused (the caller
                    // must treat the op as in doubt) and the server
                    // degrades until the operator rearms.
                    let tee = match &pipe.repl {
                        Some(repl) if !shipped.is_empty() => repl.ship_and_wait(&shipped),
                        _ => Ok(()),
                    };
                    match tee {
                        Ok(()) => {
                            if let Some(m) = pipe.metrics {
                                m.fsync_batch.record(appended.len() as u64);
                            }
                            for (answers, lane, t0) in appended {
                                if let Some(h) =
                                    pipe.metrics.and_then(|m| m.commit_latency_us.get(lane))
                                {
                                    h.record(
                                        u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                                    );
                                }
                                for a in answers {
                                    a.answer(Ok(()));
                                }
                            }
                        }
                        Err(reason) => {
                            // The durable log keeps the records (no
                            // rollback — they synced); needs_resync is
                            // still flagged so the post-rearm protocol
                            // re-arms the committer through the usual
                            // resync → `Msg::Reset` path (the resync
                            // reloads an identical image — harmless).
                            broken = true;
                            pipe.needs_resync.store(true, Ordering::SeqCst);
                            pipe.health.degrade(&reason);
                            for (answers, _, _) in appended.drain(..) {
                                pipe.refuse(answers, &reason);
                            }
                        }
                    }
                }
                Err(e) => {
                    broken = true;
                    pipe.fail_batch(&e, "sync", &mut appended, Vec::new());
                }
            }
        }
        // Answered after the batch: everything posted before the
        // barrier is durable (the reply may over-cover later commits of
        // the same batch — harmless).
        for reply in flushes {
            let _ = reply.send(!broken);
        }
    }
}

/// Rebuild the monitor from the durable image (checkpoint chain + log
/// tail), in place. `false` re-degrades and leaves the resync pending:
/// a log that cannot even be read back is operator territory.
fn try_resync(monitor: &mut ShardedMonitor<'_>, pipe: &Pipeline<'_>) -> bool {
    let dir = lock(&pipe.wal).dir().to_path_buf();
    match Wal::load(&dir).and_then(|(snap, tail)| monitor.resync(snap, tail)) {
        Ok(()) => true,
        Err(e) => {
            pipe.needs_resync.store(true, Ordering::SeqCst);
            pipe.health.degrade(&format!("resync against the durable log failed: {e}"));
            false
        }
    }
}

/// Send a flush barrier and wait it out. `true` when the committer is
/// healthy (everything prior durable); `false` on a broken pipeline or
/// a committer that already exited.
fn flush_committer(tx: &mpsc::Sender<Msg<'_>>) -> bool {
    let (ftx, frx) = mpsc::channel();
    tx.send(Msg::Flush(ftx)).is_ok() && frx.recv() == Ok(true)
}

/// The two-stage admission loop behind [`serve_pipelined`]: drains and
/// admits exactly like [`admission_loop`], but instead of acking
/// admitted ops it forwards each block's staged record bytes plus its
/// tickets to the committer, which releases them only once durable.
/// Violations and language errors carry no state change and are still
/// answered directly here.
fn pipelined_loop<'t, 'a>(
    monitor: &mut ShardedMonitor<'a>,
    shared: &Shared<'t, 'a>,
    max_block: usize,
    maintenance_every: usize,
    maintenance: &mut (impl FnMut(&mut ShardedMonitor<'a>) + Send),
    pipe: &Pipeline<'_>,
    tx: &mpsc::Sender<Msg<'t>>,
) -> IngressStats {
    let mut stats = IngressStats::default();
    let mut cursor = 0usize;
    loop {
        let (lane, block) = match shared.next_work(cursor, max_block, &mut stats, pipe.metrics) {
            Work::Drained => {
                // Drain barrier: every forwarded ticket must be
                // answered (durable or refused) before serve returns.
                let _ = flush_committer(tx);
                // Resolve a pending divergence even in degraded mode,
                // so the caller's final checkpoint snapshots exactly
                // the durable state.
                if pipe.needs_resync.swap(false, Ordering::SeqCst) {
                    try_resync(monitor, pipe);
                }
                return stats;
            }
            Work::Admin(op, read_only) => {
                if read_only {
                    // Read-only ops skip the flush barrier entirely:
                    // they stage nothing, a slightly-stale (or even
                    // degraded) monitor is a consistent read, and the
                    // committer is never involved.
                    op(Ok(monitor))(true);
                    continue;
                }
                // Barrier: everything forwarded before the op must be
                // durable (its tickets answered by the committer) before
                // the op sees the monitor — and a monitor that ran ahead
                // of a broken log is wound back first, so the op never
                // builds on tracking the durable image contradicts.
                let flushed = flush_committer(tx);
                if pipe.needs_resync.load(Ordering::SeqCst)
                    && !pipe.health.is_degraded()
                    && pipe.needs_resync.swap(false, Ordering::SeqCst)
                    && try_resync(monitor, pipe)
                {
                    let _ = tx.send(Msg::Reset);
                }
                if flushed && !pipe.health.is_degraded() {
                    let done = op(Ok(monitor));
                    // Whatever the op staged through the sink rides the
                    // committer like a block with no tickets; its reply
                    // is released only once the record is durable.
                    let bytes = std::mem::take(&mut *lock(&pipe.staged));
                    if !bytes.is_empty() {
                        tx.send(Msg::Commit {
                            bytes,
                            answers: Vec::new(),
                            lane: 0,
                            t0: Instant::now(),
                        })
                        .expect("committer outlives the worker");
                    }
                    done(flush_committer(tx));
                } else {
                    let reason = if pipe.health.is_degraded() {
                        pipe.health.reason()
                    } else {
                        "write-ahead committer unavailable".to_owned()
                    };
                    op(Err(reason))(true);
                }
                continue;
            }
            Work::Block(lane, block) => (lane, block),
        };
        shared.notify_space();
        cursor = lane + 1;
        stats.blocks += 1;

        // Healthy again after a committer failure (`rearm`): wind the
        // monitor back to the durable log before admitting on top of
        // it — tracking committed blocks whose records were dropped.
        if pipe.needs_resync.load(Ordering::SeqCst) && !pipe.health.is_degraded() {
            let _ = flush_committer(tx);
            if pipe.needs_resync.swap(false, Ordering::SeqCst) && try_resync(monitor, pipe) {
                let _ = tx.send(Msg::Reset);
            }
        }

        if pipe.health.is_degraded() {
            // Degraded read-only mode: refuse before touching the
            // engine, exactly like the synchronous path.
            let reason = pipe.health.reason();
            stats.refused += block.len();
            for op in block {
                op.reply.answer(Err(EnforceError::Degraded(reason.clone())));
            }
            continue;
        }

        let t0 = Instant::now();
        let mut ops = block;
        let mut attempts = 0u32;
        loop {
            let (done, err) = monitor.try_apply_batch(ops.iter().map(|op| (op.t, &op.args)));
            stats.admitted += done;
            let mut rest = ops.into_iter();
            let answers: Vec<Answer<'t>> = rest.by_ref().take(done).map(|op| op.reply).collect();
            let bytes = std::mem::take(&mut *lock(&pipe.staged));
            if !answers.is_empty() || !bytes.is_empty() {
                if let Some(h) = pipe.metrics.and_then(|m| m.block_size.get(lane)) {
                    h.record(done as u64);
                }
                // The committer owns these acks now: released only once
                // the bytes are durable under the configured policy.
                tx.send(Msg::Commit { bytes, answers, lane, t0 })
                    .expect("committer outlives the worker");
            }
            match err {
                None => {
                    debug_assert_eq!(rest.len(), 0, "without an error every op commits");
                    break;
                }
                // With the staging sink the only admission-path
                // durability failure left is a block encoding past the
                // record cap; keep the synchronous path's retry/degrade
                // contract for it.
                Some(EnforceError::Durability(e)) => {
                    let rest: Vec<Op<'t>> = rest.collect();
                    if attempts < pipe.policy.retries {
                        attempts += 1;
                        stats.retries += 1;
                        std::thread::sleep(pipe.policy.backoff.saturating_mul(attempts));
                        ops = rest;
                        continue;
                    }
                    let reason =
                        format!("write-ahead staging failed after {attempts} retries: {e}");
                    pipe.health.degrade(&reason);
                    stats.refused += rest.len();
                    for op in rest {
                        op.reply.answer(Err(EnforceError::Degraded(reason.clone())));
                    }
                    break;
                }
                Some(e) => {
                    stats.rejected += 1;
                    if let Some(op) = rest.next() {
                        op.reply.answer(Err(e));
                    }
                    // Ops behind the violator were rolled back
                    // unattempted: back to the front of their lane,
                    // order preserved.
                    let rest: Vec<Op<'t>> = rest.collect();
                    if !rest.is_empty() {
                        stats.requeued += rest.len();
                        let mut st = shared.state.lock().expect("ingress poisoned");
                        for op in rest.into_iter().rev() {
                            st.lanes[lane].push_front(op);
                        }
                    }
                    break;
                }
            }
        }
        // Maintenance rides the block cadence, but behind a flush
        // barrier: a checkpoint must neither capture tracking state
        // whose records a broken committer dropped, nor seal a log
        // whose unsynced tail the checkpoint claims to cover.
        if maintenance_every > 0
            && stats.blocks.is_multiple_of(maintenance_every)
            && flush_committer(tx)
        {
            let m0 = Instant::now();
            maintenance(monitor);
            if let Some(m) = pipe.metrics {
                m.checkpoint_stall_us
                    .record(u64::try_from(m0.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
        }
    }
}

/// [`serve_guarded`] with **pipelined group commit**: the tentpole
/// two-stage admission pipeline.
///
/// The admission worker stages and commits tracking exactly as the
/// synchronous path does, but instead of appending and syncing inline
/// (one disk round-trip serialized into every block) it hands each
/// admitted block's framed record bytes to a dedicated **committer
/// thread** over a channel. The committer batches whatever has
/// accumulated, appends it, issues **one** `fdatasync` per batch
/// ([`FsyncPolicy::Batch`](super::FsyncPolicy::Batch)), and only then
/// releases the batch's tickets — so an ack still strictly implies
/// durability under the configured policy, but the fsync latency
/// overlaps the staging of the next blocks instead of stalling it.
///
/// The retry/degrade semantics of [`serve_guarded`] move to the
/// committer. Because tracking now commits *before* durability, a
/// committer failure leaves the monitor ahead of the (truncated) log;
/// the worker repairs this by **resynchronizing** the monitor from the
/// checkpoint chain + log tail at the first healthy block after
/// [`Health::rearm`] (and at drain-out), so recovery's byte-identity
/// contract is preserved at every fault site.
///
/// `wal` is the shared write-ahead log the committer appends to — the
/// same handle the maintenance hook checkpoints through. The monitor's
/// sink is replaced by the pipeline's staging sink for the duration
/// and restored on exit. `metrics`, when given, is stamped with queue
/// depths, block sizes, commit latencies, fsync batch sizes and
/// checkpoint stalls.
#[allow(clippy::too_many_arguments)]
pub fn serve_pipelined<'t, 'a, R>(
    monitor: &mut ShardedMonitor<'a>,
    config: &IngressConfig,
    policy: &DurabilityPolicy,
    health: &Health,
    wal: Arc<Mutex<Wal>>,
    metrics: Option<&AdmissionMetrics>,
    maintenance_every: usize,
    maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
    drive: impl FnOnce(&IngressClient<'t, '_, '_>) -> R,
) -> (R, IngressStats) {
    serve_pipelined_repl(
        monitor,
        config,
        policy,
        health,
        wal,
        metrics,
        None,
        maintenance_every,
        maintenance,
        drive,
    )
}

/// [`serve_pipelined`] with a replication tee: every batch the
/// committer syncs is also handed to `repl`
/// ([`Replicator::ship_and_wait`](super::repl::Replicator::ship_and_wait)),
/// and under [`AckPolicy::ReplicaK`](super::repl::AckPolicy::ReplicaK)
/// the batch's tickets are released only once enough replicas
/// acknowledged the bytes — the durability/latency dial of the
/// replication tentpole.
#[allow(clippy::too_many_arguments)]
pub fn serve_pipelined_repl<'t, 'a, R>(
    monitor: &mut ShardedMonitor<'a>,
    config: &IngressConfig,
    policy: &DurabilityPolicy,
    health: &Health,
    wal: Arc<Mutex<Wal>>,
    metrics: Option<&AdmissionMetrics>,
    repl: Option<Arc<super::repl::Replicator>>,
    maintenance_every: usize,
    mut maintenance: impl FnMut(&mut ShardedMonitor<'a>) + Send,
    drive: impl FnOnce(&IngressClient<'t, '_, '_>) -> R,
) -> (R, IngressStats) {
    let staged: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let previous =
        monitor.set_sink(Some(Arc::new(Mutex::new(StagedSink { staged: staged.clone() }))));
    let pipe = Pipeline {
        wal,
        health,
        policy: *policy,
        metrics,
        repl,
        staged,
        needs_resync: AtomicBool::new(false),
        refused: AtomicUsize::new(0),
        retries: AtomicUsize::new(0),
    };
    let shared = Shared::new(monitor, config);
    let max_block = config.max_block.max(1);
    let (tx, rx) = mpsc::channel::<Msg<'t>>();
    let (out, mut stats) = std::thread::scope(|scope| {
        let pipe_ref = &pipe;
        let committer = scope.spawn(move || committer_loop(pipe_ref, &rx));
        let worker = {
            let (shared, worker_tx) = (&shared, tx.clone());
            let maintenance = &mut maintenance;
            let monitor = &mut *monitor;
            scope.spawn(move || {
                pipelined_loop(
                    monitor,
                    shared,
                    max_block,
                    maintenance_every,
                    maintenance,
                    pipe_ref,
                    &worker_tx,
                )
            })
        };
        let guard = CloseGuard(&shared);
        let out = drive(&IngressClient { shared: &shared });
        drop(guard);
        let stats = worker.join().expect("admission worker panicked");
        // The worker's sender is gone; dropping ours closes the channel
        // and the committer (which answered everything pending at the
        // worker's final flush) exits.
        drop(tx);
        committer.join().expect("committer thread panicked");
        (out, stats)
    });
    monitor.set_sink(previous);
    stats.refused += pipe.refused.load(Ordering::SeqCst);
    stats.retries += pipe.retries.load(Ordering::SeqCst);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforce::{MemoryWal, ShardedMonitor, StepPolicy};
    use crate::{Inventory, PatternKind, RoleAlphabet};
    use migratory_lang::parse_transactions;
    use migratory_model::{SchemaBuilder, Value};
    use std::sync::{Arc, Mutex};

    fn multi_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        for r in 0..3 {
            let root = b.class(&format!("R{r}"), &[&format!("K{r}")]).unwrap();
            b.subclass(&format!("S{r}"), &[root], &[]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn concurrent_producers_admit_everything_once() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* ([R0] ∪ [S0])* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
            transaction Mk1(x) { create(R1, { K1 = x }); }
            transaction Mk2(x) { create(R2, { K2 = x }); }
        ",
        )
        .unwrap();
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3)
            .with_policy(StepPolicy::OnlyChanging)
            .with_sink(wal.clone());
        let cfg = IngressConfig { queue_capacity: 8, max_block: 16 };
        const PER: usize = 40;
        let ((), stats) = serve(&mut m, &cfg, |client| {
            std::thread::scope(|scope| {
                for name in ["Mk0", "Mk1", "Mk2"] {
                    let t = ts.get(name).unwrap();
                    scope.spawn(move || {
                        for i in 0..PER {
                            let args = Assignment::new(vec![Value::str(&format!("{name}-{i}"))]);
                            client.submit(t, args).expect("creation conforms");
                        }
                    });
                }
            });
        });
        assert_eq!(stats.submitted, 3 * PER);
        assert_eq!(stats.admitted, 3 * PER);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.lanes, 3, "one lane per component shard");
        assert_eq!(m.db().num_objects(), 3 * PER);
        assert_eq!(m.clocks(), vec![PER, PER, PER], "each shard read only its own letters");
        // Group commit: blocks ≤ submissions, and every letter logged.
        let logged: usize = wal.lock().unwrap().records().iter().map(|r| r.letters()).sum();
        assert_eq!(logged, 3 * PER);
        assert!(stats.blocks <= 3 * PER);
    }

    /// The maintenance hook fires on the block cadence, on the worker,
    /// with exclusive monitor access — the primitive behind background
    /// checkpoints under a live server.
    #[test]
    fn maintenance_hook_fires_every_n_blocks() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* ([R0] ∪ [S0])* ∅*").unwrap();
        let ts = parse_transactions(&s, "transaction Mk0(x) { create(R0, { K0 = x }); }").unwrap();
        let mk = ts.get("Mk0").unwrap();
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
        let mut calls = 0usize;
        let mut clocks_seen = Vec::new();
        let cfg = IngressConfig { queue_capacity: 4, max_block: 1 };
        const OPS: usize = 24;
        let ((), stats) = serve_with(
            &mut m,
            &cfg,
            4,
            |m| {
                calls += 1;
                clocks_seen.push(m.clock(0));
            },
            |client| {
                for i in 0..OPS {
                    client
                        .submit(mk, Assignment::new(vec![Value::str(&format!("{i}"))]))
                        .expect("creation conforms");
                }
            },
        );
        assert_eq!(stats.blocks, OPS, "max_block = 1: one block per op");
        assert_eq!(calls, OPS / 4, "hook fires every 4 blocks");
        assert!(
            clocks_seen.windows(2).all(|w| w[0] < w[1]),
            "each call sees strictly more committed letters: {clocks_seen:?}"
        );
    }

    #[test]
    fn panicking_driver_propagates_instead_of_deadlocking() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* ([R0] ∪ [S0])* ∅*").unwrap();
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
        // The close guard must fire on unwind; without it the admission
        // worker parks forever and the scope join never returns.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(&mut m, &IngressConfig::default(), |_client| panic!("driver died"));
        }));
        assert!(result.is_err(), "the driver's panic must propagate");
    }

    /// Satellite regression: a mid-block violation re-queues the
    /// surviving ops at the **front** of their lane, so a producer's
    /// pipelined ops are never admitted out of program order — even
    /// when more ops are posted after the block was drained (the racy
    /// window between the violator's ticket answer and the re-queue).
    /// Producer P's chain renames one object's key `v0 → v1 → … → vN`;
    /// every link selects the previous key, so *any* reorder (or drop)
    /// leaves the chain stuck at some `v_i` — observable in the final
    /// database. Producer Q injects specialize/generalize pairs that
    /// violate when they land adjacently in one block, forcing
    /// re-queues underneath P's chain.
    #[test]
    fn requeue_preserves_per_producer_fifo_under_violations() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        // Specialization is forbidden outright: every `Up0` violates
        // ([S0] ∉ [R0]*), deterministically, and rolls back without
        // poisoning any state — the rejected object keeps reading
        // conforming [R0] repeats.
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x)    { create(R0, { K0 = x }); }
            transaction Up0(x)    { specialize(R0, S0, { K0 = x }, {}); }
            transaction Ren0(x, y) { modify(R0, { K0 = x }, { K0 = y }); }
        ",
        )
        .unwrap();
        let key = |k: String| Assignment::new(vec![Value::str(&k)]);
        const CHAIN: usize = 200;
        const VIOLATORS: usize = 60;
        let mut m = ShardedMonitor::new(&s, &a, &inv, crate::PatternKind::All, 3);
        // Small blocks and a tight queue: violations land mid-block and
        // producers keep posting while survivors are being re-queued.
        let cfg = IngressConfig { queue_capacity: 8, max_block: 4 };
        let ((), stats) = serve(&mut m, &cfg, |client| {
            // The chain object.
            client.submit(ts.get("Mk0").unwrap(), key("v0".into())).unwrap();
            client.submit(ts.get("Mk0").unwrap(), key("q".into())).unwrap();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    // P: every link must see its predecessor's write.
                    let tickets: Vec<_> = (0..CHAIN)
                        .map(|i| {
                            client.post(
                                ts.get("Ren0").unwrap(),
                                Assignment::new(vec![
                                    Value::str(&format!("v{i}")),
                                    Value::str(&format!("v{}", i + 1)),
                                ]),
                            )
                        })
                        .collect();
                    for t in tickets {
                        t.wait().expect("chain links conform ([R0] repeats)");
                    }
                });
                scope.spawn(|| {
                    // Q: a stream of guaranteed violators into the same
                    // lane — each rejection re-queues whatever P ops
                    // were drained behind it.
                    for _ in 0..VIOLATORS {
                        let t = client.post(ts.get("Up0").unwrap(), key("q".into()));
                        assert!(
                            matches!(t.wait(), Err(EnforceError::Violation(_))),
                            "specialization is forbidden by the inventory"
                        );
                    }
                });
            });
        });
        // The chain completed in order: the object's key walked the
        // whole ladder. Any FIFO inversion strands it at an earlier
        // link (the later rename selects a key that does not exist yet
        // and silently misses).
        use migratory_model::{Atom, Condition};
        let r0 = s.class_id("R0").unwrap();
        let k0 = s.attr_id("K0").unwrap();
        let hit = m.db().sat(r0, &Condition::from_atoms([Atom::eq_const(k0, format!("v{CHAIN}"))]));
        assert_eq!(hit.len(), 1, "the rename chain must complete in program order");
        assert_eq!(stats.submitted, 2 + CHAIN + VIOLATORS);
        assert_eq!(stats.rejected, VIOLATORS);
        assert!(
            stats.requeued > 0,
            "no block was re-queued — the violation/requeue path went unexercised"
        );
    }

    /// The small, scripted shape of the same property: block [violator,
    /// survivor] drained together, a third op posted the moment the
    /// violator's ticket resolves — the survivor must still be admitted
    /// first (it was posted first). Looped to push the post through the
    /// re-queue window.
    #[test]
    fn requeued_survivor_stays_ahead_of_later_posts() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x)   { create(R0, { K0 = x }); }
            transaction Up0(x)   { specialize(R0, S0, { K0 = x }, {}); }
        ",
        )
        .unwrap();
        let key = |k: String| Assignment::new(vec![Value::str(&k)]);
        for round in 0..50 {
            let mut m = ShardedMonitor::new(&s, &a, &inv, crate::PatternKind::All, 3);
            let cfg = IngressConfig { queue_capacity: 16, max_block: 4 };
            let ((), _) = serve(&mut m, &cfg, |client| {
                client.submit(ts.get("Mk0").unwrap(), key("y".into())).unwrap();
                // A always violates; B usually shares its block and is
                // re-queued.
                let t_a = client.post(ts.get("Up0").unwrap(), key("y".into()));
                let t_b = client.post(ts.get("Mk0").unwrap(), key("b".into()));
                // The violator resolves as soon as its block was
                // admitted — post C in the re-queue window.
                assert!(matches!(t_a.wait(), Err(EnforceError::Violation(_))));
                let t_c = client.post(ts.get("Mk0").unwrap(), key("c".into()));
                t_b.wait().expect("survivor admits");
                t_c.wait().expect("later post admits");
            });
            // B was posted before C: FIFO requires B's object to be
            // minted first whenever both committed.
            use migratory_model::{Atom, Condition};
            let r0 = s.class_id("R0").unwrap();
            let k0 = s.attr_id("K0").unwrap();
            let oid_of =
                |k: &str| m.db().sat(r0, &Condition::from_atoms([Atom::eq_const(k0, k)]))[0];
            assert!(
                oid_of("b") < oid_of("c"),
                "round {round}: survivor B admitted after later-posted C"
            );
        }
    }

    /// The event-loop admission surface: `try_post_done` refuses (rather
    /// than blocks) on a full lane, hands the pieces back, and a
    /// registered `on_space` listener fires once the worker frees lane
    /// space so the caller knows to retry. Deterministic by parking the
    /// worker inside the first op's completion callback.
    #[test]
    fn try_post_done_refuses_on_full_lane_and_space_listener_fires() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
        let ts = parse_transactions(&s, "transaction Mk0(x) { create(R0, { K0 = x }); }").unwrap();
        let mk = ts.get("Mk0").unwrap();
        let key = |k: &str| Assignment::new(vec![Value::str(k)]);
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
        let cfg = IngressConfig { queue_capacity: 1, max_block: 1 };
        let space_wakeups = AtomicUsize::new(0);
        let outcomes = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let ((), stats) = serve(&mut m, &cfg, |client| {
            client.on_space(|| {
                space_wakeups.fetch_add(1, Ordering::SeqCst);
            });
            let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
            let (parked_tx, parked_rx) = std::sync::mpsc::channel::<()>();
            let log = |tag: &'static str| {
                let outcomes = outcomes.clone();
                move |r: Result<(), EnforceError>| {
                    r.expect("creation conforms");
                    outcomes.lock().unwrap().push(tag);
                }
            };
            // A's completion parks the admission worker until released,
            // so the lane state below is deterministic.
            let a_done = {
                let outcomes = outcomes.clone();
                Box::new(move |r: Result<(), EnforceError>| {
                    r.expect("creation conforms");
                    outcomes.lock().unwrap().push("a");
                    parked_tx.send(()).unwrap();
                    gate_rx.recv().unwrap();
                })
            };
            client.try_post_done(mk, key("a"), a_done).ok().expect("empty lane accepts");
            parked_rx.recv().unwrap(); // worker is now parked in a's callback
            client.try_post_done(mk, key("b"), Box::new(log("b"))).ok().expect("lane has space");
            let (args, done) = client
                .try_post_done(mk, key("c"), Box::new(log("c")))
                .expect_err("lane at capacity must refuse, not block");
            let before = space_wakeups.load(Ordering::SeqCst);
            gate_tx.send(()).unwrap(); // release the worker
                                       // The worker drains b, firing the space listener; retry c
                                       // until its lane has room again.
            let mut retry = Some((args, done));
            while let Some((args, done)) = retry.take() {
                if let Err(back) = client.try_post_done(mk, args, done) {
                    retry = Some(back);
                    std::thread::yield_now();
                }
            }
            // Listener fired at least once more while draining.
            while space_wakeups.load(Ordering::SeqCst) <= before {
                std::thread::yield_now();
            }
        });
        assert_eq!(stats.admitted, 3);
        assert_eq!(*outcomes.lock().unwrap(), ["a", "b", "c"], "per-producer FIFO held");
        assert!(space_wakeups.load(Ordering::SeqCst) >= 1);
    }

    fn pipelined_temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("migratory-pipelined-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The tentpole smoke: pipelined group commit admits everything the
    /// synchronous path would, acks only after durability, and what the
    /// log holds recovers byte-identically to the served monitor.
    #[test]
    fn pipelined_serve_acks_durably_and_recovers_byte_identically() {
        use crate::enforce::{FsyncPolicy, Wal};
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* ([R0] ∪ [S0])* ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Mk1(x) { create(R1, { K1 = x }); }
            transaction Mk2(x) { create(R2, { K2 = x }); }
        ",
        )
        .unwrap();
        let dir = pipelined_temp_dir("smoke");
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap().with_fsync(FsyncPolicy::Batch)));
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
        let health = Health::new();
        let cfg = IngressConfig { queue_capacity: 8, max_block: 16 };
        const PER: usize = 40;
        let ((), stats) = serve_pipelined(
            &mut m,
            &cfg,
            &DurabilityPolicy::default(),
            &health,
            wal.clone(),
            None,
            0,
            |_| {},
            |client| {
                std::thread::scope(|scope| {
                    for name in ["Mk0", "Mk1", "Mk2"] {
                        let t = ts.get(name).unwrap();
                        scope.spawn(move || {
                            for i in 0..PER {
                                let args =
                                    Assignment::new(vec![Value::str(&format!("{name}-{i}"))]);
                                client.submit(t, args).expect("creation conforms");
                            }
                        });
                    }
                });
            },
        );
        assert_eq!((stats.admitted, stats.rejected, stats.refused), (3 * PER, 0, 0));
        assert_eq!(m.db().num_objects(), 3 * PER);
        // Every acked op is on disk: the recovered monitor is
        // byte-identical to the served one.
        {
            let w = wal.lock().unwrap();
            assert_eq!(w.synced_len(), w.dir().join("wal.log").metadata().unwrap().len());
        }
        let (snap, tail) = Wal::load(&dir).unwrap();
        let r = ShardedMonitor::recover(&s, &a, &inv, PatternKind::All, 3, snap, tail).unwrap();
        assert_eq!(r.db(), m.db());
        assert_eq!(r.clocks(), m.clocks());
        assert_eq!(r.snapshot().encode(), m.snapshot().encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Violations are answered on the worker (no state change → no
    /// durability requirement) while admitted neighbours flow through
    /// the committer; the re-queue discipline is unchanged.
    #[test]
    fn pipelined_violation_rejects_and_requeues_like_the_sync_path() {
        use crate::enforce::{FsyncPolicy, Wal};
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* [S0] ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
        ",
        )
        .unwrap();
        let dir = pipelined_temp_dir("violation");
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap().with_fsync(FsyncPolicy::Batch)));
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
        let health = Health::new();
        let mk0 = ts.get("Mk0").unwrap();
        let up0 = ts.get("Up0").unwrap();
        let key = |k: &str| Assignment::new(vec![Value::str(k)]);
        let ((), stats) = serve_pipelined(
            &mut m,
            &IngressConfig::default(),
            &DurabilityPolicy::default(),
            &health,
            wal,
            None,
            0,
            |_| {},
            |client| {
                let t1 = client.post(mk0, key("x"));
                let t2 = client.post(up0, key("x"));
                let t3 = client.post(up0, key("x"));
                let t4 = client.post(mk0, key("y"));
                assert!(t1.wait().is_ok());
                assert!(t2.wait().is_ok());
                assert!(matches!(t3.wait(), Err(EnforceError::Violation(_))));
                assert!(t4.wait().is_err(), "y's creation gives x a second [S0] letter");
            },
        );
        assert_eq!((stats.admitted, stats.rejected), (2, 2));
        assert_eq!(m.db().num_objects(), 1, "only x exists; y was rejected");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn violation_rejects_one_op_and_requeues_the_rest() {
        let s = multi_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        // One-way street: R0 may specialize, never come back, and the
        // pattern must end after [S0].
        let inv = Inventory::parse_init(&s, &a, "∅* [R0]* [S0] ∅*").unwrap();
        let ts = parse_transactions(
            &s,
            r"
            transaction Mk0(x) { create(R0, { K0 = x }); }
            transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
            transaction Mk1(x) { create(R1, { K1 = x }); }
        ",
        )
        .unwrap();
        let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
        let mk0 = ts.get("Mk0").unwrap();
        let up0 = ts.get("Up0").unwrap();
        let key = |k: &str| Assignment::new(vec![Value::str(k)]);
        let ((), stats) = serve(&mut m, &IngressConfig::default(), |client| {
            // Pipelined into one lane: make, specialize, then a second
            // specialize that violates ([S0][S0] ∉ 𝔏 — wait, the
            // *letter* after [S0] must be ∅; re-specializing keeps x at
            // [S0] which 𝔏 forbids after the single [S0]), then a make
            // that must still admit afterwards.
            let t1 = client.post(mk0, key("x"));
            let t2 = client.post(up0, key("x"));
            let t3 = client.post(up0, key("x"));
            let t4 = client.post(mk0, key("y"));
            assert!(t1.wait().is_ok());
            assert!(t2.wait().is_ok());
            assert!(matches!(t3.wait(), Err(EnforceError::Violation(_))));
            assert!(t4.wait().is_err(), "y's creation gives x a second [S0] letter");
        });
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 2);
        assert_eq!(m.db().num_objects(), 1, "only x exists; y was rejected");
    }
}

//! Error types for the core migration layer.

use migratory_automata::AutomataError;
use migratory_lang::LangError;
use migratory_model::ModelError;

/// Errors raised by analysis, synthesis and the CSL compilers.
#[derive(Clone, PartialEq, Debug)]
pub enum CoreError {
    /// Data-model error.
    Model(ModelError),
    /// Language error.
    Lang(LangError),
    /// Automata error.
    Automata(AutomataError),
    /// The transaction schema is not SL (analysis of Theorem 3.2 applies
    /// to SL only; CSL families are not regular in general).
    NotSl,
    /// Synthesis needs an isa-root with at least three attributes
    /// (Lemma 3.4's A, B, C).
    RootNeedsThreeAttrs,
    /// A regular expression used a symbol that is not a non-empty role set
    /// of the chosen component.
    NotANonEmptyRoleSet(u32),
    /// The regex for synthesis must not contain λ as an explicit atom in a
    /// position the migration-graph construction cannot express.
    UnsupportedRegex(String),
    /// A compiler requirement on the Turing machine failed (e.g. it has
    /// transitions out of the accepting state).
    BadMachine(String),
    /// A requested component index does not exist.
    BadComponent(u32),
    /// The analyzer exceeded its configured vertex budget.
    VertexBudgetExceeded(usize),
    /// A durable monitor could not persist an enforcement event (e.g.
    /// the certification marker); the event did not take effect.
    Durability(String),
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}
impl From<LangError> for CoreError {
    fn from(e: LangError) -> Self {
        CoreError::Lang(e)
    }
}
impl From<AutomataError> for CoreError {
    fn from(e: AutomataError) -> Self {
        CoreError::Automata(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "{e}"),
            CoreError::Lang(e) => write!(f, "{e}"),
            CoreError::Automata(e) => write!(f, "{e}"),
            CoreError::NotSl => write!(f, "transaction schema is not SL"),
            CoreError::RootNeedsThreeAttrs => {
                write!(f, "synthesis requires an isa-root with at least three attributes")
            }
            CoreError::NotANonEmptyRoleSet(s) => {
                write!(f, "symbol {s} is not a non-empty role set of the component")
            }
            CoreError::UnsupportedRegex(msg) => write!(f, "unsupported regex: {msg}"),
            CoreError::BadMachine(msg) => write!(f, "unsupported Turing machine: {msg}"),
            CoreError::BadComponent(c) => write!(f, "no weakly-connected component {c}"),
            CoreError::VertexBudgetExceeded(n) => {
                write!(f, "separator construction exceeded the vertex budget ({n})")
            }
            CoreError::Durability(msg) => write!(f, "durability: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = ModelError::UnknownClass("X".into()).into();
        assert!(e.to_string().contains('X'));
        assert!(CoreError::NotSl.to_string().contains("SL"));
        assert!(CoreError::VertexBudgetExceeded(7).to_string().contains('7'));
    }
}

//! The role-set alphabet Ω of one weakly-connected component.
//!
//! Migration patterns are words over Ω (Definition 3.2); this module
//! interns every role set of a component as a dense symbol id so the
//! automata toolkit can operate on patterns. Symbol 0 is always the empty
//! role set ∅.

use crate::error::CoreError;
use migratory_model::roleset::all_role_sets;
use migratory_model::{RoleSet, Schema};
use std::collections::HashMap;

/// The interned alphabet Ω of a component: every role set (∅ included)
/// mapped to a dense symbol.
#[derive(Clone, Debug)]
pub struct RoleAlphabet {
    component: u32,
    sets: Vec<RoleSet>,
    index: HashMap<RoleSet, u32>,
    names: Vec<String>,
}

impl RoleAlphabet {
    /// Build the alphabet of `component` (Ω ordered with ∅ first, then
    /// lexicographically).
    pub fn new(schema: &Schema, component: u32) -> Result<RoleAlphabet, CoreError> {
        if component as usize >= schema.num_components() {
            return Err(CoreError::BadComponent(component));
        }
        let mut sets = all_role_sets(schema, component);
        sets.sort_by_key(|r| (r.len(), *r)); // ∅ first, then by size/content
        let index = sets.iter().enumerate().map(|(i, r)| (*r, i as u32)).collect();
        let names = sets.iter().map(|r| r.display(schema)).collect();
        Ok(RoleAlphabet { component, sets, index, names })
    }

    /// The component this alphabet describes.
    #[must_use]
    pub fn component(&self) -> u32 {
        self.component
    }

    /// Number of symbols `|Ω|`.
    #[must_use]
    pub fn num_symbols(&self) -> u32 {
        self.sets.len() as u32
    }

    /// The symbol of the empty role set (always 0).
    #[must_use]
    pub fn empty_symbol(&self) -> u32 {
        0
    }

    /// The symbol of a role set, if it belongs to this component.
    #[must_use]
    pub fn symbol_of(&self, rs: RoleSet) -> Option<u32> {
        self.index.get(&rs).copied()
    }

    /// The role set of a symbol.
    #[must_use]
    pub fn role_set(&self, sym: u32) -> RoleSet {
        self.sets[sym as usize]
    }

    /// The display name of a symbol (paper bracket notation).
    #[must_use]
    pub fn name(&self, sym: u32) -> &str {
        &self.names[sym as usize]
    }

    /// All non-empty symbols (Ω₊).
    pub fn nonempty_symbols(&self) -> impl Iterator<Item = u32> + '_ {
        1..self.num_symbols()
    }

    /// Render a pattern word with role-set names.
    #[must_use]
    pub fn display_word(&self, word: &[u32]) -> String {
        if word.is_empty() {
            return "λ".to_owned();
        }
        word.iter().map(|&s| self.name(s)).collect::<Vec<_>>().join(" ")
    }

    /// A resolver for [`migratory_automata::parse_regex`]: resolves `∅`,
    /// bare class names (meaning the closure `[C]`), and bracketed
    /// `[C1,C2]` names against this alphabet.
    pub fn resolver<'a>(&'a self, schema: &'a Schema) -> impl Fn(&str) -> Option<u32> + 'a {
        move |name: &str| {
            if name == "∅" || name.eq_ignore_ascii_case("empty") {
                return Some(self.empty_symbol());
            }
            let inner = name.strip_prefix('[').and_then(|n| n.strip_suffix(']')).unwrap_or(name);
            let classes: Vec<&str> = inner.split(',').map(str::trim).collect();
            let rs = RoleSet::closure_of_named(schema, &classes).ok()?;
            self.symbol_of(rs)
        }
    }

    /// Parse a paper-notation regular expression over this alphabet.
    pub fn parse_regex(
        &self,
        schema: &Schema,
        src: &str,
    ) -> Result<migratory_automata::Regex, CoreError> {
        Ok(migratory_automata::parse_regex(src, &self.resolver(schema))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_model::schema::university_schema;

    #[test]
    fn university_alphabet_is_example_3_1() {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        assert_eq!(a.num_symbols(), 6); // ∅, [P], [E], [S], [SE], [G]
        assert_eq!(a.empty_symbol(), 0);
        assert_eq!(a.name(0), "∅");
        assert_eq!(a.nonempty_symbols().count(), 5);
        // symbol_of ∘ role_set = id.
        for sym in 0..a.num_symbols() {
            assert_eq!(a.symbol_of(a.role_set(sym)), Some(sym));
        }
    }

    #[test]
    fn resolver_handles_paper_names() {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let r = a.resolver(&s);
        assert_eq!(r("∅"), Some(0));
        assert!(r("PERSON").is_some());
        assert!(r("[GRAD_ASSIST]").is_some());
        assert_eq!(r("[STUDENT,EMPLOYEE]"), r("[EMPLOYEE, STUDENT]"));
        assert_ne!(r("[STUDENT]"), r("[EMPLOYEE]"));
        assert_eq!(r("[NOPE]"), None);
    }

    #[test]
    fn parse_regex_example_3_2() {
        // Init(∅*[P]*[S]*[G]*[E]+[P]*∅*) — the paper's person life cycle.
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        let re = a
            .parse_regex(&s, "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]+ [PERSON]* ∅*")
            .unwrap();
        assert!(re.max_symbol().is_some());
    }

    #[test]
    fn display_word() {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        assert_eq!(a.display_word(&[]), "λ");
        let w = a.display_word(&[0, 1]);
        assert!(w.starts_with('∅'));
    }

    #[test]
    fn bad_component_rejected() {
        let s = university_schema();
        assert!(matches!(RoleAlphabet::new(&s, 5), Err(CoreError::BadComponent(5))));
    }
}

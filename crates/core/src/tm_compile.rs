//! Compiling Turing machines into CSL⁺ transaction schemas —
//! Theorem 4.3 and the paper's appendix.
//!
//! Every r.e. inventory `L ⊆ Ω₊*` is `𝓛(Σ, G) = ∅*·Init(L·∅*)` for some
//! CSL⁺ schema Σ: the class `S` of a second weakly-connected component
//! stores an encoded machine configuration (Fig. 7) as a *chain* of cells
//!
//! > `(A1 = id, A2 = next-id, A3 = tape symbol, A4 = head/state mark)`
//!
//! and Σ runs three phases, tracked by a flag object whose four
//! attributes all hold the phase constant (`aw` generate-word,
//! `ac` compute, `am` migrate):
//!
//! 1. `T_init`/`T_expand` "randomly" generate an input word (parameters
//!    supply cell ids and letters);
//! 2. `T_startc` places the head, then one transaction per TM transition
//!    simulates moves (`T_pad` materializes blank cells on demand);
//! 3. on halt, `T_startmig` creates an object in the component `G` and
//!    `T_mig` migrates it through the role sets spelled by the accepted
//!    word, deleting it at the word's end.
//!
//! Differences from the appendix (documented in DESIGN.md §3): the chain
//! end is a *self-linked* cell instead of a `$` sentinel (expressible as
//! `{A1 = x, A2 = x}` with a repeated variable, which keeps predecessor
//! lookups unambiguous within CSL⁺), inequality atoms such as `A1 ≠ y`
//! guard against id collisions, full-tuple flag tests prevent junk cells
//! from spoofing phase markers, and consumed letters are marked `*`
//! (distinct from the `#` delimiter, so a consumed cell can never be
//! re-read as an end-of-word marker within the same transaction). Every deviation preserves the
//! invariant that makes the theorem true: **any** reachable chain encodes
//! some word, and objects only migrate along words the machine actually
//! accepted — garbled runs dead-end instead of emitting wrong patterns.

use crate::alphabet::RoleAlphabet;
use crate::error::CoreError;
use migratory_chomsky::{Move, TuringMachine};
use migratory_lang::{
    con, mig_ops, var, AtomicUpdate, GuardedUpdate, Literal, Transaction, TransactionSchema,
};
use migratory_model::{Atom, ClassId, Condition, RoleSet, Schema, Value};
use std::collections::BTreeMap;

/// What each tape symbol means to the migration phase.
#[derive(Clone, Debug)]
pub struct TmSpec {
    /// `letter_of[sym]`: the role set whose letter this tape symbol
    /// carries (marked variants map to the same role set as their
    /// original), or `None` for blank/auxiliary symbols.
    pub letter_of: Vec<Option<RoleSet>>,
}

/// The compiled schema plus the ids it uses (needed by the driver).
#[derive(Clone, Debug)]
pub struct TmCompiled {
    /// The CSL⁺ transaction schema.
    pub transactions: TransactionSchema,
    /// The S class storing configurations.
    pub s_class: ClassId,
}

fn s_val(s: &str) -> Value {
    Value::str(s)
}

fn state_val(q: u32) -> Value {
    Value::str(&format!("q{q}"))
}

fn sym_val(s: u32) -> Value {
    Value::int(i64::from(s))
}

/// Compile `tm` against a schema containing the target component (for
/// `alphabet`) and a separate class `s_class` with at least four
/// attributes (its first four are used as `A1..A4`).
pub fn compile_tm(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    s_class: ClassId,
    tm: &TuringMachine,
    spec: &TmSpec,
) -> Result<TmCompiled, CoreError> {
    // --- validations -----------------------------------------------------
    if schema.component_of(s_class) == alphabet.component() {
        return Err(CoreError::BadMachine(
            "the S class must live in a separate weakly-connected component".into(),
        ));
    }
    if !schema.is_isa_root(s_class) || schema.attrs_of(s_class).len() < 4 {
        return Err(CoreError::BadMachine(
            "the S class must be an isa-root with at least four attributes".into(),
        ));
    }
    if spec.letter_of.len() != tm.num_symbols() as usize {
        return Err(CoreError::BadMachine("letter_of must cover the tape alphabet".into()));
    }
    if spec.letter_of[tm.blank() as usize].is_some() {
        return Err(CoreError::BadMachine("the blank cannot be a letter".into()));
    }
    if tm.transitions().any(|((from, _), _)| from == tm.accept_state()) {
        return Err(CoreError::BadMachine("no transitions may leave the accepting state".into()));
    }
    for rs in spec.letter_of.iter().flatten() {
        if alphabet.symbol_of(*rs).is_none() || rs.is_empty() {
            return Err(CoreError::BadMachine(
                "letters must denote non-empty role sets of the target component".into(),
            ));
        }
    }

    let sa = schema.attrs_of(s_class);
    let (a1, a2, a3, a4) = (sa[0], sa[1], sa[2], sa[3]);
    let g_root = schema.component_root(alphabet.component());

    // Default values for G-object creation and migrations.
    let mut g_values: BTreeMap<migratory_model::AttrId, migratory_model::Term> = BTreeMap::new();
    for class in schema.component_classes(alphabet.component()).iter() {
        for &attr in schema.attrs_of(class) {
            g_values.insert(attr, con(0));
        }
    }
    let mut g_create = Condition::empty();
    for &attr in schema.attrs_of(g_root) {
        g_create.push(Atom::eq_const(attr, 0));
    }

    // Flag guards test the full tuple, so user-chosen cell ids can never
    // spoof a phase (cells always carry A4 = "-" at creation).
    let flag_cond = |phase: &str| -> Condition {
        Condition::from_atoms([
            Atom::eq_const(a1, s_val(phase)),
            Atom::eq_const(a2, s_val(phase)),
            Atom::eq_const(a3, s_val(phase)),
            Atom::eq_const(a4, s_val(phase)),
        ])
    };
    let g_w = Literal::pos(s_class, flag_cond("aw"));
    let g_c = Literal::pos(s_class, flag_cond("ac"));
    let g_m = Literal::pos(s_class, flag_cond("am"));
    // Marker states of the flag: A2 switched to "go" mid-transaction.
    let marked_flag = |phase: &str| -> Condition {
        Condition::from_atoms([
            Atom::eq_const(a1, s_val(phase)),
            Atom::eq_const(a2, s_val("go")),
            Atom::eq_const(a3, s_val(phase)),
            Atom::eq_const(a4, s_val(phase)),
        ])
    };

    let letters: Vec<(u32, RoleSet)> =
        spec.letter_of.iter().enumerate().filter_map(|(s, r)| r.map(|rs| (s as u32, rs))).collect();
    let non_letters: Vec<Value> = (0..tm.num_symbols())
        .filter(|&s| spec.letter_of[s as usize].is_none())
        .map(sym_val)
        .chain(std::iter::once(s_val("#")))
        .collect();

    let mut ts = TransactionSchema::new();

    // --- T_init(x): reset; flag ← aw; head cell (¢, ¢, x, -). -----------
    {
        let steps = vec![
            GuardedUpdate::plain(AtomicUpdate::Delete { class: g_root, gamma: Condition::empty() }),
            GuardedUpdate::plain(AtomicUpdate::Delete {
                class: s_class,
                gamma: Condition::empty(),
            }),
            GuardedUpdate::plain(AtomicUpdate::Create { class: s_class, gamma: flag_cond("aw") }),
            GuardedUpdate::plain(AtomicUpdate::Create {
                class: s_class,
                gamma: Condition::from_atoms([
                    Atom::eq_const(a1, s_val("¢")),
                    Atom::eq_const(a2, s_val("¢")),
                    Atom { attr: a3, op: migratory_model::CmpOp::Eq, term: var(0) },
                    Atom::eq_const(a4, s_val("-")),
                ]),
            }),
        ];
        ts.add(Transaction { name: "T_init".into(), params: vec!["x".into()], steps })?;
    }

    // Chain extension blocks shared by T_expand (phase w, letter z) and
    // T_pad (phase c, blank).
    let extend = |guard: &Literal, a3_term: migratory_model::Term| -> Vec<GuardedUpdate> {
        vec![
            GuardedUpdate::when(
                vec![guard.clone()],
                AtomicUpdate::Delete {
                    class: s_class,
                    gamma: Condition::from_atoms([Atom::eq_var(a1, migratory_model::VarId(1))]),
                },
            ),
            GuardedUpdate::when(
                vec![guard.clone()],
                AtomicUpdate::Delete {
                    class: s_class,
                    gamma: Condition::from_atoms([Atom::eq_var(a2, migratory_model::VarId(1))]),
                },
            ),
            GuardedUpdate::when(
                vec![guard.clone()],
                AtomicUpdate::Create {
                    class: s_class,
                    gamma: Condition::from_atoms([
                        Atom::eq_var(a1, migratory_model::VarId(1)),
                        Atom::eq_var(a2, migratory_model::VarId(1)),
                        Atom { attr: a3, op: migratory_model::CmpOp::Eq, term: a3_term },
                        Atom::eq_const(a4, s_val("-")),
                    ]),
                },
            ),
            // Link the old (self-linked) end to the new cell; A1 ≠ y
            // forces x ≠ y.
            GuardedUpdate::when(
                vec![guard.clone()],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: Condition::from_atoms([
                        Atom::eq_var(a1, migratory_model::VarId(0)),
                        Atom::eq_var(a2, migratory_model::VarId(0)),
                        Atom::ne_var(a1, migratory_model::VarId(1)),
                    ]),
                    set: Condition::from_atoms([Atom::eq_var(a2, migratory_model::VarId(1))]),
                },
            ),
        ]
    };

    // --- T_expand(x, y, z): append a letter cell at the end. -------------
    ts.add(Transaction {
        name: "T_expand".into(),
        params: vec!["x".into(), "y".into(), "z".into()],
        steps: extend(&g_w, var(2)),
    })?;

    // --- T_pad(x, y): append a blank cell during the computation. --------
    ts.add(Transaction {
        name: "T_pad".into(),
        params: vec!["x".into(), "y".into()],
        steps: extend(&g_c, con(sym_val(tm.blank()))),
    })?;

    // --- T_startc: place the head at ¢ in the start state; flag ← ac. ----
    {
        let steps = vec![
            GuardedUpdate::when(
                vec![g_w.clone()],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: Condition::from_atoms([
                        Atom::eq_const(a1, s_val("¢")),
                        Atom::eq_const(a4, s_val("-")),
                    ]),
                    set: Condition::from_atoms([Atom::eq_const(a4, state_val(tm.start_state()))]),
                },
            ),
            GuardedUpdate::when(
                vec![g_w.clone()],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: flag_cond("aw"),
                    set: flag_cond("ac"),
                },
            ),
        ];
        ts.add(Transaction { name: "T_startc".into(), params: vec![], steps })?;
    }

    // --- One transaction per TM transition. ------------------------------
    for ((p, read), (q, write, dir)) in tm.transitions() {
        let name = format!("T_d{p}_{read}");
        match dir {
            Move::Stay => {
                let steps = vec![GuardedUpdate::when(
                    vec![g_c.clone()],
                    AtomicUpdate::Modify {
                        class: s_class,
                        select: Condition::from_atoms([
                            Atom::eq_const(a3, sym_val(read)),
                            Atom::eq_const(a4, state_val(p)),
                        ]),
                        set: Condition::from_atoms([
                            Atom::eq_const(a3, sym_val(write)),
                            Atom::eq_const(a4, state_val(q)),
                        ]),
                    },
                )];
                ts.add(Transaction { name, params: vec![], steps })?;
            }
            Move::Right | Move::Left => {
                // Param x addresses the head's neighbour: its successor id
                // (A2 = x) for Right, its own id (A1 = x) for Left.
                let head_sel = {
                    let mut c = Condition::from_atoms([
                        Atom::eq_const(a3, sym_val(read)),
                        Atom::eq_const(a4, state_val(p)),
                    ]);
                    c.push(if dir == Move::Right {
                        Atom::eq_var(a2, migratory_model::VarId(0))
                    } else {
                        Atom::eq_var(a1, migratory_model::VarId(0))
                    });
                    c
                };
                let moving =
                    Literal::pos(s_class, Condition::from_atoms([Atom::eq_const(a4, s_val("m1"))]));
                let neighbour_sel = Condition::from_atoms([
                    if dir == Move::Right {
                        Atom::eq_var(a1, migratory_model::VarId(0))
                    } else {
                        Atom::eq_var(a2, migratory_model::VarId(0))
                    },
                    Atom::eq_const(a4, s_val("-")),
                ]);
                let steps = vec![
                    GuardedUpdate::when(
                        vec![g_c.clone()],
                        AtomicUpdate::Modify {
                            class: s_class,
                            select: head_sel,
                            set: Condition::from_atoms([
                                Atom::eq_const(a3, sym_val(write)),
                                Atom::eq_const(a4, s_val("m1")),
                            ]),
                        },
                    ),
                    GuardedUpdate::when(
                        vec![g_c.clone(), moving.clone()],
                        AtomicUpdate::Modify {
                            class: s_class,
                            select: neighbour_sel,
                            set: Condition::from_atoms([Atom::eq_const(a4, state_val(q))]),
                        },
                    ),
                    GuardedUpdate::when(
                        vec![g_c.clone()],
                        AtomicUpdate::Modify {
                            class: s_class,
                            select: Condition::from_atoms([Atom::eq_const(a4, s_val("m1"))]),
                            set: Condition::from_atoms([Atom::eq_const(a4, s_val("-"))]),
                        },
                    ),
                ];
                ts.add(Transaction { name, params: vec!["x".into()], steps })?;
            }
        }
    }

    // --- T_startmig: on halt, create a G object and emit the first letter.
    {
        let halted = Literal::pos(
            s_class,
            Condition::from_atoms([Atom::eq_const(a4, state_val(tm.accept_state()))]),
        );
        let m = Literal::pos(s_class, marked_flag("ac"));
        let mut steps = vec![
            GuardedUpdate::when(
                vec![g_c.clone(), halted],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: flag_cond("ac"),
                    set: Condition::from_atoms([Atom::eq_const(a2, s_val("go"))]),
                },
            ),
            GuardedUpdate::when(
                vec![m.clone()],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: Condition::from_atoms([Atom::eq_const(
                        a4,
                        state_val(tm.accept_state()),
                    )]),
                    set: Condition::from_atoms([Atom::eq_const(a4, s_val("-"))]),
                },
            ),
        ];
        for (sym, role) in &letters {
            let first_is = Literal::pos(
                s_class,
                Condition::from_atoms([
                    Atom::eq_const(a1, s_val("¢")),
                    Atom::eq_const(a3, sym_val(*sym)),
                ]),
            );
            steps.push(GuardedUpdate::when(
                vec![m.clone(), first_is.clone()],
                AtomicUpdate::Create { class: g_root, gamma: g_create.clone() },
            ));
            for op in mig_ops(schema, None, *role, &Condition::empty(), &g_values)? {
                steps.push(GuardedUpdate::when(vec![m.clone(), first_is.clone()], op));
            }
        }
        // Consume the first cell, then flag ← am.
        steps.push(GuardedUpdate::when(
            vec![m.clone()],
            AtomicUpdate::Modify {
                class: s_class,
                select: Condition::from_atoms([
                    Atom::eq_const(a1, s_val("¢")),
                    Atom::eq_const(a4, s_val("-")),
                ]),
                set: Condition::from_atoms([Atom::eq_const(a3, s_val("*"))]),
            },
        ));
        steps.push(GuardedUpdate::when(
            vec![m],
            AtomicUpdate::Modify {
                class: s_class,
                select: Condition::from_atoms([
                    Atom::eq_const(a1, s_val("ac")),
                    Atom::eq_const(a2, s_val("go")),
                ]),
                set: flag_cond("am"),
            },
        ));
        ts.add(Transaction { name: "T_startmig".into(), params: vec![], steps })?;
    }

    // --- T_mig(x): emit the next letter; delete G objects at word end. ---
    {
        let link_ok = Literal::pos(
            s_class,
            Condition::from_atoms([
                Atom::eq_const(a1, s_val("¢")),
                Atom::eq_var(a2, migratory_model::VarId(0)),
            ]),
        );
        let m = Literal::pos(s_class, marked_flag("am"));
        let mut steps = vec![GuardedUpdate::when(
            vec![g_m.clone(), link_ok],
            AtomicUpdate::Modify {
                class: s_class,
                select: flag_cond("am"),
                set: Condition::from_atoms([Atom::eq_const(a2, s_val("go"))]),
            },
        )];
        let cell_is = |v: Value| -> Literal {
            Literal::pos(
                s_class,
                Condition::from_atoms([
                    Atom::eq_var(a1, migratory_model::VarId(0)),
                    Atom {
                        attr: a3,
                        op: migratory_model::CmpOp::Eq,
                        term: migratory_model::Term::Const(v),
                    },
                    Atom::eq_const(a4, s_val("-")),
                ]),
            )
        };
        for (sym, role) in &letters {
            let is_letter = cell_is(sym_val(*sym));
            for op in mig_ops(schema, None, *role, &Condition::empty(), &g_values)? {
                steps.push(GuardedUpdate::when(vec![m.clone(), is_letter.clone()], op));
            }
            steps.push(GuardedUpdate::when(
                vec![m.clone(), is_letter],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: Condition::from_atoms([
                        Atom::eq_var(a1, migratory_model::VarId(0)),
                        Atom::eq_const(a3, sym_val(*sym)),
                    ]),
                    set: Condition::from_atoms([Atom::eq_const(a3, s_val("*"))]),
                },
            ));
        }
        for v in &non_letters {
            let is_nl = cell_is(v.clone());
            steps.push(GuardedUpdate::when(
                vec![m.clone(), is_nl.clone()],
                AtomicUpdate::Delete { class: g_root, gamma: Condition::empty() },
            ));
            steps.push(GuardedUpdate::when(
                vec![m.clone(), is_nl],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: Condition::from_atoms([
                        Atom::eq_var(a1, migratory_model::VarId(0)),
                        Atom {
                            attr: a3,
                            op: migratory_model::CmpOp::Eq,
                            term: migratory_model::Term::Const(v.clone()),
                        },
                    ]),
                    set: Condition::from_atoms([Atom::eq_const(a3, s_val("*"))]),
                },
            ));
        }
        // Advance, only once the target cell was consumed (junk-lettered
        // cells leave the whole transaction a no-op, hence not a step).
        let consumed = Literal::pos(
            s_class,
            Condition::from_atoms([
                Atom::eq_var(a1, migratory_model::VarId(0)),
                Atom::eq_const(a3, s_val("*")),
                Atom::eq_const(a4, s_val("-")),
            ]),
        );
        steps.push(GuardedUpdate::when(
            vec![m.clone(), consumed.clone()],
            AtomicUpdate::Delete {
                class: s_class,
                gamma: Condition::from_atoms([
                    Atom::eq_const(a1, s_val("¢")),
                    Atom::ne_var(a1, migratory_model::VarId(0)),
                ]),
            },
        ));
        steps.push(GuardedUpdate::when(
            vec![m.clone(), consumed],
            AtomicUpdate::Modify {
                class: s_class,
                select: Condition::from_atoms([
                    Atom::eq_var(a1, migratory_model::VarId(0)),
                    Atom::eq_const(a4, s_val("-")),
                ]),
                set: Condition::from_atoms([Atom::eq_const(a1, s_val("¢"))]),
            },
        ));
        steps.push(GuardedUpdate::plain(AtomicUpdate::Modify {
            class: s_class,
            select: Condition::from_atoms([
                Atom::eq_const(a1, s_val("am")),
                Atom::eq_const(a2, s_val("go")),
            ]),
            set: Condition::from_atoms([Atom::eq_const(a2, s_val("am"))]),
        }));
        ts.add(Transaction { name: "T_mig".into(), params: vec!["x".into()], steps })?;
    }

    migratory_lang::validate_schema(schema, &ts)?;
    Ok(TmCompiled { transactions: ts, s_class })
}

/// The standard host schema for TM compilation: a component `R{F} ⊇ L0…`
/// (one subclass per letter) plus `S{A1..A4}`. Returns the schema, the
/// G-component alphabet, the S class, and the role sets `[L0], [L1], …`.
pub fn standard_tm_schema(
    num_letters: usize,
) -> Result<(Schema, RoleAlphabet, ClassId, Vec<RoleSet>), CoreError> {
    let mut b = migratory_model::SchemaBuilder::new();
    let r = b.class("R", &["F"])?;
    let mut classes = Vec::new();
    for i in 0..num_letters {
        classes.push(b.subclass(&format!("L{i}"), &[r], &[])?);
    }
    let s = b.class("S", &["A1", "A2", "A3", "A4"])?;
    let schema = b.build()?;
    let alphabet = RoleAlphabet::new(&schema, schema.component_of(r))?;
    let roles = classes
        .into_iter()
        .map(|c| RoleSet::closure_of(&schema, [c]).map_err(CoreError::from))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((schema, alphabet, s, roles))
}

/// A scripted run for one accepted word: the witnessing
/// `(transaction name, arguments)` sequence showing completeness of the
/// compilation. Returns `None` when the machine does not accept the word
/// within `max_steps`.
#[must_use]
pub fn drive_word(
    tm: &TuringMachine,
    word: &[u32],
    max_steps: usize,
) -> Option<Vec<(String, Vec<Value>)>> {
    // Mirror-simulate to learn the head excursion and the move sequence.
    let mut tape: Vec<u32> = word.to_vec();
    let mut head = 0usize;
    let mut state = tm.start_state();
    let mut moves: Vec<(u32, u32, usize)> = Vec::new(); // (state, read, head)
    let mut max_head = if word.is_empty() { 0 } else { word.len() - 1 };
    for _ in 0..max_steps {
        if state == tm.accept_state() {
            break;
        }
        let read = tape.get(head).copied().unwrap_or(tm.blank());
        let (q, w, dir) = tm.step_of(state, read)?;
        moves.push((state, read, head));
        if head >= tape.len() {
            tape.resize(head + 1, tm.blank());
        }
        tape[head] = w;
        state = q;
        match dir {
            Move::Left => head = head.saturating_sub(1),
            Move::Right => {
                head += 1;
                max_head = max_head.max(head);
            }
            Move::Stay => {}
        }
    }
    if state != tm.accept_state() {
        return None;
    }

    let id = |i: usize| -> Value {
        if i == 0 {
            s_val("¢")
        } else {
            Value::str(&format!("cell{i}"))
        }
    };
    let mut script: Vec<(String, Vec<Value>)> = Vec::new();
    // Phase w: first letter via T_init, the rest via T_expand.
    let first = word.first().copied().map_or(s_val("λ"), sym_val);
    script.push(("T_init".into(), vec![first]));
    for (i, &c) in word.iter().enumerate().skip(1) {
        script.push(("T_expand".into(), vec![id(i - 1), id(i), sym_val(c)]));
    }
    script.push(("T_startc".into(), vec![]));
    // Materialize blanks for the head excursion plus one terminator
    // (T_pad is guarded by the compute phase, so pads follow T_startc).
    let cells = word.len().max(1);
    let pads = (max_head + 2).saturating_sub(cells).max(1);
    let mut last = cells - 1;
    for _ in 0..pads {
        script.push(("T_pad".into(), vec![id(last), id(last + 1)]));
        last += 1;
    }
    // Replay the moves.
    for (p, read, head_pos) in moves {
        let (_, _, dir) = tm.step_of(p, read).expect("mirror simulation");
        let name = format!("T_d{p}_{read}");
        match dir {
            Move::Stay => script.push((name, vec![])),
            Move::Right => script.push((name, vec![id(head_pos + 1)])),
            Move::Left => script.push((name, vec![id(head_pos)])),
        }
    }
    script.push(("T_startmig".into(), vec![]));
    for i in 1..=last {
        script.push(("T_mig".into(), vec![id(i)]));
    }
    Some(script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::patterns_of_run;
    use migratory_chomsky::turing::machines;
    use migratory_lang::Assignment;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn anbn_setup() -> (Schema, RoleAlphabet, TmCompiled, Vec<u32>) {
        let (schema, alphabet, s_class, roles) = standard_tm_schema(2).unwrap();
        let tm = machines::anbn();
        // a=0→L0, b=1→L1; marked variants map to the same letters.
        let spec = TmSpec {
            letter_of: vec![Some(roles[0]), Some(roles[1]), Some(roles[0]), Some(roles[1]), None],
        };
        let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();
        let letter_syms = roles.iter().map(|r| alphabet.symbol_of(*r).unwrap()).collect();
        (schema, alphabet, compiled, letter_syms)
    }

    #[test]
    fn compiled_schema_is_csl_plus() {
        let (_, _, compiled, _) = anbn_setup();
        assert_eq!(compiled.transactions.language(), migratory_lang::Language::CslPlus);
        assert!(compiled.transactions.len() > 8);
    }

    /// Completeness: for every accepted word, the driver's script makes
    /// the G object migrate exactly through the word's role sets and then
    /// disappear.
    #[test]
    fn driver_reproduces_accepted_words() {
        let (schema, alphabet, compiled, syms) = anbn_setup();
        let tm = machines::anbn();
        for n in 0..4usize {
            let mut word = vec![0u32; n];
            word.extend(vec![1u32; n]);
            let script = drive_word(&tm, &word, 10_000).expect("aⁿbⁿ accepted");
            let steps: Vec<(&Transaction, Assignment)> = script
                .iter()
                .map(|(name, args)| {
                    (
                        compiled.transactions.get(name).expect("known transaction"),
                        Assignment::new(args.clone()),
                    )
                })
                .collect();
            let step_refs: Vec<(&Transaction, &Assignment)> =
                steps.iter().map(|(t, a)| (*t, a)).collect();
            let patterns = patterns_of_run(&schema, &alphabet, step_refs).unwrap();
            // Exactly one G object; its non-∅ history is the word's roles.
            let g_patterns: Vec<_> = patterns
                .iter()
                .filter(|(_, p)| p.iter().any(|&s| s != alphabet.empty_symbol()))
                .collect();
            if n == 0 {
                assert!(g_patterns.is_empty(), "empty word migrates nothing");
                continue;
            }
            assert_eq!(g_patterns.len(), 1, "exactly one migrating object for n={n}");
            let visible: Vec<u32> =
                g_patterns[0].1.iter().copied().filter(|&s| s != alphabet.empty_symbol()).collect();
            let expected: Vec<u32> = word.iter().map(|&c| syms[c as usize]).collect();
            assert_eq!(visible, expected, "pattern must spell a^{n} b^{n}");
            // The object is deleted at the end (∅ suffix).
            assert_eq!(*g_patterns[0].1.last().unwrap(), alphabet.empty_symbol());
        }
    }

    #[test]
    fn rejected_words_never_migrate() {
        let tm = machines::anbn();
        for word in [vec![0u32], vec![1, 0], vec![0, 1, 1], vec![0, 0, 1]] {
            assert!(drive_word(&tm, &word, 10_000).is_none());
        }
    }

    /// Soundness fuzzing: random transaction/argument sequences never make
    /// an object trace a word outside Init(L·∅*) — the letter part of any
    /// pattern is a prefix of some aⁿbⁿ.
    #[test]
    fn fuzzed_runs_stay_inside_the_inventory() {
        let (schema, alphabet, compiled, syms) = anbn_setup();
        let (a_sym, b_sym) = (syms[0], syms[1]);
        let mut rng = StdRng::seed_from_u64(20_260_611);
        // Value pool: schema constants + a few ids + junk.
        let mut pool: Vec<Value> = compiled.transactions.constants().into_iter().collect();
        for i in 0..3 {
            pool.push(Value::str(&format!("cell{i}")));
        }
        pool.push(Value::str("junk"));
        pool.push(Value::int(7));

        for _run in 0..120 {
            let mut db = migratory_model::Instance::empty();
            let mut trace = vec![db.clone()];
            for _ in 0..14 {
                let t = &compiled.transactions.transactions()
                    [rng.random_range(0..compiled.transactions.len())];
                let args = Assignment::new(
                    (0..t.params.len())
                        .map(|_| pool[rng.random_range(0..pool.len())].clone())
                        .collect(),
                );
                migratory_lang::apply_transaction(&schema, &mut db, t, &args).unwrap();
                trace.push(db.clone());
            }
            let max_oid = trace.last().unwrap().next_oid().0;
            for i in 1..max_oid {
                let o = migratory_model::Oid(i);
                let obs = crate::pattern::observe(&schema, &alphabet, &trace, o);
                let pat = crate::pattern::pattern_of(&obs);
                // Only G-component objects matter.
                let in_g = trace.iter().all(|d| {
                    let cs = d.role_set(o);
                    cs.is_empty()
                        || cs.first().map(|c| schema.component_of(c)) == Some(alphabet.component())
                });
                if !in_g {
                    continue;
                }
                let letters: Vec<u32> =
                    pat.iter().copied().filter(|&s| s != alphabet.empty_symbol()).collect();
                // Must be a prefix of aⁿbⁿ roles: a-run then b-run with
                // #b ≤ #a, and the word must be well-formed.
                assert!(
                    crate::pattern::is_well_formed(&pat, alphabet.empty_symbol()),
                    "ill-formed {pat:?}"
                );
                let a_run = letters.iter().take_while(|&&s| s == a_sym).count();
                let rest = &letters[a_run..];
                let b_run = rest.iter().take_while(|&&s| s == b_sym).count();
                assert_eq!(b_run, rest.len(), "letters {letters:?} not of the form aⁱbʲ");
                assert!(b_run <= a_run, "letters {letters:?} not a prefix of any aⁿbⁿ");
            }
        }
    }

    #[test]
    fn bad_machines_rejected() {
        let (schema, alphabet, s_class, roles) = standard_tm_schema(1).unwrap();
        // Transitions from the accepting state are rejected.
        let mut tm = TuringMachine::new(2, 2, 1, 0, 1).unwrap();
        tm.add_transition(1, 0, 0, 0, Move::Stay).unwrap();
        let spec = TmSpec { letter_of: vec![Some(roles[0]), None] };
        assert!(matches!(
            compile_tm(&schema, &alphabet, s_class, &tm, &spec),
            Err(CoreError::BadMachine(_))
        ));
        // Blank as letter rejected.
        let tm = machines::accept_all();
        let spec = TmSpec { letter_of: vec![Some(roles[0]), Some(roles[0])] };
        assert!(matches!(
            compile_tm(&schema, &alphabet, s_class, &tm, &spec),
            Err(CoreError::BadMachine(_))
        ));
    }

    #[test]
    fn even_length_machine_compiles_and_drives() {
        let (schema, alphabet, s_class, roles) = standard_tm_schema(2).unwrap();
        let tm = machines::even_length();
        let spec = TmSpec { letter_of: vec![Some(roles[0]), Some(roles[1]), None] };
        let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();
        let word = vec![0u32, 1, 1, 0];
        let script = drive_word(&tm, &word, 1000).unwrap();
        let steps: Vec<(&Transaction, Assignment)> = script
            .iter()
            .map(|(name, args)| {
                (compiled.transactions.get(name).unwrap(), Assignment::new(args.clone()))
            })
            .collect();
        let step_refs: Vec<(&Transaction, &Assignment)> =
            steps.iter().map(|(t, a)| (*t, a)).collect();
        let patterns = patterns_of_run(&schema, &alphabet, step_refs).unwrap();
        let visible: Vec<Vec<u32>> = patterns
            .iter()
            .map(|(_, p)| p.iter().copied().filter(|&s| s != alphabet.empty_symbol()).collect())
            .filter(|v: &Vec<u32>| !v.is_empty())
            .collect();
        assert_eq!(visible.len(), 1);
        let expected: Vec<u32> =
            word.iter().map(|&c| alphabet.symbol_of(roles[c as usize]).unwrap()).collect();
        assert_eq!(visible[0], expected);
        // Odd-length words are rejected.
        assert!(drive_word(&tm, &[0], 1000).is_none());
    }
}

//! Bounded ground-truth exploration of migration patterns.
//!
//! Theorem 4.2 observes that the pattern families of a CSL schema are
//! recursively enumerable: enumerate runs (transaction sequences with
//! canonical assignments drawn from the schema's constants, the active
//! domain, and fresh values — finitely many up to isomorphism) and collect
//! the role-set words traced by objects. This module implements that
//! enumeration with explicit bounds. It is *exact up to the bounds*: every
//! reported pattern is genuine, and every pattern witnessed by a run
//! within the bounds is reported. It serves as the oracle that the
//! migration-graph analyzer (Theorem 3.2) and the CSL compilers
//! (Theorems 4.3/4.8) are tested against.

use crate::alphabet::RoleAlphabet;
use crate::pattern::MigrationPattern;
use migratory_lang::{run, Assignment, Language, Transaction, TransactionSchema};
use migratory_model::{Instance, Oid, RoleSet, Schema, Value};
use std::collections::BTreeSet;

/// Bounds and options for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum run length (number of transaction applications).
    pub max_steps: usize,
    /// Stop after this many distinct patterns per family.
    pub max_patterns: usize,
    /// CSL semantics (Definition 4.6): count only database-changing
    /// applications as steps. `None` = infer from the schema's language
    /// (SL → false, CSL/CSL⁺ → true).
    pub require_db_change: Option<bool>,
    /// Extra candidate constants beyond the schema's own.
    pub extra_values: Vec<Value>,
    /// Cap on the number of assignments tried per (database, transaction).
    pub max_assignments: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_steps: 4,
            max_patterns: 100_000,
            require_db_change: None,
            extra_values: Vec::new(),
            max_assignments: 10_000,
        }
    }
}

/// The four pattern families, as enumerated sets of words.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PatternSets {
    /// 𝓛(Σ) ∩ (bounds).
    pub all: BTreeSet<MigrationPattern>,
    /// 𝓛ᵢₘₘ(Σ) ∩ (bounds).
    pub imm: BTreeSet<MigrationPattern>,
    /// 𝓛ₚᵣₒ(Σ) ∩ (bounds).
    pub pro: BTreeSet<MigrationPattern>,
    /// 𝓛ₗₐ(Σ) ∩ (bounds).
    pub lazy: BTreeSet<MigrationPattern>,
}

impl PatternSets {
    /// Total number of stored patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.all.len() + self.imm.len() + self.pro.len() + self.lazy.len()
    }

    /// Whether no pattern was collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// State of one tracked object along the current run.
#[derive(Clone, Debug)]
struct TrackedObject {
    oid: Oid,
    word: MigrationPattern,
    imm_ok: bool,
    pro_ok: bool,
    lazy_ok: bool,
    /// Whether the object belongs to the alphabet's component (or has
    /// never occurred). Objects of other components contribute nothing to
    /// this component's families (Definition 4.7).
    in_component: bool,
}

/// Enumerate the four pattern families of `ts` within the bounds of `cfg`.
#[must_use]
pub fn explore(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    cfg: &ExploreConfig,
) -> PatternSets {
    let require_change = cfg.require_db_change.unwrap_or_else(|| ts.language() != Language::Sl);
    let mut constants: Vec<Value> = ts.constants().into_iter().collect();
    constants.extend(cfg.extra_values.iter().cloned());
    constants.sort();
    constants.dedup();

    let mut out = PatternSets::default();
    // The virtual never-created object witnesses ∅ⁿ patterns.
    let mut fresh_counter: u32 = 1 << 20; // clear of user Fresh values
    let mut virtual_word: MigrationPattern = Vec::new();
    dfs(
        schema,
        alphabet,
        ts,
        cfg,
        require_change,
        &constants,
        &Instance::empty(),
        &mut Vec::new(),
        &mut virtual_word,
        &mut fresh_counter,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments, clippy::ptr_arg)] // tracked is cloned-and-pushed per branch
fn dfs(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    ts: &TransactionSchema,
    cfg: &ExploreConfig,
    require_change: bool,
    constants: &[Value],
    db: &Instance,
    tracked: &mut Vec<TrackedObject>,
    virtual_word: &mut MigrationPattern,
    fresh_counter: &mut u32,
    out: &mut PatternSets,
) {
    // Record the patterns at this node.
    record(alphabet, tracked, virtual_word, out);
    if virtual_word.len() >= cfg.max_steps || out.all.len() >= cfg.max_patterns {
        return;
    }

    // Candidate values: schema constants ∪ active domain ∪ fresh.
    let mut pool: Vec<Value> = constants.to_vec();
    for v in db.active_domain() {
        if !pool.contains(&v) {
            pool.push(v);
        }
    }

    for t in ts.transactions() {
        let m = t.params.len();
        // Fresh values for this step (shared across assignments — the
        // specific tags are irrelevant, only (in)equality matters).
        let mut step_pool = pool.clone();
        for _ in 0..m {
            step_pool.push(Value::Fresh(*fresh_counter));
            *fresh_counter += 1;
        }
        let mut assignment_count = 0usize;
        let mut idx = vec![0usize; m];
        loop {
            if assignment_count >= cfg.max_assignments {
                break;
            }
            assignment_count += 1;
            let args = Assignment::new(idx.iter().map(|&i| step_pool[i].clone()).collect());
            let next = run(schema, db, t, &args).expect("validated transaction");
            let db_changed = next != *db;
            if !require_change || db_changed {
                // Extend tracked objects (and discover newly created ones).
                let mut saved: Vec<TrackedObject> = tracked.clone();
                step_objects(schema, alphabet, db, &next, virtual_word.len(), &mut saved);
                virtual_word.push(alphabet.empty_symbol());
                let mut saved_ref = saved;
                dfs(
                    schema,
                    alphabet,
                    ts,
                    cfg,
                    require_change,
                    constants,
                    &next,
                    &mut saved_ref,
                    virtual_word,
                    fresh_counter,
                    out,
                );
                virtual_word.pop();
            }
            // Advance the assignment odometer.
            if m == 0 {
                break;
            }
            let mut pos = 0;
            loop {
                idx[pos] += 1;
                if idx[pos] < step_pool.len() {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
                if pos == m {
                    break;
                }
            }
            if pos == m {
                break;
            }
        }
    }
}

#[allow(clippy::ptr_arg)] // new objects are pushed: a Vec is required
fn step_objects(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    prev: &Instance,
    next: &Instance,
    steps_before: usize,
    tracked: &mut Vec<TrackedObject>,
) {
    // Discover new objects.
    let known: BTreeSet<Oid> = tracked.iter().map(|t| t.oid).collect();
    for o in next.objects() {
        if !known.contains(&o) {
            // New object: its history so far is ∅^(steps completed before
            // this one).
            let steps = steps_before;
            tracked.push(TrackedObject {
                oid: o,
                word: vec![alphabet.empty_symbol(); steps],
                imm_ok: steps == 0,
                // Steps before creation don't update the object; with the
                // "from step 2" reading only a single leading ∅ is proper.
                pro_ok: steps <= 1,
                lazy_ok: steps <= 1,
                in_component: true,
            });
        }
    }
    for t in tracked.iter_mut() {
        let prev_cs = prev.role_set(t.oid);
        let cur_cs = next.role_set(t.oid);
        let comp_ok = |cs: migratory_model::ClassSet| -> bool {
            cs.is_empty()
                || cs.first().map(|c| schema.component_of(c)) == Some(alphabet.component())
        };
        if !comp_ok(cur_cs) || !comp_ok(prev_cs) {
            t.in_component = false;
        }
        let sym = |cs: migratory_model::ClassSet| -> u32 {
            RoleSet::new(schema, cs)
                .ok()
                .and_then(|rs| alphabet.symbol_of(rs))
                .unwrap_or_else(|| alphabet.empty_symbol())
        };
        let (s_prev, s_cur) = (sym(prev_cs), sym(cur_cs));
        let tuple_changed = prev.tuple_of(t.oid) != next.tuple_of(t.oid);
        let step_index = t.word.len(); // 0-based; step 1 is unconstrained
        t.word.push(s_cur);
        if step_index == 0 {
            t.imm_ok = s_cur != alphabet.empty_symbol();
        } else {
            if !(s_prev != s_cur || tuple_changed) {
                t.pro_ok = false;
            }
            if s_prev == s_cur {
                t.lazy_ok = false;
            }
        }
    }
}

fn record(
    alphabet: &RoleAlphabet,
    tracked: &[TrackedObject],
    virtual_word: &MigrationPattern,
    out: &mut PatternSets,
) {
    let _ = alphabet;
    // Virtual object: ∅ⁿ ∈ 𝓛; ∅⁰ and ∅¹ are also proper/lazy; ∅⁰ is
    // immediate-start (n = 0 case of Definition 3.4).
    out.all.insert(virtual_word.clone());
    if virtual_word.is_empty() {
        out.imm.insert(virtual_word.clone());
    }
    if virtual_word.len() <= 1 {
        out.pro.insert(virtual_word.clone());
        out.lazy.insert(virtual_word.clone());
    }
    for t in tracked {
        if !t.in_component {
            continue;
        }
        out.all.insert(t.word.clone());
        if t.imm_ok {
            out.imm.insert(t.word.clone());
        }
        if t.pro_ok {
            out.pro.insert(t.word.clone());
        }
        if t.lazy_ok {
            out.lazy.insert(t.word.clone());
        }
    }
}

/// Convenience: run a specific scripted sequence and return each tracked
/// object's pattern (used by the compiler drivers where exhaustive search
/// is infeasible).
pub fn patterns_of_run<'a>(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    steps: impl IntoIterator<Item = (&'a Transaction, &'a Assignment)>,
) -> Result<Vec<(Oid, MigrationPattern)>, migratory_lang::LangError> {
    let trace = migratory_lang::run_trace(schema, &Instance::empty(), steps)?;
    let max_oid = trace.last().map_or(1, |d| d.next_oid().0);
    let mut out = Vec::new();
    for i in 1..max_oid {
        let o = Oid(i);
        let obs = crate::pattern::observe(schema, alphabet, &trace, o);
        // Only objects of this component (or never-created) qualify.
        let in_comp = trace.iter().all(|db| {
            let cs = db.role_set(o);
            cs.is_empty()
                || cs.first().map(|c| schema.component_of(c)) == Some(alphabet.component())
        });
        if in_comp {
            out.push((o, crate::pattern::pattern_of(&obs)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_lang::parse_transactions;
    use migratory_model::schema::university_schema;

    fn uni_schema_and_alphabet() -> (Schema, RoleAlphabet) {
        let s = university_schema();
        let a = RoleAlphabet::new(&s, 0).unwrap();
        (s, a)
    }

    #[test]
    fn single_create_transaction() {
        let (s, a) = uni_schema_and_alphabet();
        let ts = parse_transactions(
            &s,
            r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
        )
        .unwrap();
        let sets = explore(&s, &a, &ts, &ExploreConfig { max_steps: 3, ..Default::default() });
        let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        // 𝓛 = Init(∅*[P]*∅⁰) without deletion: words ∅^i [P]^j.
        assert!(sets.all.contains(&vec![]));
        assert!(sets.all.contains(&vec![p, p, p]));
        assert!(sets.all.contains(&vec![0, p, p]));
        assert!(sets.all.contains(&vec![0, 0, p]));
        assert!(sets.all.contains(&vec![0, 0, 0]));
        assert!(!sets.all.contains(&vec![p, 0, p]));
        // Immediate-start: starts with [P] (or λ).
        assert!(sets.imm.contains(&vec![p, p]));
        assert!(!sets.imm.contains(&vec![0, p]));
        assert!(sets.imm.contains(&vec![]));
        // Proper: the object is never updated after creation → [P] and
        // ∅[P] only (plus the ≤1-length ∅ cases).
        assert!(sets.pro.contains(&vec![p]));
        assert!(sets.pro.contains(&vec![0, p]));
        assert!(!sets.pro.contains(&vec![p, p]));
        assert!(!sets.pro.contains(&vec![0, 0, p]));
        // Lazy agrees here.
        assert_eq!(sets.pro, sets.lazy);
    }

    #[test]
    fn create_and_delete_gives_empty_suffixes() {
        let (s, a) = uni_schema_and_alphabet();
        let ts = parse_transactions(
            &s,
            r#"
            transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
            transaction Rm(x) { delete(PERSON, { SSN = x }); }
        "#,
        )
        .unwrap();
        let sets = explore(&s, &a, &ts, &ExploreConfig { max_steps: 3, ..Default::default() });
        let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        assert!(sets.all.contains(&vec![p, 0, 0]));
        assert!(sets.imm.contains(&vec![p, 0]));
        assert!(sets.pro.contains(&vec![p, 0]), "deletion is a proper step");
        assert!(!sets.pro.contains(&vec![p, 0, 0]), "after deletion nothing changes");
        assert!(sets.lazy.contains(&vec![p, 0]));
        assert!(!sets.lazy.contains(&vec![p, p]));
        assert!(sets.all.contains(&vec![p, p]));
    }

    #[test]
    fn csl_guard_requires_db_change_steps() {
        let (s, a) = uni_schema_and_alphabet();
        // Guarded transaction that fires only when a PERSON exists; from
        // the empty database it is a null application — under CSL
        // semantics that is not a step at all.
        let ts = parse_transactions(
            &s,
            r#"
            transaction Nop() {
              when PERSON() -> delete(PERSON, {});
            }
        "#,
        )
        .unwrap();
        let sets = explore(&s, &a, &ts, &ExploreConfig { max_steps: 2, ..Default::default() });
        // No database change is ever possible: only the empty pattern.
        assert_eq!(sets.all.len(), 1);
        assert!(sets.all.contains(&vec![]));
    }

    #[test]
    fn patterns_of_run_scripted() {
        let (s, a) = uni_schema_and_alphabet();
        let ts = parse_transactions(
            &s,
            r#"
            transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
            transaction St(x) {
              specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
            }
        "#,
        )
        .unwrap();
        let mk = ts.get("Mk").unwrap();
        let st = ts.get("St").unwrap();
        let a1 = Assignment::new(vec![Value::str("1")]);
        let pats = patterns_of_run(&s, &a, [(mk, &a1), (st, &a1)]).unwrap();
        assert_eq!(pats.len(), 1);
        let p = a.symbol_of(RoleSet::closure_of_named(&s, &["PERSON"]).unwrap()).unwrap();
        let st_sym = a.symbol_of(RoleSet::closure_of_named(&s, &["STUDENT"]).unwrap()).unwrap();
        assert_eq!(pats[0].1, vec![p, st_sym]);
    }

    #[test]
    fn patterns_are_well_formed() {
        let (s, a) = uni_schema_and_alphabet();
        let ts = parse_transactions(
            &s,
            r#"
            transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
            transaction Rm(x) { delete(PERSON, { SSN = x }); }
            transaction St(x) {
              specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
            }
        "#,
        )
        .unwrap();
        let sets = explore(&s, &a, &ts, &ExploreConfig { max_steps: 3, ..Default::default() });
        for w in &sets.all {
            assert!(
                crate::pattern::is_well_formed(w, a.empty_symbol()),
                "ill-formed pattern {w:?}"
            );
        }
        // Families nest: imm/pro/lazy ⊆ all.
        for set in [&sets.imm, &sets.pro, &sets.lazy] {
            for w in set {
                assert!(sets.all.contains(w));
            }
        }
    }
}

//! Compiling context-free inventories into CSL⁺ schemas —
//! Theorem 4.8 and Example 4.1.
//!
//! Every context-free `L ⊆ Ω₊*` is the proper/immediate-start pattern
//! family (up to the leading-∅ conventions of DESIGN.md §2) of a CSL⁺
//! schema. The construction runs the Greibach-normal-form grammar of `L`
//! as a *leftmost derivation machine*: the class `S` stores the stack of
//! pending nonterminals as a linked chain
//!
//! > `(A1 = id, A2 = below-id, A3 = nonterminal)`
//!
//! with the top cell named `¢` and a `⊥` bottom sentinel. For each GNF
//! production `N₀ → c N₁…N_k` a transaction pops `N₀`, *emits* `c`
//! (migrates every object of the target component to `ω(c)` and swaps the
//! root attribute between 0 and 1, so repeated letters still change the
//! object — the paper's properness trick), and pushes `N₁…N_k`. Start
//! productions additionally reset the database and create the migrating
//! object.
//!
//! Soundness against adversarial parameters follows the same discipline
//! as [`crate::tm_compile`]: pushed cells are validated with `≠` atoms
//! (distinct, not colliding with reserved ids) before anything is
//! emitted; a failed validation skips the emission and the stack update,
//! leaving only orphan junk cells, so later runs continue from the
//! untouched top (self-healing — a persistent "busy" state turned out to
//! be exploitable and is deliberately absent). The pop/rename tail runs
//! under a flag marker that is set and cleared within one transaction.
//! Torn stacks can only truncate a derivation, and truncated emissions
//! are prefixes, which `Init`-closure admits.

use crate::alphabet::RoleAlphabet;
use crate::error::CoreError;
use migratory_chomsky::{to_gnf, Cfg, Sym};
use migratory_lang::{
    con, mig_ops, AtomicUpdate, GuardedUpdate, Literal, Transaction, TransactionSchema,
};
use migratory_model::{Atom, ClassId, CmpOp, Condition, RoleSet, Schema, Term, Value, VarId};
use std::collections::BTreeMap;

/// The compiled schema plus the GNF grammar actually used (for drivers).
#[derive(Clone, Debug)]
pub struct CfgCompiled {
    /// The CSL⁺ transaction schema.
    pub transactions: TransactionSchema,
    /// The Greibach-normal-form grammar driving it.
    pub gnf: Cfg,
    /// Whether λ was in the source language (λ needs no transactions —
    /// Init-closure supplies it).
    pub derives_lambda: bool,
}

fn s_val(s: &str) -> Value {
    Value::str(s)
}

fn nt_val(n: u32) -> Value {
    Value::str(&format!("N{n}"))
}

/// Compile a context-free grammar (terminals `0..letter_of.len()`) into a
/// CSL⁺ schema over `schema`. `s_class` must be an isa-root with at least
/// three attributes in a component different from `alphabet`'s; the
/// target component's root needs at least one attribute (the flip).
pub fn compile_cfg(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    s_class: ClassId,
    cfg: &Cfg,
    letter_of: &[RoleSet],
) -> Result<CfgCompiled, CoreError> {
    if schema.component_of(s_class) == alphabet.component() {
        return Err(CoreError::BadMachine("the S class must live in a separate component".into()));
    }
    if !schema.is_isa_root(s_class) || schema.attrs_of(s_class).len() < 3 {
        return Err(CoreError::BadMachine(
            "the S class must be an isa-root with at least three attributes".into(),
        ));
    }
    if letter_of.len() != cfg.num_terminals as usize {
        return Err(CoreError::BadMachine("letter_of must cover the terminals".into()));
    }
    let g_root = schema.component_root(alphabet.component());
    if schema.attrs_of(g_root).is_empty() {
        return Err(CoreError::BadMachine(
            "the target component's root needs an attribute for the properness flip".into(),
        ));
    }
    for rs in letter_of {
        if alphabet.symbol_of(*rs).is_none() || rs.is_empty() {
            return Err(CoreError::BadMachine(
                "letters must denote non-empty role sets of the target component".into(),
            ));
        }
    }

    let nf = to_gnf(cfg);
    let gnf = nf.cfg;
    let sa = schema.attrs_of(s_class);
    let (a1, a2, a3) = (sa[0], sa[1], sa[2]);
    let flip = schema.attrs_of(g_root)[0];

    // G defaults for creation/migration.
    let mut g_values: BTreeMap<migratory_model::AttrId, Term> = BTreeMap::new();
    for class in schema.component_classes(alphabet.component()).iter() {
        for &attr in schema.attrs_of(class) {
            g_values.insert(attr, con(0));
        }
    }
    let mut g_create = Condition::empty();
    for &attr in schema.attrs_of(g_root) {
        g_create.push(Atom::eq_const(attr, 0));
    }

    let flag_idle = Condition::from_atoms([
        Atom::eq_const(a1, s_val("f")),
        Atom::eq_const(a2, s_val("f")),
        Atom::eq_const(a3, s_val("idle")),
    ]);
    let flag_marked = Condition::from_atoms([
        Atom::eq_const(a1, s_val("f")),
        Atom::eq_const(a2, s_val("go")),
        Atom::eq_const(a3, s_val("idle")),
    ]);
    let idle = Literal::pos(s_class, flag_idle.clone());
    let marked = Literal::pos(s_class, flag_marked.clone());

    // Emission of terminal c: migrate all G objects and swap the flip
    // attribute 0 ↔ 1 (via the scratch value 2).
    let emit = |c: u32, guards: &[Literal]| -> Result<Vec<GuardedUpdate>, CoreError> {
        let mut ops: Vec<AtomicUpdate> = Vec::new();
        ops.extend(mig_ops(schema, None, letter_of[c as usize], &Condition::empty(), &g_values)?);
        for (from, to) in [(0i64, 2i64), (1, 0), (2, 1)] {
            ops.push(AtomicUpdate::Modify {
                class: g_root,
                select: Condition::from_atoms([Atom::eq_const(flip, from)]),
                set: Condition::from_atoms([Atom::eq_const(flip, to)]),
            });
        }
        Ok(ops.into_iter().map(|op| GuardedUpdate::when(guards.to_vec(), op)).collect())
    };

    // Validity gate for pushed cells y₁…y_k (variables offset..offset+k):
    // each exists with the expected link and nonterminal, and its id is
    // none of the reserved names, x, or a later y. A failed gate skips
    // everything downstream of it — the junk cells it leaves behind are
    // orphans, and the stack top survives untouched, so later runs are
    // unaffected (self-healing rather than stuck).
    let push_gates = |offset: u32, body: &[Sym], x_var: Option<VarId>| -> Vec<Literal> {
        let k = body.len() as u32;
        (0..k)
            .map(|i| {
                let link: Term = if i + 1 < k {
                    Term::Var(VarId(offset + i + 1))
                } else if let Some(x) = x_var {
                    Term::Var(x)
                } else {
                    Term::Const(s_val("bot"))
                };
                let Sym::N(nt) = body[i as usize] else {
                    unreachable!("GNF tails are nonterminals")
                };
                let mut cond = Condition::from_atoms([
                    Atom::eq_var(a1, VarId(offset + i)),
                    Atom { attr: a2, op: CmpOp::Eq, term: link },
                    Atom::eq_const(a3, nt_val(nt)),
                    Atom::ne_const(a1, s_val("f")),
                    Atom::ne_const(a1, s_val("bot")),
                    Atom::ne_const(a1, s_val("¢")),
                ]);
                if let Some(x) = x_var {
                    cond.push(Atom::ne_var(a1, x));
                }
                for j in i + 1..k {
                    cond.push(Atom::ne_var(a1, VarId(offset + j)));
                }
                Literal::pos(s_class, cond)
            })
            .collect()
    };

    // Push cells (dedup-delete then create), bottom-up.
    let push_cells = |steps: &mut Vec<GuardedUpdate>,
                      guards: &[Literal],
                      offset: u32,
                      body: &[Sym],
                      x_var: Option<VarId>| {
        let k = body.len() as u32;
        for i in (0..k).rev() {
            let y = VarId(offset + i);
            let link: Term = if i + 1 < k {
                Term::Var(VarId(offset + i + 1))
            } else if let Some(x) = x_var {
                Term::Var(x)
            } else {
                Term::Const(s_val("bot"))
            };
            let Sym::N(nt) = body[i as usize] else { unreachable!("GNF tails are nonterminals") };
            steps.push(GuardedUpdate::when(
                guards.to_vec(),
                AtomicUpdate::Delete {
                    class: s_class,
                    gamma: Condition::from_atoms([Atom::eq_var(a1, y)]),
                },
            ));
            steps.push(GuardedUpdate::when(
                guards.to_vec(),
                AtomicUpdate::Create {
                    class: s_class,
                    gamma: Condition::from_atoms([
                        Atom::eq_var(a1, y),
                        Atom { attr: a2, op: CmpOp::Eq, term: link },
                        Atom::eq_const(a3, nt_val(nt)),
                    ]),
                },
            ));
        }
    };

    let mut ts = TransactionSchema::new();

    for (pi, prod) in gnf.prods.iter().enumerate() {
        let Some(&Sym::T(c)) = prod.rhs.first() else {
            return Err(CoreError::BadMachine("grammar not in GNF".into()));
        };
        let body = &prod.rhs[1..];
        let k = body.len() as u32;

        // ------ T_p{pi}(x, y₁…y_k): mid-derivation step. -----------------
        //
        // No persistent "busy" state: every step is gated on
        // [idle ∧ top_is ∧ gates], and the pop/rename tail runs under a
        // marker that is set and reset within this same transaction, so a
        // failed gate can never strand state that a later application
        // would misinterpret (the flaw the fuzzer caught in the first
        // version of this construction).
        {
            let x = VarId(0);
            let params: Vec<String> =
                std::iter::once("x".to_owned()).chain((0..k).map(|i| format!("y{i}"))).collect();
            let top_is = Literal::pos(
                s_class,
                Condition::from_atoms([
                    Atom::eq_const(a1, s_val("¢")),
                    Atom::eq_var(a2, x),
                    Atom::eq_const(a3, nt_val(prod.lhs)),
                ]),
            );
            let mut steps: Vec<GuardedUpdate> = Vec::new();
            let base = vec![idle.clone(), top_is.clone()];
            push_cells(&mut steps, &base, 1, body, Some(x));
            let mut gates = base.clone();
            gates.extend(push_gates(1, body, Some(x)));
            steps.extend(emit(c, &gates)?);
            // Marker on the flag (A2 ← "go"), reset unconditionally below.
            steps.push(GuardedUpdate::when(
                gates.clone(),
                AtomicUpdate::Modify {
                    class: s_class,
                    select: flag_idle.clone(),
                    set: Condition::from_atoms([Atom::eq_const(a2, s_val("go"))]),
                },
            ));
            steps.push(GuardedUpdate::when(
                vec![marked.clone()],
                AtomicUpdate::Delete {
                    class: s_class,
                    gamma: Condition::from_atoms([Atom::eq_const(a1, s_val("¢"))]),
                },
            ));
            let new_top = if k > 0 {
                Condition::from_atoms([Atom::eq_var(a1, VarId(1))])
            } else {
                Condition::from_atoms([Atom::eq_var(a1, x), Atom::ne_const(a1, s_val("f"))])
            };
            steps.push(GuardedUpdate::when(
                vec![marked.clone()],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: new_top,
                    set: Condition::from_atoms([Atom::eq_const(a1, s_val("¢"))]),
                },
            ));
            // The marker is ALWAYS cleared in the same transaction.
            steps.push(GuardedUpdate::when(
                vec![marked.clone()],
                AtomicUpdate::Modify {
                    class: s_class,
                    select: Condition::from_atoms([
                        Atom::eq_const(a1, s_val("f")),
                        Atom::eq_const(a2, s_val("go")),
                    ]),
                    set: Condition::from_atoms([Atom::eq_const(a2, s_val("f"))]),
                },
            ));
            ts.add(Transaction { name: format!("T_p{pi}"), params, steps })?;
        }

        // ------ T_init{pi}(y₁…y_k): start-of-derivation reset. ------------
        if prod.lhs == gnf.start {
            let params: Vec<String> = (0..k).map(|i| format!("y{i}")).collect();
            let mut steps: Vec<GuardedUpdate> = vec![
                GuardedUpdate::plain(AtomicUpdate::Delete {
                    class: g_root,
                    gamma: Condition::empty(),
                }),
                GuardedUpdate::plain(AtomicUpdate::Delete {
                    class: s_class,
                    gamma: Condition::empty(),
                }),
                GuardedUpdate::plain(AtomicUpdate::Create {
                    class: s_class,
                    gamma: flag_idle.clone(),
                }),
                GuardedUpdate::plain(AtomicUpdate::Create {
                    class: s_class,
                    gamma: Condition::from_atoms([
                        Atom::eq_const(a1, s_val("bot")),
                        Atom::eq_const(a2, s_val("bot")),
                        Atom::eq_const(a3, s_val("⊥")),
                    ]),
                }),
            ];
            push_cells(&mut steps, &[], 0, body, None);
            let gates = push_gates(0, body, None);
            steps.push(GuardedUpdate::when(
                gates.clone(),
                AtomicUpdate::Create { class: g_root, gamma: g_create.clone() },
            ));
            steps.extend(emit(c, &gates)?);
            if k > 0 {
                steps.push(GuardedUpdate::when(
                    gates,
                    AtomicUpdate::Modify {
                        class: s_class,
                        select: Condition::from_atoms([Atom::eq_var(a1, VarId(0))]),
                        set: Condition::from_atoms([Atom::eq_const(a1, s_val("¢"))]),
                    },
                ));
            }
            ts.add(Transaction { name: format!("T_init{pi}"), params, steps })?;
        }
    }

    migratory_lang::validate_schema(schema, &ts)?;
    Ok(CfgCompiled { transactions: ts, gnf, derives_lambda: nf.derives_lambda })
}

/// The standard host schema for CFG compilation: `R{F} ⊇ L0…` plus
/// `S{A1..A3}`.
pub fn standard_cfg_schema(
    num_letters: usize,
) -> Result<(Schema, RoleAlphabet, ClassId, Vec<RoleSet>), CoreError> {
    let mut b = migratory_model::SchemaBuilder::new();
    let r = b.class("R", &["F"])?;
    let mut classes = Vec::new();
    for i in 0..num_letters {
        classes.push(b.subclass(&format!("L{i}"), &[r], &[])?);
    }
    let s = b.class("S", &["A1", "A2", "A3"])?;
    let schema = b.build()?;
    let alphabet = RoleAlphabet::new(&schema, schema.component_of(r))?;
    let roles = classes
        .into_iter()
        .map(|c| RoleSet::closure_of(&schema, [c]).map_err(CoreError::from))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((schema, alphabet, s, roles))
}

/// A witnessing script for one word of the language: the leftmost GNF
/// derivation replayed as `(transaction name, arguments)`. `None` when
/// the word is not derivable.
#[must_use]
pub fn drive_word(compiled: &CfgCompiled, word: &[u32]) -> Option<Vec<(String, Vec<Value>)>> {
    let gnf = &compiled.gnf;
    if word.is_empty() {
        return None; // λ needs no transactions; Init-closure covers it.
    }
    // Leftmost derivation search: state = (position, stack of NTs).
    fn derive(
        gnf: &Cfg,
        word: &[u32],
        pos: usize,
        stack: &mut [u32],
        script_prods: &mut Vec<usize>,
        seen: &mut std::collections::HashSet<(usize, Vec<u32>)>,
    ) -> bool {
        if pos == word.len() {
            return stack.is_empty();
        }
        if stack.is_empty() || stack.len() > word.len() - pos {
            return false; // each NT yields ≥ 1 letter in ε-free GNF
        }
        if !seen.insert((pos, stack.to_vec())) {
            return false;
        }
        let top = stack[0];
        for (pi, p) in gnf.prods.iter().enumerate() {
            if p.lhs != top {
                continue;
            }
            let Some(&Sym::T(c)) = p.rhs.first() else { continue };
            if c != word[pos] {
                continue;
            }
            let mut next: Vec<u32> = p.rhs[1..]
                .iter()
                .map(|s| match s {
                    Sym::N(n) => *n,
                    Sym::T(_) => unreachable!("GNF tail"),
                })
                .collect();
            next.extend_from_slice(&stack[1..]);
            script_prods.push(pi);
            if derive(gnf, word, pos + 1, &mut next, script_prods, seen) {
                return true;
            }
            script_prods.pop();
        }
        false
    }

    let mut prods = Vec::new();
    let mut stack = vec![gnf.start];
    // The first production must come from the start symbol; handle it as
    // T_init. Search full derivations from the start.
    if !derive(gnf, word, 0, &mut stack, &mut prods, &mut std::collections::HashSet::new()) {
        return None;
    }

    // Replay, tracking cell ids. Stack entries: (current id, nonterminal).
    let mut script: Vec<(String, Vec<Value>)> = Vec::new();
    let mut fresh = 0usize;
    let mint = |fresh: &mut usize| -> Value {
        *fresh += 1;
        Value::str(&format!("c{fresh}"))
    };
    let mut cells: Vec<Value> = Vec::new(); // ids below (and incl.) top, top first

    for (step, &pi) in prods.iter().enumerate() {
        let p = &compiled.gnf.prods[pi];
        let k = p.rhs.len() - 1;
        if step == 0 {
            let ys: Vec<Value> = (0..k).map(|_| mint(&mut fresh)).collect();
            script.push((format!("T_init{pi}"), ys.clone()));
            cells = ys;
            if !cells.is_empty() {
                cells[0] = s_val("¢"); // renamed top
            }
        } else {
            let x = cells.get(1).cloned().unwrap_or_else(|| s_val("bot"));
            let ys: Vec<Value> = (0..k).map(|_| mint(&mut fresh)).collect();
            let mut args = vec![x];
            args.extend(ys.clone());
            script.push((format!("T_p{pi}"), args));
            let mut next_cells = ys;
            if next_cells.is_empty() {
                // Pop: the below cell was renamed to ¢.
                next_cells = cells[1..].to_vec();
            } else {
                next_cells.extend_from_slice(&cells[1..]);
            }
            if !next_cells.is_empty() {
                next_cells[0] = s_val("¢");
            }
            cells = next_cells;
        }
    }
    Some(script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::patterns_of_run;
    use migratory_chomsky::cfg::grammars;
    use migratory_lang::Assignment;
    use rand::{rngs::StdRng, RngExt as _, SeedableRng};

    fn setup(cfg: &Cfg) -> (Schema, RoleAlphabet, CfgCompiled, Vec<u32>) {
        let (schema, alphabet, s_class, roles) =
            standard_cfg_schema(cfg.num_terminals as usize).unwrap();
        let compiled = compile_cfg(&schema, &alphabet, s_class, cfg, &roles).unwrap();
        let syms = roles.iter().map(|r| alphabet.symbol_of(*r).unwrap()).collect();
        (schema, alphabet, compiled, syms)
    }

    fn run_script(
        schema: &Schema,
        alphabet: &RoleAlphabet,
        compiled: &CfgCompiled,
        script: &[(String, Vec<Value>)],
    ) -> Vec<Vec<u32>> {
        let steps: Vec<(&Transaction, Assignment)> = script
            .iter()
            .map(|(name, args)| {
                (
                    compiled.transactions.get(name).expect("transaction exists"),
                    Assignment::new(args.clone()),
                )
            })
            .collect();
        let refs: Vec<(&Transaction, &Assignment)> = steps.iter().map(|(t, a)| (*t, a)).collect();
        patterns_of_run(schema, alphabet, refs).unwrap().into_iter().map(|(_, p)| p).collect()
    }

    #[test]
    fn example_4_1_anbn_words_emit_correctly() {
        // Example 4.1: L = {aⁱbⁱ}.
        let g = grammars::anbn();
        let (schema, alphabet, compiled, syms) = setup(&g);
        assert!(compiled.derives_lambda);
        for n in 1..4usize {
            let mut word = vec![0u32; n];
            word.extend(vec![1u32; n]);
            let script = drive_word(&compiled, &word).expect("aⁿbⁿ derivable");
            let patterns = run_script(&schema, &alphabet, &compiled, &script);
            let visible: Vec<Vec<u32>> = patterns
                .into_iter()
                .map(|p| p.into_iter().filter(|&s| s != alphabet.empty_symbol()).collect())
                .filter(|v: &Vec<u32>| !v.is_empty())
                .collect();
            assert_eq!(visible.len(), 1, "one migrating object for n={n}");
            let expected: Vec<u32> = word.iter().map(|&c| syms[c as usize]).collect();
            assert_eq!(visible[0], expected);
        }
        // Non-members are not derivable.
        for bad in [vec![0u32], vec![1, 0], vec![0, 1, 1], vec![0, 0, 1]] {
            assert!(drive_word(&compiled, &bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn dyck_words_emit_correctly() {
        let g = grammars::dyck();
        let (schema, alphabet, compiled, syms) = setup(&g);
        for word in [vec![0u32, 1], vec![0, 0, 1, 1], vec![0, 1, 0, 1], vec![0, 0, 1, 1, 0, 1]] {
            let script = drive_word(&compiled, &word).expect("balanced word");
            let patterns = run_script(&schema, &alphabet, &compiled, &script);
            let visible: Vec<Vec<u32>> = patterns
                .into_iter()
                .map(|p| p.into_iter().filter(|&s| s != alphabet.empty_symbol()).collect())
                .filter(|v: &Vec<u32>| !v.is_empty())
                .collect();
            assert_eq!(visible.len(), 1);
            let expected: Vec<u32> = word.iter().map(|&c| syms[c as usize]).collect();
            assert_eq!(visible[0], expected);
        }
        assert!(drive_word(&compiled, &[1, 0]).is_none());
        assert!(drive_word(&compiled, &[0]).is_none());
    }

    /// Soundness fuzzing against the Dyck language: whatever arguments are
    /// thrown at the compiled schema, the emitted letter sequence of any
    /// object is a *prefix of some balanced word* — i.e. every prefix has
    /// #close ≤ #open.
    #[test]
    fn fuzzed_runs_emit_only_dyck_prefixes() {
        let g = grammars::dyck();
        let (schema, alphabet, compiled, syms) = setup(&g);
        let (open, close) = (syms[0], syms[1]);
        let mut rng = StdRng::seed_from_u64(42);
        let mut pool: Vec<Value> = compiled.transactions.constants().into_iter().collect();
        for i in 0..3 {
            pool.push(Value::str(&format!("c{i}")));
        }
        pool.push(Value::str("junk"));

        for _run in 0..150 {
            let mut db = migratory_model::Instance::empty();
            let mut trace = vec![db.clone()];
            for _ in 0..12 {
                let t = &compiled.transactions.transactions()
                    [rng.random_range(0..compiled.transactions.len())];
                let args = Assignment::new(
                    (0..t.params.len())
                        .map(|_| pool[rng.random_range(0..pool.len())].clone())
                        .collect(),
                );
                migratory_lang::apply_transaction(&schema, &mut db, t, &args).unwrap();
                trace.push(db.clone());
            }
            let max_oid = trace.last().unwrap().next_oid().0;
            for i in 1..max_oid {
                let o = migratory_model::Oid(i);
                let in_g = trace.iter().all(|d| {
                    let cs = d.role_set(o);
                    cs.is_empty()
                        || cs.first().map(|c| schema.component_of(c)) == Some(alphabet.component())
                });
                if !in_g {
                    continue;
                }
                let obs = crate::pattern::observe(&schema, &alphabet, &trace, o);
                let pat = crate::pattern::pattern_of(&obs);
                let letters: Vec<u32> =
                    pat.iter().copied().filter(|&s| s != alphabet.empty_symbol()).collect();
                let mut depth: i64 = 0;
                for &l in &letters {
                    if l == open {
                        depth += 1;
                    } else if l == close {
                        depth -= 1;
                    } else {
                        panic!("unexpected symbol {l} in {letters:?}");
                    }
                    assert!(depth >= 0, "emitted non-Dyck prefix {letters:?}");
                }
            }
        }
    }

    #[test]
    fn compiled_schema_is_csl_plus() {
        let g = grammars::anbn();
        let (_, _, compiled, _) = setup(&g);
        assert_eq!(compiled.transactions.language(), migratory_lang::Language::CslPlus);
    }

    #[test]
    fn regular_grammar_also_compiles() {
        // (01)* via the unit/ε-ridden grammar — the GNF pipeline cleans it.
        let g = grammars::zero_one_star();
        let (schema, alphabet, compiled, syms) = setup(&g);
        let word = vec![0u32, 1, 0, 1];
        let script = drive_word(&compiled, &word).unwrap();
        let patterns = run_script(&schema, &alphabet, &compiled, &script);
        let visible: Vec<Vec<u32>> = patterns
            .into_iter()
            .map(|p| p.into_iter().filter(|&s| s != alphabet.empty_symbol()).collect())
            .filter(|v: &Vec<u32>| !v.is_empty())
            .collect();
        assert_eq!(visible.len(), 1);
        assert_eq!(visible[0], vec![syms[0], syms[1], syms[0], syms[1]]);
    }

    #[test]
    fn bad_hosts_rejected() {
        let g = grammars::anbn();
        // S class with too few attributes.
        let mut b = migratory_model::SchemaBuilder::new();
        let r = b.class("R", &["F"]).unwrap();
        b.subclass("L0", &[r], &[]).unwrap();
        b.subclass("L1", &[r], &[]).unwrap();
        let s = b.class("S", &["A1", "A2"]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, schema.component_of(r)).unwrap();
        let roles = vec![
            RoleSet::closure_of_named(&schema, &["L0"]).unwrap(),
            RoleSet::closure_of_named(&schema, &["L1"]).unwrap(),
        ];
        assert!(matches!(
            compile_cfg(&schema, &alphabet, s, &g, &roles),
            Err(CoreError::BadMachine(_))
        ));
    }
}

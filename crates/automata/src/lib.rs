//! # migratory-automata — the regular-language toolkit
//!
//! Theorem 3.2 of Su, *Dynamic Constraints and Object Migration*
//! (VLDB 1991 / TCS 1997) characterizes SL migration-pattern families as
//! regular sets, and Corollary 3.3 rests on the classical decision
//! procedures for regular languages. This crate supplies that machinery,
//! self-contained:
//!
//! * [`Regex`] — expressions over dense symbol alphabets, with a
//!   paper-notation parser ([`parse_regex`]: `∅* [P]* ([S] ∪ [G])+`);
//! * [`Nfa`] — Thompson construction, ε-closure, trimming, prefix closure
//!   (`Init`), homomorphic relabelling, reversal;
//! * [`Dfa`] — subset construction, Hopcroft minimization, Boolean
//!   products, inclusion/equivalence with counterexamples, counting,
//!   shortlex enumeration;
//! * [`ops`] — rational combinators and the left quotient `X⁻¹Y` of
//!   Definition 4.8;
//! * [`transduce`] — image constructions for the paper's `f_rr`
//!   (remove repeats) and `f_rei` (remove empty initial) functions;
//! * [`grammar`] — the right-linear grammars used in the proof of
//!   Theorem 3.2(1);
//! * [`elim`] — state elimination (automaton → regular expression), making
//!   "the regular expressions can be effectively constructed" literal;
//! * [`sample`] — uniform random sampling of accepted words.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfa;
pub mod display;
pub mod elim;
pub mod error;
pub mod grammar;
pub mod nfa;
pub mod ops;
pub mod parser;
pub mod regex;
pub mod sample;
pub mod transduce;

pub use dfa::Dfa;
pub use elim::{dfa_to_regex, nfa_to_regex};
pub use error::AutomataError;
pub use grammar::RightLinearGrammar;
pub use nfa::{Nfa, StateId};
pub use ops::{concat, left_quotient, nfa_witness_not_subset, star, union};
pub use parser::parse_regex;
pub use regex::Regex;
pub use sample::sample_word;
pub use transduce::{f_rei_image, f_rei_word, f_rr_image, f_rr_word};
